//! Equation 3: the correctness (precision) guarantee of the max protocol.

use crate::RandomizationParams;

/// Equation 3: a lower bound on `P(g(r) = v_max)` — the probability that
/// the global value equals the true maximum after `r` rounds:
///
/// `P(g(r) = v_max) >= 1 − p0^r · d^(r(r−1)/2)`
///
/// The bound is independent of the number of nodes and increases
/// monotonically with `r` for any valid `(p0, d)` with `d < 1`.
///
/// # Example
///
/// ```
/// use privtopk_analysis::correctness::precision_lower_bound;
/// use privtopk_analysis::RandomizationParams;
///
/// let params = RandomizationParams::new(1.0, 0.5)?;
/// let p4 = precision_lower_bound(params, 4);
/// let p8 = precision_lower_bound(params, 8);
/// assert!(p8 > p4);
/// assert!(p8 > 0.999);
/// # Ok::<(), privtopk_analysis::AnalysisError>(())
/// ```
///
/// # Panics
///
/// Panics if `rounds == 0` (rounds are 1-based).
#[must_use]
pub fn precision_lower_bound(params: RandomizationParams, rounds: u32) -> f64 {
    assert!(rounds >= 1, "rounds are 1-based");
    let r = f64::from(rounds);
    let failure = params.p0().powf(r) * params.d().powf(r * (r - 1.0) / 2.0);
    (1.0 - failure).clamp(0.0, 1.0)
}

/// The exact failure product `∏_{j=1..r} P_r(j)` from which Equation 3 is
/// derived: the probability that a node owning the maximum randomized in
/// *every* one of the first `r` rounds.
///
/// Algebraically identical to `p0^r · d^(r(r−1)/2)`; computing it as a
/// product doubles as a numerical cross-check in tests.
///
/// # Panics
///
/// Panics if `rounds == 0`.
#[must_use]
pub fn failure_probability_product(params: RandomizationParams, rounds: u32) -> f64 {
    assert!(rounds >= 1, "rounds are 1-based");
    (1..=rounds)
        .map(|j| params.probability_at_round(j))
        .product()
}

/// The full analytic precision-vs-rounds series used for Figure 3.
#[must_use]
pub fn precision_series(params: RandomizationParams, max_rounds: u32) -> Vec<(u32, f64)> {
    (1..=max_rounds)
        .map(|r| (r, precision_lower_bound(params, r)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p0: f64, d: f64) -> RandomizationParams {
        RandomizationParams::new(p0, d).unwrap()
    }

    #[test]
    fn matches_product_form() {
        for (p0, d) in [(1.0, 0.5), (0.5, 0.25), (0.75, 0.9)] {
            let p = params(p0, d);
            for r in 1..12 {
                let closed = 1.0 - failure_probability_product(p, r);
                let bound = precision_lower_bound(p, r);
                assert!(
                    (closed - bound).abs() < 1e-12,
                    "mismatch at p0={p0} d={d} r={r}: {closed} vs {bound}"
                );
            }
        }
    }

    #[test]
    fn monotone_in_rounds() {
        let p = params(1.0, 0.5);
        let mut prev = 0.0;
        for r in 1..=20 {
            let cur = precision_lower_bound(p, r);
            assert!(cur >= prev);
            prev = cur;
        }
    }

    #[test]
    fn first_round_bound_is_one_minus_p0() {
        assert!((precision_lower_bound(params(1.0, 0.5), 1) - 0.0).abs() < 1e-12);
        assert!((precision_lower_bound(params(0.25, 0.5), 1) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn smaller_p0_converges_faster() {
        // Figure 3(a): "a smaller p0 with a fixed d results in a higher
        // precision in the earlier round".
        for r in 1..8 {
            let high = precision_lower_bound(params(1.0, 0.5), r);
            let low = precision_lower_bound(params(0.25, 0.5), r);
            assert!(low >= high, "round {r}");
        }
    }

    #[test]
    fn smaller_d_converges_faster() {
        // Figure 3(b): "a smaller d with a fixed p0 makes the protocol
        // reach the near-perfect precision of 100% even faster".
        for r in 2..8 {
            let slow = precision_lower_bound(params(1.0, 0.9), r);
            let fast = precision_lower_bound(params(1.0, 0.25), r);
            assert!(fast >= slow, "round {r}");
        }
    }

    #[test]
    fn reaches_near_one() {
        assert!(precision_lower_bound(params(1.0, 0.5), 10) > 0.999_999);
    }

    #[test]
    fn degenerate_constant_schedule_never_converges_with_p0_one() {
        let p = params(1.0, 1.0);
        assert_eq!(precision_lower_bound(p, 50), 0.0);
    }

    #[test]
    fn series_has_requested_length() {
        let s = precision_series(params(1.0, 0.5), 15);
        assert_eq!(s.len(), 15);
        assert_eq!(s[0].0, 1);
        assert_eq!(s[14].0, 15);
    }
}
