//! Equation 4: rounds required for a precision target, and the
//! communication-cost model of Section 4.2.

use crate::{AnalysisError, RandomizationParams};

/// Equation 4: the minimum number of rounds `r_min` such that the protocol
/// returns the true maximum with probability at least `1 − epsilon`.
///
/// Derived from requiring `p0 · d^(r(r−1)/2) <= epsilon` (the paper's
/// slightly weakened form of Equation 3), i.e.
///
/// `r_min = ceil( (1 + sqrt(1 + 8·L)) / 2 )` with `L = ln(ε/p0) / ln(d)`.
///
/// For `d = 1` the dampening never decays, so the bound must come from
/// `p0^r <= epsilon` instead (possible only when `p0 < 1`); `p0 = d = 1`
/// is unreachable.
///
/// The result is independent of the number of nodes — a key property the
/// paper emphasizes — and grows like `O(sqrt(log 1/ε))`.
///
/// # Errors
///
/// - [`AnalysisError::InvalidEpsilon`] if `epsilon` is outside `(0, 1)`.
/// - [`AnalysisError::Unreachable`] if `p0 = d = 1`.
///
/// # Example
///
/// ```
/// use privtopk_analysis::efficiency::min_rounds_for_precision;
/// use privtopk_analysis::RandomizationParams;
///
/// let params = RandomizationParams::new(1.0, 0.5)?;
/// let r = min_rounds_for_precision(params, 1e-3)?;
/// assert!(r >= 4 && r <= 8);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn min_rounds_for_precision(
    params: RandomizationParams,
    epsilon: f64,
) -> Result<u32, AnalysisError> {
    if !(epsilon > 0.0 && epsilon < 1.0) {
        return Err(AnalysisError::InvalidEpsilon { epsilon });
    }
    let p0 = params.p0();
    let d = params.d();
    if p0 <= epsilon {
        // Already satisfied in the first round.
        return Ok(1);
    }
    if (d - 1.0).abs() < f64::EPSILON {
        if (p0 - 1.0).abs() < f64::EPSILON {
            return Err(AnalysisError::Unreachable);
        }
        // Constant schedule: need p0^r <= epsilon.
        let r = (epsilon.ln() / p0.ln()).ceil();
        return Ok(r.max(1.0) as u32);
    }
    // ln(eps/p0) and ln(d) are both negative, so l > 0.
    let l = (epsilon / p0).ln() / d.ln();
    let r = (1.0 + (1.0 + 8.0 * l).sqrt()) / 2.0;
    Ok(r.ceil().max(1.0) as u32)
}

/// The Figure 4 series: `r_min` for each error bound in `epsilons`.
///
/// # Errors
///
/// Propagates [`min_rounds_for_precision`] errors.
pub fn min_rounds_series(
    params: RandomizationParams,
    epsilons: &[f64],
) -> Result<Vec<(f64, u32)>, AnalysisError> {
    epsilons
        .iter()
        .map(|&e| Ok((e, min_rounds_for_precision(params, e)?)))
        .collect()
}

/// Communication-cost model of Section 4.2: one message per node per round
/// (plus the final result circulation), so total messages are
/// `n · (rounds + 1)`.
#[must_use]
pub fn total_messages(n: usize, rounds: u32) -> u64 {
    n as u64 * (u64::from(rounds) + 1)
}

/// Cost model for the group-parallel optimization of Section 4.2: `groups`
/// subrings of `n/groups` nodes run in parallel, then the designated nodes
/// run a final ring. Returns `(messages, critical_path_hops)` — total
/// traffic is essentially unchanged, but the sequential hop count (latency)
/// drops from `n·(r+1)` to roughly `(n/groups + groups)·(r+1)`.
#[must_use]
pub fn grouped_cost(n: usize, groups: usize, rounds: u32) -> (u64, u64) {
    assert!(groups >= 1 && groups <= n, "1 <= groups <= n");
    let group_size = n.div_ceil(groups);
    let per_round = u64::from(rounds) + 1;
    let messages = n as u64 * per_round + groups as u64 * per_round;
    let critical_path = (group_size as u64 + groups as u64) * per_round;
    (messages, critical_path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::correctness::precision_lower_bound;

    fn params(p0: f64, d: f64) -> RandomizationParams {
        RandomizationParams::new(p0, d).unwrap()
    }

    #[test]
    fn min_rounds_actually_achieves_epsilon() {
        for (p0, d) in [(1.0, 0.5), (0.5, 0.5), (1.0, 0.25), (0.75, 0.9)] {
            for eps in [0.1, 0.01, 1e-3, 1e-6] {
                let p = params(p0, d);
                let r = min_rounds_for_precision(p, eps).unwrap();
                let achieved = precision_lower_bound(p, r);
                assert!(
                    achieved >= 1.0 - eps - 1e-12,
                    "p0={p0} d={d} eps={eps}: r={r} gives {achieved}"
                );
            }
        }
    }

    #[test]
    fn min_rounds_is_tight_within_one() {
        // One fewer round should not satisfy the *weakened* bound
        // p0 * d^(r(r-1)/2) <= eps that Equation 4 is derived from.
        let p = params(1.0, 0.5);
        for eps in [0.01, 1e-4] {
            let r = min_rounds_for_precision(p, eps).unwrap();
            assert!(r >= 2);
            let rm1 = f64::from(r - 1);
            let weak = p.p0() * p.d().powf(rm1 * (rm1 - 1.0) / 2.0);
            assert!(weak > eps, "r_min not tight for eps={eps}");
        }
    }

    #[test]
    fn independent_of_node_count_by_construction() {
        // The signature takes no n; this test documents the paper's claim.
        let r = min_rounds_for_precision(params(1.0, 0.5), 1e-3).unwrap();
        assert!(r > 0);
    }

    #[test]
    fn smaller_epsilon_needs_more_rounds() {
        let p = params(1.0, 0.5);
        let r1 = min_rounds_for_precision(p, 0.1).unwrap();
        let r2 = min_rounds_for_precision(p, 1e-4).unwrap();
        let r3 = min_rounds_for_precision(p, 1e-8).unwrap();
        assert!(r1 <= r2 && r2 <= r3);
        assert!(r3 > r1);
    }

    #[test]
    fn smaller_d_needs_fewer_rounds() {
        // Figure 4(b): d has the dominant effect.
        let slow = min_rounds_for_precision(params(1.0, 0.9), 1e-3).unwrap();
        let fast = min_rounds_for_precision(params(1.0, 0.25), 1e-3).unwrap();
        assert!(fast < slow);
    }

    #[test]
    fn growth_is_subquadratic_in_log_epsilon() {
        // O(sqrt(log 1/eps)): squaring the exponent range should roughly
        // double r, not square it.
        let p = params(1.0, 0.5);
        let r_small = min_rounds_for_precision(p, 1e-4).unwrap();
        let r_large = min_rounds_for_precision(p, 1e-16).unwrap();
        assert!(r_large < r_small * 3, "r({r_large}) vs r({r_small})");
    }

    #[test]
    fn constant_schedule_handled() {
        // d = 1, p0 = 0.5: need 0.5^r <= 1e-3 -> r = 10.
        let r = min_rounds_for_precision(params(0.5, 1.0), 1e-3).unwrap();
        assert_eq!(r, 10);
        assert!(matches!(
            min_rounds_for_precision(params(1.0, 1.0), 1e-3),
            Err(AnalysisError::Unreachable)
        ));
    }

    #[test]
    fn tiny_p0_satisfied_immediately() {
        let r = min_rounds_for_precision(params(1e-4, 0.5), 1e-3).unwrap();
        assert_eq!(r, 1);
    }

    #[test]
    fn invalid_epsilon_rejected() {
        for eps in [0.0, 1.0, -0.5, f64::NAN] {
            assert!(min_rounds_for_precision(params(1.0, 0.5), eps).is_err());
        }
    }

    #[test]
    fn series_matches_pointwise() {
        let p = params(1.0, 0.5);
        let s = min_rounds_series(p, &[0.1, 0.01]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].1, min_rounds_for_precision(p, 0.1).unwrap());
    }

    #[test]
    fn message_cost_linear_in_nodes() {
        assert_eq!(total_messages(10, 5), 60);
        assert_eq!(total_messages(20, 5), 120);
    }

    #[test]
    fn grouping_shortens_critical_path() {
        let (flat_msgs, flat_path) = grouped_cost(100, 1, 6);
        let (grp_msgs, grp_path) = grouped_cost(100, 10, 6);
        assert!(grp_path < flat_path / 2);
        // Traffic overhead of the second stage is small.
        assert!(grp_msgs < flat_msgs + 100);
    }
}
