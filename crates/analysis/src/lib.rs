//! Closed-form analysis of the probabilistic top-k protocol (Section 4 of
//! the paper).
//!
//! Everything in this crate is pure arithmetic — no randomness, no
//! protocol state — implementing the paper's equations:
//!
//! - **Equation 2** ([`RandomizationParams::probability_at_round`]): the
//!   per-round randomization probability `P_r(r) = p0 · d^(r−1)`.
//! - **Equation 3** ([`correctness::precision_lower_bound`]): the
//!   probability that the protocol has converged to the true maximum after
//!   `r` rounds.
//! - **Equation 4** ([`efficiency::min_rounds_for_precision`]): the minimum
//!   number of rounds guaranteeing precision `1 − ε`.
//! - **Equation 5** ([`privacy_bounds::naive_average_lop_bound`]): the
//!   harmonic lower bound `ln(n)/n` on the naive protocol's average loss of
//!   privacy.
//! - **Equation 6** ([`privacy_bounds::probabilistic_lop_round_term`] /
//!   [`privacy_bounds::probabilistic_peak_lop_bound`]): the expected loss
//!   of privacy of the probabilistic protocol per round, and its peak.
//!
//! These functions regenerate the paper's analytical Figures 3, 4 and 5 and
//! drive the parameter-selection study of Figure 9.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod correctness;
pub mod efficiency;
mod params;
pub mod privacy_bounds;

pub use params::{AnalysisError, ParameterStudy, RandomizationParams, TradeoffPoint};
