//! Validated randomization parameters and the privacy/efficiency
//! parameter study of Figure 9.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Errors from the analysis layer.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// `p0` must lie in `(0, 1]`.
    InvalidInitialProbability {
        /// The rejected value.
        p0: f64,
    },
    /// `d` must lie in `(0, 1]`.
    InvalidDampening {
        /// The rejected value.
        d: f64,
    },
    /// `epsilon` must lie in `(0, 1)`.
    InvalidEpsilon {
        /// The rejected value.
        epsilon: f64,
    },
    /// The requested precision can never be reached (e.g. `p0 = 1` with
    /// `d = 1`: the randomization probability never decays).
    Unreachable,
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InvalidInitialProbability { p0 } => {
                write!(f, "initial randomization probability {p0} outside (0, 1]")
            }
            AnalysisError::InvalidDampening { d } => {
                write!(f, "dampening factor {d} outside (0, 1]")
            }
            AnalysisError::InvalidEpsilon { epsilon } => {
                write!(f, "error bound {epsilon} outside (0, 1)")
            }
            AnalysisError::Unreachable => {
                write!(
                    f,
                    "requested precision unreachable: randomization never decays"
                )
            }
        }
    }
}

impl Error for AnalysisError {}

/// The `(p0, d)` pair of Equation 2, validated at construction.
///
/// `P_r(r) = p0 · d^(r−1)` with `r` 1-based.
///
/// # Example
///
/// ```
/// use privtopk_analysis::RandomizationParams;
///
/// let params = RandomizationParams::new(1.0, 0.5)?;
/// assert_eq!(params.probability_at_round(1), 1.0);
/// assert_eq!(params.probability_at_round(3), 0.25);
/// # Ok::<(), privtopk_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomizationParams {
    p0: f64,
    d: f64,
}

impl RandomizationParams {
    /// The paper's recommended default `(p0, d) = (1, 1/2)` (Figure 9:
    /// "the (p0, d) pair of (1, 1/2) in the lower left corner gives a nice
    /// tradeoff of privacy and efficiency").
    pub const PAPER_DEFAULT: RandomizationParams = RandomizationParams { p0: 1.0, d: 0.5 };

    /// Validates and wraps `(p0, d)`.
    ///
    /// # Errors
    ///
    /// Rejects `p0` outside `(0, 1]` and `d` outside `(0, 1]`. (A `p0` of
    /// zero is representable in the protocol — it degenerates to the naive
    /// protocol — but the analysis formulas divide by it, so the protocol
    /// crate models that case separately.)
    pub fn new(p0: f64, d: f64) -> Result<Self, AnalysisError> {
        if !(p0 > 0.0 && p0 <= 1.0) {
            return Err(AnalysisError::InvalidInitialProbability { p0 });
        }
        if !(d > 0.0 && d <= 1.0) {
            return Err(AnalysisError::InvalidDampening { d });
        }
        Ok(RandomizationParams { p0, d })
    }

    /// Initial randomization probability `p0`.
    #[must_use]
    pub fn p0(&self) -> f64 {
        self.p0
    }

    /// Dampening factor `d`.
    #[must_use]
    pub fn d(&self) -> f64 {
        self.d
    }

    /// Equation 2: `P_r(r) = p0 · d^(r−1)` for 1-based round `r`.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0` (rounds are 1-based in the paper).
    #[must_use]
    pub fn probability_at_round(&self, round: u32) -> f64 {
        assert!(round >= 1, "rounds are 1-based");
        self.p0 * self.d.powi(round as i32 - 1)
    }
}

impl Default for RandomizationParams {
    fn default() -> Self {
        RandomizationParams::PAPER_DEFAULT
    }
}

impl fmt::Display for RandomizationParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(p0 = {}, d = {})", self.p0, self.d)
    }
}

/// One point of the Figure 9 privacy-vs-efficiency scatter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TradeoffPoint {
    /// The parameter pair.
    pub params: RandomizationParams,
    /// Peak expected loss of privacy (Equation 6 bound).
    pub peak_lop_bound: f64,
    /// Rounds required for the target precision (Equation 4).
    pub min_rounds: u32,
}

/// Sweeps a grid of `(p0, d)` pairs and evaluates both sides of the
/// tradeoff, reproducing the shape of Figure 9 analytically.
///
/// # Example
///
/// ```
/// use privtopk_analysis::ParameterStudy;
///
/// let study = ParameterStudy::new(1e-3)?;
/// let points = study.sweep(&[0.5, 1.0], &[0.25, 0.5])?;
/// assert_eq!(points.len(), 4);
/// # Ok::<(), privtopk_analysis::AnalysisError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ParameterStudy {
    epsilon: f64,
}

impl ParameterStudy {
    /// Creates a study targeting precision `1 − epsilon`.
    ///
    /// # Errors
    ///
    /// Returns [`AnalysisError::InvalidEpsilon`] for `epsilon` outside
    /// `(0, 1)`.
    pub fn new(epsilon: f64) -> Result<Self, AnalysisError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(AnalysisError::InvalidEpsilon { epsilon });
        }
        Ok(ParameterStudy { epsilon })
    }

    /// The target error bound.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Evaluates every `(p0, d)` pair in the cross product.
    ///
    /// # Errors
    ///
    /// Propagates parameter-validation errors; pairs whose precision is
    /// unreachable (`p0 = d = 1`) are skipped rather than failing the whole
    /// sweep.
    pub fn sweep(&self, p0s: &[f64], ds: &[f64]) -> Result<Vec<TradeoffPoint>, AnalysisError> {
        let mut out = Vec::with_capacity(p0s.len() * ds.len());
        for &p0 in p0s {
            for &d in ds {
                let params = RandomizationParams::new(p0, d)?;
                let min_rounds =
                    match crate::efficiency::min_rounds_for_precision(params, self.epsilon) {
                        Ok(r) => r,
                        Err(AnalysisError::Unreachable) => continue,
                        Err(e) => return Err(e),
                    };
                out.push(TradeoffPoint {
                    params,
                    peak_lop_bound: crate::privacy_bounds::probabilistic_peak_lop_bound(
                        params, min_rounds,
                    ),
                    min_rounds,
                });
            }
        }
        Ok(out)
    }

    /// The pair from `points` minimizing `lop_weight · LoP + round_weight ·
    /// rounds` after min-max normalization — a simple scalarization of the
    /// Figure 9 "lower left corner" argument.
    #[must_use]
    pub fn recommend(points: &[TradeoffPoint]) -> Option<TradeoffPoint> {
        if points.is_empty() {
            return None;
        }
        let max_lop = points.iter().map(|p| p.peak_lop_bound).fold(0.0, f64::max);
        let max_rounds = points.iter().map(|p| p.min_rounds).max().unwrap_or(1) as f64;
        points.iter().copied().min_by(|a, b| {
            let score = |p: &TradeoffPoint| {
                let lop = if max_lop > 0.0 {
                    p.peak_lop_bound / max_lop
                } else {
                    0.0
                };
                let rounds = p.min_rounds as f64 / max_rounds;
                lop + rounds
            };
            score(a).partial_cmp(&score(b)).expect("finite scores")
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_p0_and_d() {
        assert!(RandomizationParams::new(0.0, 0.5).is_err());
        assert!(RandomizationParams::new(1.1, 0.5).is_err());
        assert!(RandomizationParams::new(0.5, 0.0).is_err());
        assert!(RandomizationParams::new(0.5, 1.1).is_err());
        assert!(RandomizationParams::new(1.0, 1.0).is_ok());
        assert!(RandomizationParams::new(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn equation_2_schedule() {
        let p = RandomizationParams::new(1.0, 0.5).unwrap();
        assert_eq!(p.probability_at_round(1), 1.0);
        assert_eq!(p.probability_at_round(2), 0.5);
        assert_eq!(p.probability_at_round(4), 0.125);
        let q = RandomizationParams::new(0.75, 0.25).unwrap();
        assert!((q.probability_at_round(2) - 0.1875).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn round_zero_rejected() {
        let _ = RandomizationParams::PAPER_DEFAULT.probability_at_round(0);
    }

    #[test]
    fn paper_default_matches_figure_9() {
        let p = RandomizationParams::default();
        assert_eq!(p.p0(), 1.0);
        assert_eq!(p.d(), 0.5);
    }

    #[test]
    fn study_sweep_covers_grid_and_skips_unreachable() {
        let study = ParameterStudy::new(1e-3).unwrap();
        // (1.0, 1.0) never decays -> skipped.
        let points = study.sweep(&[0.5, 1.0], &[0.5, 1.0]).unwrap();
        assert_eq!(points.len(), 3);
    }

    #[test]
    fn study_rejects_bad_epsilon() {
        assert!(ParameterStudy::new(0.0).is_err());
        assert!(ParameterStudy::new(1.0).is_err());
        assert!(ParameterStudy::new(f64::NAN).is_err());
    }

    #[test]
    fn recommend_prefers_dominating_point() {
        let a = TradeoffPoint {
            params: RandomizationParams::new(1.0, 0.5).unwrap(),
            peak_lop_bound: 0.1,
            min_rounds: 5,
        };
        let b = TradeoffPoint {
            params: RandomizationParams::new(0.5, 0.5).unwrap(),
            peak_lop_bound: 0.5,
            min_rounds: 10,
        };
        let rec = ParameterStudy::recommend(&[a, b]).unwrap();
        assert_eq!(rec.params, a.params);
        assert!(ParameterStudy::recommend(&[]).is_none());
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            RandomizationParams::PAPER_DEFAULT.to_string(),
            "(p0 = 1, d = 0.5)"
        );
        assert!(!AnalysisError::Unreachable.to_string().is_empty());
    }
}
