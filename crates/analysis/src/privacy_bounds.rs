//! Equations 5 and 6: analytical loss-of-privacy bounds.

use crate::RandomizationParams;

/// The `n`th harmonic number `H_n = 1 + 1/2 + ... + 1/n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn harmonic(n: usize) -> f64 {
    assert!(n >= 1, "harmonic number needs n >= 1");
    (1..=n).map(|i| 1.0 / i as f64).sum()
}

/// Per-node loss of privacy in the naive protocol: node at 1-based ring
/// position `i` suffers `LoP = 1/i − 1/n` when its forwarded value turns
/// out to be the maximum, and `1/i` otherwise (Section 4.3). This function
/// returns the conservative (maximum-case subtracted) value `1/i − 1/n`
/// used in the paper's averaging argument.
///
/// # Panics
///
/// Panics if `position == 0`, `position > n`, or `n == 0`.
#[must_use]
pub fn naive_node_lop(position: usize, n: usize) -> f64 {
    assert!(n >= 1 && (1..=n).contains(&position));
    1.0 / position as f64 - 1.0 / n as f64
}

/// The exact average `Σ(1/i − 1/n)/n = (H_n − 1)/n` over all nodes of the
/// naive protocol.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn naive_average_lop(n: usize) -> f64 {
    (1..=n).map(|i| naive_node_lop(i, n)).sum::<f64>() / n as f64
}

/// Equation 5: the paper's harmonic lower bound on the naive protocol's
/// average loss of privacy, `LoP_naive > ln(n)/n`.
///
/// (The paper states the average is *greater* than this; see
/// [`naive_average_lop`] for the exact sum. For the bound to hold with the
/// `−1/n` correction, the paper relies on `H_n > ln(n) + 1` — true for all
/// `n >= 1` by the integral bound.)
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn naive_average_lop_bound(n: usize) -> f64 {
    assert!(n >= 1);
    (n as f64).ln() / n as f64
}

/// The round-`r` term inside Equation 6's max: the expected loss of
/// privacy of the probabilistic protocol in round `r`,
///
/// `(1 / 2^(r−1)) · (1 − p0 · d^(r−1))`.
///
/// The `1/2^(r−1)` factor models the shrinking probability that the node's
/// value still exceeds the incoming global value in round `r`; the second
/// factor is the probability that the node actually reveals (does not
/// randomize) in that round.
///
/// # Panics
///
/// Panics if `round == 0`.
#[must_use]
pub fn probabilistic_lop_round_term(params: RandomizationParams, round: u32) -> f64 {
    assert!(round >= 1, "rounds are 1-based");
    let gate = 0.5f64.powi(round as i32 - 1);
    gate * (1.0 - params.probability_at_round(round))
}

/// Equation 6: the peak (over rounds `1..=max_rounds`) of
/// [`probabilistic_lop_round_term`], bounding the expected loss of privacy
/// of the probabilistic protocol.
///
/// # Panics
///
/// Panics if `max_rounds == 0`.
#[must_use]
pub fn probabilistic_peak_lop_bound(params: RandomizationParams, max_rounds: u32) -> f64 {
    assert!(max_rounds >= 1);
    (1..=max_rounds)
        .map(|r| probabilistic_lop_round_term(params, r))
        .fold(0.0, f64::max)
}

/// The full Figure 5 series: the Equation 6 round term for each round.
#[must_use]
pub fn probabilistic_lop_series(params: RandomizationParams, max_rounds: u32) -> Vec<(u32, f64)> {
    (1..=max_rounds)
        .map(|r| (r, probabilistic_lop_round_term(params, r)))
        .collect()
}

/// Collusion analysis (Section 4.3): if a node's predecessor and successor
/// collude and observe `g_{i−1}(r) < g_i(r)`, the probability the node's
/// value was revealed is `1 − P_r(r)`.
///
/// # Panics
///
/// Panics if `round == 0`.
#[must_use]
pub fn collusion_exposure_probability(params: RandomizationParams, round: u32) -> f64 {
    1.0 - params.probability_at_round(round)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(p0: f64, d: f64) -> RandomizationParams {
        RandomizationParams::new(p0, d).unwrap()
    }

    #[test]
    fn harmonic_basics() {
        assert!((harmonic(1) - 1.0).abs() < 1e-12);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_brackets_log() {
        for n in [2usize, 10, 100, 1000] {
            let h = harmonic(n);
            let ln = (n as f64).ln();
            assert!(h > ln && h < ln + 1.0, "n={n}: H={h}, ln={ln}");
        }
    }

    #[test]
    fn naive_lop_decreases_with_position() {
        let n = 8;
        let mut prev = f64::INFINITY;
        for i in 1..=n {
            let lop = naive_node_lop(i, n);
            assert!(lop <= prev);
            assert!(lop >= 0.0);
            prev = lop;
        }
        // Starting node: provable exposure (LoP = 1 - 1/n).
        assert!((naive_node_lop(1, n) - (1.0 - 1.0 / 8.0)).abs() < 1e-12);
        // Last node never exposes more than baseline.
        assert!((naive_node_lop(n, n) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn equation_5_bound_holds() {
        // Exact average (H_n - 1)/n vs the paper's ln(n)/n bound: the paper
        // writes "greater than"; with the -1/n correction the exact value
        // is (H_n - 1)/n which exceeds (ln n - ...)/n asymptotically. We
        // verify the exact average stays within a constant factor and that
        // the bound shape ln(n)/n decreases in n.
        for n in [4usize, 8, 16, 64, 256] {
            let exact = naive_average_lop(n);
            let bound = naive_average_lop_bound(n);
            assert!(exact > 0.0);
            // ln(n)/n and (H_n-1)/n agree within 1/n since ln n < H_n - ... :
            assert!((exact - bound).abs() < 1.0 / n as f64 * 1.5, "n={n}");
        }
        let b4 = naive_average_lop_bound(4);
        let b400 = naive_average_lop_bound(400);
        assert!(b400 < b4);
    }

    #[test]
    fn equation_6_term_shape_for_large_p0() {
        // Figure 5(a), p0 = 1: zero in round 1, peak in round 2, then decay.
        let p = params(1.0, 0.5);
        let t1 = probabilistic_lop_round_term(p, 1);
        let t2 = probabilistic_lop_round_term(p, 2);
        let t3 = probabilistic_lop_round_term(p, 3);
        let t4 = probabilistic_lop_round_term(p, 4);
        assert_eq!(t1, 0.0);
        assert!(t2 > t1 && t2 > t3 && t3 > t4);
    }

    #[test]
    fn equation_6_term_shape_for_small_p0() {
        // Figure 5(a), small p0: peak in round 1, monotone decay.
        let p = params(0.25, 0.5);
        let series = probabilistic_lop_series(p, 6);
        assert!(series[0].1 > series[1].1);
        for w in series.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn larger_p0_gives_lower_peak() {
        // Section 4.3 conclusion: "a larger p0 provides a better privacy".
        let peak_large = probabilistic_peak_lop_bound(params(1.0, 0.5), 20);
        let peak_small = probabilistic_peak_lop_bound(params(0.25, 0.5), 20);
        assert!(peak_large < peak_small);
    }

    #[test]
    fn larger_d_gives_lower_peak_with_p0_one() {
        // Figure 5(b): larger d, lower loss from round 2 on.
        let peak_d_large = probabilistic_peak_lop_bound(params(1.0, 0.75), 20);
        let peak_d_small = probabilistic_peak_lop_bound(params(1.0, 0.25), 20);
        assert!(peak_d_large < peak_d_small);
    }

    #[test]
    fn probabilistic_peak_far_below_naive_average() {
        // The headline comparison: probabilistic << naive for small n.
        let peak = probabilistic_peak_lop_bound(RandomizationParams::PAPER_DEFAULT, 20);
        let naive = naive_average_lop(4);
        assert!(peak < naive);
    }

    #[test]
    fn collusion_probability_complements_schedule() {
        let p = params(1.0, 0.5);
        assert_eq!(collusion_exposure_probability(p, 1), 0.0);
        assert!((collusion_exposure_probability(p, 2) - 0.5).abs() < 1e-12);
        assert!(collusion_exposure_probability(p, 10) > 0.99);
    }

    #[test]
    #[should_panic(expected = "n >= 1")]
    fn harmonic_rejects_zero() {
        let _ = harmonic(0);
    }
}
