//! Property-based tests for the closed-form analysis.

use privtopk_analysis::{
    correctness, efficiency, privacy_bounds, ParameterStudy, RandomizationParams,
};
use proptest::prelude::*;

fn arb_params() -> impl Strategy<Value = RandomizationParams> {
    (0.01f64..=1.0, 0.01f64..=0.99)
        .prop_map(|(p0, d)| RandomizationParams::new(p0, d).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Equation 3 is a probability, monotone in rounds, and agrees with
    /// the exact failure product.
    #[test]
    fn precision_bound_properties(params in arb_params(), rounds in 1u32..30) {
        let p = correctness::precision_lower_bound(params, rounds);
        prop_assert!((0.0..=1.0).contains(&p));
        if rounds > 1 {
            prop_assert!(p >= correctness::precision_lower_bound(params, rounds - 1) - 1e-12);
        }
        let product = 1.0 - correctness::failure_probability_product(params, rounds);
        prop_assert!((p - product).abs() < 1e-9);
    }

    /// Equation 4 round counts actually achieve the bound they promise,
    /// and one round less does not satisfy the weakened inequality.
    #[test]
    fn min_rounds_sound_and_tight(params in arb_params(), exp in 1u32..10) {
        let epsilon = 10f64.powi(-(exp as i32));
        let r = efficiency::min_rounds_for_precision(params, epsilon).unwrap();
        prop_assert!(correctness::precision_lower_bound(params, r) >= 1.0 - epsilon - 1e-12);
        if r > 1 {
            // The weakened bound p0 * d^(r(r-1)/2) used by Eq. 4 must not
            // already hold at r - 1.
            let rm1 = f64::from(r - 1);
            let weak = params.p0() * params.d().powf(rm1 * (rm1 - 1.0) / 2.0);
            prop_assert!(weak > epsilon);
        }
    }

    /// Equation 4 is monotone: tighter epsilon never needs fewer rounds.
    #[test]
    fn min_rounds_monotone_in_epsilon(params in arb_params(), e1 in 1u32..8, e2 in 1u32..8) {
        let (lo, hi) = if e1 <= e2 { (e1, e2) } else { (e2, e1) };
        let r_loose = efficiency::min_rounds_for_precision(params, 10f64.powi(-(lo as i32))).unwrap();
        let r_tight = efficiency::min_rounds_for_precision(params, 10f64.powi(-(hi as i32))).unwrap();
        prop_assert!(r_tight >= r_loose);
    }

    /// Equation 6 terms are valid probabilities that vanish as rounds grow.
    #[test]
    fn lop_terms_bounded_and_vanishing(params in arb_params()) {
        for r in 1..=40u32 {
            let t = privacy_bounds::probabilistic_lop_round_term(params, r);
            prop_assert!((0.0..=1.0).contains(&t));
        }
        prop_assert!(privacy_bounds::probabilistic_lop_round_term(params, 40) < 1e-9);
    }

    /// The naive closed forms stay consistent: exact average = (H_n − 1)/n
    /// and per-node values telescope correctly.
    #[test]
    fn naive_lop_closed_forms(n in 1usize..200) {
        let exact = privacy_bounds::naive_average_lop(n);
        let harmonic = privacy_bounds::harmonic(n);
        prop_assert!((exact - (harmonic - 1.0) / n as f64).abs() < 1e-12);
        // Per-node values are non-negative and sum to n * average.
        let sum: f64 = (1..=n).map(|i| privacy_bounds::naive_node_lop(i, n)).sum();
        prop_assert!((sum / n as f64 - exact).abs() < 1e-12);
    }

    /// Parameter-study sweeps always produce achievable points, and the
    /// recommendation is one of them.
    #[test]
    fn study_recommendation_is_member(
        (p0s, ds) in (
            prop::collection::vec(0.1f64..=1.0, 1..4),
            prop::collection::vec(0.1f64..=0.9, 1..4),
        )
    ) {
        let study = ParameterStudy::new(1e-3).unwrap();
        let points = study.sweep(&p0s, &ds).unwrap();
        prop_assert_eq!(points.len(), p0s.len() * ds.len());
        let rec = ParameterStudy::recommend(&points).unwrap();
        prop_assert!(points.iter().any(|p| p.params == rec.params));
    }
}
