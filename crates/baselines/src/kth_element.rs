//! The kth-ranked-element baseline: binary search over the public domain
//! with privately aggregated counts.
//!
//! Each iteration probes a candidate value `m` and computes — via the
//! secure ring sum — how many values across all databases are `>= m`.
//! The search narrows until the kth largest value is pinned. Disclosure
//! per iteration is a single aggregate count; total cost is
//! `O(log |domain|)` secure sums of `n` messages each.

use privtopk_domain::{Value, ValueDomain};
use privtopk_knn::secure_sum::secure_sum;
use privtopk_knn::KnnError;

/// Result of a kth-ranked-element computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KthElementOutcome {
    /// The kth largest value across all databases.
    pub value: Value,
    /// Binary-search iterations performed.
    pub iterations: u32,
    /// Total ring messages (one per node per secure sum).
    pub messages: u64,
    /// The aggregate counts revealed, one per iteration — the protocol's
    /// entire information disclosure beyond the result.
    pub revealed_counts: Vec<u64>,
}

/// Computes the kth largest value over per-node value sets.
///
/// `rank` is 1-based: `rank = 1` is the maximum. If fewer than `rank`
/// values exist in total, the domain floor is returned (consistent with
/// the top-k protocol's floor padding).
///
/// # Errors
///
/// - [`KnnError::ZeroK`] if `rank == 0`.
/// - [`KnnError::TooFewParties`] for fewer than 3 participants (the
///   secure sum's requirement).
///
/// # Example
///
/// ```
/// use privtopk_baselines::kth_largest;
/// use privtopk_domain::{Value, ValueDomain};
///
/// let domain = ValueDomain::paper_default();
/// let shards = vec![
///     vec![Value::new(10), Value::new(70)],
///     vec![Value::new(40)],
///     vec![Value::new(90), Value::new(20)],
/// ];
/// let out = kth_largest(&shards, 2, &domain, 42)?;
/// assert_eq!(out.value, Value::new(70));
/// # Ok::<(), privtopk_knn::KnnError>(())
/// ```
pub fn kth_largest(
    shards: &[Vec<Value>],
    rank: usize,
    domain: &ValueDomain,
    seed: u64,
) -> Result<KthElementOutcome, KnnError> {
    if rank == 0 {
        return Err(KnnError::ZeroK);
    }
    if shards.len() < 3 {
        return Err(KnnError::TooFewParties { got: shards.len() });
    }
    let n = shards.len() as u64;
    let mut lo = domain.min().get();
    let mut hi = domain.max().get();
    let mut iterations = 0u32;
    let mut revealed = Vec::new();

    // Invariant: the answer (if rank values exist) lies in [lo, hi];
    // count(>= lo) >= rank or lo == domain.min.
    while lo < hi {
        iterations += 1;
        // Ceiling midpoint so the loop always shrinks [lo, hi].
        let mid = lo + (hi - lo + 1) / 2;
        let counts: Vec<u64> = shards
            .iter()
            .map(|s| s.iter().filter(|v| v.get() >= mid).count() as u64)
            .collect();
        let total = secure_sum(&counts, seed.wrapping_add(u64::from(iterations)))?.sum;
        revealed.push(total);
        if total >= rank as u64 {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }

    // If fewer than `rank` values exist at all, report the domain floor.
    let have: usize = shards.iter().map(Vec::len).sum();
    let value = if have < rank {
        domain.min()
    } else {
        Value::new(lo)
    };
    Ok(KthElementOutcome {
        value,
        iterations,
        messages: u64::from(iterations) * n,
        revealed_counts: revealed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    fn shards(data: &[&[i64]]) -> Vec<Vec<Value>> {
        data.iter()
            .map(|s| s.iter().copied().map(Value::new).collect())
            .collect()
    }

    #[test]
    fn finds_every_rank() {
        let s = shards(&[&[10, 70], &[40], &[90, 20]]);
        let sorted = [90i64, 70, 40, 20, 10];
        for (i, &expect) in sorted.iter().enumerate() {
            let out = kth_largest(&s, i + 1, &domain(), 1).unwrap();
            assert_eq!(out.value, Value::new(expect), "rank {}", i + 1);
        }
    }

    #[test]
    fn handles_duplicates() {
        let s = shards(&[&[500, 500], &[500], &[100]]);
        assert_eq!(
            kth_largest(&s, 3, &domain(), 2).unwrap().value,
            Value::new(500)
        );
        assert_eq!(
            kth_largest(&s, 4, &domain(), 2).unwrap().value,
            Value::new(100)
        );
    }

    #[test]
    fn rank_beyond_population_returns_floor() {
        let s = shards(&[&[5], &[7], &[9]]);
        let out = kth_largest(&s, 10, &domain(), 3).unwrap();
        assert_eq!(out.value, domain().min());
    }

    #[test]
    fn iteration_count_is_logarithmic() {
        let s = shards(&[&[1234], &[9876], &[5432]]);
        let out = kth_largest(&s, 1, &domain(), 4).unwrap();
        // |domain| = 10^4 -> at most ceil(log2(10^4)) = 14 iterations.
        assert!(out.iterations <= 14, "iterations {}", out.iterations);
        assert_eq!(out.messages, u64::from(out.iterations) * 3);
        assert_eq!(out.revealed_counts.len(), out.iterations as usize);
    }

    #[test]
    fn rejects_bad_parameters() {
        let s = shards(&[&[1], &[2], &[3]]);
        assert!(matches!(
            kth_largest(&s, 0, &domain(), 0),
            Err(KnnError::ZeroK)
        ));
        let two = shards(&[&[1], &[2]]);
        assert!(matches!(
            kth_largest(&two, 1, &domain(), 0),
            Err(KnnError::TooFewParties { got: 2 })
        ));
    }

    #[test]
    fn matches_topk_protocol_on_random_data() {
        use privtopk_core::{true_topk, ProtocolConfig, RoundPolicy, SimulationEngine};
        use privtopk_datagen::DatasetBuilder;

        for seed in 0..10 {
            let locals = DatasetBuilder::new(5)
                .rows_per_node(4)
                .seed(seed)
                .build_local_topk(3)
                .unwrap();
            let truth = true_topk(&locals, 3, &domain()).unwrap();
            // Baseline: the 3rd ranked element should equal truth[3].
            let shards: Vec<Vec<Value>> = locals.iter().map(|l| l.iter().collect()).collect();
            let baseline = kth_largest(&shards, 3, &domain(), seed).unwrap();
            assert_eq!(baseline.value, truth.kth(), "seed {seed}");
            // And the probabilistic protocol agrees end to end.
            let t = SimulationEngine::new(
                ProtocolConfig::topk(3).with_rounds(RoundPolicy::Precision { epsilon: 1e-9 }),
            )
            .run(&locals, seed)
            .unwrap();
            assert_eq!(t.result().kth(), baseline.value);
        }
    }

    #[test]
    fn deterministic_result_independent_of_seed() {
        // The seed only masks the sums; the answer is deterministic.
        let s = shards(&[&[10, 70], &[40], &[90, 20]]);
        let a = kth_largest(&s, 2, &domain(), 1).unwrap();
        let b = kth_largest(&s, 2, &domain(), 999).unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(a.iterations, b.iterations);
    }
}
