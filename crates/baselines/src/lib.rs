//! Comparison baselines for the privtopk protocol.
//!
//! The paper compares against its own naive/anonymous-naive ring
//! protocols (implemented in `privtopk-core`). This crate adds the two
//! external reference points discussed in its introduction and related
//! work:
//!
//! - [`kth_element`]: a binary-search **kth-ranked-element** protocol in
//!   the spirit of Aggarwal–Mishra–Pinkas (the paper's reference \[1\]),
//!   built on the secure ring sum: each probe of the public domain
//!   reveals only one aggregate count. Useful both as a baseline and as a
//!   different privacy/efficiency point (O(log |domain|) rounds of
//!   counting instead of O(r_min) rounds of value passing).
//! - [`third_party`]: the **trusted third party** strawman the paper
//!   argues against — exact and fast, but every participant fully
//!   discloses its data to the collector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod kth_element;
pub mod third_party;

pub use kth_element::{kth_largest, KthElementOutcome};
pub use third_party::{TrustedThirdParty, TtpAudit};
