//! The trusted-third-party strawman.
//!
//! "One technique is to use a trusted third party ... However, finding
//! such a trusted third party is not always feasible. ... Compromise of
//! the server by hackers could lead to a complete privacy loss for all
//! participating parties" (Section 1). This module implements that
//! strawman faithfully — including an audit of exactly how much every
//! participant disclosed — so experiments can anchor the privacy axis at
//! its worst point.

use privtopk_domain::{DomainError, NodeId, TopKVector, ValueDomain};

/// What the third party learned from one query — which is *everything*.
#[derive(Debug, Clone, PartialEq)]
pub struct TtpAudit {
    /// Values disclosed per node (all of them).
    pub disclosed: Vec<(NodeId, usize)>,
    /// Per-node loss of privacy under Equation 1: every non-result value
    /// is provably exposed to the collector, so the per-item loss is 1
    /// for each value outside the final result.
    pub per_node_lop: Vec<f64>,
}

/// The centralized collector.
#[derive(Debug, Clone, Copy, Default)]
pub struct TrustedThirdParty;

impl TrustedThirdParty {
    /// Creates the collector.
    #[must_use]
    pub fn new() -> Self {
        TrustedThirdParty
    }

    /// Computes the exact top-k by collecting every party's local vector,
    /// returning the result together with the disclosure audit.
    ///
    /// # Errors
    ///
    /// Returns a [`DomainError`] for `k == 0`.
    pub fn topk(
        &self,
        locals: &[TopKVector],
        k: usize,
        domain: &ValueDomain,
    ) -> Result<(TopKVector, TtpAudit), DomainError> {
        let result = TopKVector::from_values(k, locals.iter().flat_map(TopKVector::iter), domain)?;
        let n = locals.len();
        let mut disclosed = Vec::with_capacity(n);
        let mut per_node_lop = Vec::with_capacity(n);
        // Multiset bookkeeping: each result slot absolves one disclosed
        // copy of that value.
        let mut result_pool: Vec<_> = result.iter().collect();
        for (i, local) in locals.iter().enumerate() {
            disclosed.push((NodeId::new(i), local.k()));
            let mut exposed = 0usize;
            for v in local.iter() {
                if let Some(pos) = result_pool.iter().position(|&x| x == v) {
                    result_pool.remove(pos);
                } else {
                    exposed += 1;
                }
            }
            per_node_lop.push(exposed as f64 / local.k() as f64);
        }
        Ok((
            result,
            TtpAudit {
                disclosed,
                per_node_lop,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::Value;

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    fn vk(k: usize, vals: &[i64]) -> TopKVector {
        TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain()).unwrap()
    }

    #[test]
    fn result_is_exact() {
        let locals = vec![vk(2, &[10, 70]), vk(2, &[40, 1]), vk(2, &[90, 20])];
        let (result, _) = TrustedThirdParty::new()
            .topk(&locals, 2, &domain())
            .unwrap();
        assert_eq!(result.as_slice(), &[Value::new(90), Value::new(70)]);
    }

    #[test]
    fn audit_reports_total_disclosure() {
        let locals = vec![vk(2, &[10, 70]), vk(2, &[40, 1]), vk(2, &[90, 20])];
        let (_, audit) = TrustedThirdParty::new()
            .topk(&locals, 2, &domain())
            .unwrap();
        // Every node disclosed both of its values.
        assert!(audit.disclosed.iter().all(|&(_, c)| c == 2));
        // Node 0: 70 ends up public, 10 does not -> LoP 1/2.
        assert_eq!(audit.per_node_lop[0], 0.5);
        // Node 1: neither 40 nor 1 is in the result -> LoP 1.
        assert_eq!(audit.per_node_lop[1], 1.0);
        // Node 2: 90 public, 20 not -> 1/2.
        assert_eq!(audit.per_node_lop[2], 0.5);
    }

    #[test]
    fn audit_handles_duplicates_as_multiset() {
        // Two nodes hold 500; only one copy fits the k=1 result, so one
        // node is still fully exposed... but neither is attributable:
        // the audit charges the first holder's copy to the result slot.
        let locals = vec![vk(1, &[500]), vk(1, &[500]), vk(1, &[3])];
        let (_, audit) = TrustedThirdParty::new()
            .topk(&locals, 1, &domain())
            .unwrap();
        assert_eq!(audit.per_node_lop, vec![0.0, 1.0, 1.0]);
    }

    #[test]
    fn ttp_lop_dominates_probabilistic_protocol() {
        use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
        use privtopk_privacy::{LopAccumulator, SuccessorAdversary};

        let locals = vec![
            vk(1, &[3000]),
            vk(1, &[7000]),
            vk(1, &[5000]),
            vk(1, &[100]),
        ];
        let (_, audit) = TrustedThirdParty::new()
            .topk(&locals, 1, &domain())
            .unwrap();
        let ttp_avg: f64 = audit.per_node_lop.iter().sum::<f64>() / audit.per_node_lop.len() as f64;

        let mut acc = LopAccumulator::new();
        for seed in 0..40 {
            let t =
                SimulationEngine::new(ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(10)))
                    .run(&locals, seed)
                    .unwrap();
            acc.add(&SuccessorAdversary::estimate(&t, &locals));
        }
        let prob_avg = acc.summarize().average_peak;
        assert!(
            prob_avg < ttp_avg / 3.0,
            "probabilistic {prob_avg} vs ttp {ttp_avg}"
        );
    }
}
