//! Design-choice ablations called out in DESIGN.md:
//!
//! - randomization schedule family (exponential vs linear vs constant),
//! - per-round ring remapping vs a fixed ring,
//! - group-parallel max vs the flat ring,
//! - Algorithm 2's δ (minimum randomization range).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privtopk_bench::bench_locals;
use privtopk_core::groups::grouped_max;
use privtopk_core::{ProtocolConfig, RoundPolicy, Schedule, SimulationEngine};
use privtopk_domain::Value;

fn bench_schedules(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_schedule");
    let locals = bench_locals(8, 1, 5);
    let schedules = [
        ("exponential", Schedule::exponential(1.0, 0.5).unwrap()),
        ("linear", Schedule::linear(1.0, 0.2).unwrap()),
        ("constant", Schedule::constant(0.5).unwrap()),
        ("never", Schedule::Never),
    ];
    for (name, schedule) in schedules {
        let config = ProtocolConfig::max()
            .with_schedule(schedule)
            .with_rounds(RoundPolicy::Precision { epsilon: 1e-6 });
        let engine = SimulationEngine::new(config);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                engine.run(&locals, seed).expect("valid run")
            });
        });
    }
    group.finish();
}

fn bench_remap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_remap");
    let locals = bench_locals(16, 1, 6);
    for (name, remap) in [("fixed_ring", false), ("remap_each_round", true)] {
        let config = ProtocolConfig::max()
            .with_remap_each_round(remap)
            .with_rounds(RoundPolicy::Fixed(8));
        let engine = SimulationEngine::new(config);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                engine.run(&locals, seed).expect("valid run")
            });
        });
    }
    group.finish();
}

fn bench_groups(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_groups");
    let values: Vec<Value> = (0..120).map(|i| Value::new(i * 83 % 9999 + 1)).collect();
    let config = ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-6 });
    for groups in [1usize, 4, 10] {
        group.bench_with_input(
            BenchmarkId::from_parameter(groups),
            &groups,
            |b, &groups| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    grouped_max(&config, &values, groups, seed).expect("valid run")
                });
            },
        );
    }
    group.finish();
}

fn bench_delta(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_delta");
    let locals = bench_locals(8, 8, 7);
    for delta in [1u64, 100, 10_000] {
        let config = ProtocolConfig::topk(8)
            .with_delta(delta)
            .with_rounds(RoundPolicy::Fixed(8));
        let engine = SimulationEngine::new(config);
        group.bench_with_input(BenchmarkId::from_parameter(delta), &delta, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                engine.run(&locals, seed).expect("valid run")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_schedules,
    bench_remap,
    bench_groups,
    bench_delta
);
criterion_main!(benches);
