//! Baseline comparison benches: the probabilistic protocol vs the
//! kth-ranked-element binary search vs the trusted third party, plus the
//! latency-model estimator.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privtopk_baselines::{kth_largest, TrustedThirdParty};
use privtopk_bench::bench_locals;
use privtopk_core::latency::{estimate_makespan, LatencyModel};
use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
use privtopk_domain::{Value, ValueDomain};

fn bench_query_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_strategy");
    let domain = ValueDomain::paper_default();
    for n in [8usize, 64] {
        let locals = bench_locals(n, 1, 3);
        let shards: Vec<Vec<Value>> = locals.iter().map(|l| l.iter().collect()).collect();
        let engine = SimulationEngine::new(
            ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-3 }),
        );
        group.bench_with_input(
            BenchmarkId::new("probabilistic", n),
            &locals,
            |b, locals| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed = seed.wrapping_add(1);
                    engine.run(locals, seed).expect("valid run")
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("kth_element", n), &shards, |b, shards| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                kth_largest(shards, 1, &domain, seed).expect("valid baseline")
            });
        });
        group.bench_with_input(BenchmarkId::new("third_party", n), &locals, |b, locals| {
            b.iter(|| {
                TrustedThirdParty::new()
                    .topk(locals, 1, &domain)
                    .expect("valid k")
            });
        });
    }
    group.finish();
}

fn bench_latency_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("latency_model");
    let config = ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-3 });
    for n in [100usize, 400] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let groups = (n as f64).sqrt().round() as usize;
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                estimate_makespan(&config, n, groups, LatencyModel::wan(), seed)
                    .expect("valid grouping")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query_strategies, bench_latency_model);
criterion_main!(benches);
