//! Regeneration cost of every paper figure, one benchmark per artifact.
//!
//! Trial counts are reduced (benchmarks measure cost, not statistics); the
//! full 100-trial regeneration is `cargo run --release -p
//! privtopk-experiments --bin all_figures`.

use criterion::{criterion_group, criterion_main, Criterion};

use privtopk_experiments::figures::{self, Variant};

const TRIALS: usize = 5;
const SEED: u64 = 0xBE7C;

fn bench_analytic_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_analytic");
    group.bench_function("fig03", |b| {
        b.iter(|| {
            (
                figures::fig03_precision_bound(Variant::A),
                figures::fig03_precision_bound(Variant::B),
            )
        });
    });
    group.bench_function("fig04", |b| {
        b.iter(|| {
            (
                figures::fig04_min_rounds(Variant::A),
                figures::fig04_min_rounds(Variant::B),
            )
        });
    });
    group.bench_function("fig05", |b| {
        b.iter(|| {
            (
                figures::fig05_lop_bound(Variant::A),
                figures::fig05_lop_bound(Variant::B),
            )
        });
    });
    group.finish();
}

fn bench_measured_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures_measured");
    group.sample_size(10);
    group.bench_function("fig06", |b| {
        b.iter(|| figures::fig06_precision_vs_rounds(Variant::A, TRIALS, SEED));
    });
    group.bench_function("fig07", |b| {
        b.iter(|| figures::fig07_lop_per_round(Variant::A, TRIALS, SEED));
    });
    group.bench_function("fig08", |b| {
        b.iter(|| figures::fig08_lop_vs_n(Variant::A, TRIALS, SEED));
    });
    group.bench_function("fig09", |b| {
        b.iter(|| figures::fig09_tradeoff(TRIALS, SEED));
    });
    group.bench_function("fig10", |b| {
        b.iter(|| figures::fig10_protocol_comparison(Variant::A, TRIALS, SEED));
    });
    group.bench_function("fig11", |b| {
        b.iter(|| figures::fig11_topk_precision(TRIALS, SEED));
    });
    group.bench_function("fig12", |b| {
        b.iter(|| figures::fig12_topk_lop(Variant::A, TRIALS, SEED));
    });
    group.finish();
}

criterion_group!(benches, bench_analytic_figures, bench_measured_figures);
criterion_main!(benches);
