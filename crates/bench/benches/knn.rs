//! Private vs centralized kNN classification cost, and the secure-sum
//! substrate in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;

use privtopk_domain::rng::seeded_rng;
use privtopk_knn::secure_sum::secure_sum;
use privtopk_knn::{centralized_knn, KnnConfig, LabeledPoint, PrivateKnnClassifier};

fn make_shards(parties: usize, per_party: usize, seed: u64) -> Vec<Vec<LabeledPoint>> {
    let mut rng = seeded_rng(seed);
    (0..parties)
        .map(|_| {
            (0..per_party)
                .map(|_| {
                    let label = usize::from(rng.gen_bool(0.5));
                    let c = if label == 0 { 0.0 } else { 5.0 };
                    LabeledPoint::new(
                        vec![c + rng.gen_range(-1.0..1.0), c + rng.gen_range(-1.0..1.0)],
                        label,
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("knn_classify");
    group.sample_size(20);
    for parties in [3usize, 8] {
        let shards = make_shards(parties, 50, 1);
        let flat: Vec<LabeledPoint> = shards.iter().flatten().cloned().collect();
        let config = KnnConfig::new(7);
        let clf = PrivateKnnClassifier::new(config, shards).expect("valid shards");
        group.bench_with_input(BenchmarkId::new("private", parties), &parties, |b, _| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                clf.classify(&[2.5, 2.5], seed).expect("valid query")
            });
        });
        group.bench_with_input(
            BenchmarkId::new("centralized", parties),
            &parties,
            |b, _| {
                b.iter(|| centralized_knn(&flat, &[2.5, 2.5], &config));
            },
        );
    }
    group.finish();
}

fn bench_secure_sum(c: &mut Criterion) {
    let mut group = c.benchmark_group("secure_sum");
    for n in [4usize, 64, 1024] {
        let values: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &values, |b, values| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                secure_sum(values, seed).expect("valid ring")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classification, bench_secure_sum);
criterion_main!(benches);
