//! Protocol execution cost: scaling in `n`, `k`, and protocol kind.
//!
//! Backs the Section 4.2 efficiency analysis: per-round cost is linear in
//! `n`, the round count is independent of `n`, and the probabilistic
//! protocol costs only a small constant factor over the naive baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privtopk_bench::bench_locals;
use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};

fn bench_max_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_protocol_vs_n");
    for n in [4usize, 16, 64, 256] {
        let locals = bench_locals(n, 1, 7);
        let engine = SimulationEngine::new(
            ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-6 }),
        );
        group.bench_with_input(BenchmarkId::from_parameter(n), &locals, |b, locals| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                engine.run(locals, seed).expect("valid run")
            });
        });
    }
    group.finish();
}

fn bench_topk_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("topk_protocol_vs_k");
    for k in [1usize, 4, 16, 64] {
        let locals = bench_locals(8, k, 11);
        let engine = SimulationEngine::new(
            ProtocolConfig::topk(k).with_rounds(RoundPolicy::Precision { epsilon: 1e-6 }),
        );
        group.bench_with_input(BenchmarkId::from_parameter(k), &locals, |b, locals| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                engine.run(locals, seed).expect("valid run")
            });
        });
    }
    group.finish();
}

fn bench_protocol_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_kind");
    let locals = bench_locals(16, 4, 3);
    let configs = [
        ("naive", ProtocolConfig::naive(4)),
        ("anonymous_naive", ProtocolConfig::anonymous_naive(4)),
        (
            "probabilistic",
            ProtocolConfig::topk(4).with_rounds(RoundPolicy::Precision { epsilon: 1e-6 }),
        ),
    ];
    for (name, config) in configs {
        let engine = SimulationEngine::new(config);
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed = seed.wrapping_add(1);
                engine.run(&locals, seed).expect("valid run")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_max_vs_n,
    bench_topk_vs_k,
    bench_protocol_kinds
);
criterion_main!(benches);
