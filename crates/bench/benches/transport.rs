//! Wire-codec and transport costs: encode/decode throughput, in-memory vs
//! TCP token circulation, and the cipher layer's overhead.

use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use privtopk_bench::bench_locals;
use privtopk_core::distributed::{run_distributed, NetworkKind};
use privtopk_core::{ProtocolConfig, RoundPolicy, TokenMessage};
use privtopk_domain::{NodeId, TopKVector, Value, ValueDomain};
use privtopk_ring::cipher::{ChannelCipher, PlainCipher, XorKeystreamCipher};
use privtopk_ring::transport::{InMemoryNetwork, Transport};
use privtopk_ring::wire::{decode_from_bytes, encode_to_bytes};

fn sample_message(k: usize) -> TokenMessage {
    let domain = ValueDomain::paper_default();
    TokenMessage::Token {
        round: 3,
        vector: TopKVector::from_values(
            k,
            (1..=k as i64).map(|i| Value::new(i * 13 % 9000 + 1)),
            &domain,
        )
        .expect("valid vector"),
    }
}

fn bench_wire_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    for k in [1usize, 16, 256] {
        let msg = sample_message(k);
        group.bench_with_input(BenchmarkId::new("encode", k), &msg, |b, msg| {
            b.iter(|| encode_to_bytes(msg));
        });
        let frame = encode_to_bytes(&msg);
        group.bench_with_input(BenchmarkId::new("decode", k), &frame, |b, frame| {
            b.iter(|| decode_from_bytes::<TokenMessage>(frame).expect("valid frame"));
        });
    }
    group.finish();
}

fn bench_cipher(c: &mut Criterion) {
    let mut group = c.benchmark_group("cipher");
    let payload = Bytes::from(vec![0xACu8; 4096]);
    let plain = PlainCipher;
    let xor = XorKeystreamCipher::new(0xFEED);
    group.bench_function("plain_seal_4k", |b| b.iter(|| plain.seal(&payload)));
    group.bench_function("xor_seal_4k", |b| b.iter(|| xor.seal(&payload)));
    group.finish();
}

fn bench_in_memory_ping(c: &mut Criterion) {
    c.bench_function("in_memory_send_recv", |b| {
        let net = InMemoryNetwork::new(2);
        let mut eps = net.endpoints();
        let payload = Bytes::from_static(b"token-token-token");
        b.iter(|| {
            eps[0]
                .send(NodeId::new(1), payload.clone())
                .expect("send ok");
            eps[1].recv().expect("recv ok")
        });
    });
}

fn bench_distributed_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_full_run");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(8));
    let locals = bench_locals(5, 2, 9);
    let config = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(6));
    group.bench_function("in_memory_n5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            run_distributed(&config, &locals, NetworkKind::InMemory, seed).expect("run ok")
        });
    });
    group.bench_function("tcp_n5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed = seed.wrapping_add(1);
            run_distributed(&config, &locals, NetworkKind::Tcp, seed).expect("run ok")
        });
    });
    group.finish();
}

fn bench_cipher_on_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_cipher_overhead");
    let payload = Bytes::from(vec![1u8; 512]);
    for (name, cipher) in [
        ("plain", Arc::new(PlainCipher) as Arc<dyn ChannelCipher>),
        (
            "xor",
            Arc::new(XorKeystreamCipher::new(7)) as Arc<dyn ChannelCipher>,
        ),
    ] {
        group.bench_function(name, |b| {
            let net = InMemoryNetwork::new(2);
            let mut eps = net.endpoints_with_cipher(cipher.clone());
            b.iter(|| {
                eps[0]
                    .send(NodeId::new(1), payload.clone())
                    .expect("send ok");
                eps[1].recv().expect("recv ok")
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_cipher,
    bench_in_memory_ping,
    bench_distributed_run,
    bench_cipher_on_network
);
criterion_main!(benches);
