//! Chaos observability benchmark.
//!
//! Runs a seeded schedule of incidents — node crash, ring partition,
//! sustained loss — against a standing pipelined service and measures
//! what observing the damage costs:
//!
//! 1. **Bit-identity gate**: every query answered while the network is
//!    being broken must match its fault-free run, transcript and all.
//!    Chaos only delays delivery; it never changes an answer.
//! 2. **Healing attribution**: the trace analyzer must reconstruct at
//!    least one incident from the retry/re-ACK storm, with nonzero
//!    healing latency (p50/p99 reported) and per-node frame overhead.
//! 3. **Observability overhead gate**: the same chaos schedule paired
//!    against itself — recorder off vs the always-on production mode
//!    (sampled) — must cost under 2% wall clock.
//!
//! Usage: `chaos [n] [rounds] [out.json]`
//! Defaults: n = 6, rounds = 8, out = BENCH_chaos.json

use std::fmt::Write as _;
use std::time::Instant;

use privtopk_bench::{bench_locals, machine_json};
use privtopk_core::distributed::NetworkKind;
use privtopk_core::service::ServiceRuntime;
use privtopk_core::{
    derive_batch_seed, ChaosPlan, ProtocolConfig, RoundPolicy, StartPolicy, DEFAULT_HEAL_BUDGET,
};
use privtopk_observe::{analyze, AnalyzerConfig, Recorder, TraceCollector};

const BASE_SEED: u64 = 48105;
const K: usize = 4;
const DEPTH: usize = 16;
const INCIDENTS: usize = 2;
const REPS: usize = 3;

fn percentile_ms(sorted_ns: &[u64], pct: usize) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let index = (sorted_ns.len() * pct / 100).min(sorted_ns.len() - 1);
    sorted_ns[index] as f64 / 1e6
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let rounds: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_chaos.json".to_string());

    let config = ProtocolConfig::topk(K)
        .with_start(StartPolicy::Fixed)
        .with_rounds(RoundPolicy::Fixed(rounds));
    let locals = bench_locals(n, K, BASE_SEED);
    let plan = ChaosPlan::seeded(BASE_SEED, n as u32, INCIDENTS);
    plan.validate(DEFAULT_HEAL_BUDGET).expect("healable plan");

    eprintln!(
        "chaos: n={n} k={K} rounds={rounds} depth={DEPTH} incidents={INCIDENTS} seed={BASE_SEED}"
    );
    for incident in &plan.incidents {
        eprintln!(
            "  t+{}ms for {}ms: {}",
            incident.at.as_millis(),
            incident.duration.as_millis(),
            incident.event.describe()
        );
    }

    // Attribution run: full event capture, waves of queries until every
    // incident window has opened and closed, so the whole schedule hits
    // live traffic and the analyzer can reconstruct it.
    let recorder = Recorder::new();
    let (mut chaotic, state) =
        ServiceRuntime::start_chaos_traced(&locals, DEPTH, recorder.clone(), &plan)
            .expect("chaos start");
    state.arm();
    let mut wave_seeds: Vec<u64> = Vec::new();
    let mut wave_outcomes = Vec::new();
    let mut wave = 0u64;
    while !state.quiescent() || wave == 0 {
        let seeds: Vec<u64> = (0..DEPTH as u64)
            .map(|i| derive_batch_seed(BASE_SEED ^ (0xA000 + wave), i))
            .collect();
        let wave_workload: Vec<(ProtocolConfig, u64)> =
            seeds.iter().map(|s| (config.clone(), *s)).collect();
        wave_outcomes.extend(chaotic.run_workload(&wave_workload).expect("chaos wave"));
        wave_seeds.extend(seeds);
        wave += 1;
    }
    let stats = chaotic.stats();
    chaotic.shutdown().expect("chaos shutdown");
    assert!(state.dropped() > 0, "no frame ever hit an incident window");
    assert!(
        stats.retransmissions > 0,
        "healing must flow through the reliability layer"
    );

    // Bit-identity gate for the attribution run: replay the wave seeds
    // on a fault-free service and compare everything. The replay also
    // serves as the expected outcomes for the timed passes below.
    let workload: Vec<(ProtocolConfig, u64)> =
        wave_seeds.iter().map(|s| (config.clone(), *s)).collect();
    let mut clean =
        ServiceRuntime::start(&locals, NetworkKind::InMemory, DEPTH).expect("clean start");
    let clean_outcomes = clean.run_workload(&workload).expect("clean replay");
    clean.shutdown().expect("clean shutdown");
    for (i, (chaos, clean)) in wave_outcomes.iter().zip(&clean_outcomes).enumerate() {
        assert_eq!(
            chaos.transcript, clean.transcript,
            "query {i}: transcript diverged under chaos"
        );
        assert_eq!(
            chaos.per_node_results, clean.per_node_results,
            "query {i}: results diverged under chaos"
        );
    }
    eprintln!(
        "  identity gate: {} chaos-run queries match fault-free, bit for bit ({} frames dropped, {} retransmissions)",
        wave_outcomes.len(),
        state.dropped(),
        stats.retransmissions
    );

    // Healing attribution through the analyzer, with the run's mean
    // frame size as the byte-overhead hint.
    let mut collector = TraceCollector::new();
    collector.ingest_recorder("chaos", &recorder);
    let analyzer_config = AnalyzerConfig {
        bytes_per_frame_hint: Some(stats.bytes_sent as f64 / stats.frames_sent.max(1) as f64),
        ..AnalyzerConfig::default()
    };
    let analysis = analyze(&collector.finish(), &analyzer_config);
    assert!(
        !analysis.incidents.is_empty(),
        "analyzer must reconstruct at least one incident"
    );
    let mut healing_ns: Vec<u64> = analysis.incidents.iter().map(|i| i.healing_ns).collect();
    healing_ns.sort_unstable();
    assert!(
        healing_ns[0] > 0,
        "every reconstructed incident must carry nonzero healing cost"
    );
    let healing_p50_ms = percentile_ms(&healing_ns, 50);
    let healing_p99_ms = percentile_ms(&healing_ns, 99);
    let overhead_bytes: u64 = analysis
        .incidents
        .iter()
        .map(|i| i.overhead_bytes_est.unwrap_or(0))
        .sum();
    eprintln!(
        "  healing: {} incidents reconstructed, p50 {healing_p50_ms:.1} ms, p99 {healing_p99_ms:.1} ms, ~{overhead_bytes} B overhead",
        analysis.incidents.len()
    );

    // Observability overhead gate: the same chaos schedule, recorder
    // off vs the always-on production mode (span sampling). One timed
    // pass per fresh service. The wave workload is repeated enough
    // times that compute outlasts the schedule by a wide margin: the
    // last window then closes mid-run and elapsed time is
    // compute-bound, so the comparison measures recorder cost instead
    // of which 50 ms retry quantum the final heal happened to land on.
    let timed: Vec<(ProtocolConfig, u64)> = (0..workload.len() * 6)
        .map(|i| workload[i % workload.len()].clone())
        .collect();
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    for _ in 0..REPS {
        let (mut off_service, off_state) =
            ServiceRuntime::start_chaos_traced(&locals, DEPTH, Recorder::disabled(), &plan)
                .expect("off start");
        off_state.arm();
        let start = Instant::now();
        std::hint::black_box(off_service.run_workload(&timed).expect("off pass"));
        off_ms = off_ms.min(start.elapsed().as_secs_f64() * 1e3);
        off_service.shutdown().expect("off shutdown");

        let (mut on_service, on_state) =
            ServiceRuntime::start_chaos_traced(&locals, DEPTH, Recorder::sampled(10), &plan)
                .expect("on start");
        on_state.arm();
        let start = Instant::now();
        let on_outcomes = on_service.run_workload(&timed).expect("on pass");
        on_ms = on_ms.min(start.elapsed().as_secs_f64() * 1e3);
        for (i, outcome) in on_outcomes.iter().enumerate() {
            let clean = &clean_outcomes[i % clean_outcomes.len()];
            assert_eq!(
                outcome.transcript, clean.transcript,
                "observed query {i} transcript diverged"
            );
        }
        on_service.shutdown().expect("on shutdown");
    }
    let overhead_pct = (on_ms / off_ms - 1.0) * 100.0;
    assert!(
        overhead_pct < 2.0,
        "observability overhead {overhead_pct:.2}% under chaos must stay under 2% \
         (off {off_ms:.2} ms, on {on_ms:.2} ms)"
    );
    eprintln!(
        "  overhead gate: off {off_ms:.2} ms vs on {on_ms:.2} ms ({overhead_pct:+.2}%) — under 2%"
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"chaos observability\",");
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {n}, \"k\": {K}, \"rounds\": {rounds}, \"depth\": {DEPTH}, \"queries\": {}, \"incidents_scheduled\": {INCIDENTS}, \"seed\": {BASE_SEED}, \"reps\": {REPS}}},",
        workload.len()
    );
    let _ = writeln!(json, "  \"plan\": [");
    for (i, incident) in plan.incidents.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"at_ms\": {}, \"duration_ms\": {}, \"event\": \"{}\"}}{}",
            incident.at.as_millis(),
            incident.duration.as_millis(),
            incident.event.describe(),
            if i + 1 < plan.incidents.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"bit_identical\": true,");
    let _ = writeln!(
        json,
        "  \"chaos_run\": {{\"queries\": {}, \"frames_dropped\": {}, \"retransmissions\": {}, \"re_acks\": {}}},",
        wave_outcomes.len(),
        state.dropped(),
        stats.retransmissions,
        stats.re_acks
    );
    let _ = writeln!(
        json,
        "  \"healing\": {{\"incidents_reconstructed\": {}, \"p50_ms\": {healing_p50_ms:.3}, \"p99_ms\": {healing_p99_ms:.3}, \"overhead_bytes_est\": {overhead_bytes}}},",
        analysis.incidents.len()
    );
    let _ = writeln!(
        json,
        "  \"observability_overhead\": {{\"off_ms\": {off_ms:.3}, \"on_ms\": {on_ms:.3}, \"overhead_pct\": {overhead_pct:.3}, \"gate\": \"under 2%\"}}"
    );
    json.push_str("}\n");
    std::fs::write(&out_path, &json).expect("write BENCH_chaos.json");
    eprintln!("wrote {out_path}");
}
