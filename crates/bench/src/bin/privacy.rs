//! Privacy-accounting overhead benchmark.
//!
//! Runs the same pipelined service workload twice — once bare, once
//! with a [`LopAccountant`] installed as the runtime's query observer —
//! and reports the accounting overhead on the hot path. The accountant
//! is deliberately lazy: `observe` only folds protocol coordinates into
//! counters, and the Monte-Carlo shadow estimation runs at the first
//! `snapshot()` (the scrape path), so the gate asserted here is that
//! accounting costs **under 2%** of untraced throughput.
//!
//! Like the tracing gate in the `service` benchmark, each round pairs a
//! fresh off service against a fresh on service with passes alternating
//! and takes the best per-round on/off ratio, so thread-placement luck
//! and machine-load drift hit both sides equally. The run also asserts
//! the non-interference gate (outcomes bit-identical on vs off) and
//! times the snapshot path itself: the first call pays the shadow
//! estimation, every later call is memoized.
//!
//! Usage: `privacy [n] [rounds] [queries] [out.json]`
//! Defaults: n = 6, rounds = 8, queries = 240, out = BENCH_privacy.json

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use privtopk_bench::{bench_locals, machine_json};
use privtopk_core::distributed::NetworkKind;
use privtopk_core::service::ServiceRuntime;
use privtopk_core::{derive_batch_seed, ProtocolConfig, RoundPolicy, StartPolicy};
use privtopk_privacy::LopAccountant;

const BASE_SEED: u64 = 24301;
const K: usize = 4;
const DEPTH: usize = 4;
const REPS: u32 = 3;

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let rounds: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let queries: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(240);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_privacy.json".to_string());

    let config = ProtocolConfig::topk(K)
        .with_start(StartPolicy::Fixed)
        .with_rounds(RoundPolicy::Fixed(rounds));
    let locals = bench_locals(n, K, BASE_SEED);
    let workload: Vec<(ProtocolConfig, u64)> = (0..queries)
        .map(|i| (config.clone(), derive_batch_seed(BASE_SEED, i)))
        .collect();

    eprintln!(
        "privacy: n={n} k={K} rounds={rounds} queries={queries} depth={DEPTH} reps={REPS} network=in-memory"
    );

    // Paired on/off rounds; the gate takes the best per-round ratio.
    let mut best_ratio = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut checked_identity = false;
    let mut queries_accounted = 0u64;
    for _ in 0..REPS {
        let mut off_service =
            ServiceRuntime::start(&locals, NetworkKind::InMemory, DEPTH).expect("service start");
        let mut on_service =
            ServiceRuntime::start(&locals, NetworkKind::InMemory, DEPTH).expect("service start");
        let accountant = Arc::new(LopAccountant::new());
        on_service.set_observer(Arc::clone(&accountant) as _);
        let off_outcomes = off_service.run_workload(&workload).expect("warm-up pass");
        let on_outcomes = on_service.run_workload(&workload).expect("warm-up pass");
        if !checked_identity {
            // Non-interference gate: the accountant observes, it never
            // participates — outcome streams must match bit for bit.
            assert_eq!(
                off_outcomes, on_outcomes,
                "privacy accounting changed a transcript or result"
            );
            checked_identity = true;
        }
        let mut round_off = f64::INFINITY;
        let mut round_on = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            std::hint::black_box(off_service.run_workload(&workload).expect("off pass"));
            round_off = round_off.min(start.elapsed().as_secs_f64() * 1e3);
            let start = Instant::now();
            std::hint::black_box(on_service.run_workload(&workload).expect("on pass"));
            round_on = round_on.min(start.elapsed().as_secs_f64() * 1e3);
        }
        queries_accounted = accountant.queries_accounted();
        off_service.shutdown().expect("service shutdown");
        on_service.shutdown().expect("accounted service shutdown");
        if round_on / round_off < best_ratio {
            best_ratio = round_on / round_off;
            off_ms = round_off;
            on_ms = round_on;
        }
    }
    let overhead_pct = (best_ratio - 1.0) * 100.0;
    assert!(
        overhead_pct < 2.0,
        "privacy accounting overhead {overhead_pct:.2}% must stay under 2% \
         (off {off_ms:.2} ms, on {on_ms:.2} ms)"
    );
    let off_qps = queries as f64 / (off_ms / 1e3);
    let on_qps = queries as f64 / (on_ms / 1e3);
    eprintln!(
        "  accounting on: {on_ms:>8.2} ms ({on_qps:>8.0} q/s, {overhead_pct:+.2}% vs {off_ms:.2} ms off)"
    );

    // The deferred cost the hot path avoided: the first snapshot pays
    // the Monte-Carlo shadow estimation, later ones hit the memo.
    let accountant = LopAccountant::new();
    accountant.observe(&config, n, rounds);
    let start = Instant::now();
    let snapshot = accountant.snapshot();
    let first_snapshot_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    std::hint::black_box(accountant.snapshot());
    let cached_snapshot_ms = start.elapsed().as_secs_f64() * 1e3;
    assert_eq!(snapshot.per_node.len(), n, "estimate covers every node");
    eprintln!(
        "  snapshot: first {first_snapshot_ms:.3} ms (shadow estimation), cached {cached_snapshot_ms:.4} ms; worst LoP {:.4}",
        snapshot.worst_lop
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"privacy accounting overhead\",");
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {n}, \"k\": {K}, \"rounds\": {rounds}, \"queries\": {queries}, \"pipeline_depth\": {DEPTH}, \"network\": \"in-memory\", \"start\": \"fixed\", \"seed\": {BASE_SEED}, \"reps\": {REPS}}},"
    );
    let _ = writeln!(
        json,
        "  \"accounting\": {{\"off_total_ms\": {off_ms:.3}, \"on_total_ms\": {on_ms:.3}, \"off_queries_per_sec\": {off_qps:.1}, \"on_queries_per_sec\": {on_qps:.1}, \"overhead_pct\": {overhead_pct:.3}, \"queries_accounted\": {queries_accounted}}},"
    );
    let _ = writeln!(
        json,
        "  \"snapshot\": {{\"first_ms\": {first_snapshot_ms:.4}, \"cached_ms\": {cached_snapshot_ms:.4}, \"worst_lop\": {:.6}}},",
        snapshot.worst_lop
    );
    let _ = writeln!(json, "  \"outcomes_identical_on_off\": true");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
