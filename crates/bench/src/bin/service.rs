//! Persistent-service throughput benchmark.
//!
//! Answers the same workload of homogeneous fixed-start queries two
//! ways — cold (a fresh `run_distributed` federation per query: thread
//! spawn, channel wiring and teardown every time) and warm (one
//! long-lived [`ServiceRuntime`] whose node workers survive across
//! queries) — and reports sustained queries/sec at pipeline depths
//! 1, 4 and 16.
//!
//! A cores × depth matrix then reruns the workload through a
//! [`ShardedService`] — one standing ring per logical core, queries
//! slotted round-robin by index — at every (worker count, depth) pair.
//! Worker counts are {1} on a single-core machine and {1, cores}
//! otherwise, so the matrix never promises parallelism the machine
//! can't deliver.
//!
//! The run *asserts* the correctness gates before reporting numbers:
//! at every depth each service outcome must be bit-identical to its
//! solo `run_distributed` run (sharded outcomes included), the best
//! warm depth must sustain at least 2x the cold rate, every depth > 1
//! must strictly beat depth 1, on a multi-core machine the sharded
//! depth-16 run must beat the 1-worker depth-16 figure, and a
//! recorder-armed service must keep transcripts bit-identical at under
//! 2% throughput overhead.
//!
//! Usage: `service [n] [rounds] [queries] [out.json]`
//! Defaults: n = 6, rounds = 8, queries = 240, out = BENCH_service.json

use std::fmt::Write as _;
use std::time::Instant;

use privtopk_bench::{bench_locals, logical_cores, machine_json};
use privtopk_core::distributed::{run_distributed, NetworkKind};
use privtopk_core::groups::grouped_max_traced;
use privtopk_core::service::{ServiceRuntime, ShardedService};
use privtopk_core::{derive_batch_seed, ProtocolConfig, RoundPolicy, StartPolicy};
use privtopk_domain::Value;
use privtopk_observe::{analyze, AnalyzerConfig, Recorder, TraceCollector};

const BASE_SEED: u64 = 24301;
const K: usize = 4;
const DEPTHS: [usize; 3] = [1, 4, 16];
const REPS: u32 = 3;

struct Point {
    depth: usize,
    warm_ms: f64,
    warm_qps: f64,
    mean_query_latency_ms: f64,
    pooled_high_water: u64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let rounds: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let queries: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(240);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_service.json".to_string());

    let config = ProtocolConfig::topk(K)
        .with_start(StartPolicy::Fixed)
        .with_rounds(RoundPolicy::Fixed(rounds));
    let locals = bench_locals(n, K, BASE_SEED);
    let workload: Vec<(ProtocolConfig, u64)> = (0..queries)
        .map(|i| (config.clone(), derive_batch_seed(BASE_SEED, i)))
        .collect();

    eprintln!(
        "service: n={n} k={K} rounds={rounds} queries={queries} reps={REPS} network=in-memory"
    );

    // Correctness gate first: at every depth the warm transcripts must
    // be bit-identical to the cold runs they claim to accelerate.
    let solo: Vec<_> = workload
        .iter()
        .map(|(config, seed)| {
            run_distributed(config, &locals, NetworkKind::InMemory, *seed).expect("solo run")
        })
        .collect();
    for depth in DEPTHS {
        let mut service =
            ServiceRuntime::start(&locals, NetworkKind::InMemory, depth).expect("service start");
        let outcomes = service.run_workload(&workload).expect("warm workload");
        for (i, (outcome, cold)) in outcomes.iter().zip(&solo).enumerate() {
            assert_eq!(
                outcome.transcript, cold.transcript,
                "depth={depth} query {i} transcript diverged from its solo run"
            );
            assert_eq!(
                outcome.per_node_results, cold.per_node_results,
                "depth={depth} query {i} results diverged from its solo run"
            );
        }
        service.shutdown().expect("service shutdown");
    }
    eprintln!("  identity gate: every depth matches solo, bit for bit");

    // Cold path: a fresh federation per query, best of REPS passes.
    let mut cold_ms = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for (config, seed) in &workload {
            let out =
                run_distributed(config, &locals, NetworkKind::InMemory, *seed).expect("cold run");
            std::hint::black_box(out);
        }
        cold_ms = cold_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }
    let cold_qps = queries as f64 / (cold_ms / 1e3);
    eprintln!("  cold: {cold_ms:>8.2} ms ({cold_qps:>8.0} q/s)");

    // Warm path: one standing service per depth; the first pass warms
    // the frame pool and connections, then best of REPS timed passes
    // over the same ring.
    let mut points = Vec::with_capacity(DEPTHS.len());
    for depth in DEPTHS {
        let mut service =
            ServiceRuntime::start(&locals, NetworkKind::InMemory, depth).expect("service start");
        let warmup = service.run_workload(&workload).expect("warm-up pass");
        std::hint::black_box(warmup);
        let mut warm_ms = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            let out = service.run_workload(&workload).expect("warm workload");
            warm_ms = warm_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(out);
        }
        let pooled_high_water = service.metrics().pooled_buffers_high_water();
        service.shutdown().expect("service shutdown");
        let point = Point {
            depth,
            warm_ms,
            warm_qps: queries as f64 / (warm_ms / 1e3),
            mean_query_latency_ms: warm_ms / queries as f64,
            pooled_high_water,
        };
        eprintln!(
            "  depth={depth:>2}: {warm_ms:>8.2} ms ({:>8.0} q/s, {:.2}x cold)  pool high water {}",
            point.warm_qps,
            point.warm_qps / cold_qps,
            point.pooled_high_water
        );
        points.push(point);
    }

    // Acceptance gates: warm reuse must pay for itself, and pipelining
    // must add to it.
    let d1 = points.iter().find(|p| p.depth == 1).expect("depth-1 point");
    for p in points.iter().filter(|p| p.depth > 1) {
        assert!(
            p.warm_qps > d1.warm_qps,
            "depth {} ({:.0} q/s) must strictly beat depth 1 ({:.0} q/s)",
            p.depth,
            p.warm_qps,
            d1.warm_qps
        );
    }
    let best = points
        .iter()
        .max_by(|a, b| a.warm_qps.total_cmp(&b.warm_qps))
        .expect("best point");
    let warm_vs_cold = best.warm_qps / cold_qps;
    assert!(
        warm_vs_cold >= 2.0,
        "warm service ({:.0} q/s at depth {}) must sustain at least 2x cold ({:.0} q/s)",
        best.warm_qps,
        best.depth,
        cold_qps
    );
    eprintln!(
        "  best warm vs cold: {warm_vs_cold:.2}x (depth {})",
        best.depth
    );

    // Cores x depth matrix: the same workload through a sharded service
    // at every (worker count, depth) pair. Queries slot to shards by
    // index mod workers, so the transcripts depend only on (locals,
    // config, seed) — the identity gate below runs before any timing.
    let cores = logical_cores();
    let worker_counts: Vec<usize> = if cores > 1 { vec![1, cores] } else { vec![1] };
    struct Cell {
        workers: usize,
        depth: usize,
        ms: f64,
        qps: f64,
        bytes: u64,
        baseline_bytes: u64,
    }
    let mut matrix: Vec<Cell> = Vec::new();
    for &workers in &worker_counts {
        for depth in DEPTHS {
            let mut sharded = ShardedService::start(&locals, NetworkKind::InMemory, depth, workers)
                .expect("sharded start");
            let outcomes = sharded
                .run_workload(&workload)
                .expect("sharded identity pass");
            for (i, (outcome, cold)) in outcomes.iter().zip(&solo).enumerate() {
                assert_eq!(
                    outcome.transcript, cold.transcript,
                    "workers={workers} depth={depth} query {i} transcript diverged from its solo run"
                );
                assert_eq!(
                    outcome.per_node_results, cold.per_node_results,
                    "workers={workers} depth={depth} query {i} results diverged from its solo run"
                );
            }
            let mut ms = f64::INFINITY;
            for _ in 0..REPS {
                let start = Instant::now();
                let out = sharded.run_workload(&workload).expect("sharded workload");
                ms = ms.min(start.elapsed().as_secs_f64() * 1e3);
                std::hint::black_box(out);
            }
            let wire = sharded.wire_totals();
            sharded.shutdown().expect("sharded shutdown");
            let cell = Cell {
                workers,
                depth,
                ms,
                qps: queries as f64 / (ms / 1e3),
                bytes: wire.bytes_sent,
                baseline_bytes: wire.baseline_bytes,
            };
            eprintln!(
                "  workers={workers} depth={depth:>2}: {ms:>8.2} ms ({:>8.0} q/s, {:.2}x cold)",
                cell.qps,
                cell.qps / cold_qps
            );
            matrix.push(cell);
        }
    }
    // On a multi-core machine, sharding has to pay: the full-width
    // depth-16 cell must beat the 1-worker depth-16 cell. A single-core
    // container can't parallelize, so there the matrix is 1 x depths
    // and the gate is vacuous.
    if cores > 1 {
        let solo_d16 = matrix
            .iter()
            .find(|c| c.workers == 1 && c.depth == 16)
            .expect("1-worker depth-16 cell");
        let wide_d16 = matrix
            .iter()
            .find(|c| c.workers == cores && c.depth == 16)
            .expect("full-width depth-16 cell");
        assert!(
            wide_d16.qps > solo_d16.qps,
            "{cores}-worker depth-16 service ({:.0} q/s) must beat 1 worker ({:.0} q/s)",
            wide_d16.qps,
            solo_d16.qps
        );
    }

    // Telemetry overhead gate: the same workload through a recorder-armed
    // service at the best depth must (a) stay bit-identical to the solo
    // runs and (b) cost less than 2% of the untraced throughput. The
    // recorder runs in its always-on production mode (1-in-1024 span
    // sampling; counters exact) — full event capture is a debugging mode
    // and is not held to the 2% bar. Each round pairs a fresh off service
    // against a fresh on service with passes alternating, and the gate
    // takes the best per-round on/off ratio: thread-placement luck and
    // machine-load drift hit both sides of a round equally, so only a
    // genuine, reproducible overhead survives the min.
    let recorder = Recorder::sampled(10);
    let mut best_ratio = f64::INFINITY;
    let mut off_ms = f64::INFINITY;
    let mut on_ms = f64::INFINITY;
    let mut checked_identity = false;
    for _ in 0..REPS {
        let mut off_service = ServiceRuntime::start(&locals, NetworkKind::InMemory, best.depth)
            .expect("service start");
        let mut on_service = ServiceRuntime::start_traced(
            &locals,
            NetworkKind::InMemory,
            best.depth,
            recorder.clone(),
        )
        .expect("traced service start");
        std::hint::black_box(off_service.run_workload(&workload).expect("warm-up pass"));
        let traced_outcomes = on_service.run_workload(&workload).expect("warm-up pass");
        if !checked_identity {
            for (i, (outcome, cold)) in traced_outcomes.iter().zip(&solo).enumerate() {
                assert_eq!(
                    outcome.transcript, cold.transcript,
                    "tracing-on query {i} transcript diverged from its solo run"
                );
            }
            checked_identity = true;
        }
        let mut round_off = f64::INFINITY;
        let mut round_on = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            std::hint::black_box(off_service.run_workload(&workload).expect("off pass"));
            round_off = round_off.min(start.elapsed().as_secs_f64() * 1e3);
            let start = Instant::now();
            std::hint::black_box(on_service.run_workload(&workload).expect("on pass"));
            round_on = round_on.min(start.elapsed().as_secs_f64() * 1e3);
        }
        off_service.shutdown().expect("service shutdown");
        on_service.shutdown().expect("traced service shutdown");
        if round_on / round_off < best_ratio {
            best_ratio = round_on / round_off;
            off_ms = round_off;
            on_ms = round_on;
        }
    }
    let traced_qps = queries as f64 / (on_ms / 1e3);
    let overhead_pct = (best_ratio - 1.0) * 100.0;
    assert!(
        overhead_pct < 2.0,
        "tracing overhead {overhead_pct:.2}% at depth {} must stay under 2% \
         (off {off_ms:.2} ms, on {on_ms:.2} ms)",
        best.depth
    );
    eprintln!(
        "  tracing on (depth {}): {on_ms:>8.2} ms ({traced_qps:>8.0} q/s, {overhead_pct:+.2}% vs {off_ms:.2} ms off), {} sampled steps",
        best.depth,
        recorder.phase(privtopk_observe::Phase::Step).count
    );

    // §4.2 grouped-max critical path, analyzer-measured from real traces.
    // The grouped run's critical path is its slowest group chain plus the
    // leader-ring chain; the flat run's is its single chain. Both come
    // out of the same collect-and-analyze pipeline the CLI uses, best of
    // REPS passes each.
    const GROUPED_VALUES: usize = 24;
    const GROUPS: usize = 4;
    let grouped_config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(rounds));
    let grouped_values: Vec<Value> = (0..GROUPED_VALUES)
        .map(|i| Value::new(((i * 37) % 9000 + 1) as i64))
        .collect();
    let chains_of = |groups: usize| -> Vec<(Option<u64>, u64)> {
        let recorder = Recorder::new();
        grouped_max_traced(
            &grouped_config,
            &grouped_values,
            groups,
            BASE_SEED,
            &recorder,
        )
        .expect("grouped run");
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("grouped.jsonl", &recorder.trace_jsonl());
        let trace = collector.finish();
        assert!(trace.diagnostics.is_empty(), "{:?}", trace.diagnostics);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        analysis
            .queries
            .iter()
            .map(|q| {
                assert!(q.complete, "chain {:?} incomplete", q.query);
                assert!(q.critical_path_ns > 0, "chain {:?} empty", q.query);
                (q.query, q.critical_path_ns)
            })
            .collect()
    };
    let mut flat_ns = u64::MAX;
    let mut grouped_ns = u64::MAX;
    for _ in 0..REPS {
        let flat = chains_of(1);
        assert_eq!(flat.len(), 1, "flat run is one chain");
        flat_ns = flat_ns.min(flat[0].1);

        let chains = chains_of(GROUPS);
        assert_eq!(chains.len(), GROUPS + 1, "group chains plus leader ring");
        let leader = chains
            .iter()
            .find(|(q, _)| *q == Some(GROUPS as u64))
            .expect("leader chain")
            .1;
        let slowest_group = chains
            .iter()
            .filter(|(q, _)| *q != Some(GROUPS as u64))
            .map(|&(_, ns)| ns)
            .max()
            .expect("group chains");
        grouped_ns = grouped_ns.min(slowest_group + leader);
    }
    let grouped_ratio = grouped_ns as f64 / flat_ns as f64;
    eprintln!(
        "  grouped max (4.2): critical path {grouped_ns} ns grouped ({GROUPS} groups of {}) vs {flat_ns} ns flat ({GROUPED_VALUES}-ring), ratio {grouped_ratio:.3}",
        GROUPED_VALUES / GROUPS
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"persistent federation service throughput\","
    );
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {n}, \"k\": {K}, \"rounds\": {rounds}, \"queries\": {queries}, \"network\": \"in-memory\", \"start\": \"fixed\", \"seed\": {BASE_SEED}, \"reps\": {REPS}}},"
    );
    let _ = writeln!(
        json,
        "  \"cold\": {{\"total_ms\": {cold_ms:.3}, \"queries_per_sec\": {cold_qps:.1}, \"mean_query_latency_ms\": {:.4}}},",
        cold_ms / queries as f64
    );
    json.push_str("  \"warm_depths\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"pipeline_depth\": {}, \"total_ms\": {:.3}, \"queries_per_sec\": {:.1}, \"mean_query_latency_ms\": {:.4}, \"speedup_vs_cold\": {:.3}, \"pooled_buffers_high_water\": {}}}{}",
            p.depth,
            p.warm_ms,
            p.warm_qps,
            p.mean_query_latency_ms,
            p.warm_qps / cold_qps,
            p.pooled_high_water,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"cores_by_depth\": [\n");
    for (i, c) in matrix.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"workers\": {}, \"pipeline_depth\": {}, \"total_ms\": {:.3}, \"queries_per_sec\": {:.1}, \"speedup_vs_cold\": {:.3}, \"bytes_sent\": {}, \"baseline_bytes\": {}}}{}",
            c.workers,
            c.depth,
            c.ms,
            c.qps,
            c.qps / cold_qps,
            c.bytes,
            c.baseline_bytes,
            if i + 1 < matrix.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"warm_vs_cold_speedup\": {warm_vs_cold:.3},");
    let _ = writeln!(json, "  \"best_depth\": {},", best.depth);
    let _ = writeln!(
        json,
        "  \"tracing\": {{\"depth\": {}, \"mode\": \"sampled-1-in-1024\", \"off_total_ms\": {off_ms:.3}, \"on_total_ms\": {on_ms:.3}, \"off_queries_per_sec\": {:.1}, \"on_queries_per_sec\": {traced_qps:.1}, \"overhead_pct\": {overhead_pct:.3}}},",
        best.depth,
        queries as f64 / (off_ms / 1e3)
    );
    let _ = writeln!(
        json,
        "  \"grouped_max\": {{\"values\": {GROUPED_VALUES}, \"groups\": {GROUPS}, \"rounds\": {rounds}, \"flat_critical_path_ns\": {flat_ns}, \"grouped_critical_path_ns\": {grouped_ns}, \"critical_path_ratio\": {grouped_ratio:.4}}},"
    );
    let _ = writeln!(json, "  \"transcripts_identical_to_solo\": true");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
