//! Persistent-store benchmark: local top-k latency vs row count,
//! cold open vs warm snapshot, and a standing service answering
//! queries while a writer hammers the underlying stores.
//!
//! For each row count in 10^4 .. `max_rows` (decade steps) the run
//! streams a synthetic dataset into an on-disk [`NodeStore`], then
//! measures the per-query local top-k latency with a cache-busting
//! insert between queries — so every sample pays the real incremental
//! path (index walk + snapshot rebuild), never the memoized `Arc`.
//! A full re-sort of the same rows is timed alongside as the baseline
//! the candidate index exists to beat.
//!
//! The run *asserts* the acceptance gates before reporting numbers:
//! the 10^6-row p50 must stay under 10x the 10^4-row p50 (sublinear
//! in row count — a linear scan would be 100x), every store query
//! must agree with the full re-sort, and the service section's
//! transcripts under concurrent ingest must be bit-identical to a
//! frozen-snapshot run of the same workload.
//!
//! Usage: `store [max_rows] [out.json]`
//! Defaults: max_rows = 1000000, out = BENCH_store.json

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use rand::Rng;

use privtopk_bench::machine_json;
use privtopk_core::distributed::NetworkKind;
use privtopk_core::{
    derive_batch_seed, ProtocolConfig, RoundPolicy, Schedule, ServiceOutcome, ServiceRuntime,
};
use privtopk_datagen::{DataDistribution, DatasetBuilder};
use privtopk_domain::rng::SeedSpec;
use privtopk_domain::{LocalTopkSource, TopKVector, ValueDomain};
use privtopk_store::{NodeStore, StoreSnapshot};

const BASE_SEED: u64 = 771_204;
const K: usize = 8;
/// Per-query samples for the latency distribution at each row count.
const QUERY_SAMPLES: usize = 300;
/// Streaming-ingest chunk: bounds peak memory during the build phase.
const INGEST_CHUNK: usize = 65_536;
/// Acceptance gate: p50 at 10^6 rows vs p50 at 10^4 rows. A linear
/// scan would scale 100x; the index must stay within 10x.
const SUBLINEAR_FACTOR: f64 = 10.0;
/// Service section: nodes, per-node rows, and query count.
const SERVICE_NODES: usize = 4;
const SERVICE_ROWS: usize = 10_000;
const SERVICE_QUERIES: usize = 32;

struct Point {
    rows: usize,
    ingest_ms: f64,
    cold_open_ms: f64,
    warm_query_p50_ns: f64,
    warm_query_p90_ns: f64,
    resort_p50_ns: f64,
    index_depth: u64,
    index_rebuilds: u64,
    log_records: u64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let max_rows: usize = args
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or(1_000_000);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_store.json".to_string());

    let root = std::env::temp_dir().join(format!("privtopk-bench-store-{}", std::process::id()));
    std::fs::create_dir_all(&root).expect("create bench scratch dir");

    let domain = ValueDomain::paper_default();
    let mut row_counts = vec![10_000usize];
    while *row_counts.last().unwrap() < max_rows {
        row_counts.push(row_counts.last().unwrap().saturating_mul(10).min(max_rows));
    }

    eprintln!(
        "store: k={K} domain=[{}, {}] rows={row_counts:?} samples={QUERY_SAMPLES}",
        domain.min(),
        domain.max()
    );

    let mut points = Vec::with_capacity(row_counts.len());
    for &rows in &row_counts {
        points.push(measure_point(&root, domain, rows));
    }

    // The sublinear acceptance gate: per-query latency must not track
    // row count. 10^4 -> 10^6 is a 100x data blowup; the incremental
    // index answers from a bounded candidate set, so p50 must stay
    // within SUBLINEAR_FACTOR.
    let first = &points[0];
    let last = points.last().unwrap();
    if last.rows >= 100 * first.rows {
        assert!(
            last.warm_query_p50_ns < SUBLINEAR_FACTOR * first.warm_query_p50_ns,
            "local top-k p50 at {} rows ({:.0} ns) exceeds {SUBLINEAR_FACTOR}x the {}-row p50 ({:.0} ns)",
            last.rows,
            last.warm_query_p50_ns,
            first.rows,
            first.warm_query_p50_ns
        );
    }

    let service = measure_service(&root, domain);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"persistent node store: local top-k latency and service under ingest\","
    );
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"k\": {K}, \"domain\": [{}, {}], \"seed\": {BASE_SEED}, \"query_samples\": {QUERY_SAMPLES}, \"ingest_chunk\": {INGEST_CHUNK}}},",
        domain.min(),
        domain.max()
    );
    json.push_str("  \"local_topk\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"rows\": {}, \"ingest_ms\": {:.1}, \"ingest_rows_per_sec\": {:.0}, \"cold_open_ms\": {:.2}, \"warm_query_p50_ns\": {:.0}, \"warm_query_p90_ns\": {:.0}, \"full_resort_p50_ns\": {:.0}, \"resort_over_index\": {:.1}, \"index_depth\": {}, \"index_rebuilds\": {}, \"log_records\": {}}}{}",
            p.rows,
            p.ingest_ms,
            p.rows as f64 / (p.ingest_ms / 1e3),
            p.cold_open_ms,
            p.warm_query_p50_ns,
            p.warm_query_p90_ns,
            p.resort_p50_ns,
            p.resort_p50_ns / p.warm_query_p50_ns,
            p.index_depth,
            p.index_rebuilds,
            p.log_records,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"sublinear_gate\": {{\"rows_ratio\": {:.0}, \"p50_ratio\": {:.2}, \"budget\": {SUBLINEAR_FACTOR}, \"passed\": true}},",
        last.rows as f64 / first.rows as f64,
        last.warm_query_p50_ns / first.warm_query_p50_ns
    );
    let _ = writeln!(
        json,
        "  \"service_under_ingest\": {{\"nodes\": {SERVICE_NODES}, \"rows_per_node\": {SERVICE_ROWS}, \"queries\": {SERVICE_QUERIES}, \"queries_per_sec\": {:.1}, \"writes_landed\": {}, \"transcripts_identical_to_frozen\": true}}",
        service.queries_per_sec, service.writes_landed
    );
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    let _ = std::fs::remove_dir_all(&root);
    println!("wrote {out_path}");
}

/// Builds one store at `rows` rows and measures ingest, cold open,
/// warm incremental queries, and the full re-sort baseline.
fn measure_point(root: &std::path::Path, domain: ValueDomain, rows: usize) -> Point {
    let dir = root.join(format!("rows{rows}"));
    let builder = DatasetBuilder::new(1)
        .rows_per_node(rows)
        .distribution(DataDistribution::classic_zipf())
        .domain(domain)
        .seed(BASE_SEED ^ rows as u64);

    // Streaming ingest in bounded chunks: peak memory is the chunk,
    // not the row count.
    let store = NodeStore::create(&dir, domain).expect("create store");
    let mut stream = builder.node_value_stream(0).expect("value stream");
    let ingest_start = Instant::now();
    loop {
        let chunk: Vec<_> = stream.by_ref().take(INGEST_CHUNK).collect();
        if chunk.is_empty() {
            break;
        }
        store.insert_many(chunk).expect("ingest chunk");
    }
    let ingest_ms = ingest_start.elapsed().as_secs_f64() * 1e3;

    // Cold open: replay the log and rebuild the index from scratch,
    // then answer one query — the restart path.
    drop(store);
    let cold_start = Instant::now();
    let store = NodeStore::open(&dir).expect("cold open");
    let cold_first = store.snapshot_for_k(K).expect("cold snapshot");
    let cold_open_ms = cold_start.elapsed().as_secs_f64() * 1e3;

    // Full re-sort baseline over the same data, and the correctness
    // oracle for every warm query below.
    let all: Vec<_> = builder
        .node_value_stream(0)
        .expect("value stream")
        .collect();
    let mut resort_ns = Vec::with_capacity(16);
    let mut oracle = None;
    for _ in 0..16 {
        let mut copy = all.clone();
        let start = Instant::now();
        copy.sort_unstable_by(|a, b| b.cmp(a));
        copy.truncate(K);
        let sorted = TopKVector::from_sorted(copy).expect("re-sort top-k");
        resort_ns.push(start.elapsed().as_nanos() as f64);
        oracle = Some(sorted);
    }
    let oracle = oracle.expect("re-sort oracle");
    assert_eq!(
        cold_first.local_topk(K).expect("cold query"),
        oracle,
        "cold-open store query disagrees with full re-sort at {rows} rows"
    );

    // Warm queries with a cache-busting insert between samples: each
    // insert invalidates the memoized snapshot, so every timed query
    // walks the live index and rebuilds the snapshot view. Inserting
    // the domain floor never perturbs the top-k answer.
    let floor = domain.min();
    let mut query_ns = Vec::with_capacity(QUERY_SAMPLES);
    for _ in 0..QUERY_SAMPLES {
        store.insert(floor).expect("cache-busting insert");
        let start = Instant::now();
        let snap = store.snapshot_for_k(K).expect("warm snapshot");
        let answer = snap.local_topk(K).expect("warm query");
        query_ns.push(start.elapsed().as_nanos() as f64);
        assert_eq!(answer, oracle, "warm store query drifted at {rows} rows");
    }

    let stats = store.stats();
    let point = Point {
        rows,
        ingest_ms,
        cold_open_ms,
        warm_query_p50_ns: percentile(&mut query_ns, 0.50),
        warm_query_p90_ns: percentile(&mut query_ns, 0.90),
        resort_p50_ns: percentile(&mut resort_ns, 0.50),
        index_depth: stats.index_depth,
        index_rebuilds: stats.index_rebuilds,
        log_records: stats.log_records,
    };
    eprintln!(
        "  rows={rows:>8}: ingest {ingest_ms:>8.1} ms  cold-open {:>7.2} ms  warm p50 {:>9.0} ns  re-sort p50 {:>11.0} ns  depth {}",
        point.cold_open_ms, point.warm_query_p50_ns, point.resort_p50_ns, point.index_depth
    );
    point
}

struct ServicePoint {
    queries_per_sec: f64,
    writes_landed: u64,
}

/// Standing service over frozen snapshots while a writer floods the
/// stores: throughput under ingest, gated on transcript bit-identity
/// with a quiet run from the same snapshots.
fn measure_service(root: &std::path::Path, domain: ValueDomain) -> ServicePoint {
    let builder = DatasetBuilder::new(SERVICE_NODES)
        .rows_per_node(SERVICE_ROWS)
        .distribution(DataDistribution::classic_zipf())
        .domain(domain)
        .seed(BASE_SEED);
    let mut stores = Vec::with_capacity(SERVICE_NODES);
    for i in 0..SERVICE_NODES {
        let dir = root.join(format!("service-node{i}"));
        let store = NodeStore::create(&dir, domain).expect("create service store");
        let mut stream = builder.node_value_stream(i).expect("value stream");
        loop {
            let chunk: Vec<_> = stream.by_ref().take(INGEST_CHUNK).collect();
            if chunk.is_empty() {
                break;
            }
            store.insert_many(chunk).expect("service ingest");
        }
        stores.push(Arc::new(store));
    }

    // Freeze the per-node views first; everything after this point —
    // including the writer thread — must not change any answer.
    let snapshots: Vec<Arc<StoreSnapshot>> = stores
        .iter()
        .map(|s| s.snapshot_for_k(K).expect("service snapshot"))
        .collect();

    let config = ProtocolConfig::topk(K)
        .with_domain(domain)
        .with_schedule(Schedule::paper_default())
        .with_rounds(RoundPolicy::Precision { epsilon: 0.05 });
    let workload: Vec<(ProtocolConfig, u64)> = (0..SERVICE_QUERIES as u64)
        .map(|i| (config.clone(), derive_batch_seed(BASE_SEED, i)))
        .collect();

    // Loaded run: writer thread round-robins inserts into the stores
    // for the whole workload.
    let stop = Arc::new(AtomicBool::new(false));
    let writer = {
        let stores = stores.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut rng = SeedSpec::new(BASE_SEED).stream(0xB0B).rng();
            let mut wrote = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let v = privtopk_domain::Value::new(rng.gen_range(domain.as_range()));
                stores[wrote as usize % stores.len()]
                    .insert(v)
                    .expect("background insert");
                wrote += 1;
            }
            wrote
        })
    };

    let mut service = ServiceRuntime::start_from_sources(&snapshots, K, NetworkKind::InMemory, 2)
        .expect("start loaded service");
    let start = Instant::now();
    let loaded = service.run_workload(&workload).expect("loaded workload");
    let elapsed = start.elapsed().as_secs_f64();
    service.shutdown().expect("shutdown loaded service");
    stop.store(true, Ordering::Relaxed);
    let writes_landed = writer.join().expect("join writer");

    // Quiet run from the same frozen snapshots: the gate.
    let mut quiet_service =
        ServiceRuntime::start_from_sources(&snapshots, K, NetworkKind::InMemory, 2)
            .expect("start quiet service");
    let quiet: Vec<ServiceOutcome> = quiet_service
        .run_workload(&workload)
        .expect("quiet workload");
    quiet_service.shutdown().expect("shutdown quiet service");
    assert_eq!(
        loaded, quiet,
        "transcripts under concurrent ingest diverged from the frozen-snapshot run"
    );

    let point = ServicePoint {
        queries_per_sec: SERVICE_QUERIES as f64 / elapsed,
        writes_landed,
    };
    eprintln!(
        "  service: {SERVICE_QUERIES} queries in {:.1} ms under {} concurrent writes ({:.1} q/s), transcripts identical to frozen run",
        elapsed * 1e3,
        point.writes_landed,
        point.queries_per_sec
    );
    point
}

/// Nearest-rank percentile; sorts in place.
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    samples.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() as f64 - 1.0) * q).round() as usize;
    samples[idx]
}
