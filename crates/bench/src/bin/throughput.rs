//! Batched-executor throughput benchmark.
//!
//! Runs B ∈ {1, 8, 64, 256} homogeneous fixed-start queries over the
//! in-memory network twice — once as B sequential solo
//! `run_distributed` calls, once as a single `run_distributed_batch` —
//! and reports queries/sec, the amortization factor, and the wire
//! accounting (physical frames vs logical messages, per-frame bytes).
//!
//! The run *asserts* the correctness gates before reporting numbers:
//! every batched transcript must be bit-identical to its solo run, and
//! the mean batched frame at B = 64 must be smaller than 64 solo frames.
//!
//! Usage: `throughput [n] [rounds] [out.json]`
//! Defaults: n = 6, rounds = 8, out = BENCH_throughput.json

use std::fmt::Write as _;
use std::time::Instant;

use privtopk_bench::bench_locals;
use privtopk_core::distributed::{run_distributed, run_distributed_batch, NetworkKind};
use privtopk_core::{derive_batch_seed, BatchJob, ProtocolConfig, RoundPolicy, StartPolicy};

const BASE_SEED: u64 = 24301;
const K: usize = 4;
const WIDTHS: [usize; 4] = [1, 8, 64, 256];
const REPS: u32 = 3;

struct Point {
    width: usize,
    solo_ms: f64,
    batch_ms: f64,
    batch_qps: f64,
    solo_qps: f64,
    frames: u64,
    logical: u64,
    bytes: u64,
    mean_frame_bytes: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let rounds: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let config = ProtocolConfig::topk(K)
        .with_start(StartPolicy::Fixed)
        .with_rounds(RoundPolicy::Fixed(rounds));
    let locals = bench_locals(n, K, BASE_SEED);

    eprintln!("throughput: n={n} k={K} rounds={rounds} reps={REPS} network=in-memory");

    let mut points = Vec::with_capacity(WIDTHS.len());
    for width in WIDTHS {
        let jobs: Vec<BatchJob> = (0..width as u64)
            .map(|i| {
                BatchJob::new(
                    config.clone(),
                    locals.clone(),
                    derive_batch_seed(BASE_SEED, i),
                )
            })
            .collect();

        // Correctness gate first: the batched transcripts must be
        // bit-identical to the solo runs they claim to amortize.
        let batch_out = run_distributed_batch(&jobs, NetworkKind::InMemory).expect("batch run");
        assert_eq!(batch_out.groups, 1, "homogeneous batch must form one group");
        for (i, job) in jobs.iter().enumerate() {
            let solo = run_distributed(&job.config, &job.locals, NetworkKind::InMemory, job.seed)
                .expect("solo run");
            assert_eq!(
                batch_out.transcripts[i], solo.transcript,
                "B={width} query {i} diverged from its solo run"
            );
        }

        // Timed passes: best of REPS for each path.
        let mut batch_ms = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            let out = run_distributed_batch(&jobs, NetworkKind::InMemory).expect("batch run");
            batch_ms = batch_ms.min(start.elapsed().as_secs_f64() * 1e3);
            std::hint::black_box(out);
        }
        let mut solo_ms = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            for job in &jobs {
                let out =
                    run_distributed(&job.config, &job.locals, NetworkKind::InMemory, job.seed)
                        .expect("solo run");
                std::hint::black_box(out);
            }
            solo_ms = solo_ms.min(start.elapsed().as_secs_f64() * 1e3);
        }

        let point = Point {
            width,
            solo_ms,
            batch_ms,
            batch_qps: width as f64 / (batch_ms / 1e3),
            solo_qps: width as f64 / (solo_ms / 1e3),
            frames: batch_out.frames_sent,
            logical: batch_out.logical_messages,
            bytes: batch_out.bytes_sent,
            mean_frame_bytes: batch_out.bytes_sent as f64 / batch_out.frames_sent as f64,
        };
        eprintln!(
            "  B={width:>3}: batch {batch_ms:>8.2} ms ({:>9.0} q/s)  solo {solo_ms:>8.2} ms ({:>9.0} q/s)  frames {} logical {}",
            point.batch_qps, point.solo_qps, point.frames, point.logical
        );
        points.push(point);
    }

    // Per-hop byte gate: a B=64 frame must undercut 64 solo frames.
    let b1 = points.iter().find(|p| p.width == 1).expect("B=1 point");
    let b64 = points.iter().find(|p| p.width == 64).expect("B=64 point");
    assert!(
        b64.mean_frame_bytes < 64.0 * b1.mean_frame_bytes,
        "batched frame ({:.1} B) must be smaller than 64 solo frames ({:.1} B)",
        b64.mean_frame_bytes,
        64.0 * b1.mean_frame_bytes
    );
    let amortization = (b1.batch_ms * 64.0) / b64.batch_ms;
    eprintln!("  B=64 amortization vs 64 x B=1 batches: {amortization:.2}x");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"batched multi-query ring executor throughput\","
    );
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {n}, \"k\": {K}, \"rounds\": {rounds}, \"network\": \"in-memory\", \"start\": \"fixed\", \"seed\": {BASE_SEED}, \"reps\": {REPS}}},"
    );
    let _ = writeln!(json, "  \"amortization_b64_vs_b1\": {amortization:.3},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"batch_width\": {}, \"batch_ms\": {:.3}, \"batch_queries_per_sec\": {:.1}, \"sequential_ms\": {:.3}, \"sequential_queries_per_sec\": {:.1}, \"speedup_vs_sequential\": {:.3}, \"frames_sent\": {}, \"logical_messages\": {}, \"bytes_sent\": {}, \"mean_frame_bytes\": {:.1}}}{}",
            p.width,
            p.batch_ms,
            p.batch_qps,
            p.solo_ms,
            p.solo_qps,
            p.batch_qps / p.solo_qps,
            p.frames,
            p.logical,
            p.bytes,
            p.mean_frame_bytes,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"transcripts_identical_to_solo\": true");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
