//! Batched-executor throughput benchmark.
//!
//! Runs B ∈ {1, 8, 64, 256, 1024} homogeneous fixed-start queries over
//! the in-memory network twice — once as B sequential solo
//! `run_distributed` calls, once as a single `run_distributed_batch` —
//! and reports queries/sec, the amortization factor, and the wire
//! accounting (physical frames vs logical messages, per-frame and
//! per-query bytes under the compact codec, plus what the legacy
//! fixed-width codec would have sent).
//!
//! The run *asserts* the correctness gates before reporting numbers:
//! every batched transcript must be bit-identical to its solo run, the
//! batch path must not lose to the sequential path even at B = 1, the
//! mean batched frame at B = 64 must stay under the 1200-byte budget,
//! and batched queries/sec must rise strictly with width through
//! B = 256 (the cliff this benchmark exists to watch).
//!
//! Small widths finish in microseconds, so each timed pass runs the
//! workload `max(1, 256/B)` times and divides — every width is timed
//! over a comparable amount of work instead of a single noisy call.
//!
//! Usage: `throughput [n] [rounds] [out.json]`
//! Defaults: n = 6, rounds = 8, out = BENCH_throughput.json

use std::fmt::Write as _;
use std::time::Instant;

use privtopk_bench::{bench_locals, machine_json};
use privtopk_core::distributed::{run_distributed, run_distributed_batch, NetworkKind};
use privtopk_core::{derive_batch_seed, BatchJob, ProtocolConfig, RoundPolicy, StartPolicy};

const BASE_SEED: u64 = 24301;
const K: usize = 4;
const WIDTHS: [usize; 5] = [1, 8, 64, 256, 1024];
const REPS: u32 = 3;
/// Mean-frame budget at B = 64: well under half the 2312.6 B the
/// fixed-width codec produced at that width.
const B64_FRAME_BUDGET: f64 = 1200.0;

struct Point {
    width: usize,
    solo_ms: f64,
    batch_ms: f64,
    batch_qps: f64,
    solo_qps: f64,
    frames: u64,
    logical: u64,
    bytes: u64,
    baseline_bytes: u64,
    mean_frame_bytes: f64,
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(6);
    let rounds: u32 = args.next().and_then(|a| a.parse().ok()).unwrap_or(8);
    let out_path = args
        .next()
        .unwrap_or_else(|| "BENCH_throughput.json".to_string());

    let config = ProtocolConfig::topk(K)
        .with_start(StartPolicy::Fixed)
        .with_rounds(RoundPolicy::Fixed(rounds));
    let locals = bench_locals(n, K, BASE_SEED);

    eprintln!("throughput: n={n} k={K} rounds={rounds} reps={REPS} network=in-memory");

    let mut points = Vec::with_capacity(WIDTHS.len());
    for width in WIDTHS {
        let jobs: Vec<BatchJob> = (0..width as u64)
            .map(|i| {
                BatchJob::new(
                    config.clone(),
                    locals.clone(),
                    derive_batch_seed(BASE_SEED, i),
                )
            })
            .collect();

        // Correctness gate first: the batched transcripts must be
        // bit-identical to the solo runs they claim to amortize.
        let batch_out = run_distributed_batch(&jobs, NetworkKind::InMemory).expect("batch run");
        assert_eq!(batch_out.groups, 1, "homogeneous batch must form one group");
        for (i, job) in jobs.iter().enumerate() {
            let solo = run_distributed(&job.config, &job.locals, NetworkKind::InMemory, job.seed)
                .expect("solo run");
            assert_eq!(
                batch_out.transcripts[i], solo.transcript,
                "B={width} query {i} diverged from its solo run"
            );
        }

        // Timed passes: `iters` runs per pass so every width is timed
        // over ~256 queries of work, best of REPS passes for each path.
        let iters = (256 / width).max(1) as u32;
        let mut batch_ms = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            for _ in 0..iters {
                let out = run_distributed_batch(&jobs, NetworkKind::InMemory).expect("batch run");
                std::hint::black_box(out);
            }
            batch_ms = batch_ms.min(start.elapsed().as_secs_f64() * 1e3 / f64::from(iters));
        }
        let mut solo_ms = f64::INFINITY;
        for _ in 0..REPS {
            let start = Instant::now();
            for _ in 0..iters {
                for job in &jobs {
                    let out =
                        run_distributed(&job.config, &job.locals, NetworkKind::InMemory, job.seed)
                            .expect("solo run");
                    std::hint::black_box(out);
                }
            }
            solo_ms = solo_ms.min(start.elapsed().as_secs_f64() * 1e3 / f64::from(iters));
        }

        let point = Point {
            width,
            solo_ms,
            batch_ms,
            batch_qps: width as f64 / (batch_ms / 1e3),
            solo_qps: width as f64 / (solo_ms / 1e3),
            frames: batch_out.frames_sent,
            logical: batch_out.logical_messages,
            bytes: batch_out.bytes_sent,
            baseline_bytes: batch_out.baseline_bytes,
            mean_frame_bytes: batch_out.bytes_sent as f64 / batch_out.frames_sent as f64,
        };
        eprintln!(
            "  B={width:>4}: batch {batch_ms:>8.2} ms ({:>9.0} q/s)  solo {solo_ms:>8.2} ms ({:>9.0} q/s)  frames {} logical {} wire {} B (legacy {} B)",
            point.batch_qps, point.solo_qps, point.frames, point.logical, point.bytes,
            point.baseline_bytes
        );
        points.push(point);
    }

    // The batch-width cliff gate: queries/sec must rise strictly with
    // width through B = 256. (B = 1024 is reported but not gated — at
    // some width the kernel, not the transport, becomes the limit.)
    for pair in points.windows(2) {
        if pair[1].width > 256 {
            break;
        }
        assert!(
            pair[1].batch_qps > pair[0].batch_qps,
            "batch throughput must rise with width: B={} ({:.0} q/s) <= B={} ({:.0} q/s)",
            pair[1].width,
            pair[1].batch_qps,
            pair[0].width,
            pair[0].batch_qps
        );
    }

    // B = 1 must not pay for the batching machinery it doesn't use: the
    // batch path runs the same hop kernel with one shared scratch, so a
    // single-query batch has to stay within noise of the solo path.
    let b1 = points.iter().find(|p| p.width == 1).expect("B=1 point");
    let b1_speedup = b1.batch_qps / b1.solo_qps;
    assert!(
        b1_speedup >= 0.9,
        "B=1 batch ({:.0} q/s) regressed below 0.9x the sequential path ({:.0} q/s)",
        b1.batch_qps,
        b1.solo_qps
    );

    // Per-hop byte gates: a B=64 frame must undercut 64 solo frames and
    // stay under the compact-codec budget.
    let b64 = points.iter().find(|p| p.width == 64).expect("B=64 point");
    assert!(
        b64.mean_frame_bytes < 64.0 * b1.mean_frame_bytes,
        "batched frame ({:.1} B) must be smaller than 64 solo frames ({:.1} B)",
        b64.mean_frame_bytes,
        64.0 * b1.mean_frame_bytes
    );
    assert!(
        b64.mean_frame_bytes < B64_FRAME_BUDGET,
        "B=64 mean frame ({:.1} B) must stay under the {B64_FRAME_BUDGET} B budget",
        b64.mean_frame_bytes
    );
    let amortization = (b1.batch_ms * 64.0) / b64.batch_ms;
    eprintln!("  B=64 amortization vs 64 x B=1 batches: {amortization:.2}x");
    eprintln!("  B=1 batch vs sequential: {b1_speedup:.3}x");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(
        json,
        "  \"benchmark\": \"batched multi-query ring executor throughput\","
    );
    let _ = writeln!(json, "  \"machine\": {},", machine_json());
    let _ = writeln!(
        json,
        "  \"config\": {{\"n\": {n}, \"k\": {K}, \"rounds\": {rounds}, \"network\": \"in-memory\", \"start\": \"fixed\", \"seed\": {BASE_SEED}, \"reps\": {REPS}}},"
    );
    let _ = writeln!(json, "  \"amortization_b64_vs_b1\": {amortization:.3},");
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"batch_width\": {}, \"batch_ms\": {:.3}, \"batch_queries_per_sec\": {:.1}, \"sequential_ms\": {:.3}, \"sequential_queries_per_sec\": {:.1}, \"speedup_vs_sequential\": {:.3}, \"frames_sent\": {}, \"logical_messages\": {}, \"bytes_sent\": {}, \"baseline_bytes\": {}, \"mean_frame_bytes\": {:.1}, \"bytes_per_query\": {:.1}}}{}",
            p.width,
            p.batch_ms,
            p.batch_qps,
            p.solo_ms,
            p.solo_qps,
            p.batch_qps / p.solo_qps,
            p.frames,
            p.logical,
            p.bytes,
            p.baseline_bytes,
            p.mean_frame_bytes,
            p.bytes as f64 / p.width as f64,
            if i + 1 < points.len() { "," } else { "" }
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"transcripts_identical_to_solo\": true");
    json.push_str("}\n");

    std::fs::write(&out_path, &json).expect("write benchmark output");
    println!("wrote {out_path}");
}
