//! Shared helpers for the privtopk benchmark suite.
//!
//! The actual benchmarks live under `benches/`:
//!
//! - `protocols` — protocol execution cost vs `n`, `k` and protocol kind
//!   (the Section 4.2 efficiency claims).
//! - `figures` — regeneration cost of every paper figure (reduced trial
//!   counts; the full-fidelity run is the `all_figures` binary in
//!   `privtopk-experiments`).
//! - `transport` — wire codec and in-memory vs TCP messaging costs.
//! - `ablations` — the DESIGN.md ablations: randomization schedule
//!   family, per-round ring remapping, group-parallel max, and δ
//!   sensitivity.
//! - `knn` — private vs centralized kNN classification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use privtopk_datagen::DatasetBuilder;
use privtopk_domain::TopKVector;

/// Builds deterministic local top-k vectors for benchmarking.
///
/// # Panics
///
/// Panics on invalid shapes (benchmarks only pass valid ones).
#[must_use]
pub fn bench_locals(n: usize, k: usize, seed: u64) -> Vec<TopKVector> {
    DatasetBuilder::new(n)
        .rows_per_node(k)
        .seed(seed)
        .build_local_topk(k)
        .expect("valid benchmark dataset")
}

/// Logical core count of the machine running the benchmark (1 if the
/// platform refuses to say).
#[must_use]
pub fn logical_cores() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// JSON object describing the bench machine, embedded verbatim in every
/// BENCH_*.json so a number can never be compared across machines or
/// profiles by accident.
#[must_use]
pub fn machine_json() -> String {
    let profile = if cfg!(debug_assertions) {
        "debug"
    } else {
        "release"
    };
    format!(
        "{{\"logical_cores\": {}, \"cargo_profile\": \"{profile}\"}}",
        logical_cores()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_locals_shape() {
        let locals = bench_locals(5, 3, 1);
        assert_eq!(locals.len(), 5);
        assert!(locals.iter().all(|l| l.k() == 3));
    }

    #[test]
    fn machine_json_reports_cores_and_profile() {
        let json = machine_json();
        assert!(json.contains("\"logical_cores\""));
        assert!(json.contains("\"cargo_profile\""));
        assert!(logical_cores() >= 1);
    }
}
