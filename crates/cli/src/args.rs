//! Hand-rolled argument parsing (the offline dependency set has no CLI
//! crate, and the surface is small enough that one is not missed).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Flags that are bare switches (present/absent) rather than
/// `--flag value` pairs.
const BOOLEAN_FLAGS: &[&str] = &["stats", "json"];

/// CLI-level errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// No subcommand or an unknown one.
    UnknownCommand {
        /// What was typed.
        got: String,
    },
    /// A flag was missing its value or unknown.
    BadFlag {
        /// The offending token.
        flag: String,
    },
    /// A flag value failed to parse.
    BadValue {
        /// The flag.
        flag: String,
        /// The unparseable value.
        value: String,
    },
    /// Anything from the underlying library, stringified at the boundary.
    Execution(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::UnknownCommand { got } => {
                write!(f, "unknown command `{got}` (try `privtopk help`)")
            }
            CliError::BadFlag { flag } => write!(f, "unknown or incomplete flag `{flag}`"),
            CliError::BadValue { flag, value } => {
                write!(f, "invalid value `{value}` for `{flag}`")
            }
            CliError::Execution(msg) => write!(f, "{msg}"),
        }
    }
}

impl Error for CliError {}

/// The parsed subcommand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `privtopk query ...` / `privtopk audit ...` (audit = query +
    /// privacy report).
    Query {
        /// Whether to attach the LoP audit.
        audit: bool,
    },
    /// `privtopk analyze ...`
    Analyze,
    /// `privtopk knn ...` — federated kNN classification.
    Knn,
    /// `privtopk trace analyze <files...>` — merge per-node JSONL
    /// traces and reconstruct per-query critical paths.
    TraceAnalyze,
    /// `privtopk trace watch` — poll a live service metrics endpoint.
    TraceWatch,
    /// `privtopk trace dump` — run a standing service briefly and dump
    /// its always-on flight recorder to JSONL.
    TraceDump,
    /// `privtopk chaos run` — seeded chaos schedule against a standing
    /// service, with a bit-identity check and a healing-cost report.
    ChaosRun,
    /// `privtopk privacy report <files...>` — privacy-accounting report
    /// over collected traces.
    PrivacyReport,
    /// `privtopk store init` — create empty persistent node stores.
    StoreInit,
    /// `privtopk store ingest` — stream synthetic rows into stores.
    StoreIngest,
    /// `privtopk store compact` — rewrite store logs to live rows only.
    StoreCompact,
    /// `privtopk help`
    Help,
}

/// Parsed command line: the subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct Arguments {
    /// The subcommand.
    pub command: Command,
    flags: HashMap<String, String>,
    /// Bare (non-flag) operands, in order. Only the `trace` commands
    /// accept them — file paths make poor `--flag value` pairs — and
    /// every other command still rejects stray tokens.
    positionals: Vec<String>,
}

impl Arguments {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`CliError`] for unknown commands or malformed flags.
    pub fn parse<I, S>(raw: I) -> Result<Self, CliError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut iter = raw.into_iter().map(Into::into);
        let command = match iter.next().as_deref() {
            Some("query") => Command::Query { audit: false },
            Some("audit") => Command::Query { audit: true },
            Some("analyze") => Command::Analyze,
            Some("knn") => Command::Knn,
            Some("trace") => match iter.next().as_deref() {
                Some("analyze") => Command::TraceAnalyze,
                Some("watch") => Command::TraceWatch,
                Some("dump") => Command::TraceDump,
                other => {
                    return Err(CliError::UnknownCommand {
                        got: format!("trace {}", other.unwrap_or("")),
                    })
                }
            },
            Some("chaos") => match iter.next().as_deref() {
                Some("run") => Command::ChaosRun,
                other => {
                    return Err(CliError::UnknownCommand {
                        got: format!("chaos {}", other.unwrap_or("")),
                    })
                }
            },
            Some("privacy") => match iter.next().as_deref() {
                Some("report") => Command::PrivacyReport,
                other => {
                    return Err(CliError::UnknownCommand {
                        got: format!("privacy {}", other.unwrap_or("")),
                    })
                }
            },
            Some("store") => match iter.next().as_deref() {
                Some("init") => Command::StoreInit,
                Some("ingest") => Command::StoreIngest,
                Some("compact") => Command::StoreCompact,
                other => {
                    return Err(CliError::UnknownCommand {
                        got: format!("store {}", other.unwrap_or("")),
                    })
                }
            },
            Some("help") | None => Command::Help,
            Some(other) => {
                return Err(CliError::UnknownCommand {
                    got: other.to_string(),
                })
            }
        };
        let accepts_positionals = matches!(
            command,
            Command::TraceAnalyze | Command::TraceWatch | Command::PrivacyReport
        );
        let mut flags = HashMap::new();
        let mut positionals = Vec::new();
        let rest: Vec<String> = iter.collect();
        let mut i = 0;
        while i < rest.len() {
            let token = &rest[i];
            let Some(name) = token.strip_prefix("--") else {
                if accepts_positionals {
                    positionals.push(token.clone());
                    i += 1;
                    continue;
                }
                return Err(CliError::BadFlag {
                    flag: token.clone(),
                });
            };
            // Bare boolean switches take no value.
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let Some(value) = rest.get(i + 1) else {
                return Err(CliError::BadFlag {
                    flag: token.clone(),
                });
            };
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Arguments {
            command,
            flags,
            positionals,
        })
    }

    /// Bare operands (trace-file paths for `trace analyze`).
    #[must_use]
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Whether a bare boolean switch was given.
    #[must_use]
    pub fn has(&self, flag: &str) -> bool {
        self.flags.contains_key(flag)
    }

    /// A string flag with a default.
    #[must_use]
    pub fn get_or<'a>(&'a self, flag: &str, default: &'a str) -> &'a str {
        self.flags.get(flag).map_or(default, String::as_str)
    }

    /// An optional string flag.
    #[must_use]
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.flags.get(flag).map(String::as_str)
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`CliError::BadValue`] if present but unparseable.
    pub fn parse_or<T: std::str::FromStr>(&self, flag: &str, default: T) -> Result<T, CliError> {
        match self.flags.get(flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| CliError::BadValue {
                flag: format!("--{flag}"),
                value: v.clone(),
            }),
        }
    }
}

/// The help text printed by `privtopk help`.
#[must_use]
pub fn usage() -> String {
    "privtopk — privacy-preserving top-k queries across private databases\n\
     \n\
     USAGE:\n\
     privtopk query   [--kind max|min|topk|bottomk|kth] [--k K] [--attribute NAME]\n\
     \u{20}                [--csv-dir DIR | --nodes N --rows R --dist uniform|normal|zipf]\n\
     \u{20}                [--epsilon E] [--seed S] [--batch B] [--repeat N --pipeline D]\n\
     \u{20}                [--groups G] [--network memory|tcp] [--trace-out PATH] [--stats]\n\
     privtopk audit   (same flags except --batch; also prints the privacy audit)\n\
     privtopk analyze [--p0 P] [--d D] [--epsilon E] [--rounds R]\n\
     privtopk knn     --query X,Y[,...] [--k K] [--csv-dir DIR | --nodes N]\n\
     \u{20}                (CSV: feature columns + a `label` column)\n\
     privtopk trace analyze FILE... [--json] [--stall-multiplier M]\n\
     \u{20}                [--nodes N --rounds R] [--lop-alert X]\n\
     \u{20}                [--incident-gap-us US] [--bytes-per-frame B]\n\
     privtopk trace watch --addr HOST:PORT [--interval-ms MS] [--count N]\n\
     \u{20}                [--lop-alert X] [--max-misses N]\n\
     privtopk trace dump  --out PATH [--nodes N] [--k K] [--queries Q] [--seed S]\n\
     privtopk chaos run   [--nodes N] [--k K] [--incidents I] [--seed S]\n\
     \u{20}                [--pipeline D] [--json] [--flight-out PATH]\n\
     privtopk privacy report FILE... [--json] [--k K] [--trials T] [--seed S]\n\
     privtopk store init    --store-dir DIR --nodes N [--domain-min LO --domain-max HI]\n\
     privtopk store ingest  --store-dir DIR --nodes N --rows R [--dist uniform|normal|zipf]\n\
     \u{20}                [--seed S] [--chunk C]\n\
     privtopk store compact --store-dir DIR\n\
     privtopk help\n\
     \n\
     every command also accepts --threads N: worker threads for the\n\
     experiment layer's trial executor (0 = all cores; results are\n\
     identical for any value, only wall-clock time changes).\n\
     \n\
     query over CSV: --csv-dir must contain one <name>.csv per participant\n\
     (header row with column names; integer cells).\n\
     \n\
     --batch B runs B copies of the query as one batched ring execution\n\
     (per-query seeds derived from --seed; results match B solo runs).\n\
     \n\
     --repeat N answers the query N times through one persistent service\n\
     (long-lived node workers, standing ring); --pipeline D keeps up to D\n\
     queries in flight at once. Per-query seeds are derived from --seed\n\
     and every result matches its solo run bit for bit.\n\
     \n\
     --groups G (with --kind max) runs the Section 4.2 group-parallel\n\
     optimization: G subrings then a leader ring, reporting the critical\n\
     path alongside total messages (needs G = 1 or G >= 3, nodes >= 3G).\n\
     \n\
     --network memory|tcp runs the query over a real transport (threads\n\
     plus channels, or TCP loopback) instead of the in-process simulation;\n\
     results are bit-identical either way.\n\
     \n\
     telemetry (query command): --trace-out PATH writes a JSONL span trace\n\
     (protocol coordinates and timings only — never data values) and\n\
     --stats prints per-phase latency quantiles, counters, and — for\n\
     --repeat runs — the live service pipeline figures. Tracing never\n\
     changes results or transcripts. --metrics-addr HOST:PORT (with\n\
     --repeat) additionally serves live Prometheus metrics while the\n\
     service runs.\n\
     \n\
     trace analyze merges one or more JSONL trace files (per-node or\n\
     combined) into a causally ordered view, reconstructs each query's\n\
     critical path (encode/send/recv/step/queue per hop), and reports\n\
     stalls, per-node load skew and retransmissions. --nodes/--rounds\n\
     validate the chains against the ring topology; --json emits the\n\
     machine-readable twin of the text report; --stall-multiplier M\n\
     flags hops slower than M x the query's median hop (default 3).\n\
     \n\
     trace watch polls a service's --metrics-addr endpoint every\n\
     --interval-ms (default 1000), printing each scrape's samples;\n\
     --count N stops after N polls (default 0 = forever).\n\
     \n\
     privacy accounting: a standing service (--repeat) folds every\n\
     query's protocol coordinates — never data values — into live\n\
     per-node LoP estimates served on --metrics-addr. privacy report\n\
     re-derives the same estimates offline from trace files (ring size\n\
     and rounds are inferred from the chains; --k, --trials and --seed\n\
     tune the shadow estimation). --lop-alert X adds a privacy panel to\n\
     trace analyze, and makes trace watch flag any scrape whose worst\n\
     per-node LoP gauge exceeds X.\n\
     \n\
     chaos run executes a seeded schedule of incidents — node crash,\n\
     ring partition, sustained loss — against a standing service while\n\
     a query workload flows, then proves every answer bit-identical to\n\
     a fault-free run and prints the analyzer's per-incident healing\n\
     cost (detect -> retransmit storm -> steady state, per node).\n\
     --incidents I schedules I windows (default 2); --flight-out PATH\n\
     also dumps the flight recorder's recent spans as JSONL.\n\
     \n\
     trace dump runs a short standing-service workload and writes the\n\
     recorder's always-on flight ring — the most recent spans, kept\n\
     even when full tracing is off — to --out as JSONL, ready for\n\
     trace analyze. trace watch retries transient scrape failures with\n\
     bounded backoff, giving up after --max-misses consecutive misses\n\
     (default 3), and prints SLO burn-rate alert lines whenever the\n\
     scraped privtopk_slo_* gauges say an objective is burning.\n\
     \n\
     store init/ingest/compact manage persistent per-node stores\n\
     (append-only log + incremental top-k candidate index) under\n\
     --store-dir, one subdirectory per node. ingest streams synthetic\n\
     rows in chunks of --chunk (default 65536) so memory stays bounded\n\
     at any --rows. query accepts --store-dir in place of synthetic\n\
     data: with --repeat the standing service answers from per-node\n\
     snapshots, and --write-rate W inserts W rows/sec of background\n\
     writes during the run without perturbing any transcript.\n"
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_commands() {
        assert_eq!(
            Arguments::parse(["query"]).unwrap().command,
            Command::Query { audit: false }
        );
        assert_eq!(
            Arguments::parse(["audit"]).unwrap().command,
            Command::Query { audit: true }
        );
        assert_eq!(
            Arguments::parse(["analyze"]).unwrap().command,
            Command::Analyze
        );
        assert_eq!(Arguments::parse(["knn"]).unwrap().command, Command::Knn);
        assert_eq!(Arguments::parse(["help"]).unwrap().command, Command::Help);
        assert_eq!(
            Arguments::parse(Vec::<String>::new()).unwrap().command,
            Command::Help
        );
        assert!(Arguments::parse(["frobnicate"]).is_err());
    }

    #[test]
    fn parses_flags() {
        let args = Arguments::parse(["query", "--k", "5", "--kind", "topk"]).unwrap();
        assert_eq!(args.get_or("kind", "max"), "topk");
        assert_eq!(args.parse_or("k", 1usize).unwrap(), 5);
        assert_eq!(args.parse_or("nodes", 4usize).unwrap(), 4);
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_flags() {
        assert!(Arguments::parse(["query", "k", "5"]).is_err());
        assert!(Arguments::parse(["query", "--k"]).is_err());
        let args = Arguments::parse(["query", "--k", "banana"]).unwrap();
        assert!(args.parse_or("k", 1usize).is_err());
    }

    #[test]
    fn boolean_switches_take_no_value() {
        let args = Arguments::parse(["query", "--stats", "--k", "3"]).unwrap();
        assert!(args.has("stats"));
        assert_eq!(args.parse_or("k", 1usize).unwrap(), 3);
        // Trailing switch needs no value either.
        let args = Arguments::parse(["query", "--k", "3", "--stats"]).unwrap();
        assert!(args.has("stats"));
        assert!(!Arguments::parse(["query"]).unwrap().has("stats"));
    }

    #[test]
    fn chaos_and_trace_dump_subcommands_parse() {
        assert_eq!(
            Arguments::parse(["chaos", "run", "--incidents", "2"])
                .unwrap()
                .command,
            Command::ChaosRun
        );
        let dump = Arguments::parse(["trace", "dump", "--out", "x.jsonl"]).unwrap();
        assert_eq!(dump.command, Command::TraceDump);
        assert_eq!(dump.get("out"), Some("x.jsonl"));
        assert!(Arguments::parse(["chaos", "break"]).is_err());
        assert!(Arguments::parse(["chaos"]).is_err());
    }

    #[test]
    fn usage_mentions_all_commands() {
        let u = usage();
        for cmd in [
            "query",
            "audit",
            "analyze",
            "knn",
            "trace analyze",
            "trace watch",
            "trace dump",
            "chaos run",
            "privacy report",
            "store init",
            "store ingest",
            "store compact",
            "help",
        ] {
            assert!(u.contains(cmd), "usage misses `{cmd}`");
        }
    }

    #[test]
    fn trace_commands_take_positionals_and_flags() {
        let args = Arguments::parse(["trace", "analyze", "a.jsonl", "b.jsonl", "--json"]).unwrap();
        assert_eq!(args.command, Command::TraceAnalyze);
        assert_eq!(args.positionals(), ["a.jsonl", "b.jsonl"]);
        assert!(args.has("json"));
        // Positionals and flags interleave; order of files is kept.
        let args = Arguments::parse([
            "trace",
            "analyze",
            "x.jsonl",
            "--stall-multiplier",
            "5",
            "y.jsonl",
        ])
        .unwrap();
        assert_eq!(args.positionals(), ["x.jsonl", "y.jsonl"]);
        assert_eq!(args.parse_or("stall-multiplier", 3.0).unwrap(), 5.0);
        let args =
            Arguments::parse(["trace", "watch", "--addr", "127.0.0.1:9", "--count", "2"]).unwrap();
        assert_eq!(args.command, Command::TraceWatch);
        assert_eq!(args.get("addr"), Some("127.0.0.1:9"));
        // Unknown trace subcommands are rejected, and other commands
        // still refuse bare tokens.
        assert!(Arguments::parse(["trace"]).is_err());
        assert!(Arguments::parse(["trace", "frobnicate"]).is_err());
        assert!(Arguments::parse(["query", "a.jsonl"]).is_err());
    }

    #[test]
    fn privacy_report_takes_positionals_and_flags() {
        let args =
            Arguments::parse(["privacy", "report", "a.jsonl", "--json", "--k", "2"]).unwrap();
        assert_eq!(args.command, Command::PrivacyReport);
        assert_eq!(args.positionals(), ["a.jsonl"]);
        assert!(args.has("json"));
        assert_eq!(args.parse_or("k", 1usize).unwrap(), 2);
        assert!(Arguments::parse(["privacy"]).is_err());
        assert!(Arguments::parse(["privacy", "frobnicate"]).is_err());
    }

    #[test]
    fn store_subcommands_parse() {
        let args =
            Arguments::parse(["store", "init", "--store-dir", "/tmp/s", "--nodes", "4"]).unwrap();
        assert_eq!(args.command, Command::StoreInit);
        assert_eq!(args.get("store-dir"), Some("/tmp/s"));
        assert_eq!(
            Arguments::parse(["store", "ingest", "--rows", "100"])
                .unwrap()
                .command,
            Command::StoreIngest
        );
        assert_eq!(
            Arguments::parse(["store", "compact", "--store-dir", "d"])
                .unwrap()
                .command,
            Command::StoreCompact
        );
        assert!(Arguments::parse(["store"]).is_err());
        assert!(Arguments::parse(["store", "frobnicate"]).is_err());
        // Store commands take no bare positionals.
        assert!(Arguments::parse(["store", "init", "stray"]).is_err());
    }
}
