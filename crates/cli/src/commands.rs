//! Command execution.

use std::io::Write;
use std::path::Path;

use privtopk_analysis::{correctness, efficiency, privacy_bounds, RandomizationParams};
use privtopk_core::distributed::NetworkKind;
use privtopk_core::groups::grouped_max;
use privtopk_core::{derive_batch_seed, ProtocolConfig, RoundPolicy, ServiceStats};
use privtopk_datagen::{DataDistribution, DatasetBuilder, PrivateDatabase};
use privtopk_domain::{NodeId, TopKVector, Value, ValueDomain};
use privtopk_federation::{
    ChaosPlan, Federation, QueryBatch, QueryKind, QuerySpec, DEFAULT_HEAL_BUDGET,
};
use privtopk_knn::{centralized_knn, KnnConfig, LabeledPoint, PrivateKnnClassifier};
use privtopk_observe::{
    analyze, AnalyzerConfig, CollectedTrace, PrivacyLedger, Recorder, TraceCollector,
};
use privtopk_privacy::{
    AccountantSnapshot, LopAccountant, LopAccumulator, SuccessorAdversary, DEFAULT_SHADOW_SEED,
    DEFAULT_SHADOW_TRIALS,
};
use privtopk_store::{publish_store_metrics, NodeStore};

use crate::args::usage;
use crate::csv::load_csv_dir;
use crate::{Arguments, CliError, Command};

/// Executes a parsed command, writing human output to `out`.
///
/// # Errors
///
/// Returns [`CliError`] for bad flags or execution failures.
pub fn run(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    // `--threads N` configures the experiment layer's trial-executor
    // default for everything this process runs (0 = hardware default).
    // Results never depend on it; only wall-clock time does.
    let threads: usize = args.parse_or("threads", 0)?;
    privtopk_experiments::pool::set_default_threads(threads);
    match args.command {
        Command::Help => {
            write_out(out, &usage())?;
            Ok(())
        }
        Command::Analyze => run_analyze(args, out),
        Command::Knn => run_knn(args, out),
        Command::Query { audit } => run_query(args, audit, out),
        Command::TraceAnalyze => run_trace_analyze(args, out),
        Command::TraceWatch => run_trace_watch(args, out),
        Command::TraceDump => run_trace_dump(args, out),
        Command::ChaosRun => run_chaos_run(args, out),
        Command::PrivacyReport => run_privacy_report(args, out),
        Command::StoreInit => run_store_init(args, out),
        Command::StoreIngest => run_store_ingest(args, out),
        Command::StoreCompact => run_store_compact(args, out),
    }
}

/// Resolves `--store-dir`, required by every store subcommand.
fn store_dir(args: &Arguments) -> Result<std::path::PathBuf, CliError> {
    args.get("store-dir")
        .map(std::path::PathBuf::from)
        .ok_or(CliError::BadFlag {
            flag: "--store-dir".into(),
        })
}

/// Per-node store directory layout: `<store-dir>/node<i>`.
fn node_store_dir(root: &Path, i: usize) -> std::path::PathBuf {
    root.join(format!("node{i}"))
}

/// Opens the `node0..` stores under `root`, in node order.
fn open_stores(root: &Path) -> Result<Vec<NodeStore>, CliError> {
    let mut stores = Vec::new();
    loop {
        let dir = node_store_dir(root, stores.len());
        if !dir.join(privtopk_store::log::LOG_FILE).exists() {
            break;
        }
        stores.push(
            NodeStore::open(&dir)
                .map_err(|e| CliError::Execution(format!("{}: {e}", dir.display())))?,
        );
    }
    if stores.is_empty() {
        return Err(CliError::Execution(format!(
            "no node stores under {} (run `privtopk store init` first)",
            root.display()
        )));
    }
    Ok(stores)
}

/// `privtopk store init --store-dir DIR --nodes N` — create empty
/// persistent stores, one per node.
fn run_store_init(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let root = store_dir(args)?;
    let nodes: usize = args.parse_or("nodes", 4)?;
    if nodes == 0 {
        return Err(CliError::Execution("--nodes must be at least 1".into()));
    }
    let lo: i64 = args.parse_or("domain-min", 1i64)?;
    let hi: i64 = args.parse_or("domain-max", 10_000i64)?;
    let domain = ValueDomain::new(Value::new(lo), Value::new(hi))
        .map_err(|e| CliError::Execution(e.to_string()))?;
    for i in 0..nodes {
        let dir = node_store_dir(&root, i);
        NodeStore::create(&dir, domain)
            .map_err(|e| CliError::Execution(format!("{}: {e}", dir.display())))?;
        write_out(out, &format!("node#{i}: created {}\n", dir.display()))?;
    }
    write_out(
        out,
        &format!(
            "store: {nodes} empty node stores under {} (domain [{lo}, {hi}])\n",
            root.display()
        ),
    )
}

/// `privtopk store ingest` — stream synthetic rows chunk-by-chunk into
/// the node stores; peak memory is bounded by the chunk size and the
/// candidate index, never by `--rows`.
fn run_store_ingest(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let root = store_dir(args)?;
    let stores = open_stores(&root)?;
    let nodes = stores.len();
    let rows: usize = args.parse_or("rows", 1000)?;
    let seed: u64 = args.parse_or("seed", 0x5EED)?;
    let chunk: usize = args.parse_or("chunk", 65_536)?;
    if chunk == 0 {
        return Err(CliError::Execution("--chunk must be at least 1".into()));
    }
    let builder = DatasetBuilder::new(nodes)
        .rows_per_node(rows)
        .domain(stores[0].domain())
        .distribution(parse_distribution(args)?)
        .seed(seed);
    for (i, store) in stores.iter().enumerate() {
        let mut stream = builder
            .node_value_stream(i)
            .map_err(|e| CliError::Execution(e.to_string()))?;
        loop {
            let mut taken = 0usize;
            store
                .insert_many(stream.by_ref().take(chunk).inspect(|_| taken += 1))
                .map_err(|e| CliError::Execution(e.to_string()))?;
            if taken < chunk {
                break;
            }
        }
        let stats = store.stats();
        write_out(
            out,
            &format!(
                "node#{i}: +{rows} rows (total {}, index depth {})\n",
                stats.rows, stats.index_depth
            ),
        )?;
    }
    write_out(
        out,
        &format!("store: ingested {rows} rows into each of {nodes} nodes\n"),
    )
}

/// `privtopk store compact --store-dir DIR` — rewrite each node's log
/// to live rows only.
fn run_store_compact(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let root = store_dir(args)?;
    let stores = open_stores(&root)?;
    for (i, store) in stores.iter().enumerate() {
        let before = store.stats().log_records;
        store
            .compact()
            .map_err(|e| CliError::Execution(e.to_string()))?;
        let after = store.stats().log_records;
        write_out(
            out,
            &format!("node#{i}: compacted {before} -> {after} log records\n"),
        )?;
    }
    write_out(
        out,
        &format!("store: compacted {} node stores\n", stores.len()),
    )
}

/// Reads every positional operand as a JSONL trace file into one
/// collector (shared by `trace analyze` and `privacy report`).
fn collect_trace_files(args: &Arguments, what: &str) -> Result<CollectedTrace, CliError> {
    if args.positionals().is_empty() {
        return Err(CliError::Execution(format!(
            "{what} needs at least one JSONL trace file"
        )));
    }
    let mut collector = TraceCollector::new();
    for path in args.positionals() {
        let content = std::fs::read_to_string(path)
            .map_err(|e| CliError::Execution(format!("cannot read {path}: {e}")))?;
        collector.ingest_jsonl(path, &content);
    }
    Ok(collector.finish())
}

/// `--lop-alert X`, parsed when present.
fn parse_lop_alert(args: &Arguments) -> Result<Option<f64>, CliError> {
    match args.get("lop-alert") {
        None => Ok(None),
        Some(_) => Ok(Some(args.parse_or("lop-alert", 0.0)?)),
    }
}

/// Replays a collected trace's protocol coordinates — and nothing else —
/// through a privacy accountant: ring size and round count are inferred
/// per query from its hop chain (`--nodes` overrides the ring size), and
/// each query is observed under those coordinates exactly as a live
/// service would have observed it.
fn account_trace(args: &Arguments, trace: &CollectedTrace) -> Result<LopAccountant, CliError> {
    let k: usize = args.parse_or("k", 1)?;
    let trials: usize = args.parse_or("trials", DEFAULT_SHADOW_TRIALS)?;
    let shadow_seed: u64 = args.parse_or("seed", DEFAULT_SHADOW_SEED)?;
    if trials == 0 {
        return Err(CliError::Execution("--trials must be at least 1".into()));
    }
    let nodes_flag: usize = args.parse_or("nodes", 0)?;
    let accountant = LopAccountant::with_budget(trials, shadow_seed);
    for query in trace.queries() {
        let mut n = nodes_flag;
        let mut rounds = 0u32;
        for span in trace.chain(query) {
            if nodes_flag == 0 {
                if let Some(hop) = span.event.ctx.hop {
                    n = n.max(hop as usize + 1);
                }
            }
            if let Some(round) = span.event.ctx.round {
                rounds = rounds.max(round);
            }
        }
        if n < 3 || rounds == 0 {
            continue; // chain too fragmentary to carry coordinates
        }
        let config = ProtocolConfig::topk(k.max(1))
            .with_schedule(privtopk_core::Schedule::paper_default())
            .with_rounds(RoundPolicy::Fixed(rounds));
        accountant.observe(&config, n, rounds);
    }
    Ok(accountant)
}

/// Flattens an accountant snapshot into the observability layer's
/// privacy-agnostic ledger.
fn ledger_from_snapshot(snapshot: &AccountantSnapshot) -> PrivacyLedger {
    PrivacyLedger {
        queries_accounted: snapshot.queries_accounted,
        per_node_lop: snapshot.per_node.iter().map(|e| e.lop).collect(),
        per_node_ci95: snapshot.per_node.iter().map(|e| e.ci95).collect(),
        per_node_class: snapshot
            .per_node
            .iter()
            .map(|e| e.class.to_string())
            .collect(),
        average_lop: snapshot.average_lop,
        worst_lop: snapshot.worst_lop,
        worst_class: snapshot
            .per_node
            .iter()
            .map(|e| e.class)
            .max()
            .map(|c| c.to_string())
            .unwrap_or_default(),
    }
}

/// `privtopk privacy report FILE...` — re-derive the live accountant's
/// per-node LoP estimates offline from collected trace files.
fn run_privacy_report(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let trace = collect_trace_files(args, "privacy report")?;
    let accountant = account_trace(args, &trace)?;
    let snapshot = accountant.snapshot();
    if snapshot.queries_accounted == 0 {
        return Err(CliError::Execution(
            "no complete query chains found: the traces carry no (round, hop) coordinates to account"
                .into(),
        ));
    }
    if args.has("json") {
        let mut json = format!(
            "{{\"queries_accounted\":{},\"average_lop\":{:.6},\"worst_lop\":{:.6},\"per_node\":[",
            snapshot.queries_accounted, snapshot.average_lop, snapshot.worst_lop
        );
        for (i, e) in snapshot.per_node.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"node\":{},\"lop\":{:.6},\"ci95\":{:.6},\"class\":\"{}\"}}",
                e.node, e.lop, e.ci95, e.class
            ));
        }
        json.push_str("],\"spectrum\":{");
        for (i, (label, count)) in snapshot.spectrum.as_labeled().iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!("\"{label}\":{count}"));
        }
        json.push_str("}}");
        return write_out(out, &format!("{json}\n"));
    }
    let mut text = format!(
        "privacy report: {} queries accounted across {} nodes\n",
        snapshot.queries_accounted,
        snapshot.per_node.len()
    );
    for e in &snapshot.per_node {
        text.push_str(&format!(
            "  node#{}: LoP {:.4} +-{:.4} ({})\n",
            e.node, e.lop, e.ci95, e.class
        ));
    }
    text.push_str(&format!(
        "  average {:.4}, worst {:.4}\n",
        snapshot.average_lop, snapshot.worst_lop
    ));
    text.push_str("  spectrum:");
    for (label, count) in snapshot.spectrum.as_labeled() {
        if count > 0 {
            text.push_str(&format!(" {label} x{count}"));
        }
    }
    text.push('\n');
    write_out(out, &text)
}

/// `privtopk trace analyze FILE...` — merge per-node JSONL traces into
/// one causally ordered view and report each query's critical path.
fn run_trace_analyze(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let mut trace = collect_trace_files(args, "trace analyze")?;
    // With a declared topology, every chain is validated against it;
    // otherwise completeness is inferred from the trace's own bounds.
    let nodes: usize = args.parse_or("nodes", 0)?;
    let rounds: u32 = args.parse_or("rounds", 0)?;
    if nodes > 0 && rounds > 0 {
        trace.validate_topology(nodes, rounds);
    }
    // The privacy panel is strictly opt-in: without --lop-alert the
    // report is byte-identical to earlier releases.
    let lop_alert = parse_lop_alert(args)?;
    if lop_alert.is_some() {
        let accountant = account_trace(args, &trace)?;
        trace.privacy = Some(ledger_from_snapshot(&accountant.snapshot()));
    }
    let defaults = AnalyzerConfig::default();
    let bytes_hint: f64 = args.parse_or("bytes-per-frame", 0.0)?;
    let config = AnalyzerConfig {
        stall_multiplier: args.parse_or("stall-multiplier", defaults.stall_multiplier)?,
        incident_gap_us: args.parse_or("incident-gap-us", defaults.incident_gap_us)?,
        bytes_per_frame_hint: (bytes_hint > 0.0).then_some(bytes_hint),
    };
    let analysis = analyze(&trace, &config);
    if args.has("json") {
        return write_out(out, &format!("{}\n", analysis.to_json()));
    }
    write_out(out, &analysis.to_string())?;
    if let (Some(threshold), Some(privacy)) = (lop_alert, &analysis.privacy) {
        if privacy.worst_lop > threshold {
            write_out(
                out,
                &format!(
                    "privacy alert: worst LoP {:.4} exceeds --lop-alert {threshold}\n",
                    privacy.worst_lop
                ),
            )?;
        } else {
            write_out(
                out,
                &format!(
                    "privacy ok: worst LoP {:.4} within --lop-alert {threshold}\n",
                    privacy.worst_lop
                ),
            )?;
        }
    }
    Ok(())
}

/// `privtopk trace watch --addr HOST:PORT` — poll a live service
/// metrics endpoint, printing each scrape's samples and any firing
/// SLO burn-rate alerts. Transient scrape failures are retried with
/// bounded exponential backoff; `--max-misses` consecutive misses
/// (default 3) end the watch with an error.
fn run_trace_watch(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let raw_addr = args.get("addr").ok_or(CliError::BadFlag {
        flag: "--addr".into(),
    })?;
    let addr: std::net::SocketAddr = raw_addr.parse().map_err(|_| CliError::BadValue {
        flag: "--addr".into(),
        value: raw_addr.into(),
    })?;
    let interval = std::time::Duration::from_millis(args.parse_or("interval-ms", 1000u64)?);
    let count: u64 = args.parse_or("count", 0u64)?;
    let max_misses: u32 = args.parse_or("max-misses", 3u32)?.max(1);
    let lop_alert = parse_lop_alert(args)?;
    let mut poll = 0u64;
    let mut misses = 0u32;
    loop {
        match privtopk_observe::scrape(&addr) {
            Ok(body) => {
                misses = 0;
                poll += 1;
                let mut text = format!("--- poll {poll} ---\n");
                for line in body
                    .lines()
                    .filter(|l| !l.starts_with('#') && !l.is_empty())
                {
                    text.push_str(line);
                    text.push('\n');
                }
                for alert in parse_slo_alerts(&body) {
                    text.push_str(&alert);
                    text.push('\n');
                }
                if let Some(threshold) = lop_alert {
                    for (node, lop) in parse_lop_node_gauges(&body) {
                        if lop > threshold {
                            text.push_str(&format!(
                                "privacy alert: node {node} LoP {lop:.4} exceeds --lop-alert {threshold}\n"
                            ));
                        }
                    }
                }
                write_out(out, &text)?;
                if count > 0 && poll >= count {
                    return Ok(());
                }
                std::thread::sleep(interval);
            }
            Err(e) => {
                misses += 1;
                if misses >= max_misses {
                    // Budget exhausted: final error either way, so a
                    // flapping endpoint cannot wedge the watch forever.
                    return Err(CliError::Execution(if poll == 0 {
                        format!("cannot scrape {addr}: {e} ({misses} consecutive misses)")
                    } else {
                        format!("lost {addr} after {poll} polls: {e} ({misses} consecutive misses)")
                    }));
                }
                write_out(
                    out,
                    &format!("--- miss {misses}/{max_misses}: {e}; retrying ---\n"),
                )?;
                // Bounded backoff: 1x, 2x, 4x ... the poll interval,
                // capped at 8x so recovery detection stays prompt.
                let factor = 2u32.saturating_pow(misses - 1).min(8);
                std::thread::sleep(interval * factor);
            }
        }
    }
}

/// Pulls firing SLO alerts out of a scrape body: when a
/// `privtopk_slo_*_alert` gauge reads 1, render the matching burn-rate
/// line from the `_burn_short`/`_burn_long` gauges next to it.
fn parse_slo_alerts(body: &str) -> Vec<String> {
    let gauge = |name: &str| -> Option<f64> {
        body.lines().find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse().ok())
        })
    };
    let mut alerts = Vec::new();
    for objective in ["latency", "availability"] {
        if gauge(&format!("privtopk_slo_{objective}_alert ")) == Some(1.0) {
            let short = gauge(&format!("privtopk_slo_{objective}_burn_short ")).unwrap_or(0.0);
            let long = gauge(&format!("privtopk_slo_{objective}_burn_long ")).unwrap_or(0.0);
            alerts.push(format!(
                "SLO ALERT {objective}: burn {short:.2}x short / {long:.2}x long"
            ));
        }
    }
    alerts
}

/// Pulls `(node, lop)` pairs out of a Prometheus scrape body's
/// `privtopk_privacy_lop_node{node="N"} V` sample lines.
fn parse_lop_node_gauges(body: &str) -> Vec<(u32, f64)> {
    let mut gauges = Vec::new();
    for line in body.lines() {
        let Some(rest) = line.strip_prefix("privtopk_privacy_lop_node{node=\"") else {
            continue;
        };
        let Some((node, value)) = rest.split_once("\"} ") else {
            continue;
        };
        if let (Ok(node), Ok(value)) = (node.parse(), value.trim().parse()) {
            gauges.push((node, value));
        }
    }
    gauges
}

/// `privtopk chaos run` — execute a seeded incident schedule (node
/// crash, ring partition, sustained loss) against a standing service
/// while a query workload flows, prove every answer bit-identical to a
/// fault-free run, and report the analyzer's per-incident healing cost.
fn run_chaos_run(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let nodes: usize = args.parse_or("nodes", 5)?;
    let k: usize = args.parse_or("k", 3)?;
    let incidents: usize = args.parse_or("incidents", 2)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let depth: usize = args.parse_or("pipeline", 8)?;
    let dbs = DatasetBuilder::new(nodes)
        .rows_per_node((k.max(2)) * 4)
        .seed(seed)
        .build()
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let federation = Federation::new(dbs).map_err(|e| CliError::Execution(e.to_string()))?;
    let spec = QuerySpec::top_k("value", k);
    let plan = ChaosPlan::seeded(seed, nodes as u32, incidents);
    plan.validate(DEFAULT_HEAL_BUDGET)
        .map_err(|e| CliError::Execution(e.to_string()))?;

    let recorder = Recorder::new();
    let (mut chaotic, state) = federation
        .serve_chaos_traced(&spec, depth, recorder.clone(), &plan)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    state.arm();
    // Waves of queries until every incident window has opened and
    // closed, so the whole schedule hits live traffic.
    let mut seeds = Vec::new();
    let mut outcomes = Vec::new();
    let mut wave = 0u64;
    while !state.quiescent() || wave == 0 {
        let batch: Vec<u64> = (0..depth as u64)
            .map(|i| derive_batch_seed(seed ^ wave.wrapping_mul(0x9E37), i))
            .collect();
        outcomes.extend(
            chaotic
                .query_many(&batch)
                .map_err(|e| CliError::Execution(e.to_string()))?,
        );
        seeds.extend(batch);
        wave += 1;
    }
    let stats = chaotic.stats();
    let flight = chaotic.dump_flight_recorder();
    chaotic
        .shutdown()
        .map_err(|e| CliError::Execution(e.to_string()))?;

    // The same seeds on a fault-free standing service must produce
    // byte-identical values and transcripts.
    let mut clean = federation
        .serve(&spec, NetworkKind::InMemory, depth)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let baseline = clean
        .query_many(&seeds)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    clean
        .shutdown()
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let identical = outcomes.len() == baseline.len()
        && outcomes.iter().zip(&baseline).all(|(chaos, clean)| {
            chaos.values() == clean.values()
                && chaos.transcript().steps() == clean.transcript().steps()
        });
    if !identical {
        return Err(CliError::Execution(
            "chaos run diverged from the fault-free baseline".into(),
        ));
    }

    let mut collector = TraceCollector::new();
    collector.ingest_recorder("chaos", &recorder);
    let config = AnalyzerConfig {
        bytes_per_frame_hint: Some(stats.bytes_sent as f64 / stats.frames_sent.max(1) as f64),
        ..AnalyzerConfig::default()
    };
    let analysis = analyze(&collector.finish(), &config);

    if let Some(path) = args.get("flight-out") {
        std::fs::write(path, &flight).map_err(|e| CliError::Execution(format!("{path}: {e}")))?;
    }

    if args.has("json") {
        let mut json = String::from("{");
        json.push_str(&format!(
            "\"nodes\":{nodes},\"k\":{k},\"pipeline\":{depth},\"seed\":{seed},\
             \"incidents_scheduled\":{},\"queries\":{},\"frames_dropped\":{},\
             \"retransmissions\":{},\"re_acks\":{},\"bit_identical\":true,\"analysis\":{}",
            plan.incidents.len(),
            outcomes.len(),
            state.dropped(),
            stats.retransmissions,
            stats.re_acks,
            analysis.to_json(),
        ));
        json.push('}');
        return write_out(out, &format!("{json}\n"));
    }

    let mut text = format!(
        "chaos run: {nodes} nodes, depth {depth}, {} scheduled incidents, seed {seed}\n",
        plan.incidents.len()
    );
    for incident in &plan.incidents {
        text.push_str(&format!(
            "  t+{}ms for {}ms: {}\n",
            incident.at.as_millis(),
            incident.duration.as_millis(),
            incident.event.describe()
        ));
    }
    text.push_str(&format!(
        "workload: {} queries, {} frames dropped by chaos, {} retransmissions, {} re-acks\n\
         bit-identity: OK — every answer and transcript matches the fault-free run\n",
        outcomes.len(),
        state.dropped(),
        stats.retransmissions,
        stats.re_acks,
    ));
    write_out(out, &text)?;
    write_out(out, &analysis.to_string())
}

/// `privtopk trace dump --out PATH` — run a short standing-service
/// workload with full tracing off and dump the recorder's always-on
/// flight ring (the most recent spans) to JSONL for `trace analyze`.
fn run_trace_dump(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let path = args.get("out").ok_or(CliError::BadFlag {
        flag: "--out".into(),
    })?;
    let nodes: usize = args.parse_or("nodes", 5)?;
    let k: usize = args.parse_or("k", 3)?;
    let queries: u64 = args.parse_or("queries", 16)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let dbs = DatasetBuilder::new(nodes)
        .rows_per_node((k.max(2)) * 4)
        .seed(seed)
        .build()
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let federation = Federation::new(dbs).map_err(|e| CliError::Execution(e.to_string()))?;
    let spec = QuerySpec::top_k("value", k);
    // stats_only: no full trace buffer — the dump proves the flight
    // ring is always on regardless of the tracing mode.
    let mut service = federation
        .serve_traced(&spec, NetworkKind::InMemory, 4, Recorder::stats_only())
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let seeds: Vec<u64> = (0..queries).map(|i| derive_batch_seed(seed, i)).collect();
    service
        .query_many(&seeds)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let dump = service.dump_flight_recorder();
    service
        .shutdown()
        .map_err(|e| CliError::Execution(e.to_string()))?;
    std::fs::write(path, &dump).map_err(|e| CliError::Execution(format!("{path}: {e}")))?;
    write_out(
        out,
        &format!(
            "wrote {} flight-recorder events to {path} ({queries} queries served)\n",
            dump.lines().count(),
        ),
    )
}

fn run_knn(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let k: usize = args.parse_or("k", 5)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let query: Vec<f64> = args
        .get("query")
        .ok_or(CliError::BadFlag {
            flag: "--query".into(),
        })?
        .split(',')
        .map(|c| {
            c.trim().parse().map_err(|_| CliError::BadValue {
                flag: "--query".into(),
                value: c.trim().into(),
            })
        })
        .collect::<Result<_, _>>()?;

    let shards: Vec<Vec<LabeledPoint>> = if let Some(dir) = args.get("csv-dir") {
        let tables = load_csv_dir(Path::new(dir))?;
        write_out(
            out,
            &format!("loaded {} participants from {dir}\n", tables.len()),
        )?;
        tables
            .into_iter()
            .map(|(name, table)| {
                let label_col = table
                    .column_by_name("label")
                    .map_err(|_| CliError::Execution(format!("{name}: missing `label` column")))?;
                Ok(table
                    .iter()
                    .map(|row| {
                        let features: Vec<f64> = row
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| *i != label_col.get())
                            .map(|(_, v)| v.get() as f64)
                            .collect();
                        let label = row[label_col.get()].get().unsigned_abs() as usize;
                        LabeledPoint::new(features, label)
                    })
                    .collect())
            })
            .collect::<Result<_, CliError>>()?
    } else {
        // Synthetic two-blob demo data, dimension = query dimension.
        let nodes: usize = args.parse_or("nodes", 4)?;
        let mut rng = privtopk_domain::rng::seeded_rng(seed ^ 0x1234);
        write_out(
            out,
            &format!("synthetic training data across {nodes} parties\n"),
        )?;
        (0..nodes)
            .map(|_| {
                (0..20)
                    .map(|_| {
                        let label = usize::from(rand::Rng::gen_bool(&mut rng, 0.5));
                        let c = if label == 0 { 0.0 } else { 100.0 };
                        let features = query
                            .iter()
                            .map(|_| c + rand::Rng::gen_range(&mut rng, -30.0..30.0))
                            .collect();
                        LabeledPoint::new(features, label)
                    })
                    .collect()
            })
            .collect()
    };

    let flat: Vec<LabeledPoint> = shards.iter().flatten().cloned().collect();
    let config = KnnConfig::new(k);
    let classifier = PrivateKnnClassifier::new(config, shards)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let label = classifier
        .classify(&query, seed)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let reference = centralized_knn(&flat, &query, &config);
    write_out(
        out,
        &format!(
            "\nfederated {k}-NN over {} parties, {} training points\nquery {query:?} -> label {label}\ncentralized reference agrees: {}\n",
            classifier.parties(),
            flat.len(),
            label == reference,
        ),
    )
}

fn write_out(out: &mut impl Write, text: &str) -> Result<(), CliError> {
    out.write_all(text.as_bytes())
        .map_err(|e| CliError::Execution(format!("write failed: {e}")))
}

fn run_analyze(args: &Arguments, out: &mut impl Write) -> Result<(), CliError> {
    let p0: f64 = args.parse_or("p0", 1.0)?;
    let d: f64 = args.parse_or("d", 0.5)?;
    let epsilon: f64 = args.parse_or("epsilon", 1e-3)?;
    let rounds: u32 = args.parse_or("rounds", 10)?;
    let params = RandomizationParams::new(p0, d).map_err(|e| CliError::Execution(e.to_string()))?;

    let mut text = format!("analysis for (p0 = {p0}, d = {d})\n\n");
    text.push_str("round  precision_bound(Eq.3)  expected_lop(Eq.6)\n");
    for r in 1..=rounds {
        text.push_str(&format!(
            "{r:>5}  {:>21.6}  {:>18.6}\n",
            correctness::precision_lower_bound(params, r),
            privacy_bounds::probabilistic_lop_round_term(params, r),
        ));
    }
    match efficiency::min_rounds_for_precision(params, epsilon) {
        Ok(r_min) => text.push_str(&format!(
            "\nrounds needed for precision {} (Eq.4): {r_min}\n",
            1.0 - epsilon
        )),
        Err(e) => text.push_str(&format!("\nprecision {} unreachable: {e}\n", 1.0 - epsilon)),
    }
    write_out(out, &text)
}

fn parse_kind(args: &Arguments) -> Result<QueryKind, CliError> {
    let k: usize = args.parse_or("k", 1)?;
    match args.get_or("kind", "max") {
        "max" => Ok(QueryKind::Max),
        "min" => Ok(QueryKind::Min),
        "topk" => Ok(QueryKind::TopK(k)),
        "bottomk" => Ok(QueryKind::BottomK(k)),
        "kth" => Ok(QueryKind::KthLargest(k)),
        other => Err(CliError::BadValue {
            flag: "--kind".into(),
            value: other.into(),
        }),
    }
}

/// `--network memory|tcp`: run over a real transport instead of the
/// in-process simulation; `None` keeps the simulated engine.
fn parse_network(args: &Arguments) -> Result<Option<NetworkKind>, CliError> {
    match args.get("network") {
        None => Ok(None),
        Some("memory") => Ok(Some(NetworkKind::InMemory)),
        Some("tcp") => Ok(Some(NetworkKind::Tcp)),
        Some(other) => Err(CliError::BadValue {
            flag: "--network".into(),
            value: other.into(),
        }),
    }
}

/// Writes the JSONL trace (if `--trace-out`) and prints the `--stats`
/// summary — phase quantiles, counters and gauges from `recorder`, plus
/// the live service figures when the query ran through the persistent
/// service. Purely additive: nothing here alters the query output above
/// it.
fn emit_telemetry(
    recorder: &Recorder,
    trace_out: Option<&str>,
    stats: bool,
    service_stats: Option<&ServiceStats>,
    out: &mut impl Write,
) -> Result<(), CliError> {
    if let Some(path) = trace_out {
        std::fs::write(path, recorder.trace_jsonl())
            .map_err(|e| CliError::Execution(format!("cannot write trace to {path}: {e}")))?;
        write_out(
            out,
            &format!("\ntrace: {} events -> {path}\n", recorder.events_recorded()),
        )?;
    }
    if stats {
        write_out(out, &format!("\n{}", recorder.summary()))?;
        if let Some(s) = service_stats {
            write_out(
                out,
                &format!(
                    "service stats: depth {} | in flight {} | high water {} | submitted {} | completed {}\n\
                     queue wait: count {} p50 {}ns p99 {}ns max {}ns\n\
                     wire: {} frames, {} logical messages, {} bytes ({} pre-compression), \
                     pool high water {}, {} retransmissions, {} re-acks\n",
                    s.depth,
                    s.in_flight,
                    s.pipeline_high_water,
                    s.queries_submitted,
                    s.queries_completed,
                    s.queue_wait.count,
                    s.queue_wait.p50_ns,
                    s.queue_wait.p99_ns,
                    s.queue_wait.max_ns,
                    s.frames_sent,
                    s.logical_messages,
                    s.bytes_sent,
                    s.baseline_bytes,
                    s.pooled_buffers_high_water,
                    s.retransmissions,
                    s.re_acks,
                ),
            )?;
        }
    }
    Ok(())
}

fn parse_distribution(args: &Arguments) -> Result<DataDistribution, CliError> {
    match args.get_or("dist", "uniform") {
        "uniform" => Ok(DataDistribution::Uniform),
        "normal" => Ok(DataDistribution::centered_normal()),
        "zipf" => Ok(DataDistribution::classic_zipf()),
        other => Err(CliError::BadValue {
            flag: "--dist".into(),
            value: other.into(),
        }),
    }
}

fn build_members(
    args: &Arguments,
    attribute: &str,
    out: &mut impl Write,
) -> Result<Vec<PrivateDatabase>, CliError> {
    let domain = ValueDomain::paper_default();
    if let Some(dir) = args.get("csv-dir") {
        let tables = load_csv_dir(Path::new(dir))?;
        write_out(
            out,
            &format!("loaded {} participants from {dir}\n", tables.len()),
        )?;
        tables
            .into_iter()
            .enumerate()
            .map(|(i, (name, table))| {
                write_out(
                    out,
                    &format!("  node#{i} = {name} ({} rows)\n", table.len()),
                )?;
                PrivateDatabase::new(NodeId::new(i), domain, table, attribute)
                    .map_err(|e| CliError::Execution(format!("{name}: {e}")))
            })
            .collect()
    } else {
        let nodes: usize = args.parse_or("nodes", 4)?;
        let rows: usize = args.parse_or("rows", 20)?;
        let seed: u64 = args.parse_or("seed", 0x5EED)?;
        write_out(
            out,
            &format!("synthetic federation: {nodes} nodes x {rows} rows\n"),
        )?;
        DatasetBuilder::new(nodes)
            .rows_per_node(rows)
            .distribution(parse_distribution(args)?)
            .seed(seed)
            .build()
            .map_err(|e| CliError::Execution(e.to_string()))
    }
}

fn run_query(args: &Arguments, audit: bool, out: &mut impl Write) -> Result<(), CliError> {
    // Persistent-store backend: answer from on-disk node stores through
    // the source-backed service runtime instead of synthetic/CSV tables.
    if args.get("store-dir").is_some() {
        return run_query_store(args, audit, out);
    }
    let attribute = args.get_or("attribute", "value").to_string();
    let kind = parse_kind(args)?;
    let epsilon: f64 = args.parse_or("epsilon", 1e-6)?;
    let seed: u64 = args.parse_or("seed", 42)?;

    let members = build_members(args, &attribute, out)?;
    let federation =
        Federation::new(members.clone()).map_err(|e| CliError::Execution(e.to_string()))?;
    let spec = match kind {
        QueryKind::Max => QuerySpec::max(&attribute),
        QueryKind::Min => QuerySpec::min(&attribute),
        QueryKind::TopK(k) => QuerySpec::top_k(&attribute, k),
        QueryKind::BottomK(k) => QuerySpec::bottom_k(&attribute, k),
        QueryKind::KthLargest(rank) => QuerySpec::kth_largest(&attribute, rank),
    }
    .with_epsilon(epsilon);

    let batch_width: usize = args.parse_or("batch", 1)?;
    if batch_width == 0 {
        return Err(CliError::Execution("--batch must be at least 1".into()));
    }
    let service_mode = args.get("repeat").is_some() || args.get("pipeline").is_some();
    if args.get("metrics-addr").is_some() && !service_mode {
        return Err(CliError::Execution(
            "--metrics-addr needs a running service; add --repeat/--pipeline".into(),
        ));
    }

    // Telemetry is opt-in and additive: the recorder only exists when
    // `--trace-out` or `--stats` asked for it, and the default stdout is
    // byte-identical either way (tracing never changes transcripts).
    // A scrape endpoint still needs a live counter/gauge registry, so
    // `--metrics-addr` alone gets the stats-only tier.
    let stats_requested = args.has("stats");
    let trace_out = args.get("trace-out").map(str::to_string);
    let telemetry = stats_requested || trace_out.is_some();
    let recorder = if telemetry {
        Recorder::new()
    } else if args.get("metrics-addr").is_some() {
        Recorder::stats_only()
    } else {
        Recorder::disabled()
    };
    let network = parse_network(args)?;

    // §4.2 group-parallel max: split the participants into g subrings,
    // then run a leader ring over the group winners.
    let groups: usize = args.parse_or("groups", 0)?;
    if groups > 0 {
        if audit || batch_width > 1 || service_mode {
            return Err(CliError::Execution(
                "--groups cannot combine with audit, --batch or --repeat".into(),
            ));
        }
        if telemetry || network.is_some() {
            return Err(CliError::Execution(
                "--groups does not support --trace-out, --stats or --network".into(),
            ));
        }
        if !matches!(kind, QueryKind::Max) {
            return Err(CliError::Execution(
                "--groups requires --kind max (the Section 4.2 optimization is defined for max selection)"
                    .into(),
            ));
        }
        // Each participant contributes its private local maximum.
        let values: Vec<Value> = members
            .iter()
            .map(|m| {
                let col = m
                    .table()
                    .column_by_name(&attribute)
                    .map_err(|e| CliError::Execution(e.to_string()))?;
                m.table()
                    .column_iter(col)
                    .max()
                    .ok_or_else(|| CliError::Execution("a participant holds no rows".into()))
            })
            .collect::<Result<_, _>>()?;
        let config = ProtocolConfig::max()
            .with_domain(federation.domain())
            .with_schedule(spec.schedule())
            .with_rounds(RoundPolicy::Precision { epsilon });
        let outcome = grouped_max(&config, &values, groups, seed)
            .map_err(|e| CliError::Execution(e.to_string()))?;
        return write_out(
            out,
            &format!(
                "\ngroup-parallel max over `{attribute}`: {} nodes in {groups} groups\n\
                 result: [{}]\n\
                 total messages: {}  critical path messages: {}\n",
                values.len(),
                outcome.result,
                outcome.total_messages,
                outcome.critical_path_messages,
            ),
        );
    }

    if batch_width > 1 {
        if audit {
            return Err(CliError::Execution(
                "audit does not support --batch; audit queries one at a time".into(),
            ));
        }
        if service_mode {
            return Err(CliError::Execution(
                "--batch cannot combine with --repeat/--pipeline; pick one execution mode".into(),
            ));
        }
        let batch = QueryBatch::from_specs(vec![spec; batch_width], seed);
        let outcomes = match network {
            Some(nk) => federation.execute_batch_distributed_traced(&batch, nk, &recorder),
            None => federation.execute_batch_traced(&batch, &recorder),
        }
        .map_err(|e| CliError::Execution(e.to_string()))?;
        let mut text = format!(
            "\nbatched query: {batch_width} x {kind:?} over `{attribute}` (epsilon {epsilon}), one ring execution\n"
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            let rendered: Vec<String> = outcome.values().iter().map(ToString::to_string).collect();
            text.push_str(&format!(
                "query#{i} result: [{}] rounds: {} messages: {}\n",
                rendered.join(", "),
                outcome.rounds(),
                outcome.messages(),
            ));
        }
        write_out(out, &text)?;
        return emit_telemetry(&recorder, trace_out.as_deref(), stats_requested, None, out);
    }

    // Persistent service mode: stand the federation up once, then stream
    // `--repeat` queries through it, `--pipeline` of them in flight at a
    // time. Per-query seeds are batch-derived from --seed, so query i's
    // outcome is bit-identical to a solo run under that seed.
    if service_mode {
        if audit {
            return Err(CliError::Execution(
                "audit does not support --repeat; audit queries one at a time".into(),
            ));
        }
        let repeat: usize = args.parse_or("repeat", 1)?;
        let depth: usize = args.parse_or("pipeline", 1)?;
        if repeat == 0 {
            return Err(CliError::Execution("--repeat must be at least 1".into()));
        }
        let mut service = federation
            .serve_traced(
                &spec,
                network.unwrap_or(NetworkKind::InMemory),
                depth,
                recorder.clone(),
            )
            .map_err(|e| CliError::Execution(e.to_string()))?;
        if let Some(metrics_addr) = args.get("metrics-addr") {
            let bound = service
                .metrics_endpoint(metrics_addr)
                .map_err(|e| CliError::Execution(format!("cannot bind {metrics_addr}: {e}")))?;
            write_out(out, &format!("metrics: serving on {bound}\n"))?;
        }
        let seeds: Vec<u64> = (0..repeat as u64)
            .map(|i| derive_batch_seed(seed, i))
            .collect();
        let outcomes = service
            .query_many(&seeds)
            .map_err(|e| CliError::Execution(e.to_string()))?;
        let metrics = service.metrics();
        let service_stats = service.stats();
        service
            .shutdown()
            .map_err(|e| CliError::Execution(e.to_string()))?;
        let mut text = format!(
            "\nservice: {repeat} x {kind:?} over `{attribute}` (epsilon {epsilon}), pipeline depth {depth}\n"
        );
        for (i, outcome) in outcomes.iter().enumerate() {
            let rendered: Vec<String> = outcome.values().iter().map(ToString::to_string).collect();
            text.push_str(&format!(
                "query#{i} result: [{}] rounds: {} messages: {}\n",
                rendered.join(", "),
                outcome.rounds(),
                outcome.messages(),
            ));
        }
        // The pool high-water mark is scheduling-dependent, so only the
        // deterministic wire counters go to stdout (the bench JSON
        // reports the pool; `privtopk query ... | diff` must be stable).
        text.push_str(&format!(
            "service totals: {} frames, {} bytes\n",
            metrics.frames_sent(),
            metrics.bytes_sent(),
        ));
        write_out(out, &text)?;
        return emit_telemetry(
            &recorder,
            trace_out.as_deref(),
            stats_requested,
            Some(&service_stats),
            out,
        );
    }

    let outcome = match network {
        Some(nk) => federation.execute_distributed_traced(&spec, nk, seed, &recorder),
        None => federation.execute_traced(&spec, seed, &recorder),
    }
    .map_err(|e| CliError::Execution(e.to_string()))?;

    let rendered: Vec<String> = outcome.values().iter().map(ToString::to_string).collect();
    write_out(
        out,
        &format!(
            "\nquery: {:?} over `{attribute}` (epsilon {epsilon})\nresult: [{}]\nrounds: {}  messages: {}\n",
            kind,
            rendered.join(", "),
            outcome.rounds(),
            outcome.messages(),
        ),
    )?;

    if audit {
        if kind.is_mirrored() {
            return Err(CliError::Execution(
                "audit currently supports max/topk kinds only".into(),
            ));
        }
        let k = kind.k();
        let domain = federation.domain();
        let locals: Vec<TopKVector> = members
            .iter()
            .map(|m| {
                let col = m
                    .table()
                    .column_by_name(&attribute)
                    .map_err(|e| CliError::Execution(e.to_string()))?;
                TopKVector::from_values(k, m.table().column_iter(col), &domain)
                    .map_err(|e| CliError::Execution(e.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let mut acc = LopAccumulator::new();
        acc.add(&SuccessorAdversary::estimate(outcome.transcript(), &locals));
        let summary = acc.summarize();
        let mut text = String::from("\nprivacy audit (semi-honest successor adversary):\n");
        for (i, lop) in summary.per_node_peak.iter().enumerate() {
            text.push_str(&format!("  node#{i}: peak LoP {lop:.4}\n"));
        }
        text.push_str(&format!(
            "  average {:.4}, worst {:.4}\n",
            summary.average_peak, summary.worst_peak
        ));
        write_out(out, &text)?;
    }
    emit_telemetry(&recorder, trace_out.as_deref(), stats_requested, None, out)
}

/// `privtopk query --store-dir DIR ...` — the query path over
/// persistent node stores.
///
/// Each node's local top-k is a frozen snapshot acquired here, before
/// the ring starts, so transcripts are bit-identical to a run against a
/// frozen copy of the data even while `--write-rate` keeps background
/// inserts landing in the stores. Nothing timing-dependent is printed:
/// row counts come from the snapshots, wire totals are deterministic.
fn run_query_store(args: &Arguments, audit: bool, out: &mut impl Write) -> Result<(), CliError> {
    if audit {
        return Err(CliError::Execution(
            "audit does not support --store-dir; audit runs over synthetic/CSV members".into(),
        ));
    }
    let batch_width: usize = args.parse_or("batch", 1)?;
    let groups: usize = args.parse_or("groups", 0)?;
    if batch_width > 1 || groups > 0 {
        return Err(CliError::Execution(
            "--store-dir runs through the service; it cannot combine with --batch or --groups"
                .into(),
        ));
    }
    let kind = parse_kind(args)?;
    let k = match kind {
        QueryKind::Max => 1,
        QueryKind::TopK(k) => k,
        _ => {
            return Err(CliError::Execution(
                "--store-dir supports --kind max|topk (stores hold raw, unmirrored values)".into(),
            ))
        }
    };
    let epsilon: f64 = args.parse_or("epsilon", 1e-6)?;
    let seed: u64 = args.parse_or("seed", 42)?;
    let repeat: usize = args.parse_or("repeat", 1)?;
    let depth: usize = args.parse_or("pipeline", 1)?;
    if repeat == 0 {
        return Err(CliError::Execution("--repeat must be at least 1".into()));
    }
    let write_rate: u64 = args.parse_or("write-rate", 0)?;

    let root = store_dir(args)?;
    let stores = open_stores(&root)?;
    let domain = stores[0].domain();
    for s in &stores {
        if s.domain() != domain {
            return Err(CliError::Execution(
                "node stores disagree on the public value domain".into(),
            ));
        }
    }
    // One consistent view per node for the service's whole lifetime.
    let snapshots: Vec<std::sync::Arc<privtopk_store::StoreSnapshot>> = stores
        .iter()
        .map(|s| s.snapshot_for_k(k))
        .collect::<Result<_, _>>()
        .map_err(|e| CliError::Execution(e.to_string()))?;
    let mut text = format!(
        "store federation: {} nodes from {}\n",
        stores.len(),
        root.display()
    );
    for (i, snap) in snapshots.iter().enumerate() {
        text.push_str(&format!(
            "  node#{i}: {} rows @ epoch {}\n",
            snap.rows(),
            snap.epoch()
        ));
    }
    write_out(out, &text)?;

    let stats_requested = args.has("stats");
    let trace_out = args.get("trace-out").map(str::to_string);
    // A scrape endpoint needs a live counter/gauge registry even when
    // no stats table or trace was asked for — stats_only keeps the
    // counters exact without buffering span events.
    let recorder = if stats_requested || trace_out.is_some() {
        Recorder::new()
    } else if args.get("metrics-addr").is_some() {
        Recorder::stats_only()
    } else {
        Recorder::disabled()
    };
    let network = parse_network(args)?.unwrap_or(NetworkKind::InMemory);
    let config = match kind {
        QueryKind::Max => ProtocolConfig::max(),
        _ => ProtocolConfig::topk(k),
    }
    .with_domain(domain)
    .with_schedule(privtopk_core::Schedule::paper_default())
    .with_rounds(RoundPolicy::Precision { epsilon });

    let mut service = privtopk_core::ServiceRuntime::start_from_sources_traced(
        &snapshots,
        k,
        network,
        depth,
        recorder.clone(),
    )
    .map_err(|e| CliError::Execution(e.to_string()))?;

    // Live Prometheus exposition: store series refresh on every scrape.
    let stores = std::sync::Arc::new(stores);
    let _metrics_server = match args.get("metrics-addr") {
        Some(addr) => {
            let scrape_stores = std::sync::Arc::clone(&stores);
            let scrape_recorder = recorder.clone();
            let epochs: Vec<u64> = snapshots.iter().map(|s| s.epoch()).collect();
            let server = privtopk_observe::MetricsServer::bind(addr, move || {
                let stats: Vec<_> = scrape_stores.iter().map(NodeStore::stats).collect();
                publish_store_metrics(&scrape_recorder, &stats, &epochs);
                privtopk_observe::render_summary(&scrape_recorder.summary())
            })
            .map_err(|e| CliError::Execution(format!("cannot bind {addr}: {e}")))?;
            write_out(out, &format!("metrics: serving on {}\n", server.addr()))?;
            Some(server)
        }
        None => None,
    };

    // Background ingest racing the queries: inserts land in the stores
    // (and the log) but never in the frozen snapshots above.
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = if write_rate > 0 {
        let stores = std::sync::Arc::clone(&stores);
        let stop = std::sync::Arc::clone(&stop);
        let interval = std::time::Duration::from_nanos(1_000_000_000 / write_rate.max(1));
        Some(std::thread::spawn(move || {
            use rand::Rng;
            let mut rng = privtopk_domain::rng::SeedSpec::new(seed).stream(0x57).rng();
            let mut wrote = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Acquire) {
                let target = (wrote % stores.len() as u64) as usize;
                let v = Value::new(rng.gen_range(domain.as_range()));
                if stores[target].insert(v).is_err() {
                    break;
                }
                wrote += 1;
                std::thread::sleep(interval);
            }
            wrote
        }))
    } else {
        None
    };

    let workload: Vec<(ProtocolConfig, u64)> = (0..repeat as u64)
        .map(|i| (config.clone(), derive_batch_seed(seed, i)))
        .collect();
    let outcomes = service
        .run_workload(&workload)
        .map_err(|e| CliError::Execution(e.to_string()))?;
    stop.store(true, std::sync::atomic::Ordering::Release);
    if let Some(handle) = writer {
        // Row counts written vary with timing, so they stay off stdout.
        let _ = handle.join();
    }
    let metrics = service.metrics().peek();
    service
        .shutdown()
        .map_err(|e| CliError::Execution(e.to_string()))?;

    let mut text = format!(
        "\nservice (store-backed): {repeat} x {kind:?} (epsilon {epsilon}), pipeline depth {depth}\n"
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        let global = &outcome.per_node_results[0];
        let rendered: Vec<String> = global.iter().map(|v| v.to_string()).collect();
        text.push_str(&format!(
            "query#{i} result: [{}] rounds: {} messages: {}\n",
            rendered.join(", "),
            outcome.transcript.rounds(),
            outcome.transcript.message_count(),
        ));
    }
    text.push_str(&format!(
        "service totals: {} frames, {} bytes\n",
        metrics.frames_sent, metrics.bytes_sent,
    ));
    write_out(out, &text)?;
    emit_telemetry(&recorder, trace_out.as_deref(), stats_requested, None, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Arguments;

    fn run_to_string(argv: &[&str]) -> Result<String, CliError> {
        let args = Arguments::parse(argv.iter().copied())?;
        let mut buf = Vec::new();
        run(&args, &mut buf)?;
        Ok(String::from_utf8(buf).expect("utf-8 output"))
    }

    #[test]
    fn help_prints_usage() {
        let out = run_to_string(&["help"]).unwrap();
        assert!(out.contains("USAGE"));
    }

    fn temp_store_root(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("privtopk-cli-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn store_init_ingest_compact_query_lifecycle() {
        let root = temp_store_root("lifecycle");
        let dir = root.to_str().unwrap();
        let out = run_to_string(&["store", "init", "--store-dir", dir, "--nodes", "4"]).unwrap();
        assert!(out.contains("4 empty node stores"));
        let out = run_to_string(&[
            "store",
            "ingest",
            "--store-dir",
            dir,
            "--rows",
            "200",
            "--dist",
            "zipf",
            "--seed",
            "9",
            "--chunk",
            "64",
        ])
        .unwrap();
        assert!(out.contains("ingested 200 rows into each of 4 nodes"));
        assert!(out.contains("node#3: +200 rows (total 200"));
        let out = run_to_string(&[
            "query",
            "--kind",
            "topk",
            "--k",
            "3",
            "--store-dir",
            dir,
            "--repeat",
            "2",
        ])
        .unwrap();
        assert!(out.contains("store federation: 4 nodes"));
        assert!(out.contains("query#1 result: ["));
        let out = run_to_string(&["store", "compact", "--store-dir", dir]).unwrap();
        assert!(out.contains("compacted 4 node stores"));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_query_is_deterministic_and_matches_under_write_load() {
        let root = temp_store_root("determinism");
        let dir = root.to_str().unwrap();
        run_to_string(&["store", "init", "--store-dir", dir, "--nodes", "3"]).unwrap();
        run_to_string(&["store", "ingest", "--store-dir", dir, "--rows", "50"]).unwrap();
        let quiet = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--store-dir",
            dir,
            "--repeat",
            "3",
            "--seed",
            "7",
        ])
        .unwrap();
        // Background writes must not perturb stdout: snapshots freeze
        // the view before the writer starts.
        let racing = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--store-dir",
            dir,
            "--repeat",
            "3",
            "--seed",
            "7",
            "--write-rate",
            "2000",
        ])
        .unwrap();
        assert_eq!(quiet, racing);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_query_metrics_endpoint_exposes_store_series() {
        let root = temp_store_root("metrics");
        let dir = root.to_str().unwrap().to_string();
        run_to_string(&["store", "init", "--store-dir", &dir, "--nodes", "3"]).unwrap();
        run_to_string(&["store", "ingest", "--store-dir", &dir, "--rows", "500"]).unwrap();

        // Reserve a free port, release it, and hand it to the CLI.
        let addr = {
            let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            probe.local_addr().unwrap()
        };
        let query = {
            let dir = dir.clone();
            let addr = addr.to_string();
            std::thread::spawn(move || {
                // No --stats, no --trace-out: the endpoint alone must
                // stand up a live registry (the regression this pins).
                run_to_string(&[
                    "query",
                    "--kind",
                    "topk",
                    "--k",
                    "2",
                    "--store-dir",
                    &dir,
                    "--repeat",
                    "2000",
                    "--pipeline",
                    "4",
                    "--metrics-addr",
                    &addr,
                ])
            })
        };
        let mut body = String::new();
        for _ in 0..400 {
            if let Ok(scraped) = privtopk_observe::scrape(&addr) {
                body = scraped;
                if body.contains("privtopk_store_rows_total") {
                    break;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        let out = query.join().unwrap().unwrap();
        assert!(out.contains("metrics: serving on"), "{out}");
        assert!(
            body.contains("privtopk_store_rows_total 1500"),
            "store row count missing from scrape: {body}"
        );
        for series in [
            "privtopk_store_index_rebuilds_total",
            "privtopk_store_index_depth",
            "privtopk_store_snapshot_age",
        ] {
            assert!(body.contains(series), "missing {series} in scrape: {body}");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn store_query_rejects_unsupported_modes() {
        let root = temp_store_root("rejects");
        let dir = root.to_str().unwrap();
        run_to_string(&["store", "init", "--store-dir", dir, "--nodes", "3"]).unwrap();
        assert!(run_to_string(&["query", "--kind", "min", "--store-dir", dir]).is_err());
        assert!(run_to_string(&["audit", "--kind", "max", "--store-dir", dir]).is_err());
        assert!(
            run_to_string(&["query", "--kind", "max", "--store-dir", dir, "--batch", "2"]).is_err()
        );
        // Missing --store-dir on store subcommands.
        assert!(run_to_string(&["store", "ingest"]).is_err());
        // Query against a dir with no stores.
        let empty = temp_store_root("empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(run_to_string(&[
            "query",
            "--kind",
            "max",
            "--store-dir",
            empty.to_str().unwrap()
        ])
        .is_err());
        let _ = std::fs::remove_dir_all(&root);
        let _ = std::fs::remove_dir_all(&empty);
    }

    #[test]
    fn analyze_prints_bounds() {
        let out = run_to_string(&["analyze", "--p0", "1.0", "--d", "0.5"]).unwrap();
        assert!(out.contains("precision_bound"));
        assert!(out.contains("rounds needed"));
    }

    #[test]
    fn analyze_reports_unreachable_precision() {
        let out = run_to_string(&["analyze", "--p0", "1.0", "--d", "1.0"]).unwrap();
        assert!(out.contains("unreachable"));
    }

    #[test]
    fn synthetic_query_runs() {
        let out = run_to_string(&[
            "query", "--kind", "topk", "--k", "3", "--nodes", "5", "--rows", "10",
        ])
        .unwrap();
        assert!(out.contains("result: ["));
        assert!(out.contains("rounds:"));
    }

    #[test]
    fn min_query_runs() {
        let out = run_to_string(&["query", "--kind", "min"]).unwrap();
        assert!(out.contains("result: ["));
    }

    #[test]
    fn audit_adds_privacy_report() {
        let out = run_to_string(&["audit", "--kind", "max", "--nodes", "4"]).unwrap();
        assert!(out.contains("privacy audit"));
        assert!(out.contains("average"));
    }

    #[test]
    fn audit_refuses_mirrored_kinds() {
        assert!(run_to_string(&["audit", "--kind", "min"]).is_err());
    }

    #[test]
    fn csv_query_end_to_end() {
        let dir = std::env::temp_dir().join(format!("privtopk_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("acme.csv"), "sales\n3200\n210\n").unwrap();
        std::fs::write(dir.join("bolt.csv"), "sales\n1100\n").unwrap();
        std::fs::write(dir.join("crate.csv"), "sales\n4800\n99\n").unwrap();
        let out = run_to_string(&[
            "query",
            "--attribute",
            "sales",
            "--csv-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("result: [4800]"), "output: {out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kth_query_runs() {
        let out = run_to_string(&["query", "--kind", "kth", "--k", "2", "--nodes", "4"]).unwrap();
        assert!(out.contains("result: ["));
    }

    #[test]
    fn knn_synthetic_classifies() {
        let out = run_to_string(&["knn", "--query", "2,3", "--k", "3"]).unwrap();
        assert!(out.contains("-> label 0"), "output: {out}");
        assert!(out.contains("agrees: true"));
        let out = run_to_string(&["knn", "--query", "101,99", "--k", "3"]).unwrap();
        assert!(out.contains("-> label 1"), "output: {out}");
    }

    #[test]
    fn knn_requires_query_flag() {
        assert!(run_to_string(&["knn"]).is_err());
        assert!(run_to_string(&["knn", "--query", "a,b"]).is_err());
    }

    #[test]
    fn knn_from_csv_with_labels() {
        let dir = std::env::temp_dir().join(format!("privtopk_knn_cli_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for (name, rows) in [
            ("a.csv", "x,y,label\n0,0,0\n1,1,0\n"),
            ("b.csv", "x,y,label\n100,100,1\n99,101,1\n"),
            ("c.csv", "x,y,label\n2,0,0\n98,99,1\n"),
        ] {
            std::fs::write(dir.join(name), rows).unwrap();
        }
        let out = run_to_string(&[
            "knn",
            "--query",
            "1,2",
            "--k",
            "3",
            "--csv-dir",
            dir.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("-> label 0"), "output: {out}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batched_query_prints_per_query_results() {
        let out = run_to_string(&[
            "query", "--kind", "topk", "--k", "2", "--nodes", "4", "--batch", "4",
        ])
        .unwrap();
        assert!(out.contains("batched query: 4 x"), "output: {out}");
        for i in 0..4 {
            assert!(
                out.contains(&format!("query#{i} result: [")),
                "output: {out}"
            );
        }
    }

    #[test]
    fn batch_of_one_keeps_solo_output_format() {
        // --batch 1 must take the unmodified single-query path.
        let solo = run_to_string(&["query", "--kind", "max", "--nodes", "4"]).unwrap();
        let one =
            run_to_string(&["query", "--kind", "max", "--nodes", "4", "--batch", "1"]).unwrap();
        assert_eq!(solo, one);
        assert!(one.contains("result: ["));
        assert!(!one.contains("batched"));
    }

    #[test]
    fn batch_of_zero_is_rejected() {
        let err = run_to_string(&["query", "--kind", "max", "--nodes", "4", "--batch", "0"])
            .unwrap_err()
            .to_string();
        assert!(err.contains("--batch must be at least 1"), "error: {err}");
    }

    #[test]
    fn audit_refuses_batch() {
        assert!(run_to_string(&["audit", "--kind", "max", "--batch", "2"]).is_err());
    }

    #[test]
    fn service_mode_prints_per_query_results_and_totals() {
        let out = run_to_string(&[
            "query",
            "--kind",
            "topk",
            "--k",
            "2",
            "--nodes",
            "4",
            "--repeat",
            "5",
            "--pipeline",
            "4",
        ])
        .unwrap();
        assert!(out.contains("service: 5 x"), "output: {out}");
        assert!(out.contains("pipeline depth 4"), "output: {out}");
        for i in 0..5 {
            assert!(
                out.contains(&format!("query#{i} result: [")),
                "output: {out}"
            );
        }
        assert!(out.contains("service totals:"), "output: {out}");
        assert!(out.contains("frames"), "output: {out}");
    }

    #[test]
    fn service_results_match_solo_runs_per_derived_seed() {
        // query#i of the service run must equal a solo run under the
        // batch-derived seed, at any pipeline depth.
        let shallow = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "6",
            "--pipeline",
            "1",
        ])
        .unwrap();
        let deep = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "6",
            "--pipeline",
            "6",
        ])
        .unwrap();
        for i in 0..6 {
            let line = |s: &str| {
                s.lines()
                    .find(|l| l.starts_with(&format!("query#{i} ")))
                    .unwrap()
                    .to_string()
            };
            assert_eq!(line(&shallow), line(&deep), "query {i}");
        }
    }

    #[test]
    fn service_mode_rejects_bad_combos() {
        assert!(run_to_string(&["audit", "--kind", "max", "--repeat", "2"]).is_err());
        assert!(
            run_to_string(&["query", "--kind", "max", "--batch", "2", "--repeat", "2"]).is_err()
        );
        assert!(run_to_string(&["query", "--kind", "max", "--repeat", "0"]).is_err());
        assert!(
            run_to_string(&["query", "--kind", "max", "--repeat", "2", "--pipeline", "0"]).is_err()
        );
    }

    #[test]
    fn grouped_max_reports_critical_path() {
        let out = run_to_string(&[
            "query", "--kind", "max", "--nodes", "9", "--rows", "6", "--groups", "3",
        ])
        .unwrap();
        assert!(out.contains("group-parallel max"), "output: {out}");
        assert!(out.contains("9 nodes in 3 groups"), "output: {out}");
        assert!(out.contains("total messages:"), "output: {out}");
        assert!(out.contains("critical path messages:"), "output: {out}");
    }

    #[test]
    fn grouped_max_matches_flat_result() {
        // The optimization must not change the answer: compare against
        // the plain query over the same synthetic federation.
        let flat =
            run_to_string(&["query", "--kind", "max", "--nodes", "9", "--rows", "6"]).unwrap();
        let grouped = run_to_string(&[
            "query", "--kind", "max", "--nodes", "9", "--rows", "6", "--groups", "3",
        ])
        .unwrap();
        let result = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("result: ["))
                .unwrap()
                .to_string()
        };
        assert_eq!(result(&flat), result(&grouped));
    }

    #[test]
    fn groups_rejects_non_max_kinds_and_bad_combos() {
        assert!(run_to_string(&["query", "--kind", "topk", "--k", "2", "--groups", "3"]).is_err());
        assert!(run_to_string(&["audit", "--kind", "max", "--groups", "3"]).is_err());
        assert!(
            run_to_string(&["query", "--kind", "max", "--groups", "3", "--batch", "2"]).is_err()
        );
        assert!(
            run_to_string(&["query", "--kind", "max", "--groups", "3", "--repeat", "2"]).is_err()
        );
        // Two groups: neither flat nor a valid split (needs >= 3 groups).
        assert!(
            run_to_string(&["query", "--kind", "max", "--nodes", "9", "--groups", "2"]).is_err()
        );
    }

    #[test]
    fn bad_kind_rejected() {
        assert!(matches!(
            run_to_string(&["query", "--kind", "median"]),
            Err(CliError::BadValue { .. })
        ));
        assert!(run_to_string(&["query", "--dist", "cauchy"]).is_err());
    }

    /// Telemetry flags are additive: everything before the telemetry
    /// block must match the untraced run byte for byte.
    fn assert_prefix_matches(plain: &str, traced: &str) {
        assert!(
            traced.starts_with(plain),
            "traced output does not extend the plain output.\nplain:\n{plain}\ntraced:\n{traced}"
        );
    }

    fn temp_trace_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("privtopk_trace_{tag}_{}.jsonl", std::process::id()))
    }

    #[test]
    fn stats_flag_appends_summary_without_changing_results() {
        let plain =
            run_to_string(&["query", "--kind", "topk", "--k", "2", "--nodes", "4"]).unwrap();
        let traced = run_to_string(&[
            "query", "--kind", "topk", "--k", "2", "--nodes", "4", "--stats",
        ])
        .unwrap();
        assert_prefix_matches(&plain, &traced);
        assert!(traced.contains("p99"), "output: {traced}");
        assert!(traced.contains("step"), "output: {traced}");
        assert!(traced.contains("trace events:"), "output: {traced}");
    }

    #[test]
    fn trace_out_writes_jsonl_spans() {
        let path = temp_trace_path("solo");
        let out = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("trace:"), "output: {out}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(!trace.is_empty());
        for line in trace.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        }
        assert!(trace.contains("\"phase\":\"step\""), "trace: {trace}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn distributed_query_supports_telemetry() {
        let plain = run_to_string(&["query", "--kind", "max", "--nodes", "4"]).unwrap();
        let path = temp_trace_path("dist");
        let traced = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--network",
            "memory",
            "--stats",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        // Distributed execution returns the same results as simulation.
        assert_prefix_matches(&plain, &traced);
        assert!(traced.contains("counters"), "output: {traced}");
        assert!(traced.contains("frames_sent"), "output: {traced}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"phase\":\"send\""), "trace: {trace}");
        assert!(trace.contains("\"phase\":\"recv\""), "trace: {trace}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batched_query_supports_telemetry() {
        let plain = run_to_string(&[
            "query", "--kind", "topk", "--k", "2", "--nodes", "4", "--batch", "3",
        ])
        .unwrap();
        let traced = run_to_string(&[
            "query",
            "--kind",
            "topk",
            "--k",
            "2",
            "--nodes",
            "4",
            "--batch",
            "3",
            "--network",
            "memory",
            "--stats",
        ])
        .unwrap();
        assert_prefix_matches(&plain, &traced);
        assert!(traced.contains("p99"), "output: {traced}");
        assert!(traced.contains("frames_sent"), "output: {traced}");
    }

    #[test]
    fn service_mode_stats_prints_pipeline_figures() {
        let plain = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "4",
            "--pipeline",
            "2",
        ])
        .unwrap();
        let path = temp_trace_path("service");
        let traced = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "4",
            "--pipeline",
            "2",
            "--stats",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        assert_prefix_matches(&plain, &traced);
        assert!(
            traced.contains("service stats: depth 2"),
            "output: {traced}"
        );
        assert!(traced.contains("submitted 4"), "output: {traced}");
        assert!(traced.contains("completed 4"), "output: {traced}");
        let trace = std::fs::read_to_string(&path).unwrap();
        assert!(trace.contains("\"query\":"), "trace: {trace}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_analyze_reconstructs_service_critical_paths() {
        let path = temp_trace_path("analyze_svc");
        run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "2",
            "--pipeline",
            "2",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let report = run_to_string(&["trace", "analyze", path.to_str().unwrap()]).unwrap();
        assert!(report.contains("trace analysis: 2 queries"), "{report}");
        assert!(report.contains("critical path"), "{report}");
        assert!(report.contains("complete"), "{report}");
        assert!(report.contains("node load:"), "{report}");
        let json = run_to_string(&["trace", "analyze", path.to_str().unwrap(), "--json"]).unwrap();
        assert!(json.contains("\"critical_path_ns\":"), "{json}");
        assert!(json.contains("\"complete\":true"), "{json}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_analyze_requires_files_and_tolerates_garbage() {
        assert!(run_to_string(&["trace", "analyze"]).is_err());
        assert!(run_to_string(&["trace", "analyze", "/no/such/file.jsonl"]).is_err());
        // Malformed lines become diagnostics, never a hard failure.
        let path = temp_trace_path("garbage");
        std::fs::write(
            &path,
            "not json at all\n{\"t_us\":1,\"phase\":\"step\",\"query\":0,\"node\":0,\"round\":1,\"hop\":0,\"dur_ns\":5}\n",
        )
        .unwrap();
        let report = run_to_string(&["trace", "analyze", path.to_str().unwrap()]).unwrap();
        assert!(report.contains("diagnostic:"), "{report}");
        assert!(report.contains("1 queries"), "{report}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_watch_polls_a_live_endpoint() {
        let server = privtopk_observe::MetricsServer::bind("127.0.0.1:0", || {
            "# HELP privtopk_demo_total x\n# TYPE privtopk_demo_total counter\nprivtopk_demo_total 7\n"
                .to_string()
        })
        .unwrap();
        let out = run_to_string(&[
            "trace",
            "watch",
            "--addr",
            &server.addr().to_string(),
            "--interval-ms",
            "1",
            "--count",
            "2",
        ])
        .unwrap();
        assert!(out.contains("--- poll 1 ---"), "{out}");
        assert!(out.contains("--- poll 2 ---"), "{out}");
        assert!(out.contains("privtopk_demo_total 7"), "{out}");
        drop(server);
        assert!(
            run_to_string(&["trace", "watch", "--addr", "127.0.0.1:1", "--count", "1"]).is_err()
        );
        assert!(run_to_string(&["trace", "watch", "--count", "1"]).is_err());
    }

    #[test]
    fn trace_watch_retries_transient_misses_with_bounded_backoff() {
        use std::io::{Read as _, Write as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // A flapping endpoint: the first connection is slammed shut (a
        // transient miss), the next two answer like a healthy server.
        let handle = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream);
            for _ in 0..2 {
                let (mut stream, _) = listener.accept().unwrap();
                let mut buf = [0u8; 512];
                let _ = stream.read(&mut buf);
                let body = "privtopk_demo_total 7\n";
                let _ = stream.write_all(
                    format!(
                        "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\
                         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
                        body.len()
                    )
                    .as_bytes(),
                );
            }
        });
        let out = run_to_string(&[
            "trace",
            "watch",
            "--addr",
            &addr.to_string(),
            "--interval-ms",
            "1",
            "--count",
            "2",
            "--max-misses",
            "3",
        ])
        .unwrap();
        handle.join().unwrap();
        assert!(out.contains("miss 1/3"), "{out}");
        assert!(out.contains("--- poll 1 ---"), "{out}");
        assert!(out.contains("--- poll 2 ---"), "{out}");
        assert!(out.contains("privtopk_demo_total 7"), "{out}");
    }

    #[test]
    fn trace_watch_prints_slo_alert_lines() {
        let server = privtopk_observe::MetricsServer::bind("127.0.0.1:0", || {
            "privtopk_slo_latency_alert 1\n\
             privtopk_slo_latency_burn_short 3.5\n\
             privtopk_slo_latency_burn_long 2.25\n\
             privtopk_slo_availability_alert 0\n"
                .to_string()
        })
        .unwrap();
        let out = run_to_string(&[
            "trace",
            "watch",
            "--addr",
            &server.addr().to_string(),
            "--interval-ms",
            "1",
            "--count",
            "1",
        ])
        .unwrap();
        assert!(
            out.contains("SLO ALERT latency: burn 3.50x short / 2.25x long"),
            "{out}"
        );
        assert!(!out.contains("SLO ALERT availability"), "{out}");
    }

    #[test]
    fn chaos_run_proves_bit_identity_and_reports_healing() {
        let flight = temp_trace_path("chaos_flight");
        let out = run_to_string(&[
            "chaos",
            "run",
            "--nodes",
            "4",
            "--incidents",
            "1",
            "--seed",
            "7",
            "--pipeline",
            "4",
            "--flight-out",
            flight.to_str().unwrap(),
        ])
        .unwrap();
        assert!(out.contains("chaos run: 4 nodes"), "{out}");
        assert!(out.contains("outage(") || out.contains("partition(") || out.contains("loss("));
        assert!(out.contains("bit-identity: OK"), "{out}");
        assert!(out.contains("incident 1:"), "{out}");
        // The dumped flight ring feeds straight back into trace analyze.
        let report = run_to_string(&["trace", "analyze", flight.to_str().unwrap()]).unwrap();
        assert!(report.contains("trace analysis:"), "{report}");
        std::fs::remove_file(&flight).unwrap();
    }

    #[test]
    fn chaos_run_json_carries_the_gates() {
        let json = run_to_string(&[
            "chaos",
            "run",
            "--nodes",
            "4",
            "--incidents",
            "1",
            "--seed",
            "9",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"bit_identical\":true"), "{json}");
        assert!(json.contains("\"incidents_scheduled\":1"), "{json}");
        assert!(json.contains("\"frames_dropped\":"), "{json}");
        assert!(json.contains("\"analysis\":{"), "{json}");
        assert!(json.contains("\"incidents\":["), "{json}");
    }

    #[test]
    fn trace_dump_writes_flight_jsonl_for_analyze() {
        let path = temp_trace_path("flight_dump");
        let out = run_to_string(&[
            "trace",
            "dump",
            "--out",
            path.to_str().unwrap(),
            "--nodes",
            "4",
            "--queries",
            "8",
        ])
        .unwrap();
        assert!(out.contains("flight-recorder events"), "{out}");
        let report = run_to_string(&["trace", "analyze", path.to_str().unwrap()]).unwrap();
        assert!(report.contains("trace analysis:"), "{report}");
        std::fs::remove_file(&path).unwrap();
        assert!(run_to_string(&["trace", "dump"]).is_err());
    }

    #[test]
    fn privacy_report_accounts_collected_traces() {
        let path = temp_trace_path("privacy_report");
        run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "2",
            "--pipeline",
            "2",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        let report =
            run_to_string(&["privacy", "report", path.to_str().unwrap(), "--trials", "4"]).unwrap();
        assert!(
            report.contains("privacy report: 2 queries accounted across 4 nodes"),
            "{report}"
        );
        assert!(report.contains("node#0: LoP "), "{report}");
        assert!(report.contains("spectrum:"), "{report}");
        let json = run_to_string(&[
            "privacy",
            "report",
            path.to_str().unwrap(),
            "--trials",
            "4",
            "--json",
        ])
        .unwrap();
        assert!(json.contains("\"queries_accounted\":2"), "{json}");
        assert!(json.contains("\"per_node\":[{\"node\":0,"), "{json}");
        assert!(json.contains("\"spectrum\":{"), "{json}");
        std::fs::remove_file(&path).unwrap();
        assert!(run_to_string(&["privacy", "report"]).is_err());
        assert!(run_to_string(&["privacy", "report", "/no/such/file.jsonl"]).is_err());
    }

    #[test]
    fn trace_analyze_lop_alert_adds_privacy_panel() {
        let path = temp_trace_path("lop_alert");
        run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "2",
            "--trace-out",
            path.to_str().unwrap(),
        ])
        .unwrap();
        // Without the flag, the report is privacy-free and byte-stable.
        let plain = run_to_string(&["trace", "analyze", path.to_str().unwrap()]).unwrap();
        assert!(!plain.contains("privacy"), "{plain}");
        let report = run_to_string(&[
            "trace",
            "analyze",
            path.to_str().unwrap(),
            "--lop-alert",
            "100",
            "--trials",
            "4",
        ])
        .unwrap();
        assert!(report.contains("privacy: 2 queries accounted"), "{report}");
        assert!(report.contains("node 0: LoP "), "{report}");
        assert!(report.contains("privacy ok: worst LoP "), "{report}");
        let alerting = run_to_string(&[
            "trace",
            "analyze",
            path.to_str().unwrap(),
            "--lop-alert",
            "-1",
            "--trials",
            "4",
        ])
        .unwrap();
        assert!(alerting.contains("privacy alert: worst LoP "), "{alerting}");
        let json = run_to_string(&[
            "trace",
            "analyze",
            path.to_str().unwrap(),
            "--lop-alert",
            "100",
            "--trials",
            "4",
            "--json",
        ])
        .unwrap();
        assert!(
            json.contains("\"privacy\":{\"queries_accounted\":2"),
            "{json}"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn trace_watch_lop_alert_flags_hot_nodes() {
        let server = privtopk_observe::MetricsServer::bind("127.0.0.1:0", || {
            "# TYPE privtopk_privacy_lop_node gauge\n\
             privtopk_privacy_lop_node{node=\"0\"} 0.1\n\
             privtopk_privacy_lop_node{node=\"1\"} 0.5\n"
                .to_string()
        })
        .unwrap();
        let out = run_to_string(&[
            "trace",
            "watch",
            "--addr",
            &server.addr().to_string(),
            "--interval-ms",
            "1",
            "--count",
            "1",
            "--lop-alert",
            "0.25",
        ])
        .unwrap();
        assert!(
            out.contains("privacy alert: node 1 LoP 0.5000 exceeds --lop-alert 0.25"),
            "{out}"
        );
        assert!(!out.contains("privacy alert: node 0"), "{out}");
    }

    #[test]
    fn metrics_addr_serves_scrapes_during_service_run() {
        // Bind an ephemeral endpoint; the run is short, so rather than
        // race a scrape against it we check the bound-address line and
        // that the flag is rejected outside service mode.
        let out = run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--repeat",
            "2",
            "--metrics-addr",
            "127.0.0.1:0",
        ])
        .unwrap();
        assert!(out.contains("metrics: serving on 127.0.0.1:"), "{out}");
        assert!(run_to_string(&[
            "query",
            "--kind",
            "max",
            "--nodes",
            "4",
            "--metrics-addr",
            "127.0.0.1:0"
        ])
        .is_err());
    }

    #[test]
    fn groups_mode_rejects_telemetry_flags() {
        assert!(run_to_string(&[
            "query", "--kind", "max", "--nodes", "9", "--groups", "3", "--stats",
        ])
        .is_err());
    }
}
