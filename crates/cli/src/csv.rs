//! Minimal CSV loading for participant tables.
//!
//! Format: first row is the header (column names), subsequent rows are
//! integer cells. No quoting or escaping — these are numeric tables.

use std::fs;
use std::path::Path;

use privtopk_datagen::Table;
use privtopk_domain::Value;

use crate::CliError;

/// Loads one participant's table from a CSV file.
///
/// # Errors
///
/// Returns [`CliError::Execution`] for I/O failures, ragged rows, or
/// non-integer cells.
pub fn load_csv_table(path: &Path) -> Result<Table, CliError> {
    let raw = fs::read_to_string(path)
        .map_err(|e| CliError::Execution(format!("cannot read {}: {e}", path.display())))?;
    parse_csv(&raw).map_err(|msg| CliError::Execution(format!("{}: {msg}", path.display())))
}

fn parse_csv(raw: &str) -> Result<Table, String> {
    let mut lines = raw.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or("empty csv")?;
    let columns: Vec<&str> = header.split(',').map(str::trim).collect();
    let mut table = Table::new(columns.iter().copied()).map_err(|e| format!("bad header: {e}"))?;
    for (lineno, line) in lines.enumerate() {
        let mut row = Vec::with_capacity(columns.len());
        for cell in line.split(',') {
            let v: i64 = cell
                .trim()
                .parse()
                .map_err(|_| format!("line {}: non-integer cell `{}`", lineno + 2, cell.trim()))?;
            row.push(Value::new(v));
        }
        table
            .push_row(row)
            .map_err(|e| format!("line {}: {e}", lineno + 2))?;
    }
    Ok(table)
}

/// Loads every `*.csv` in a directory, sorted by file name (file order
/// defines node ids).
///
/// # Errors
///
/// Returns [`CliError::Execution`] for I/O or parse failures, or when the
/// directory holds no CSV files.
pub fn load_csv_dir(dir: &Path) -> Result<Vec<(String, Table)>, CliError> {
    let mut paths: Vec<_> = fs::read_dir(dir)
        .map_err(|e| CliError::Execution(format!("cannot read {}: {e}", dir.display())))?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(CliError::Execution(format!(
            "no .csv files in {}",
            dir.display()
        )));
    }
    paths
        .into_iter()
        .map(|p| {
            let name = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            Ok((name, load_csv_table(&p)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_well_formed_csv() {
        let t = parse_csv("region,sales\n1, 870\n2,430\n").unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.columns(), &["region".to_string(), "sales".to_string()]);
        assert_eq!(t.row(1).unwrap()[1], Value::new(430));
    }

    #[test]
    fn skips_blank_lines() {
        let t = parse_csv("a\n1\n\n2\n\n").unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_csv("").is_err());
        assert!(parse_csv("a,b\n1\n").is_err()); // ragged
        assert!(parse_csv("a\nbanana\n").is_err()); // non-integer
        assert!(parse_csv("a,a\n1,2\n").is_err()); // duplicate column
    }

    #[test]
    fn loads_directory_in_name_order() {
        let dir = std::env::temp_dir().join(format!("privtopk_csv_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b_corp.csv"), "sales\n100\n").unwrap();
        std::fs::write(dir.join("a_corp.csv"), "sales\n200\n").unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let tables = load_csv_dir(&dir).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].0, "a_corp");
        assert_eq!(tables[1].0, "b_corp");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_rejected() {
        let dir = std::env::temp_dir().join(format!("privtopk_empty_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert!(load_csv_dir(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
