//! Library backing the `privtopk` command-line tool.
//!
//! The binary (`src/main.rs`) is a thin shell over this crate so every
//! piece — argument parsing, CSV loading, command execution — is unit
//! tested. Subcommands:
//!
//! - `query` — run a federated max/min/top-k/bottom-k query over CSV
//!   tables (one file per participant) or synthetic data.
//! - `analyze` — print the paper's closed-form bounds for a `(p0, d)`
//!   pair.
//! - `audit` — run a query and report the Loss-of-Privacy audit alongside
//!   the answer.
//!
//! Run `privtopk help` for the full usage text.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod args;
mod commands;
mod csv;

pub use args::{Arguments, CliError, Command};
pub use commands::run;
pub use csv::load_csv_table;
