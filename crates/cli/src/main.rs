//! The `privtopk` command-line tool. See `privtopk help`.

use std::process::ExitCode;

use privtopk_cli::{run, Arguments};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match Arguments::parse(argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut stdout = std::io::stdout().lock();
    match run(&args, &mut stdout) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
