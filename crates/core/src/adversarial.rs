//! Malicious-model extensions: spoofing, hiding and jamming attacks.
//!
//! The paper's analysis assumes semi-honest parties and explicitly defers
//! the malicious model to future work, naming two concrete attacks: "a
//! spoofing attack and hiding attack where an adversary sends a spoofed
//! dataset or deliberately hides all or part of its dataset and leads to
//! a polluted query result" (Section 2.1). This module implements that
//! future work so the pollution can be *measured*:
//!
//! - [`Misbehavior::Spoof`] — the attacker enters the protocol with a
//!   fabricated local vector (input substitution).
//! - [`Misbehavior::Hide`] — the attacker withholds its data,
//!   participating with the domain floor.
//! - [`Misbehavior::Jam`] — a protocol-deviation attack: the node ignores
//!   the local algorithm and always emits the domain ceiling, poisoning
//!   every downstream computation.
//!
//! [`run_with_behaviors`] executes the protocol under a behavior
//! assignment and [`pollution`] quantifies the damage as `1 − precision`
//! against the honest ground truth.

use privtopk_domain::{DomainError, TopKVector};

use crate::{ProtocolConfig, ProtocolError, SimulationEngine, Transcript};

/// How a participant behaves.
#[derive(Debug, Clone, PartialEq)]
pub enum Misbehavior {
    /// Follows the protocol with its true data (semi-honest).
    Honest,
    /// Substitutes a fabricated local vector before entering the
    /// protocol.
    Spoof(TopKVector),
    /// Withholds its dataset: participates with the domain floor, which
    /// contributes nothing.
    Hide,
    /// Ignores the protocol and always emits the domain ceiling vector.
    Jam,
}

impl Misbehavior {
    /// Convenience: a spoof that claims the domain's largest values — the
    /// most damaging input-substitution attack.
    ///
    /// # Errors
    ///
    /// Propagates vector-construction errors for `k = 0`.
    pub fn ceiling_spoof(
        k: usize,
        domain: &privtopk_domain::ValueDomain,
    ) -> Result<Self, DomainError> {
        Ok(Misbehavior::Spoof(TopKVector::from_values(
            k,
            std::iter::repeat_n(domain.max(), k),
            domain,
        )?))
    }
}

/// Runs the protocol with per-node behaviors (`behaviors[i]` controls
/// `NodeId(i)`).
///
/// Input-level attacks (`Spoof`, `Hide`) substitute the attacker's local
/// vector; the protocol itself runs unmodified, exactly as the paper
/// describes ("it can change its input before entering the protocol").
/// `Jam` is modelled as the strongest input substitution — a ceiling
/// spoof — because under the ring protocol an always-emit-ceiling node
/// and a ceiling-spoofing node produce the same polluted fixed point.
///
/// # Errors
///
/// - [`ProtocolError::InconsistentK`] if behaviors and locals disagree on
///   `k`, or their lengths differ.
/// - Engine errors as usual.
pub fn run_with_behaviors(
    config: &ProtocolConfig,
    locals: &[TopKVector],
    behaviors: &[Misbehavior],
    seed: u64,
) -> Result<Transcript, ProtocolError> {
    if behaviors.len() != locals.len() {
        return Err(ProtocolError::InconsistentK {
            expected: locals.len(),
            got: behaviors.len(),
        });
    }
    let domain = config.domain();
    let effective: Vec<TopKVector> = locals
        .iter()
        .zip(behaviors)
        .map(|(real, b)| match b {
            Misbehavior::Honest => Ok(real.clone()),
            Misbehavior::Spoof(fake) => Ok(fake.clone()),
            Misbehavior::Hide => Ok(TopKVector::floor(real.k(), &domain)),
            Misbehavior::Jam => Ok(TopKVector::from_values(
                real.k(),
                std::iter::repeat_n(domain.max(), real.k()),
                &domain,
            )?),
        })
        .collect::<Result<_, DomainError>>()?;
    SimulationEngine::new(config.clone()).run(&effective, seed)
}

/// Pollution of a result relative to the honest truth: `1 − precision`.
///
/// # Errors
///
/// Returns a domain error on mismatched `k`.
pub fn pollution(result: &TopKVector, honest_truth: &TopKVector) -> Result<f64, DomainError> {
    Ok(1.0 - result.precision_against(honest_truth)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{true_topk, RoundPolicy};
    use privtopk_domain::{Value, ValueDomain};

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    fn locals(data: &[&[i64]], k: usize) -> Vec<TopKVector> {
        data.iter()
            .map(|vals| {
                TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain()).unwrap()
            })
            .collect()
    }

    fn config(k: usize) -> ProtocolConfig {
        let base = if k == 1 {
            ProtocolConfig::max()
        } else {
            ProtocolConfig::topk(k)
        };
        base.with_rounds(RoundPolicy::Precision { epsilon: 1e-9 })
    }

    #[test]
    fn all_honest_matches_normal_run() {
        let ls = locals(&[&[100], &[900], &[500], &[300]], 1);
        let behaviors = vec![Misbehavior::Honest; 4];
        let t = run_with_behaviors(&config(1), &ls, &behaviors, 3).unwrap();
        assert_eq!(t.result_value(), Value::new(900));
        assert_eq!(
            pollution(t.result(), &true_topk(&ls, 1, &domain()).unwrap()).unwrap(),
            0.0
        );
    }

    #[test]
    fn spoofing_pollutes_the_maximum() {
        let ls = locals(&[&[100], &[900], &[500], &[300]], 1);
        let mut behaviors = vec![Misbehavior::Honest; 4];
        behaviors[0] = Misbehavior::ceiling_spoof(1, &domain()).unwrap();
        let t = run_with_behaviors(&config(1), &ls, &behaviors, 3).unwrap();
        // The spoofed ceiling wins; the honest answer 900 is displaced.
        assert_eq!(t.result_value(), domain().max());
        let truth = true_topk(&ls, 1, &domain()).unwrap();
        assert_eq!(pollution(t.result(), &truth).unwrap(), 1.0);
    }

    #[test]
    fn hiding_the_top_holder_drops_the_true_maximum() {
        let ls = locals(&[&[100], &[900], &[500], &[300]], 1);
        let mut behaviors = vec![Misbehavior::Honest; 4];
        behaviors[1] = Misbehavior::Hide; // the node holding 900
        let t = run_with_behaviors(&config(1), &ls, &behaviors, 5).unwrap();
        assert_eq!(t.result_value(), Value::new(500));
    }

    #[test]
    fn hiding_a_non_contributor_is_harmless() {
        let ls = locals(&[&[100], &[900], &[500], &[300]], 1);
        let mut behaviors = vec![Misbehavior::Honest; 4];
        behaviors[0] = Misbehavior::Hide; // held 100, not the max anyway
        let t = run_with_behaviors(&config(1), &ls, &behaviors, 5).unwrap();
        assert_eq!(t.result_value(), Value::new(900));
    }

    #[test]
    fn topk_pollution_is_proportional_to_attackers() {
        let ls = locals(&[&[900, 800], &[700, 600], &[500, 400], &[300, 200]], 2);
        let truth = true_topk(&ls, 2, &domain()).unwrap();
        // One jammer with k = 2 displaces both top slots.
        let mut behaviors = vec![Misbehavior::Honest; 4];
        behaviors[3] = Misbehavior::Jam;
        let t = run_with_behaviors(&config(2), &ls, &behaviors, 7).unwrap();
        let p = pollution(t.result(), &truth).unwrap();
        assert_eq!(p, 1.0, "jammer fills the whole top-2");
    }

    #[test]
    fn partial_spoof_partially_pollutes() {
        let ls = locals(&[&[900, 800], &[700, 600], &[500, 400], &[300, 200]], 2);
        let truth = true_topk(&ls, 2, &domain()).unwrap();
        // Spoof one plausible-but-fake high value and one low value: only
        // one slot of the top-2 is displaced.
        let fake =
            TopKVector::from_values(2, [Value::new(9999), Value::new(5)], &domain()).unwrap();
        let mut behaviors = vec![Misbehavior::Honest; 4];
        behaviors[2] = Misbehavior::Spoof(fake);
        let t = run_with_behaviors(&config(2), &ls, &behaviors, 9).unwrap();
        let p = pollution(t.result(), &truth).unwrap();
        assert_eq!(p, 0.5);
    }

    #[test]
    fn behavior_length_validated() {
        let ls = locals(&[&[1], &[2], &[3]], 1);
        let behaviors = vec![Misbehavior::Honest; 2];
        assert!(run_with_behaviors(&config(1), &ls, &behaviors, 0).is_err());
    }
}
