//! Post-hoc transcript verification.
//!
//! A party that receives a [`Transcript`] — from the distributed driver,
//! from a log, from another implementation — can check that the recorded
//! execution actually obeys the protocol before trusting its result.
//! [`verify_transcript`] re-derives every structural invariant of
//! Algorithms 1 and 2 from the transcript alone (plus the ground-truth
//! local vectors where available) and reports the first violation.

use std::fmt;

use privtopk_domain::TopKVector;

use crate::local::LocalAction;
use crate::{AlgorithmKind, ProtocolConfig, Transcript};

/// A protocol invariant a transcript failed to satisfy.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// A step's incoming vector is not its predecessor step's outgoing.
    BrokenTokenChain {
        /// Index of the offending step.
        step: usize,
    },
    /// A step's round/position does not follow the ring schedule.
    ScheduleViolation {
        /// Index of the offending step.
        step: usize,
    },
    /// The max protocol's global value decreased.
    MonotonicityViolation {
        /// Index of the offending step.
        step: usize,
    },
    /// An output vector exceeds the merge of its inputs (values appeared
    /// from nowhere).
    Overshoot {
        /// Index of the offending step.
        step: usize,
    },
    /// A step labelled `PassedOn` changed the vector, or a labelled
    /// insertion does not match the real merge.
    ActionMismatch {
        /// Index of the offending step.
        step: usize,
    },
    /// The recorded result does not equal the last step's output.
    ResultMismatch,
    /// The transcript's shape disagrees with the configuration.
    ShapeMismatch,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::BrokenTokenChain { step } => {
                write!(f, "step {step}: incoming does not match previous outgoing")
            }
            Violation::ScheduleViolation { step } => {
                write!(f, "step {step}: out-of-order round or position")
            }
            Violation::MonotonicityViolation { step } => {
                write!(f, "step {step}: global max value decreased")
            }
            Violation::Overshoot { step } => {
                write!(f, "step {step}: output exceeds merge of inputs")
            }
            Violation::ActionMismatch { step } => {
                write!(f, "step {step}: recorded action inconsistent with data")
            }
            Violation::ResultMismatch => write!(f, "result differs from final output"),
            Violation::ShapeMismatch => write!(f, "transcript shape mismatches configuration"),
        }
    }
}

impl std::error::Error for Violation {}

/// Verifies every structural invariant of a transcript.
///
/// `locals` are the ground-truth local vectors (available to the auditor
/// in tests/experiments; pass what you have — the per-step merge bound is
/// only checked when they are supplied).
///
/// # Errors
///
/// Returns the first [`Violation`] found.
pub fn verify_transcript(
    transcript: &Transcript,
    locals: Option<&[TopKVector]>,
    config: &ProtocolConfig,
) -> Result<(), Violation> {
    let n = transcript.n();
    let steps = transcript.steps();
    let rounds = transcript.rounds();
    if steps.len() != n * rounds as usize {
        return Err(Violation::ShapeMismatch);
    }
    if let Some(locals) = locals {
        if locals.len() != n {
            return Err(Violation::ShapeMismatch);
        }
    }

    for (i, step) in steps.iter().enumerate() {
        // Schedule: steps proceed in (round, position) lockstep.
        let expect_round = (i / n) as u32 + 1;
        let expect_pos = i % n;
        if step.round != expect_round || step.position.get() != expect_pos {
            return Err(Violation::ScheduleViolation { step: i });
        }
        // Token chain.
        if i > 0 && step.incoming != steps[i - 1].outgoing {
            return Err(Violation::BrokenTokenChain { step: i });
        }
        // Monotone global value for the max protocol.
        if config.algorithm() == AlgorithmKind::Max && step.outgoing.first() < step.incoming.first()
        {
            return Err(Violation::MonotonicityViolation { step: i });
        }
        if let Some(locals) = locals {
            let local = &locals[step.node.get()];
            let merged = step.incoming.merged_with(local);
            // No value can exceed the true merge, at any rank.
            for rank in 1..=step.outgoing.k() {
                if step.outgoing.get(rank) > merged.get(rank) {
                    return Err(Violation::Overshoot { step: i });
                }
            }
            // Action consistency.
            match step.action {
                LocalAction::PassedOn => {
                    // Forwarding: unchanged vector (the insert-once rule
                    // also labels its forwarding as PassedOn).
                    if step.outgoing != step.incoming {
                        return Err(Violation::ActionMismatch { step: i });
                    }
                }
                LocalAction::InsertedReal => {
                    if step.outgoing != merged {
                        return Err(Violation::ActionMismatch { step: i });
                    }
                }
                LocalAction::Randomized => {
                    // A randomized step must differ from the real merge
                    // (the whole point is not to reveal it) unless the
                    // random draw coincided — possible only when the
                    // random range is a single point, which δ >= 1 and an
                    // open upper bound make impossible for the tail.
                    if step.outgoing == merged {
                        return Err(Violation::ActionMismatch { step: i });
                    }
                }
            }
        }
    }

    if let Some(last) = steps.last() {
        if &last.outgoing != transcript.result() {
            return Err(Violation::ResultMismatch);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ProtocolConfig, RoundPolicy, SimulationEngine};
    use privtopk_domain::{Value, ValueDomain};

    fn locals_k(k: usize, data: &[&[i64]]) -> Vec<TopKVector> {
        let domain = ValueDomain::paper_default();
        data.iter()
            .map(|vals| {
                TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain).unwrap()
            })
            .collect()
    }

    #[test]
    fn genuine_transcripts_verify() {
        for k in [1usize, 3] {
            let config = if k == 1 {
                ProtocolConfig::max()
            } else {
                ProtocolConfig::topk(k)
            }
            .with_rounds(RoundPolicy::Fixed(6));
            let locals = locals_k(
                k,
                &[
                    &[900, 400, 100],
                    &[850, 300, 50],
                    &[700, 650, 10],
                    &[20, 15, 12],
                ],
            );
            for seed in 0..10 {
                let t = SimulationEngine::new(config.clone())
                    .run(&locals, seed)
                    .unwrap();
                verify_transcript(&t, Some(&locals), &config)
                    .unwrap_or_else(|v| panic!("k={k} seed={seed}: {v}"));
                // Also verifiable without ground truth.
                verify_transcript(&t, None, &config).unwrap();
            }
        }
    }

    #[test]
    fn naive_transcripts_verify() {
        let config = ProtocolConfig::naive(2);
        let locals = locals_k(2, &[&[10, 20], &[90, 80], &[50, 60]]);
        let t = SimulationEngine::new(config.clone())
            .run(&locals, 0)
            .unwrap();
        verify_transcript(&t, Some(&locals), &config).unwrap();
    }

    #[test]
    fn tampered_value_detected() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(4));
        let locals = locals_k(1, &[&[300], &[900], &[100]]);
        let t = SimulationEngine::new(config.clone())
            .run(&locals, 1)
            .unwrap();
        // Tamper: inflate one step's outgoing value beyond any input.
        let mut steps = t.steps().to_vec();
        steps[5].outgoing = TopKVector::from_sorted(vec![Value::new(9999)]).unwrap();
        let tampered = Transcript::new(
            3,
            1,
            4,
            vec![t.ring_order(1).unwrap().to_vec()],
            steps,
            t.result().clone(),
        );
        let err = verify_transcript(&tampered, Some(&locals), &config).unwrap_err();
        assert!(
            matches!(
                err,
                Violation::BrokenTokenChain { .. } | Violation::Overshoot { .. }
            ),
            "got {err}"
        );
    }

    #[test]
    fn broken_chain_detected() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let locals = locals_k(1, &[&[300], &[900], &[100]]);
        let t = SimulationEngine::new(config.clone())
            .run(&locals, 2)
            .unwrap();
        let mut steps = t.steps().to_vec();
        // Rewrite a mid-stream incoming so the chain no longer links up.
        steps[4].incoming = TopKVector::from_sorted(vec![Value::new(1)]).unwrap();
        let tampered = Transcript::new(
            3,
            1,
            3,
            vec![t.ring_order(1).unwrap().to_vec()],
            steps,
            t.result().clone(),
        );
        assert!(matches!(
            verify_transcript(&tampered, None, &config),
            Err(Violation::BrokenTokenChain { step: 4 })
                | Err(Violation::MonotonicityViolation { step: 4 })
        ));
    }

    #[test]
    fn wrong_result_detected() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let locals = locals_k(1, &[&[300], &[900], &[100]]);
        let t = SimulationEngine::new(config.clone())
            .run(&locals, 3)
            .unwrap();
        let forged = Transcript::new(
            3,
            1,
            3,
            vec![t.ring_order(1).unwrap().to_vec()],
            t.steps().to_vec(),
            TopKVector::from_sorted(vec![Value::new(1)]).unwrap(),
        );
        assert_eq!(
            verify_transcript(&forged, None, &config),
            Err(Violation::ResultMismatch)
        );
    }

    #[test]
    fn shape_mismatch_detected() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let locals = locals_k(1, &[&[300], &[900], &[100]]);
        let t = SimulationEngine::new(config.clone())
            .run(&locals, 4)
            .unwrap();
        // Drop a step.
        let steps = t.steps()[..t.steps().len() - 1].to_vec();
        let truncated = Transcript::new(
            3,
            1,
            3,
            vec![t.ring_order(1).unwrap().to_vec()],
            steps,
            t.result().clone(),
        );
        assert_eq!(
            verify_transcript(&truncated, None, &config),
            Err(Violation::ShapeMismatch)
        );
        // Wrong locals length.
        assert_eq!(
            verify_transcript(&t, Some(&locals[..2]), &config),
            Err(Violation::ShapeMismatch)
        );
    }

    #[test]
    fn violations_display() {
        for v in [
            Violation::BrokenTokenChain { step: 1 },
            Violation::ScheduleViolation { step: 2 },
            Violation::MonotonicityViolation { step: 3 },
            Violation::Overshoot { step: 4 },
            Violation::ActionMismatch { step: 5 },
            Violation::ResultMismatch,
            Violation::ShapeMismatch,
        ] {
            assert!(!v.to_string().is_empty());
        }
    }
}
