//! Batched query jobs: B independent protocol executions that share ring
//! traversals.
//!
//! Batching is a *transport* optimization only. Every job carries its own
//! seed, so its RNG streams — topology, per-node randomization — are
//! exactly those of a solo run with that seed. The drivers
//! ([`crate::run_simulated_batch`] and
//! [`crate::distributed::run_distributed_batch`]) are required to produce,
//! for each job, a transcript bit-identical to running it alone; that
//! equivalence is the acceptance gate enforced by the test suite.

use privtopk_domain::rng::derive_seed;
use privtopk_domain::TopKVector;

use crate::messages::MAX_BATCH_ENTRIES;
use crate::{ProtocolConfig, ProtocolError};

/// Stream tag under which per-query batch seeds hang off the caller's base
/// seed.
const STREAM_BATCH_QUERY: u64 = 0x40;

/// Derives the seed for query `query_idx` of a batch rooted at `base`.
///
/// Defined once here so every layer (federation, CLI, benchmarks, tests)
/// agrees on which solo run a batched query must match.
#[must_use]
pub fn derive_batch_seed(base: u64, query_idx: u64) -> u64 {
    derive_seed(derive_seed(base, STREAM_BATCH_QUERY), query_idx)
}

/// One query of a batch: a full protocol execution described by its
/// configuration, per-node local vectors, and seed.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// The protocol configuration for this query.
    pub config: ProtocolConfig,
    /// `locals[i]` is the local top-k vector of node `i`.
    pub locals: Vec<TopKVector>,
    /// The seed of the equivalent solo run.
    pub seed: u64,
}

impl BatchJob {
    /// Bundles a job.
    #[must_use]
    pub fn new(config: ProtocolConfig, locals: Vec<TopKVector>, seed: u64) -> Self {
        BatchJob {
            config,
            locals,
            seed,
        }
    }
}

/// Shared structural validation for batch drivers: non-empty, under the
/// wire entry cap.
pub(crate) fn validate_batch_shape(jobs: &[BatchJob]) -> Result<(), ProtocolError> {
    if jobs.is_empty() {
        return Err(ProtocolError::InvalidBatch {
            reason: "batch contains no queries",
        });
    }
    if jobs.len() > MAX_BATCH_ENTRIES {
        return Err(ProtocolError::InvalidBatch {
            reason: "batch exceeds the wire entry cap",
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::{Value, ValueDomain};

    #[test]
    fn batch_seeds_are_distinct_and_stable() {
        let a = derive_batch_seed(7, 0);
        let b = derive_batch_seed(7, 1);
        assert_ne!(a, b);
        assert_eq!(a, derive_batch_seed(7, 0), "derivation is pure");
        // Distinct from the raw base: batching never reuses the caller's
        // seed for query 0 of a different-size batch differently.
        assert_ne!(a, 7);
    }

    #[test]
    fn shape_validation() {
        assert!(matches!(
            validate_batch_shape(&[]),
            Err(ProtocolError::InvalidBatch { .. })
        ));
        let domain = ValueDomain::paper_default();
        let local = TopKVector::from_values(1, [Value::new(1)], &domain).unwrap();
        let job = BatchJob::new(ProtocolConfig::max(), vec![local; 3], 0);
        assert!(validate_batch_shape(std::slice::from_ref(&job)).is_ok());
    }
}
