//! Protocol configuration: query parameters, schedules and policies.

use std::fmt;

use serde::{Deserialize, Serialize};

use privtopk_domain::ValueDomain;

use crate::{ProtocolError, Schedule};

/// How many rounds the protocol runs before terminating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RoundPolicy {
    /// A fixed number of computation rounds.
    Fixed(u32),
    /// Enough rounds to guarantee the true result with probability at
    /// least `1 − epsilon` (Equation 4, generalized to any schedule).
    Precision {
        /// Error bound in `(0, 1)`.
        epsilon: f64,
    },
}

impl Default for RoundPolicy {
    /// The paper's experimental precision target `ε = 0.001` (Figure 9).
    fn default() -> Self {
        RoundPolicy::Precision { epsilon: 1e-3 }
    }
}

/// How the starting node is chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum StartPolicy {
    /// Node 0 always starts and the ring is laid out in node order — the
    /// worst case for privacy; used by the naive baseline.
    Fixed,
    /// The ring arrangement (and hence the starting node) is drawn
    /// uniformly at random — the paper's "randomized starting scheme",
    /// which "preserves the anonymity of the starting node".
    #[default]
    RandomAnonymous,
}

/// Which local algorithm runs at each node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlgorithmKind {
    /// Algorithm 1 — the scalar max/min protocol (`k = 1`).
    Max,
    /// Algorithm 2 — the general top-k protocol.
    TopK,
}

/// Complete configuration of a protocol execution.
///
/// Construct with [`ProtocolConfig::max`] or [`ProtocolConfig::topk`] and
/// chain the builder methods; `validate` is called by the engines before
/// execution.
///
/// # Example
///
/// ```
/// use privtopk_core::{ProtocolConfig, Schedule, RoundPolicy};
///
/// let config = ProtocolConfig::topk(5)
///     .with_schedule(Schedule::exponential(1.0, 0.5)?)
///     .with_rounds(RoundPolicy::Fixed(8));
/// assert_eq!(config.k(), 5);
/// # Ok::<(), privtopk_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProtocolConfig {
    algorithm: AlgorithmKind,
    k: usize,
    domain: ValueDomain,
    schedule: Schedule,
    rounds: RoundPolicy,
    /// Algorithm 2's minimum randomization range `δ` (in value steps).
    delta: u64,
    start: StartPolicy,
    /// Section 4.3 extension: re-randomize the ring arrangement each round.
    remap_each_round: bool,
}

impl ProtocolConfig {
    /// A max-selection protocol (Algorithm 1, `k = 1`) with the paper's
    /// default schedule.
    #[must_use]
    pub fn max() -> Self {
        ProtocolConfig {
            algorithm: AlgorithmKind::Max,
            k: 1,
            domain: ValueDomain::paper_default(),
            schedule: Schedule::paper_default(),
            rounds: RoundPolicy::default(),
            delta: 1,
            start: StartPolicy::RandomAnonymous,
            remap_each_round: false,
        }
    }

    /// A general top-k protocol (Algorithm 2) with the paper's default
    /// schedule.
    #[must_use]
    pub fn topk(k: usize) -> Self {
        ProtocolConfig {
            algorithm: AlgorithmKind::TopK,
            k,
            ..ProtocolConfig::max()
        }
    }

    /// The deterministic naive baseline: one round, no randomization, a
    /// fixed starting node.
    #[must_use]
    pub fn naive(k: usize) -> Self {
        ProtocolConfig {
            algorithm: if k == 1 {
                AlgorithmKind::Max
            } else {
                AlgorithmKind::TopK
            },
            k,
            schedule: Schedule::Never,
            rounds: RoundPolicy::Fixed(1),
            start: StartPolicy::Fixed,
            ..ProtocolConfig::max()
        }
    }

    /// The anonymous naive baseline: like [`ProtocolConfig::naive`] but
    /// with a random starting node.
    #[must_use]
    pub fn anonymous_naive(k: usize) -> Self {
        ProtocolConfig {
            start: StartPolicy::RandomAnonymous,
            ..ProtocolConfig::naive(k)
        }
    }

    /// Overrides the randomization schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the round policy.
    #[must_use]
    pub fn with_rounds(mut self, rounds: RoundPolicy) -> Self {
        self.rounds = rounds;
        self
    }

    /// Overrides the public value domain.
    #[must_use]
    pub fn with_domain(mut self, domain: ValueDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Overrides Algorithm 2's minimum randomization range `δ`.
    #[must_use]
    pub fn with_delta(mut self, delta: u64) -> Self {
        self.delta = delta;
        self
    }

    /// Overrides the starting-node policy.
    #[must_use]
    pub fn with_start(mut self, start: StartPolicy) -> Self {
        self.start = start;
        self
    }

    /// Enables per-round ring remapping (Section 4.3).
    #[must_use]
    pub fn with_remap_each_round(mut self, remap: bool) -> Self {
        self.remap_each_round = remap;
        self
    }

    /// The local algorithm in use.
    #[must_use]
    pub fn algorithm(&self) -> AlgorithmKind {
        self.algorithm
    }

    /// The query's `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The public value domain.
    #[must_use]
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }

    /// The randomization schedule.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The round policy.
    #[must_use]
    pub fn rounds(&self) -> RoundPolicy {
        self.rounds
    }

    /// Algorithm 2's `δ`.
    #[must_use]
    pub fn delta(&self) -> u64 {
        self.delta
    }

    /// The starting-node policy.
    #[must_use]
    pub fn start(&self) -> StartPolicy {
        self.start
    }

    /// Whether the ring is remapped every round.
    #[must_use]
    pub fn remap_each_round(&self) -> bool {
        self.remap_each_round
    }

    /// Resolves the round policy into a concrete round count.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::InvalidProbability`] for a zero fixed round count
    ///   or an epsilon outside `(0, 1)`.
    /// - [`ProtocolError::UnreachablePrecision`] if the schedule never
    ///   decays enough.
    pub fn resolve_rounds(&self) -> Result<u32, ProtocolError> {
        match self.rounds {
            RoundPolicy::Fixed(r) if r >= 1 => Ok(r),
            RoundPolicy::Fixed(_) => Err(ProtocolError::InvalidProbability {
                what: "rounds",
                value: 0.0,
            }),
            RoundPolicy::Precision { epsilon } => self.schedule.min_rounds_for_precision(epsilon),
        }
    }

    /// Validates the configuration against a participant count.
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::TooFewNodes`]: the paper requires `n > 2` for the
    ///   probabilistic protocol and at least 2 parties for any query.
    /// - [`ProtocolError::MaxRequiresKOne`] if Algorithm 1 is configured
    ///   with `k != 1`.
    /// - [`ProtocolError::ZeroDelta`] if `δ == 0`.
    /// - [`ProtocolError::Domain`] if `k == 0`.
    pub fn validate(&self, n: usize) -> Result<(), ProtocolError> {
        if self.k == 0 {
            return Err(privtopk_domain::DomainError::ZeroK.into());
        }
        if self.algorithm == AlgorithmKind::Max && self.k != 1 {
            return Err(ProtocolError::MaxRequiresKOne { got: self.k });
        }
        if self.delta == 0 {
            return Err(ProtocolError::ZeroDelta);
        }
        let minimum = if self.schedule.is_probabilistic() {
            3
        } else {
            2
        };
        if n < minimum {
            return Err(ProtocolError::TooFewNodes { got: n, minimum });
        }
        Ok(())
    }
}

impl Default for ProtocolConfig {
    fn default() -> Self {
        ProtocolConfig::max()
    }
}

impl fmt::Display for ProtocolConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} k={} schedule={} domain={}",
            self.algorithm, self.k, self.schedule, self.domain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_paper_defaults() {
        let m = ProtocolConfig::max();
        assert_eq!(m.k(), 1);
        assert_eq!(m.algorithm(), AlgorithmKind::Max);
        assert_eq!(m.schedule(), Schedule::paper_default());
        assert_eq!(m.start(), StartPolicy::RandomAnonymous);

        let t = ProtocolConfig::topk(6);
        assert_eq!(t.k(), 6);
        assert_eq!(t.algorithm(), AlgorithmKind::TopK);

        let n = ProtocolConfig::naive(1);
        assert_eq!(n.schedule(), Schedule::Never);
        assert_eq!(n.start(), StartPolicy::Fixed);
        assert_eq!(n.resolve_rounds().unwrap(), 1);

        let a = ProtocolConfig::anonymous_naive(3);
        assert_eq!(a.start(), StartPolicy::RandomAnonymous);
        assert_eq!(a.algorithm(), AlgorithmKind::TopK);
    }

    #[test]
    fn builder_methods_chain() {
        let c = ProtocolConfig::topk(2)
            .with_delta(50)
            .with_remap_each_round(true)
            .with_rounds(RoundPolicy::Fixed(7));
        assert_eq!(c.delta(), 50);
        assert!(c.remap_each_round());
        assert_eq!(c.resolve_rounds().unwrap(), 7);
    }

    #[test]
    fn validate_enforces_paper_constraints() {
        let c = ProtocolConfig::max();
        assert!(c.validate(3).is_ok());
        assert!(matches!(
            c.validate(2),
            Err(ProtocolError::TooFewNodes { minimum: 3, .. })
        ));
        // Naive protocol works with 2 parties.
        assert!(ProtocolConfig::naive(1).validate(2).is_ok());
        assert!(ProtocolConfig::naive(1).validate(1).is_err());
    }

    #[test]
    fn validate_rejects_bad_shapes() {
        assert!(ProtocolConfig::topk(0).validate(4).is_err());
        assert!(ProtocolConfig::topk(3).with_delta(0).validate(4).is_err());
        let bad_max = ProtocolConfig {
            k: 2,
            ..ProtocolConfig::max()
        };
        assert!(matches!(
            bad_max.validate(4),
            Err(ProtocolError::MaxRequiresKOne { got: 2 })
        ));
    }

    #[test]
    fn precision_policy_resolves_via_schedule() {
        let c = ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-3 });
        let r = c.resolve_rounds().unwrap();
        assert!((4..=8).contains(&r), "r = {r}");
    }

    #[test]
    fn zero_fixed_rounds_rejected() {
        let c = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(0));
        assert!(c.resolve_rounds().is_err());
    }

    #[test]
    fn display_mentions_key_fields() {
        let s = ProtocolConfig::topk(4).to_string();
        assert!(s.contains("k=4"));
        assert!(s.contains("exponential"));
    }
}
