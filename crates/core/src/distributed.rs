//! The distributed protocol driver: one thread per private database,
//! communicating only through a [`Transport`].
//!
//! This runs the *same* local algorithms as the
//! [`SimulationEngine`](crate::SimulationEngine) — with the same seed
//! derivation — so, over a losslessly ordered transport, a distributed
//! execution produces a transcript identical to the simulated one. That
//! equivalence is asserted by integration tests and is what justifies
//! running the large experiment sweeps in-process.

use std::sync::Arc;
use std::time::Duration;

use privtopk_domain::rng::SeedSpec;
use privtopk_domain::{NodeId, RingPosition, TopKVector};
use privtopk_observe::{Ctx, Phase, Recorder};
use privtopk_ring::chaos::{ChaosEndpoint, ChaosState};
use privtopk_ring::faults::{FaultyEndpoint, ReliableEndpoint};
use privtopk_ring::transport::{
    send_value_many_traced, send_value_traced, FramePool, InMemoryNetwork, TcpNetwork, Transport,
};
use privtopk_ring::{MetricsSnapshot, RingError, RingTopology, TransportMetrics};

use crate::local::{max_step, topk_step_scratch, TopkScratch};
use crate::{
    AlgorithmKind, BatchJob, BatchMessage, ProtocolConfig, ProtocolError, StartPolicy, StepRecord,
    TokenMessage, Transcript,
};

/// Seed stream tags — shared with the simulation engine so both drivers
/// derive identical randomness.
pub(crate) const STREAM_TOPOLOGY: u64 = 0x10;
pub(crate) const STREAM_NODE: u64 = 0x20;

/// How long a worker waits for its predecessor before giving up.
pub(crate) const RECV_TIMEOUT: Duration = Duration::from_secs(30);

/// Which substrate carries the messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NetworkKind {
    /// Crossbeam channels inside the current process.
    InMemory,
    /// Real TCP sockets on loopback.
    Tcp,
    /// In-process channels that drop each frame with the given
    /// probability, healed by a stop-and-wait reliability layer — the
    /// protocol runs unmodified over a lossy network.
    LossyInMemory {
        /// Per-frame drop probability in `[0, 1)`.
        drop_probability: f64,
    },
}

/// Result of a distributed execution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedOutcome {
    /// The assembled global transcript (merged from all workers).
    pub transcript: Transcript,
    /// The final result as learned by each node (indexed by `NodeId`);
    /// the termination circulation guarantees these are all equal.
    pub per_node_results: Vec<TopKVector>,
    /// Total frames sent on the transport.
    pub messages_sent: u64,
    /// Total payload bytes sent on the transport.
    pub bytes_sent: u64,
}

/// Runs the configured protocol with one worker thread per node.
///
/// `locals[i]` is the local top-k vector of `NodeId(i)`.
///
/// # Errors
///
/// - Configuration errors, as for the simulation engine.
/// - [`ProtocolError::Ring`] on transport failures or timeouts.
/// - [`ProtocolError::WorkerFailed`] if a worker thread panics.
///
/// Per-round ring remapping is a simulation-only extension; requesting it
/// here returns [`ProtocolError::Ring`] with a decode reason.
pub fn run_distributed(
    config: &ProtocolConfig,
    locals: &[TopKVector],
    network: NetworkKind,
    seed: u64,
) -> Result<DistributedOutcome, ProtocolError> {
    run_distributed_traced(config, locals, network, seed, &Recorder::disabled())
}

/// [`run_distributed`] with telemetry: every worker times its receive
/// waits, hop computations and sends as [`Phase`] spans, the lossy
/// reliability layer reports retransmissions and re-ACKs, and the
/// transport counters are absorbed into the recorder's registry when the
/// run completes. Recording never touches the seeded RNG streams or the
/// wire content, so the transcript is bit-identical to the untraced run.
///
/// # Errors
///
/// As for [`run_distributed`].
pub fn run_distributed_traced(
    config: &ProtocolConfig,
    locals: &[TopKVector],
    network: NetworkKind,
    seed: u64,
    recorder: &Recorder,
) -> Result<DistributedOutcome, ProtocolError> {
    run_once(
        config,
        locals,
        network,
        seed,
        &CrashSchedule::none(),
        RECV_TIMEOUT,
        recorder,
    )
    .map_err(RunFailure::into_error)
}

/// Scheduled mid-protocol crashes, for failure-recovery testing: node ->
/// the round at whose start it dies (before receiving or sending).
#[derive(Debug, Clone, Default)]
pub struct CrashSchedule {
    at_round: std::collections::HashMap<NodeId, u32>,
}

impl CrashSchedule {
    /// No crashes.
    #[must_use]
    pub fn none() -> Self {
        CrashSchedule::default()
    }

    /// Schedules `node` to crash at the start of `round`.
    #[must_use]
    pub fn crash(mut self, node: NodeId, round: u32) -> Self {
        self.at_round.insert(node, round);
        self
    }

    /// The scheduled crash round for `node`, if any.
    #[must_use]
    pub fn round_for(&self, node: NodeId) -> Option<u32> {
        self.at_round.get(&node).copied()
    }

    /// Whether any crash is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.at_round.is_empty()
    }
}

/// Why a distributed attempt failed, with enough structure for a
/// supervisor to react.
#[derive(Debug)]
pub(crate) struct RunFailure {
    /// Nodes that died mid-protocol.
    pub crashed: Vec<NodeId>,
    /// The first non-crash error observed (e.g. a survivor's timeout).
    pub error: ProtocolError,
}

impl RunFailure {
    fn into_error(self) -> ProtocolError {
        self.error
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run_once(
    config: &ProtocolConfig,
    locals: &[TopKVector],
    network: NetworkKind,
    seed: u64,
    crashes: &CrashSchedule,
    recv_timeout: Duration,
    recorder: &Recorder,
) -> Result<DistributedOutcome, RunFailure> {
    let fail = |error: ProtocolError| RunFailure {
        crashed: Vec::new(),
        error,
    };
    let n = locals.len();
    config.validate(n).map_err(fail)?;
    for local in locals {
        if local.k() != config.k() {
            return Err(fail(ProtocolError::InconsistentK {
                expected: config.k(),
                got: local.k(),
            }));
        }
    }
    if config.remap_each_round() {
        return Err(fail(ProtocolError::Ring(RingError::Decode {
            reason: "per-round remapping is not supported by the distributed driver",
        })));
    }
    let rounds = config.resolve_rounds().map_err(fail)?;
    let topology = Arc::new(derive_topology(config, n, seed).map_err(fail)?);

    let (endpoints, metrics) = build_endpoints(network, n, seed, recorder).map_err(fail)?;
    let drain_on_exit = drain_window(network);
    let config = Arc::new(config.clone());
    let mut handles = Vec::with_capacity(n);
    for (i, endpoint) in endpoints.into_iter().enumerate() {
        let me = NodeId::new(i);
        let topology = Arc::clone(&topology);
        let state = NodeWorker::for_query(Arc::clone(&config), locals[i].clone(), seed, i, rounds);
        let crash_at = crashes.round_for(me);
        let recorder = recorder.clone();
        handles.push(std::thread::spawn(move || {
            worker(
                me,
                state,
                endpoint,
                &topology,
                rounds,
                drain_on_exit,
                crash_at,
                recv_timeout,
                recorder,
                Ctx::EMPTY,
            )
        }));
    }

    let mut reports: Vec<WorkerReport> = Vec::with_capacity(n);
    let mut crashed: Vec<NodeId> = Vec::new();
    let mut first_error: Option<ProtocolError> = None;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.join() {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(ProtocolError::WorkerCrashed { node })) => crashed.push(node),
            Ok(Err(e)) => {
                if first_error.is_none() {
                    first_error = Some(e);
                }
            }
            Err(_) => {
                if first_error.is_none() {
                    first_error = Some(ProtocolError::WorkerFailed { position: i });
                }
            }
        }
    }
    if let Some(error) = first_error {
        return Err(RunFailure { crashed, error });
    }
    if !crashed.is_empty() {
        // Every survivor somehow finished despite crashes (cannot happen
        // on a ring, but be defensive).
        let node = crashed[0];
        return Err(RunFailure {
            crashed,
            error: ProtocolError::WorkerCrashed { node },
        });
    }

    reports.sort_by_key(|r| r.node.get());
    let per_node_results: Vec<TopKVector> = reports.iter().map(|r| r.result.clone()).collect();
    let mut steps: Vec<StepRecord> = reports.into_iter().flat_map(|r| r.steps).collect();
    steps.sort_by_key(|s| (s.round, s.position.get()));
    let result = per_node_results[0].clone();
    let transcript = Transcript::new(
        n,
        config.k(),
        rounds,
        vec![topology.order().to_vec()],
        steps,
        result,
    );
    let snap = metrics.take();
    snap.publish(recorder);
    Ok(DistributedOutcome {
        transcript,
        per_node_results,
        messages_sent: snap.logical_messages,
        bytes_sent: snap.bytes_sent,
    })
}

/// Derives a query's ring topology from its seed — the same
/// `STREAM_TOPOLOGY` derivation as the simulation engine, shared by the
/// one-shot, batched and persistent-service drivers.
pub(crate) fn derive_topology(
    config: &ProtocolConfig,
    n: usize,
    seed: u64,
) -> Result<RingTopology, ProtocolError> {
    Ok(match config.start() {
        StartPolicy::Fixed => RingTopology::identity(n)?,
        StartPolicy::RandomAnonymous => {
            RingTopology::random(n, &mut SeedSpec::new(seed).stream(STREAM_TOPOLOGY).rng())?
        }
    })
}

/// Builds one endpoint per node over the requested substrate, plus the
/// network's shared metrics. Over a lossy substrate the reliability
/// layer shares the metrics and the recorder, so retransmissions and
/// re-ACKs show up in both.
pub(crate) fn build_endpoints(
    network: NetworkKind,
    n: usize,
    seed: u64,
    recorder: &Recorder,
) -> Result<(Vec<Box<dyn Transport>>, TransportMetrics), ProtocolError> {
    Ok(match network {
        NetworkKind::InMemory => {
            let net = InMemoryNetwork::new(n);
            let metrics = net.metrics();
            (
                net.endpoints()
                    .into_iter()
                    .map(|e| Box::new(e) as Box<dyn Transport>)
                    .collect(),
                metrics,
            )
        }
        NetworkKind::Tcp => {
            let net = TcpNetwork::bind(n)?;
            let metrics = net.metrics();
            (
                net.endpoints()?
                    .into_iter()
                    .map(|e| Box::new(e) as Box<dyn Transport>)
                    .collect(),
                metrics,
            )
        }
        NetworkKind::LossyInMemory { drop_probability } => {
            let net = InMemoryNetwork::new(n);
            let metrics = net.metrics();
            (
                net.endpoints()
                    .into_iter()
                    .enumerate()
                    .map(|(i, e)| {
                        let faulty =
                            FaultyEndpoint::new(e, drop_probability, seed ^ (i as u64) << 8);
                        let reliable = ReliableEndpoint::new(faulty)
                            .with_observer(metrics.clone(), recorder.clone());
                        Box::new(reliable) as Box<dyn Transport>
                    })
                    .collect(),
                metrics,
            )
        }
    })
}

/// Builds one endpoint per node with a [`ChaosEndpoint`] injecting the
/// shared [`ChaosState`]'s scheduled incidents underneath the usual
/// reliability layer. The stack mirrors the lossy substrate — chaos
/// drops frames, stop-and-wait heals them, and both the metrics and the
/// recorder see every retransmission and re-ACK of the healing storm.
pub(crate) fn build_chaos_endpoints(
    n: usize,
    seed: u64,
    recorder: &Recorder,
    state: &Arc<ChaosState>,
) -> (Vec<Box<dyn Transport>>, TransportMetrics) {
    let net = InMemoryNetwork::new(n);
    let metrics = net.metrics();
    (
        net.endpoints()
            .into_iter()
            .enumerate()
            .map(|(i, e)| {
                let chaotic = ChaosEndpoint::new(e, Arc::clone(state), seed ^ (i as u64) << 8);
                let reliable =
                    ReliableEndpoint::new(chaotic).with_observer(metrics.clone(), recorder.clone());
                Box::new(reliable) as Box<dyn Transport>
            })
            .collect(),
        metrics,
    )
}

/// Lossy transports need a shutdown drain: a finished worker keeps
/// re-acknowledging retransmissions for a grace window so a peer whose
/// ACK was dropped does not retry into a closed endpoint.
pub(crate) fn drain_window(network: NetworkKind) -> Option<Duration> {
    match network {
        NetworkKind::LossyInMemory { .. } => Some(Duration::from_secs(1)),
        _ => None,
    }
}

/// Result of a batched distributed execution: per-query outcomes plus
/// frame-level wire accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedBatchOutcome {
    /// One transcript per job, in job order; each is bit-identical to the
    /// job's solo [`run_distributed`] transcript.
    pub transcripts: Vec<Transcript>,
    /// `per_node_results[q][i]` is what node `i` learned for query `q`.
    pub per_node_results: Vec<Vec<TopKVector>>,
    /// Physical frames sent across all batch groups.
    pub frames_sent: u64,
    /// Logical (per-query) messages carried by those frames; this is the
    /// paper's cost-model quantity, summed over the batch.
    pub logical_messages: u64,
    /// Total payload bytes sent.
    pub bytes_sent: u64,
    /// Pre-compression payload bytes: what the same frames would have
    /// cost under the legacy fixed-width codec.
    pub baseline_bytes: u64,
    /// Number of lock-step groups the batch was partitioned into (jobs
    /// only share frames when they agree on ring order and round count).
    pub groups: u32,
}

/// Runs B independent queries over one federation of `n` nodes, sharing
/// ring traversals wherever the jobs agree on topology and round count.
///
/// Jobs are partitioned into lock-step groups keyed by (resolved rounds,
/// ring order): within a group, one [`BatchMessage`] per hop piggybacks
/// every member query's token, so per-hop framing, thread spawning and
/// syscalls are amortized across the group. Jobs with
/// [`StartPolicy::RandomAnonymous`] derive their ring order from their own
/// seed (exactly as solo runs do), so they only coalesce when their orders
/// happen to agree; fixed-start homogeneous batches — the serving-path
/// case — always form a single group.
///
/// Each job's randomness is private to it, which makes every transcript
/// bit-identical to the job's solo run — batching is observable only in
/// wire accounting ([`DistributedBatchOutcome::frames_sent`] versus
/// [`DistributedBatchOutcome::logical_messages`]).
///
/// # Errors
///
/// - [`ProtocolError::InvalidBatch`] if the batch is empty, exceeds the
///   wire entry cap, or mixes node counts.
/// - Per-job configuration errors, as for [`run_distributed`].
/// - [`ProtocolError::Ring`] on transport failures or timeouts.
pub fn run_distributed_batch(
    jobs: &[BatchJob],
    network: NetworkKind,
) -> Result<DistributedBatchOutcome, ProtocolError> {
    run_distributed_batch_traced(jobs, network, &Recorder::disabled())
}

/// [`run_distributed_batch`] with telemetry: hop spans are tagged with
/// each member query's batch index, and the combined wire accounting is
/// absorbed into the recorder's registry. Tracing never changes the
/// transcripts.
///
/// # Errors
///
/// As for [`run_distributed_batch`].
pub fn run_distributed_batch_traced(
    jobs: &[BatchJob],
    network: NetworkKind,
    recorder: &Recorder,
) -> Result<DistributedBatchOutcome, ProtocolError> {
    crate::batch::validate_batch_shape(jobs)?;
    let n = jobs[0].locals.len();
    for job in jobs {
        if job.locals.len() != n {
            return Err(ProtocolError::InvalidBatch {
                reason: "batched jobs must share one federation (node count)",
            });
        }
        job.config.validate(n)?;
        for local in &job.locals {
            if local.k() != job.config.k() {
                return Err(ProtocolError::InconsistentK {
                    expected: job.config.k(),
                    got: local.k(),
                });
            }
        }
        if job.config.remap_each_round() {
            return Err(ProtocolError::Ring(RingError::Decode {
                reason: "per-round remapping is not supported by the distributed driver",
            }));
        }
    }

    // Resolve each job's rounds and ring order from its own seed — the
    // same derivation as its solo run.
    let mut prepared: Vec<(u32, Arc<RingTopology>)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let rounds = job.config.resolve_rounds()?;
        let topology = derive_topology(&job.config, n, job.seed)?;
        prepared.push((rounds, Arc::new(topology)));
    }

    // Partition into lock-step groups: same rounds, same ring order.
    let mut groups: Vec<(u32, Arc<RingTopology>, Vec<usize>)> = Vec::new();
    for (idx, (rounds, topology)) in prepared.iter().enumerate() {
        match groups
            .iter_mut()
            .find(|(r, t, _)| r == rounds && t.order() == topology.order())
        {
            Some((_, _, members)) => members.push(idx),
            None => groups.push((*rounds, Arc::clone(topology), vec![idx])),
        }
    }

    let configs: Vec<Arc<ProtocolConfig>> =
        jobs.iter().map(|j| Arc::new(j.config.clone())).collect();
    let mut transcripts: Vec<Option<Transcript>> = vec![None; jobs.len()];
    let mut per_node_results: Vec<Vec<TopKVector>> = vec![Vec::new(); jobs.len()];
    let mut wire = MetricsSnapshot::default();

    // Groups execute sequentially, so later groups' jobs queue behind the
    // earlier traversals. Account that wait per group (`queue_wait/groupG`)
    // so the `--stats` table can show each group's own distribution
    // instead of folding every group into one histogram.
    let batch_started = recorder.clock();
    for (group_idx, (rounds, topology, members)) in groups.iter().enumerate() {
        if batch_started.is_some() {
            let name = format!("queue_wait/group{group_idx}");
            for _ in members {
                recorder.observe_named(&name, batch_started);
            }
        }
        let (endpoints, metrics) = build_endpoints(network, n, jobs[members[0]].seed, recorder)?;
        let drain_on_exit = drain_window(network);
        let mut handles = Vec::with_capacity(n);
        for (i, endpoint) in endpoints.into_iter().enumerate() {
            let worker_jobs: Vec<NodeWorker> = members
                .iter()
                .map(|&j| {
                    NodeWorker::for_query(
                        Arc::clone(&configs[j]),
                        jobs[j].locals[i].clone(),
                        jobs[j].seed,
                        i,
                        *rounds,
                    )
                })
                .collect();
            let topology = Arc::clone(topology);
            let rounds = *rounds;
            let member_indices: Vec<u64> = members.iter().map(|&j| j as u64).collect();
            let recorder = recorder.clone();
            handles.push(std::thread::spawn(move || {
                batch_worker(
                    NodeId::new(i),
                    worker_jobs,
                    endpoint,
                    &topology,
                    rounds,
                    drain_on_exit,
                    RECV_TIMEOUT,
                    recorder,
                    &member_indices,
                )
            }));
        }

        let mut reports: Vec<BatchWorkerReport> = Vec::with_capacity(n);
        let mut first_error: Option<ProtocolError> = None;
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(report)) => reports.push(report),
                Ok(Err(e)) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
                Err(_) => {
                    if first_error.is_none() {
                        first_error = Some(ProtocolError::WorkerFailed { position: i });
                    }
                }
            }
        }
        if let Some(error) = first_error {
            return Err(error);
        }
        reports.sort_by_key(|r| r.node.get());

        // Reassemble each member query's transcript from the per-node,
        // per-job step logs.
        let mut steps_by_job: Vec<Vec<StepRecord>> = vec![Vec::new(); members.len()];
        let mut results_by_job: Vec<Vec<TopKVector>> = vec![Vec::new(); members.len()];
        for report in reports {
            for (slot, (steps, result)) in report.jobs.into_iter().enumerate() {
                steps_by_job[slot].extend(steps);
                results_by_job[slot].push(result);
            }
        }
        for (slot, &job_idx) in members.iter().enumerate() {
            let mut steps = std::mem::take(&mut steps_by_job[slot]);
            steps.sort_by_key(|s| (s.round, s.position.get()));
            let results = std::mem::take(&mut results_by_job[slot]);
            let result = results[0].clone();
            transcripts[job_idx] = Some(Transcript::new(
                n,
                jobs[job_idx].config.k(),
                *rounds,
                vec![topology.order().to_vec()],
                steps,
                result,
            ));
            per_node_results[job_idx] = results;
        }
        let snap = metrics.take();
        wire.frames_sent += snap.frames_sent;
        wire.logical_messages += snap.logical_messages;
        wire.bytes_sent += snap.bytes_sent;
        wire.baseline_bytes += snap.baseline_bytes;
        wire.retransmissions += snap.retransmissions;
        wire.re_acks += snap.re_acks;
        wire.pooled_buffers_high_water = wire
            .pooled_buffers_high_water
            .max(snap.pooled_buffers_high_water);
    }
    wire.publish(recorder);

    Ok(DistributedBatchOutcome {
        transcripts: transcripts
            .into_iter()
            .map(|t| t.expect("every job belongs to exactly one group"))
            .collect(),
        per_node_results,
        frames_sent: wire.frames_sent,
        logical_messages: wire.logical_messages,
        bytes_sent: wire.bytes_sent,
        baseline_bytes: wire.baseline_bytes,
        groups: groups.len() as u32,
    })
}

/// Outcome of a failure-recovered execution.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryOutcome {
    /// The successful run over the surviving nodes. NodeIds inside the
    /// transcript are *survivor-space* indices; `survivors` maps them
    /// back to the original ids.
    pub outcome: DistributedOutcome,
    /// Original ids of nodes excluded after crashing, in exclusion order.
    pub excluded: Vec<NodeId>,
    /// Original ids of the survivors, indexed by survivor-space NodeId.
    pub survivors: Vec<NodeId>,
    /// Number of protocol attempts (1 = no failures encountered).
    pub attempts: u32,
}

/// Runs the protocol with failure recovery: when nodes die mid-protocol,
/// the survivors time out, the ring is reconstructed without the failed
/// nodes ("the ring can be reconstructed ... simply by connecting the
/// predecessor and successor of the failed node", Section 3.2), and the
/// query re-runs from scratch over the survivors' data.
///
/// `worker_timeout` is how long a worker waits on its predecessor before
/// declaring the round lost (keep it small in tests).
///
/// # Errors
///
/// - Any non-crash execution error, immediately.
/// - [`ProtocolError::TooFewNodes`] if crashes leave fewer than 3
///   survivors.
/// - [`ProtocolError::WorkerCrashed`] if `max_attempts` is exhausted.
pub fn run_with_recovery(
    config: &ProtocolConfig,
    locals: &[TopKVector],
    network: NetworkKind,
    seed: u64,
    crashes: &CrashSchedule,
    worker_timeout: Duration,
    max_attempts: u32,
) -> Result<RecoveryOutcome, ProtocolError> {
    let mut current_ids: Vec<NodeId> = (0..locals.len()).map(NodeId::new).collect();
    let mut current_locals: Vec<TopKVector> = locals.to_vec();
    let mut excluded: Vec<NodeId> = Vec::new();
    for attempt in 1..=max_attempts.max(1) {
        // Project the original-id crash schedule into survivor space.
        let mut projected = CrashSchedule::none();
        for (idx, original) in current_ids.iter().enumerate() {
            if let Some(round) = crashes.round_for(*original) {
                projected = projected.crash(NodeId::new(idx), round);
            }
        }
        match run_once(
            config,
            &current_locals,
            network,
            seed.wrapping_add(u64::from(attempt)),
            &projected,
            worker_timeout,
            &Recorder::disabled(),
        ) {
            Ok(outcome) => {
                return Ok(RecoveryOutcome {
                    outcome,
                    excluded,
                    survivors: current_ids,
                    attempts: attempt,
                })
            }
            Err(failure) if !failure.crashed.is_empty() => {
                // Map survivor-space crash ids back to original ids and
                // reconstruct the ring without them.
                let dead: std::collections::HashSet<usize> =
                    failure.crashed.iter().map(|n| n.get()).collect();
                let mut next_ids = Vec::with_capacity(current_ids.len() - dead.len());
                let mut next_locals = Vec::with_capacity(next_ids.capacity());
                for (idx, original) in current_ids.iter().enumerate() {
                    if dead.contains(&idx) {
                        excluded.push(*original);
                    } else {
                        next_ids.push(*original);
                        next_locals.push(current_locals[idx].clone());
                    }
                }
                current_ids = next_ids;
                current_locals = next_locals;
                config
                    .validate(current_ids.len())
                    .map_err(|_| ProtocolError::TooFewNodes {
                        got: current_ids.len(),
                        minimum: 3,
                    })?;
            }
            Err(failure) => return Err(failure.error),
        }
    }
    Err(ProtocolError::WorkerCrashed {
        node: *excluded.last().unwrap_or(&NodeId::new(0)),
    })
}

/// Per-node, per-query protocol state shared by every execution mode —
/// the one-shot [`worker`], the lock-step [`batch_worker`], and the
/// persistent service's in-flight slots (`crate::service`). It owns the
/// node's seed-derived RNG stream, the top-k insertion flag and the step
/// log, and advances exactly one hop at a time; centralizing the hop
/// computation here is what keeps every mode's transcript bit-identical
/// to the simulation for a given seed.
pub(crate) struct NodeWorker {
    config: Arc<ProtocolConfig>,
    local: TopKVector,
    rng: rand::rngs::SmallRng,
    has_inserted: bool,
    steps: Vec<StepRecord>,
}

impl NodeWorker {
    /// State for node index `i` of a query seeded by `seed`, using the
    /// `STREAM_NODE` derivation shared with the simulation engine.
    pub(crate) fn for_query(
        config: Arc<ProtocolConfig>,
        local: TopKVector,
        seed: u64,
        node_index: usize,
        rounds: u32,
    ) -> Self {
        NodeWorker {
            config,
            local,
            rng: SeedSpec::new(seed)
                .stream(STREAM_NODE)
                .stream(node_index as u64)
                .rng(),
            has_inserted: false,
            steps: Vec::with_capacity(rounds as usize),
        }
    }

    /// The domain-floor vector the starting node consumes in round 1
    /// instead of receiving.
    pub(crate) fn floor(&self) -> TopKVector {
        TopKVector::floor(self.config.k(), &self.config.domain())
    }

    /// Runs one hop of the local algorithm: consumes `incoming`, records
    /// the step, and returns the vector to forward to the successor.
    ///
    /// `scratch` is the hop kernel's working memory; drivers keep one per
    /// thread (shared across all batch entries and pipeline slots) so the
    /// hot loop never allocates a merge or tail buffer. The scratch never
    /// carries state between hops, so sharing cannot perturb transcripts.
    pub(crate) fn advance(
        &mut self,
        round: u32,
        position: RingPosition,
        node: NodeId,
        incoming: TopKVector,
        scratch: &mut TopkScratch,
    ) -> Result<TopKVector, ProtocolError> {
        let domain = self.config.domain();
        let probability = self.config.schedule().probability(round);
        let (outgoing, action) = match self.config.algorithm() {
            AlgorithmKind::Max => {
                let step = max_step(
                    &mut self.rng,
                    probability,
                    incoming.first(),
                    self.local.first(),
                    &domain,
                )?;
                (TopKVector::from_sorted(vec![step.output])?, step.action)
            }
            AlgorithmKind::TopK => {
                let outcome = topk_step_scratch(
                    &mut self.rng,
                    probability,
                    &incoming,
                    &self.local,
                    self.has_inserted,
                    self.config.delta(),
                    &domain,
                    scratch,
                )?;
                self.has_inserted = outcome.has_inserted;
                let out = outcome.output.unwrap_or_else(|| incoming.clone());
                (out, outcome.action)
            }
        };
        self.steps.push(StepRecord {
            round,
            position,
            node,
            incoming,
            outgoing: outgoing.clone(),
            action,
        });
        Ok(outgoing)
    }

    /// Consumes the state, yielding the recorded step log.
    pub(crate) fn into_steps(self) -> Vec<StepRecord> {
        self.steps
    }
}

pub(crate) struct WorkerReport {
    pub(crate) node: NodeId,
    pub(crate) steps: Vec<StepRecord>,
    pub(crate) result: TopKVector,
}

#[allow(clippy::too_many_arguments)]
fn worker(
    me: NodeId,
    mut state: NodeWorker,
    mut endpoint: Box<dyn Transport>,
    topology: &RingTopology,
    rounds: u32,
    drain_on_exit: Option<Duration>,
    crash_at: Option<u32>,
    recv_timeout: Duration,
    recorder: Recorder,
    base_ctx: Ctx,
) -> Result<WorkerReport, ProtocolError> {
    let n = topology.len();
    let position = topology.position_of(me)?;
    let successor = topology.successor_of(me)?;
    let predecessor = topology.predecessor_of(me)?;
    let pool = endpoint.pool();
    let my_ctx = base_ctx.with_node(me.get() as u32);

    let recv_token = |endpoint: &mut Box<dyn Transport>,
                      recorder: &Recorder,
                      expect_round: u32|
     -> Result<TopKVector, ProtocolError> {
        let recv_started = recorder.clock();
        let (from, msg): (NodeId, TokenMessage) =
            recv_with_timeout(endpoint.as_mut(), recv_timeout)?;
        recorder.record(Phase::Recv, my_ctx.with_round(expect_round), recv_started);
        match msg {
            TokenMessage::Token { round, vector } if round == expect_round => {
                debug_assert_eq!(from, predecessor, "token must come from predecessor");
                Ok(vector)
            }
            // Out-of-protocol round labels or premature termination: a
            // semi-honest network never produces these.
            TokenMessage::Token { .. } => Err(ProtocolError::Ring(RingError::Decode {
                reason: "unexpected round label",
            })),
            TokenMessage::Finished { .. } => Err(ProtocolError::Ring(RingError::Decode {
                reason: "premature termination message",
            })),
        }
    };

    let mut scratch = TopkScratch::new();
    for round in 1..=rounds {
        if crash_at == Some(round) {
            // Simulated node failure: die silently, mid-protocol.
            return Err(ProtocolError::WorkerCrashed { node: me });
        }
        let incoming = if round == 1 && position.is_start() {
            state.floor()
        } else {
            // Position 0 consumes the previous round's closing token.
            let expect = if position.is_start() {
                round - 1
            } else {
                round
            };
            recv_token(&mut endpoint, &recorder, expect)?
        };
        let step_started = recorder.clock();
        let outgoing = state.advance(round, position, me, incoming, &mut scratch)?;
        recorder.record(
            Phase::Step,
            my_ctx.with_round(round).with_hop(position.get() as u32),
            step_started,
        );
        send_value_traced(
            endpoint.as_mut(),
            &pool,
            successor,
            &TokenMessage::Token {
                round,
                vector: outgoing,
            },
            &recorder,
            my_ctx.with_round(round),
        )?;
    }

    // Termination: the starting node collects the closing token of the
    // final round and circulates the result once around the ring.
    let result = if position.is_start() {
        let result = recv_token(&mut endpoint, &recorder, rounds)?;
        send_value_traced(
            endpoint.as_mut(),
            &pool,
            successor,
            &TokenMessage::Finished {
                vector: result.clone(),
            },
            &recorder,
            my_ctx,
        )?;
        result
    } else {
        let recv_started = recorder.clock();
        let (_, msg): (NodeId, TokenMessage) = recv_with_timeout(endpoint.as_mut(), recv_timeout)?;
        recorder.record(Phase::Recv, my_ctx, recv_started);
        let TokenMessage::Finished { vector } = msg else {
            return Err(ProtocolError::Ring(RingError::Decode {
                reason: "expected termination message",
            }));
        };
        // Forward unless the successor is the starting node (which
        // initiated the circulation and already has the result).
        if position.get() + 1 < n {
            send_value_traced(
                endpoint.as_mut(),
                &pool,
                successor,
                &TokenMessage::Finished {
                    vector: vector.clone(),
                },
                &recorder,
                my_ctx,
            )?;
        }
        vector
    };

    // Over lossy transports, keep re-acknowledging retransmissions for a
    // grace window so peers whose ACKs were dropped can finish cleanly.
    if let Some(window) = drain_on_exit {
        drain_endpoint(endpoint.as_mut(), window)?;
    }

    Ok(WorkerReport {
        node: me,
        steps: state.into_steps(),
        result,
    })
}

/// Keeps receiving (and discarding) frames until `window` elapses or the
/// network disconnects — the shutdown drain for lossy transports, whose
/// reliability layer re-acknowledges duplicates inside `recv`.
pub(crate) fn drain_endpoint(
    endpoint: &mut dyn Transport,
    window: Duration,
) -> Result<(), ProtocolError> {
    let deadline = std::time::Instant::now() + window;
    loop {
        let remaining = deadline.saturating_duration_since(std::time::Instant::now());
        if remaining.is_zero() {
            return Ok(());
        }
        match endpoint.recv_timeout(remaining) {
            Ok(_) => {} // duplicate already re-acked inside the layer
            Err(RingError::Timeout) | Err(RingError::Disconnected) => return Ok(()),
            Err(e) => return Err(e.into()),
        }
    }
}

fn recv_with_timeout(
    endpoint: &mut dyn Transport,
    timeout: Duration,
) -> Result<(NodeId, TokenMessage), ProtocolError> {
    let (from, frame) = endpoint.recv_timeout(timeout)?;
    let msg = privtopk_ring::wire::decode_from_bytes(&frame)?;
    Ok((from, msg))
}

/// What one node reports back for a batch group: per job (in group
/// order), its step log and learned result.
struct BatchWorkerReport {
    node: NodeId,
    jobs: Vec<(Vec<StepRecord>, TopKVector)>,
}

/// The batched counterpart of [`worker`]: runs the identical per-round
/// protocol for every member job, but exchanges one [`BatchMessage`] per
/// hop carrying all member tokens. Each job advances with its own RNG and
/// `has_inserted` flag, so its step sequence is the one its solo worker
/// would produce.
#[allow(clippy::too_many_arguments)]
fn batch_worker(
    me: NodeId,
    mut jobs: Vec<NodeWorker>,
    mut endpoint: Box<dyn Transport>,
    topology: &RingTopology,
    rounds: u32,
    drain_on_exit: Option<Duration>,
    recv_timeout: Duration,
    recorder: Recorder,
    query_indices: &[u64],
) -> Result<BatchWorkerReport, ProtocolError> {
    let n = topology.len();
    let width = jobs.len();
    let logical = width as u64;
    let position = topology.position_of(me)?;
    let successor = topology.successor_of(me)?;
    let predecessor = topology.predecessor_of(me)?;
    let pool = endpoint.pool();
    let my_ctx = Ctx::default().with_node(me.get() as u32);

    let recv_batch = |endpoint: &mut Box<dyn Transport>,
                      pool: &FramePool,
                      recorder: &Recorder,
                      expect_round: u32|
     -> Result<Vec<TopKVector>, ProtocolError> {
        let recv_started = recorder.clock();
        let (from, frame) = endpoint.recv_timeout(recv_timeout)?;
        recorder.record(Phase::Recv, my_ctx.with_round(expect_round), recv_started);
        let msg: BatchMessage = privtopk_ring::wire::decode_from_bytes(&frame)?;
        pool.recycle(frame);
        match msg {
            BatchMessage::Tokens { round, vectors } if round == expect_round => {
                debug_assert_eq!(from, predecessor, "tokens must come from predecessor");
                if vectors.len() != width {
                    return Err(ProtocolError::Ring(RingError::Decode {
                        reason: "batch width changed mid-flight",
                    }));
                }
                Ok(vectors)
            }
            BatchMessage::Tokens { .. } => Err(ProtocolError::Ring(RingError::Decode {
                reason: "unexpected round label",
            })),
            BatchMessage::Finished { .. } => Err(ProtocolError::Ring(RingError::Decode {
                reason: "premature termination message",
            })),
        }
    };

    // One hop-kernel scratch shared across all B entries of the group:
    // per-entry state lives in the jobs, the merge/tail buffers do not.
    let mut scratch = TopkScratch::new();
    for round in 1..=rounds {
        let incomings: Vec<TopKVector> = if round == 1 && position.is_start() {
            jobs.iter().map(NodeWorker::floor).collect()
        } else {
            // Position 0 consumes the previous round's closing tokens.
            let expect = if position.is_start() {
                round - 1
            } else {
                round
            };
            recv_batch(&mut endpoint, &pool, &recorder, expect)?
        };
        let mut outgoing_vectors = Vec::with_capacity(width);
        for ((slot, job), incoming) in jobs.iter_mut().enumerate().zip(incomings) {
            let step_started = recorder.clock();
            outgoing_vectors.push(job.advance(round, position, me, incoming, &mut scratch)?);
            recorder.record(
                Phase::Step,
                my_ctx
                    .with_query(query_indices[slot])
                    .with_round(round)
                    .with_hop(position.get() as u32),
                step_started,
            );
        }
        send_value_many_traced(
            endpoint.as_mut(),
            &pool,
            successor,
            &BatchMessage::Tokens {
                round,
                vectors: outgoing_vectors,
            },
            logical,
            &recorder,
            my_ctx.with_round(round),
        )?;
    }

    // Termination mirrors the solo worker: the starting node collects the
    // final closing tokens and circulates them once around the ring.
    let results: Vec<TopKVector> = if position.is_start() {
        let results = recv_batch(&mut endpoint, &pool, &recorder, rounds)?;
        send_value_many_traced(
            endpoint.as_mut(),
            &pool,
            successor,
            &BatchMessage::Finished {
                vectors: results.clone(),
            },
            logical,
            &recorder,
            my_ctx,
        )?;
        results
    } else {
        let recv_started = recorder.clock();
        let (_, frame) = endpoint.recv_timeout(recv_timeout)?;
        recorder.record(Phase::Recv, my_ctx, recv_started);
        let msg: BatchMessage = privtopk_ring::wire::decode_from_bytes(&frame)?;
        pool.recycle(frame);
        let BatchMessage::Finished { vectors } = msg else {
            return Err(ProtocolError::Ring(RingError::Decode {
                reason: "expected termination message",
            }));
        };
        if vectors.len() != width {
            return Err(ProtocolError::Ring(RingError::Decode {
                reason: "batch width changed mid-flight",
            }));
        }
        if position.get() + 1 < n {
            send_value_many_traced(
                endpoint.as_mut(),
                &pool,
                successor,
                &BatchMessage::Finished {
                    vectors: vectors.clone(),
                },
                logical,
                &recorder,
                my_ctx,
            )?;
        }
        vectors
    };

    if let Some(window) = drain_on_exit {
        drain_endpoint(endpoint.as_mut(), window)?;
    }

    Ok(BatchWorkerReport {
        node: me,
        jobs: jobs
            .into_iter()
            .zip(results)
            .map(|(job, result)| (job.into_steps(), result))
            .collect(),
    })
}

// Keep the unused import warning away when building without debug
// assertions (predecessor is only read in a debug_assert).
#[allow(dead_code)]
fn _use_ring_position(p: RingPosition) -> usize {
    p.get()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RoundPolicy, SimulationEngine};
    use privtopk_domain::{Value, ValueDomain};

    fn locals_k(k: usize, data: &[&[i64]]) -> Vec<TopKVector> {
        let domain = ValueDomain::paper_default();
        data.iter()
            .map(|vals| {
                TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain).unwrap()
            })
            .collect()
    }

    #[test]
    fn distributed_max_matches_simulation_exactly() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(6));
        let locals = locals_k(1, &[&[300], &[100], &[900], &[500]]);
        let sim = SimulationEngine::new(config.clone())
            .run(&locals, 77)
            .unwrap();
        let dist = run_distributed(&config, &locals, NetworkKind::InMemory, 77).unwrap();
        assert_eq!(dist.transcript.steps(), sim.steps());
        assert_eq!(dist.transcript.result(), sim.result());
    }

    #[test]
    fn distributed_topk_matches_simulation_exactly() {
        let config = ProtocolConfig::topk(3).with_rounds(RoundPolicy::Fixed(7));
        let locals = locals_k(
            3,
            &[
                &[900, 400, 100],
                &[850, 300, 50],
                &[700, 650, 10],
                &[20, 15, 12],
            ],
        );
        let sim = SimulationEngine::new(config.clone())
            .run(&locals, 5)
            .unwrap();
        let dist = run_distributed(&config, &locals, NetworkKind::InMemory, 5).unwrap();
        assert_eq!(dist.transcript.steps(), sim.steps());
    }

    #[test]
    fn all_nodes_learn_the_same_result() {
        let config = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(5));
        let locals = locals_k(2, &[&[10, 20], &[90, 80], &[50, 60], &[70, 1], &[2, 3]]);
        let out = run_distributed(&config, &locals, NetworkKind::InMemory, 9).unwrap();
        assert_eq!(out.per_node_results.len(), 5);
        for r in &out.per_node_results {
            assert_eq!(r, out.transcript.result());
        }
        assert_eq!(
            out.transcript.result().as_slice(),
            &[Value::new(90), Value::new(80)]
        );
    }

    #[test]
    fn message_count_matches_cost_model() {
        // n messages per round, plus the termination circulation: the
        // starting node's Finished plus n-2 forwards (the last node does
        // not forward back to the start).
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(4));
        let locals = locals_k(1, &[&[1], &[2], &[3]]);
        let out = run_distributed(&config, &locals, NetworkKind::InMemory, 1).unwrap();
        assert_eq!(out.messages_sent, 3 * 4 + 2);
        assert!(out.bytes_sent > 0);
    }

    #[test]
    fn distributed_over_tcp_converges() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(5));
        let locals = locals_k(1, &[&[42], &[17], &[99], &[3]]);
        let out = run_distributed(&config, &locals, NetworkKind::Tcp, 13).unwrap();
        assert_eq!(out.transcript.result_value(), Value::new(99));
        for r in &out.per_node_results {
            assert_eq!(r.first(), Value::new(99));
        }
    }

    #[test]
    fn remap_rejected_by_distributed_driver() {
        let config = ProtocolConfig::max()
            .with_remap_each_round(true)
            .with_rounds(RoundPolicy::Fixed(3));
        let locals = locals_k(1, &[&[1], &[2], &[3]]);
        assert!(run_distributed(&config, &locals, NetworkKind::InMemory, 0).is_err());
    }

    #[test]
    fn protocol_survives_lossy_network() {
        // 20% frame loss in every direction; the reliability layer heals
        // it and the transcript is identical to the lossless run.
        let config = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(6));
        let locals = locals_k(2, &[&[900, 100], &[800, 50], &[700, 25], &[600, 10]]);
        let clean = run_distributed(&config, &locals, NetworkKind::InMemory, 21).unwrap();
        let lossy = run_distributed(
            &config,
            &locals,
            NetworkKind::LossyInMemory {
                drop_probability: 0.2,
            },
            21,
        )
        .unwrap();
        assert_eq!(clean.transcript.steps(), lossy.transcript.steps());
        // The healed run necessarily sent more frames (retransmits + acks).
        assert!(lossy.messages_sent > clean.messages_sent);
    }

    #[test]
    fn recovery_reconstructs_after_single_crash() {
        // Node 2 dies at the start of round 3; survivors time out, the
        // ring is rebuilt without it, and the query completes over the
        // remaining data.
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(5));
        let locals = locals_k(1, &[&[300], &[100], &[900], &[500], &[200]]);
        let crashes = CrashSchedule::none().crash(NodeId::new(2), 3);
        let out = run_with_recovery(
            &config,
            &locals,
            NetworkKind::InMemory,
            7,
            &crashes,
            Duration::from_millis(200),
            3,
        )
        .unwrap();
        assert_eq!(out.attempts, 2);
        assert_eq!(out.excluded, vec![NodeId::new(2)]);
        assert_eq!(out.survivors.len(), 4);
        assert!(!out.survivors.contains(&NodeId::new(2)));
        // The maximum among survivors is 500 (900 died with node 2).
        assert_eq!(out.outcome.transcript.result_value(), Value::new(500));
    }

    #[test]
    fn recovery_handles_multiple_crashes_across_attempts() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(4));
        let locals = locals_k(1, &[&[10], &[20], &[30], &[40], &[50], &[60]]);
        // Two nodes die in the first attempt (both hit their round), and
        // the retry succeeds.
        let crashes = CrashSchedule::none()
            .crash(NodeId::new(0), 2)
            .crash(NodeId::new(5), 2);
        let out = run_with_recovery(
            &config,
            &locals,
            NetworkKind::InMemory,
            3,
            &crashes,
            Duration::from_millis(200),
            4,
        )
        .unwrap();
        assert!(out.excluded.contains(&NodeId::new(0)));
        assert!(out.excluded.contains(&NodeId::new(5)));
        assert_eq!(out.outcome.transcript.result_value(), Value::new(50));
    }

    #[test]
    fn recovery_without_crashes_is_single_attempt() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let locals = locals_k(1, &[&[1], &[2], &[3]]);
        let out = run_with_recovery(
            &config,
            &locals,
            NetworkKind::InMemory,
            1,
            &CrashSchedule::none(),
            Duration::from_secs(5),
            3,
        )
        .unwrap();
        assert_eq!(out.attempts, 1);
        assert!(out.excluded.is_empty());
    }

    #[test]
    fn recovery_refuses_to_shrink_below_three() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let locals = locals_k(1, &[&[1], &[2], &[3]]);
        let crashes = CrashSchedule::none().crash(NodeId::new(1), 2);
        assert!(matches!(
            run_with_recovery(
                &config,
                &locals,
                NetworkKind::InMemory,
                1,
                &crashes,
                Duration::from_millis(200),
                3,
            ),
            Err(ProtocolError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn validates_node_count() {
        let config = ProtocolConfig::max();
        let locals = locals_k(1, &[&[1], &[2]]);
        assert!(matches!(
            run_distributed(&config, &locals, NetworkKind::InMemory, 0),
            Err(ProtocolError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn batch_of_one_matches_solo_run_exactly() {
        let config = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(5));
        let locals = locals_k(2, &[&[900, 100], &[800, 50], &[700, 25], &[600, 10]]);
        let solo = run_distributed(&config, &locals, NetworkKind::InMemory, 31).unwrap();
        let batch =
            run_distributed_batch(&[BatchJob::new(config, locals, 31)], NetworkKind::InMemory)
                .unwrap();
        assert_eq!(batch.groups, 1);
        assert_eq!(batch.transcripts[0], solo.transcript);
        assert_eq!(batch.per_node_results[0], solo.per_node_results);
        // A batch of one sends exactly the solo frame count, one logical
        // message per frame.
        assert_eq!(batch.frames_sent, solo.messages_sent);
        assert_eq!(batch.logical_messages, solo.messages_sent);
    }

    #[test]
    fn compact_b64_mean_frame_under_budget() {
        // Frame-budget smoke, run by name from scripts/ci.sh: the B=64
        // sweep shape of the throughput bench (n = 6, k = 4, 8 rounds)
        // previously averaged 2312.6 B per frame under the fixed-width
        // codec; the compact codec must stay under half of that.
        use rand::Rng;
        let (n, k) = (6, 4);
        let domain = ValueDomain::paper_default();
        let mut rng = privtopk_domain::rng::SeedSpec::new(24301).rng();
        let locals: Vec<TopKVector> = (0..n)
            .map(|_| {
                let values: Vec<Value> = (0..k)
                    .map(|_| Value::new(rng.gen_range(domain.as_range())))
                    .collect();
                TopKVector::from_values(k, values, &domain).unwrap()
            })
            .collect();
        let config = ProtocolConfig::topk(k).with_rounds(RoundPolicy::Fixed(8));
        let jobs: Vec<BatchJob> = (0..64u64)
            .map(|q| {
                BatchJob::new(
                    config.clone(),
                    locals.clone(),
                    crate::derive_batch_seed(24301, q),
                )
            })
            .collect();
        let out = run_distributed_batch(&jobs, NetworkKind::InMemory).unwrap();
        let mean = out.bytes_sent as f64 / out.frames_sent as f64;
        assert!(
            mean < 1156.3,
            "B=64 mean frame {mean:.1} B exceeds the 50% compact budget"
        );
        assert!(
            out.baseline_bytes > out.bytes_sent,
            "baseline accounting must show the codec saving"
        );
    }

    #[test]
    fn heterogeneous_batch_matches_each_solo_run() {
        // Eight jobs mixing algorithms, round counts and seeds; the
        // RandomAnonymous start policy derives a different ring order per
        // seed, so this exercises multi-group partitioning.
        let max_locals = locals_k(1, &[&[300], &[100], &[900], &[500]]);
        let topk_locals = locals_k(2, &[&[900, 400], &[850, 300], &[700, 650], &[20, 15]]);
        let jobs: Vec<BatchJob> = (0..8u64)
            .map(|i| {
                if i % 2 == 0 {
                    BatchJob::new(
                        ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(5)),
                        max_locals.clone(),
                        100 + i,
                    )
                } else {
                    BatchJob::new(
                        ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(7)),
                        topk_locals.clone(),
                        200 + i,
                    )
                }
            })
            .collect();
        let batch = run_distributed_batch(&jobs, NetworkKind::InMemory).unwrap();
        assert!(batch.groups > 1, "mixed rounds must split into groups");
        for (i, job) in jobs.iter().enumerate() {
            let solo =
                run_distributed(&job.config, &job.locals, NetworkKind::InMemory, job.seed).unwrap();
            assert_eq!(batch.transcripts[i], solo.transcript, "job {i}");
            assert_eq!(batch.per_node_results[i], solo.per_node_results, "job {i}");
        }
    }

    #[test]
    fn fixed_start_batch_shares_frames_across_queries() {
        // 64 homogeneous fixed-start queries form a single lock-step
        // group: the frame count is that of ONE solo run, while logical
        // messages scale with the batch width.
        let config = ProtocolConfig::max()
            .with_start(StartPolicy::Fixed)
            .with_rounds(RoundPolicy::Fixed(4));
        let locals = locals_k(1, &[&[1], &[2], &[3]]);
        let jobs: Vec<BatchJob> = (0..64u64)
            .map(|i| BatchJob::new(config.clone(), locals.clone(), 1000 + i))
            .collect();
        let batch = run_distributed_batch(&jobs, NetworkKind::InMemory).unwrap();
        assert_eq!(batch.groups, 1);
        let solo_frames = 3 * 4 + 2; // cost model: n*rounds + (n-1)
        assert_eq!(batch.frames_sent, solo_frames);
        assert_eq!(batch.logical_messages, 64 * solo_frames);
        // Piggybacking beats 64 separate wires on bytes too: the shared
        // per-frame envelope is paid once per hop.
        let solo = run_distributed(&config, &locals, NetworkKind::InMemory, 1000).unwrap();
        assert!(batch.bytes_sent < 64 * solo.bytes_sent);
        // Spot-check determinism across the batch.
        for i in [0usize, 31, 63] {
            let solo =
                run_distributed(&config, &locals, NetworkKind::InMemory, jobs[i].seed).unwrap();
            assert_eq!(batch.transcripts[i], solo.transcript, "job {i}");
        }
    }

    #[test]
    fn batch_rejects_mixed_node_counts() {
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let jobs = vec![
            BatchJob::new(config.clone(), locals_k(1, &[&[1], &[2], &[3]]), 1),
            BatchJob::new(config, locals_k(1, &[&[1], &[2], &[3], &[4]]), 2),
        ];
        assert!(matches!(
            run_distributed_batch(&jobs, NetworkKind::InMemory),
            Err(ProtocolError::InvalidBatch { .. })
        ));
    }

    #[test]
    fn batch_survives_lossy_network() {
        let config = ProtocolConfig::topk(2)
            .with_start(StartPolicy::Fixed)
            .with_rounds(RoundPolicy::Fixed(4));
        let locals = locals_k(2, &[&[900, 100], &[800, 50], &[700, 25]]);
        let jobs: Vec<BatchJob> = (0..4u64)
            .map(|i| BatchJob::new(config.clone(), locals.clone(), 40 + i))
            .collect();
        let clean = run_distributed_batch(&jobs, NetworkKind::InMemory).unwrap();
        let lossy = run_distributed_batch(
            &jobs,
            NetworkKind::LossyInMemory {
                drop_probability: 0.2,
            },
        )
        .unwrap();
        assert_eq!(clean.transcripts, lossy.transcripts);
        assert!(lossy.frames_sent > clean.frames_sent);
    }
}
