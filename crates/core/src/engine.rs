//! The synchronous simulation engine: runs any configured protocol over an
//! in-process ring and records a full [`Transcript`].

use privtopk_domain::rng::SeedSpec;
use privtopk_domain::{TopKVector, Value};
use privtopk_observe::{Ctx, Phase, Recorder};
use privtopk_ring::RingTopology;

use crate::local::{max_step, topk_step_scratch, TopkScratch};
use crate::{
    AlgorithmKind, BatchJob, ProtocolConfig, ProtocolError, StartPolicy, StepRecord, Transcript,
};

/// Seed stream tags.
const STREAM_TOPOLOGY: u64 = 0x10;
const STREAM_NODE: u64 = 0x20;
const STREAM_REMAP: u64 = 0x30;

/// Executes a protocol configuration over in-process nodes, deterministic
/// under a seed.
///
/// This driver is what the experiments use: it is exact (same local
/// algorithms as the distributed runner), single-threaded, allocation-light
/// and fully reproducible. For execution over real transports see
/// [`crate::distributed`].
///
/// # Example
///
/// ```
/// use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
/// use privtopk_domain::Value;
///
/// let engine = SimulationEngine::new(
///     ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-6 }),
/// );
/// let values = [30i64, 10, 40, 20].map(Value::new);
/// let transcript = engine.run_values(&values, 7)?;
/// assert_eq!(transcript.result_value(), Value::new(40));
/// # Ok::<(), privtopk_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SimulationEngine {
    config: ProtocolConfig,
    recorder: Recorder,
}

impl SimulationEngine {
    /// Wraps a configuration (telemetry disabled).
    #[must_use]
    pub fn new(config: ProtocolConfig) -> Self {
        SimulationEngine {
            config,
            recorder: Recorder::disabled(),
        }
    }

    /// Attaches a telemetry recorder: every hop is timed as a
    /// [`Phase::Step`] span. Recording never touches the protocol's seeded
    /// RNG streams, so transcripts are bit-identical with or without it.
    #[must_use]
    pub fn with_recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &ProtocolConfig {
        &self.config
    }

    /// Runs the protocol over one local top-k vector per node
    /// (`locals[i]` belongs to `NodeId(i)`).
    ///
    /// # Errors
    ///
    /// - Configuration errors from [`ProtocolConfig::validate`] /
    ///   [`ProtocolConfig::resolve_rounds`].
    /// - [`ProtocolError::InconsistentK`] if a local vector's `k` differs
    ///   from the configured `k`.
    pub fn run(&self, locals: &[TopKVector], seed: u64) -> Result<Transcript, ProtocolError> {
        self.run_ctx(locals, seed, Ctx::EMPTY)
    }

    /// [`SimulationEngine::run`] with shared telemetry coordinates for
    /// every hop — how composite executions (the §4.2 grouped run) keep
    /// their sub-protocols distinguishable in one recorder.
    pub(crate) fn run_ctx(
        &self,
        locals: &[TopKVector],
        seed: u64,
        base_ctx: Ctx,
    ) -> Result<Transcript, ProtocolError> {
        let mut state =
            SimJobState::prepare(&self.config, locals, seed, self.recorder.clone(), base_ctx)?;
        // Reused across all n × rounds hops so the merge never reallocates.
        let mut scratch = TopkScratch::new();
        for round in 1..=state.rounds {
            state.advance_round(round, &mut scratch)?;
        }
        Ok(state.finish())
    }

    /// Convenience for `k = 1` protocols: one scalar per node.
    ///
    /// # Errors
    ///
    /// As for [`SimulationEngine::run`], plus domain errors if a value
    /// lies outside the configured domain.
    pub fn run_values(&self, values: &[Value], seed: u64) -> Result<Transcript, ProtocolError> {
        let domain = self.config.domain();
        let locals = values
            .iter()
            .map(|&v| TopKVector::from_values(self.config.k(), [v], &domain))
            .collect::<Result<Vec<_>, _>>()?;
        self.run(&locals, seed)
    }
}

/// The in-flight state of one simulated protocol execution, advanced one
/// round at a time.
///
/// Both [`SimulationEngine::run`] and [`run_simulated_batch`] drive this
/// same state machine, which is what makes a batched query's transcript
/// bit-identical to its solo run: the per-round code path is literally the
/// same, and all randomness is private to the job.
struct SimJobState<'a> {
    config: &'a ProtocolConfig,
    locals: &'a [TopKVector],
    n: usize,
    rounds: u32,
    topology: RingTopology,
    remap_rng: rand::rngs::SmallRng,
    node_rngs: Vec<rand::rngs::SmallRng>,
    has_inserted: Vec<bool>,
    global: TopKVector,
    steps: Vec<StepRecord>,
    ring_orders: Vec<Vec<privtopk_domain::NodeId>>,
    recorder: Recorder,
    /// Telemetry coordinates shared by every hop of this job (e.g. the
    /// query index of a batched run).
    base_ctx: Ctx,
}

impl<'a> SimJobState<'a> {
    fn prepare(
        config: &'a ProtocolConfig,
        locals: &'a [TopKVector],
        seed: u64,
        recorder: Recorder,
        base_ctx: Ctx,
    ) -> Result<Self, ProtocolError> {
        let n = locals.len();
        config.validate(n)?;
        for local in locals {
            if local.k() != config.k() {
                return Err(ProtocolError::InconsistentK {
                    expected: config.k(),
                    got: local.k(),
                });
            }
        }
        let rounds = config.resolve_rounds()?;
        let spec = SeedSpec::new(seed);

        let topology = match config.start() {
            StartPolicy::Fixed => RingTopology::identity(n)?,
            StartPolicy::RandomAnonymous => {
                RingTopology::random(n, &mut spec.stream(STREAM_TOPOLOGY).rng())?
            }
        };
        let remap_rng = spec.stream(STREAM_REMAP).rng();
        let node_rngs: Vec<_> = (0..n)
            .map(|i| spec.stream(STREAM_NODE).stream(i as u64).rng())
            .collect();
        let global = TopKVector::floor(config.k(), &config.domain());
        let ring_orders = vec![topology.order().to_vec()];
        Ok(SimJobState {
            config,
            locals,
            n,
            rounds,
            topology,
            remap_rng,
            node_rngs,
            has_inserted: vec![false; n],
            global,
            steps: Vec::with_capacity(n * rounds as usize),
            ring_orders,
            recorder,
            base_ctx,
        })
    }

    fn advance_round(
        &mut self,
        round: u32,
        scratch: &mut TopkScratch,
    ) -> Result<(), ProtocolError> {
        if round > 1 && self.config.remap_each_round() {
            self.topology.remap(&mut self.remap_rng);
            self.ring_orders.push(self.topology.order().to_vec());
        }
        let domain = self.config.domain();
        let probability = self.config.schedule().probability(round);
        for position in 0..self.n {
            let step_started = self.recorder.clock();
            let node = self
                .topology
                .node_at(privtopk_domain::RingPosition::new(position))?;
            let idx = node.get();
            // `replaced` is the new global state when the step changed
            // it; `None` forwards the current state unchanged. Keeping
            // the distinction lets the common pass-on hop record the
            // step with one clone instead of three.
            let (replaced, action) = match self.config.algorithm() {
                AlgorithmKind::Max => {
                    let step = max_step(
                        &mut self.node_rngs[idx],
                        probability,
                        self.global.first(),
                        self.locals[idx].first(),
                        &domain,
                    )?;
                    if step.output == self.global.first() {
                        (None, step.action)
                    } else {
                        (
                            Some(TopKVector::from_sorted(vec![step.output])?),
                            step.action,
                        )
                    }
                }
                AlgorithmKind::TopK => {
                    let outcome = topk_step_scratch(
                        &mut self.node_rngs[idx],
                        probability,
                        &self.global,
                        &self.locals[idx],
                        self.has_inserted[idx],
                        self.config.delta(),
                        &domain,
                        scratch,
                    )?;
                    self.has_inserted[idx] = outcome.has_inserted;
                    (outcome.output, outcome.action)
                }
            };
            let (incoming, outgoing) = match replaced {
                Some(output) => {
                    let incoming = std::mem::replace(&mut self.global, output);
                    (incoming, self.global.clone())
                }
                None => (self.global.clone(), self.global.clone()),
            };
            self.steps.push(StepRecord {
                round,
                position: privtopk_domain::RingPosition::new(position),
                node,
                incoming,
                outgoing,
                action,
            });
            self.recorder.record(
                Phase::Step,
                self.base_ctx
                    .with_node(idx as u32)
                    .with_round(round)
                    .with_hop(position as u32),
                step_started,
            );
        }
        Ok(())
    }

    fn finish(self) -> Transcript {
        Transcript::new(
            self.n,
            self.config.k(),
            self.rounds,
            self.ring_orders,
            self.steps,
            self.global,
        )
    }
}

/// Runs B independent queries through the simulation engine with a single
/// round-major sweep, returning one transcript per job (in job order).
///
/// Jobs may differ in configuration, node count, and round count; each
/// advances through its own state with its own RNG streams, so transcript
/// `i` is bit-identical to `SimulationEngine::new(jobs[i].config.clone())
/// .run(&jobs[i].locals, jobs[i].seed)`. What batching buys here is shared
/// scratch storage and a single cache-warm pass per round across all
/// queries — the simulation analogue of the distributed driver's
/// piggybacked frames.
///
/// # Errors
///
/// - [`ProtocolError::InvalidBatch`] for an empty or oversized batch.
/// - Any per-job configuration error, as for [`SimulationEngine::run`].
pub fn run_simulated_batch(jobs: &[BatchJob]) -> Result<Vec<Transcript>, ProtocolError> {
    run_simulated_batch_traced(jobs, &Recorder::disabled())
}

/// [`run_simulated_batch`] with telemetry: each hop is timed as a
/// [`Phase::Step`] span tagged with the job's batch index as the query
/// coordinate. Transcripts are unaffected by recording.
///
/// # Errors
///
/// As for [`run_simulated_batch`].
pub fn run_simulated_batch_traced(
    jobs: &[BatchJob],
    recorder: &Recorder,
) -> Result<Vec<Transcript>, ProtocolError> {
    crate::batch::validate_batch_shape(jobs)?;
    let mut states = jobs
        .iter()
        .enumerate()
        .map(|(i, job)| {
            SimJobState::prepare(
                &job.config,
                &job.locals,
                job.seed,
                recorder.clone(),
                Ctx::default().with_query(i as u64),
            )
        })
        .collect::<Result<Vec<_>, _>>()?;
    let max_rounds = states.iter().map(|s| s.rounds).max().unwrap_or(0);
    let mut scratch = TopkScratch::new();
    for round in 1..=max_rounds {
        for state in &mut states {
            if round <= state.rounds {
                state.advance_round(round, &mut scratch)?;
            }
        }
    }
    Ok(states.into_iter().map(SimJobState::finish).collect())
}

/// Ground truth for tests and experiments: the true global top-k over all
/// nodes' full value multisets.
///
/// # Errors
///
/// Returns a domain error if `k == 0` or values fall outside `domain`.
pub fn true_topk(
    locals: &[TopKVector],
    k: usize,
    domain: &privtopk_domain::ValueDomain,
) -> Result<TopKVector, privtopk_domain::DomainError> {
    TopKVector::from_values(k, locals.iter().flat_map(TopKVector::iter), domain)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::local::LocalAction;
    use crate::{RoundPolicy, Schedule};
    use privtopk_domain::ValueDomain;

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    fn locals_k(k: usize, data: &[&[i64]]) -> Vec<TopKVector> {
        data.iter()
            .map(|vals| {
                TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain()).unwrap()
            })
            .collect()
    }

    #[test]
    fn max_converges_to_true_maximum() {
        let engine = SimulationEngine::new(
            ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-9 }),
        );
        for seed in 0..30 {
            let t = engine
                .run_values(&[30, 10, 40, 20].map(Value::new), seed)
                .unwrap();
            assert_eq!(t.result_value(), Value::new(40), "seed {seed}");
        }
    }

    #[test]
    fn paper_walkthrough_figure_1() {
        // The Section 3.3 example: 4 nodes with values 30, 10, 40, 20 on a
        // fixed ring starting at node 0, p0 = 1, d = 1/2. The randomized
        // values differ from the paper's illustration (different RNG), but
        // the structure must match: round 1 is fully randomized, and the
        // result converges to 40.
        let config = ProtocolConfig::max()
            .with_start(StartPolicy::Fixed)
            .with_rounds(RoundPolicy::Fixed(12));
        let engine = SimulationEngine::new(config);
        let t = engine
            .run_values(&[30, 10, 40, 20].map(Value::new), 1)
            .unwrap();
        // Round 1, node 0 receives the domain floor and must randomize
        // below its value 30.
        let first = &t.steps()[0];
        assert_eq!(first.action, LocalAction::Randomized);
        assert!(first.outgoing.first() < Value::new(30));
        assert_eq!(t.result_value(), Value::new(40));
    }

    #[test]
    fn monotone_global_value_in_max_protocol() {
        let engine =
            SimulationEngine::new(ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(6)));
        let t = engine
            .run_values(&[500, 100, 900, 300, 700].map(Value::new), 3)
            .unwrap();
        let mut prev = Value::MIN;
        for s in t.steps() {
            assert!(s.outgoing.first() >= prev, "global value regressed");
            prev = s.outgoing.first();
        }
    }

    #[test]
    fn naive_protocol_single_round_exact() {
        let engine = SimulationEngine::new(ProtocolConfig::naive(1));
        let t = engine.run_values(&[5, 25, 15].map(Value::new), 0).unwrap();
        assert_eq!(t.rounds(), 1);
        assert_eq!(t.result_value(), Value::new(25));
        // Every step is deterministic: pass-on or real insert.
        assert!(t
            .steps()
            .iter()
            .all(|s| s.action != LocalAction::Randomized));
        // Fixed start: ring order is node order.
        assert_eq!(t.ring_order(1).unwrap()[0].get(), 0);
    }

    #[test]
    fn anonymous_naive_randomizes_start() {
        let engine = SimulationEngine::new(ProtocolConfig::anonymous_naive(1));
        let mut starts = std::collections::HashSet::new();
        for seed in 0..50 {
            let t = engine
                .run_values(&[5, 25, 15, 35].map(Value::new), seed)
                .unwrap();
            assert_eq!(t.result_value(), Value::new(35));
            starts.insert(t.ring_order(1).unwrap()[0]);
        }
        assert!(starts.len() >= 3, "start node should vary");
    }

    #[test]
    fn topk_converges_to_true_topk() {
        let locals = locals_k(
            3,
            &[
                &[900, 400, 100],
                &[850, 300, 50],
                &[700, 650, 10],
                &[200, 150, 120],
            ],
        );
        let truth = true_topk(&locals, 3, &domain()).unwrap();
        assert_eq!(
            truth.as_slice(),
            &[Value::new(900), Value::new(850), Value::new(700)]
        );
        let engine = SimulationEngine::new(
            ProtocolConfig::topk(3).with_rounds(RoundPolicy::Precision { epsilon: 1e-9 }),
        );
        for seed in 0..30 {
            let t = engine.run(&locals, seed).unwrap();
            assert_eq!(t.result(), &truth, "seed {seed}");
        }
    }

    #[test]
    fn topk_with_duplicates_across_nodes() {
        // Two nodes hold the same value; the true top-2 contains it twice.
        let locals = locals_k(2, &[&[500, 1], &[500, 1], &[400, 1]]);
        let engine = SimulationEngine::new(
            ProtocolConfig::topk(2).with_rounds(RoundPolicy::Precision { epsilon: 1e-9 }),
        );
        let t = engine.run(&locals, 11).unwrap();
        assert_eq!(t.result().as_slice(), &[Value::new(500), Value::new(500)]);
    }

    #[test]
    fn deterministic_under_seed() {
        let engine = SimulationEngine::new(ProtocolConfig::max());
        let values = [3, 14, 15, 92, 65].map(Value::new);
        let a = engine.run_values(&values, 99).unwrap();
        let b = engine.run_values(&values, 99).unwrap();
        assert_eq!(a, b);
        let c = engine.run_values(&values, 100).unwrap();
        assert!(a.steps() != c.steps(), "different seed, different path");
    }

    #[test]
    fn transcript_shape_matches_configuration() {
        let engine =
            SimulationEngine::new(ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(5)));
        let locals = locals_k(2, &[&[1, 2], &[3, 4], &[5, 6], &[7, 8]]);
        let t = engine.run(&locals, 4).unwrap();
        assert_eq!(t.n(), 4);
        assert_eq!(t.k(), 2);
        assert_eq!(t.rounds(), 5);
        assert_eq!(t.message_count(), 20);
        assert_eq!(t.steps_in_round(3).count(), 4);
    }

    #[test]
    fn rejects_inconsistent_local_k() {
        let engine = SimulationEngine::new(ProtocolConfig::topk(3));
        let locals = locals_k(2, &[&[1], &[2], &[3]]);
        assert!(matches!(
            engine.run(&locals, 0),
            Err(ProtocolError::InconsistentK {
                expected: 3,
                got: 2
            })
        ));
    }

    #[test]
    fn rejects_too_few_nodes_for_probabilistic() {
        let engine = SimulationEngine::new(ProtocolConfig::max());
        assert!(matches!(
            engine.run_values(&[1, 2].map(Value::new), 0),
            Err(ProtocolError::TooFewNodes { .. })
        ));
    }

    #[test]
    fn remap_each_round_changes_ring_orders() {
        let engine = SimulationEngine::new(
            ProtocolConfig::max()
                .with_remap_each_round(true)
                .with_rounds(RoundPolicy::Fixed(6)),
        );
        let t = engine
            .run_values(&[10, 20, 30, 40, 50, 60, 70, 80].map(Value::new), 5)
            .unwrap();
        let orders: Vec<_> = (1..=6).map(|r| t.ring_order(r).unwrap().to_vec()).collect();
        assert!(
            orders.windows(2).any(|w| w[0] != w[1]),
            "remapping should change the ring at least once"
        );
        assert_eq!(t.result_value(), Value::new(80));
    }

    #[test]
    fn p0_zero_equivalent_schedule_reduces_to_naive() {
        // "if we set the initial randomization probability to be 0, the
        // protocol is reduced to the naive deterministic protocol".
        let engine = SimulationEngine::new(
            ProtocolConfig::max()
                .with_schedule(Schedule::Never)
                .with_rounds(RoundPolicy::Fixed(1))
                .with_start(StartPolicy::Fixed),
        );
        let t = engine.run_values(&[8, 6, 7, 5].map(Value::new), 0).unwrap();
        assert_eq!(t.result_value(), Value::new(8));
        assert!(t
            .steps()
            .iter()
            .all(|s| s.action != LocalAction::Randomized));
    }

    #[test]
    fn all_equal_values_resolve_without_randomizing_forever() {
        let engine =
            SimulationEngine::new(ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(8)));
        let t = engine
            .run_values(&[100, 100, 100].map(Value::new), 2)
            .unwrap();
        assert_eq!(t.result_value(), Value::new(100));
    }

    #[test]
    fn simulated_batch_matches_solo_runs_exactly() {
        // Heterogeneous batch: different algorithms, k, round counts, node
        // counts and seeds — every transcript must equal its solo run.
        let max_cfg = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(5));
        let topk_cfg = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(8));
        let jobs = vec![
            crate::BatchJob::new(
                max_cfg.clone(),
                locals_k(1, &[&[300], &[100], &[900], &[500]]),
                11,
            ),
            crate::BatchJob::new(
                topk_cfg.clone(),
                locals_k(2, &[&[10, 20], &[90, 80], &[50, 60]]),
                22,
            ),
            crate::BatchJob::new(max_cfg.clone(), locals_k(1, &[&[7], &[8], &[9]]), 33),
        ];
        let batched = run_simulated_batch(&jobs).unwrap();
        assert_eq!(batched.len(), 3);
        for (job, transcript) in jobs.iter().zip(&batched) {
            let solo = SimulationEngine::new(job.config.clone())
                .run(&job.locals, job.seed)
                .unwrap();
            assert_eq!(transcript, &solo);
        }
    }

    #[test]
    fn traced_run_is_bit_identical_and_counts_every_hop() {
        let config = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(7));
        let locals = locals_k(2, &[&[10, 20], &[90, 80], &[50, 60], &[70, 30]]);
        let plain = SimulationEngine::new(config.clone())
            .run(&locals, 42)
            .unwrap();
        let recorder = Recorder::new();
        let traced = SimulationEngine::new(config)
            .with_recorder(recorder.clone())
            .run(&locals, 42)
            .unwrap();
        assert_eq!(plain, traced, "recording must not perturb the protocol");
        // One Step span per hop: n * rounds.
        assert_eq!(recorder.phase(Phase::Step).count, 4 * 7);
        assert_eq!(recorder.events_recorded(), 4 * 7);
    }

    #[test]
    fn traced_batch_tags_hops_with_query_index() {
        let cfg = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(3));
        let jobs = vec![
            crate::BatchJob::new(cfg.clone(), locals_k(1, &[&[3], &[1], &[2]]), 1),
            crate::BatchJob::new(cfg.clone(), locals_k(1, &[&[9], &[8], &[7]]), 2),
        ];
        let recorder = Recorder::new();
        let traced = run_simulated_batch_traced(&jobs, &recorder).unwrap();
        assert_eq!(traced, run_simulated_batch(&jobs).unwrap());
        assert_eq!(recorder.phase(Phase::Step).count, 2 * 3 * 3);
        let trace = recorder.trace_jsonl();
        assert!(trace.contains("\"query\":0"));
        assert!(trace.contains("\"query\":1"));
    }

    #[test]
    fn empty_batch_rejected() {
        assert!(matches!(
            run_simulated_batch(&[]),
            Err(ProtocolError::InvalidBatch { .. })
        ));
    }

    #[test]
    fn single_value_nodes_with_floor_padding() {
        // Nodes with fewer than k values participate with floor padding.
        let locals = locals_k(3, &[&[500], &[400, 300], &[200]]);
        let engine = SimulationEngine::new(
            ProtocolConfig::topk(3).with_rounds(RoundPolicy::Precision { epsilon: 1e-9 }),
        );
        let t = engine.run(&locals, 8).unwrap();
        assert_eq!(
            t.result().as_slice(),
            &[Value::new(500), Value::new(400), Value::new(300)]
        );
    }
}
