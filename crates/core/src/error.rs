//! Errors for protocol construction and execution.

use std::error::Error;
use std::fmt;

use privtopk_domain::DomainError;
use privtopk_ring::RingError;

/// Errors produced while configuring or executing a protocol.
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// The probabilistic protocol requires at least three participants
    /// (`n > 2` in the paper's problem statement).
    TooFewNodes {
        /// Number of participants supplied.
        got: usize,
        /// Minimum required by the selected protocol.
        minimum: usize,
    },
    /// A probability parameter was outside its valid range.
    InvalidProbability {
        /// Which parameter.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The round policy cannot terminate (randomization never decays below
    /// the requested error bound).
    UnreachablePrecision,
    /// Participants supplied local vectors of inconsistent `k`.
    InconsistentK {
        /// Expected `k` (from the configuration).
        expected: usize,
        /// Offending vector's `k`.
        got: usize,
    },
    /// The max protocol requires `k = 1`.
    MaxRequiresKOne {
        /// The configured `k`.
        got: usize,
    },
    /// `delta` (the minimum randomization range of Algorithm 2) must be at
    /// least 1 so random tails never equal the real kth value.
    ZeroDelta,
    /// A batch of queries was structurally unusable (empty, oversized, or
    /// mixing incompatible jobs).
    InvalidBatch {
        /// What was wrong with the batch.
        reason: &'static str,
    },
    /// An underlying domain error.
    Domain(DomainError),
    /// A transport/topology error from the ring substrate.
    Ring(RingError),
    /// The persistent service runtime was misused (zero pipeline depth,
    /// a ticket collected twice, …).
    InvalidService {
        /// What was wrong.
        reason: &'static str,
    },
    /// A distributed worker thread panicked or disconnected.
    WorkerFailed {
        /// Ring position of the failed worker.
        position: usize,
    },
    /// A node died mid-protocol (simulated failure; recoverable by ring
    /// reconstruction — see `distributed::run_with_recovery`).
    WorkerCrashed {
        /// The node that died.
        node: privtopk_domain::NodeId,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::TooFewNodes { got, minimum } => {
                write!(f, "protocol needs at least {minimum} nodes, got {got}")
            }
            ProtocolError::InvalidProbability { what, value } => {
                write!(f, "invalid probability for {what}: {value}")
            }
            ProtocolError::UnreachablePrecision => {
                write!(f, "requested precision unreachable under this schedule")
            }
            ProtocolError::InconsistentK { expected, got } => {
                write!(
                    f,
                    "local vector has k = {got}, protocol configured with k = {expected}"
                )
            }
            ProtocolError::MaxRequiresKOne { got } => {
                write!(f, "max protocol requires k = 1, got k = {got}")
            }
            ProtocolError::ZeroDelta => write!(f, "delta must be at least 1"),
            ProtocolError::InvalidBatch { reason } => {
                write!(f, "invalid query batch: {reason}")
            }
            ProtocolError::InvalidService { reason } => {
                write!(f, "invalid service use: {reason}")
            }
            ProtocolError::Domain(e) => write!(f, "domain error: {e}"),
            ProtocolError::Ring(e) => write!(f, "ring error: {e}"),
            ProtocolError::WorkerFailed { position } => {
                write!(f, "distributed worker at position {position} failed")
            }
            ProtocolError::WorkerCrashed { node } => {
                write!(f, "{node} crashed mid-protocol")
            }
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Domain(e) => Some(e),
            ProtocolError::Ring(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DomainError> for ProtocolError {
    fn from(e: DomainError) -> Self {
        ProtocolError::Domain(e)
    }
}

impl From<RingError> for ProtocolError {
    fn from(e: RingError) -> Self {
        ProtocolError::Ring(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants: Vec<ProtocolError> = vec![
            ProtocolError::TooFewNodes { got: 2, minimum: 3 },
            ProtocolError::InvalidProbability {
                what: "p0",
                value: 1.5,
            },
            ProtocolError::UnreachablePrecision,
            ProtocolError::InconsistentK {
                expected: 3,
                got: 2,
            },
            ProtocolError::MaxRequiresKOne { got: 4 },
            ProtocolError::ZeroDelta,
            ProtocolError::InvalidBatch {
                reason: "empty batch",
            },
            ProtocolError::InvalidService {
                reason: "pipeline depth must be at least 1",
            },
            ProtocolError::Domain(DomainError::ZeroK),
            ProtocolError::Ring(RingError::Disconnected),
            ProtocolError::WorkerFailed { position: 2 },
            ProtocolError::WorkerCrashed {
                node: privtopk_domain::NodeId::new(1),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_and_sources() {
        let e: ProtocolError = DomainError::ZeroK.into();
        assert!(Error::source(&e).is_some());
        let e: ProtocolError = RingError::Timeout.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&ProtocolError::ZeroDelta).is_none());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<ProtocolError>();
    }
}
