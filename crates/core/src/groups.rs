//! The Section 4.2 scaling optimization: group-parallel max selection.
//!
//! "One possible way to improve the efficiency for a system with a larger
//! number of nodes is to break the set of n nodes into a number of small
//! groups and have each group compute their group maximum value in
//! parallel and then compute the global maximum value at designated
//! nodes, which could be randomly selected from each small group."

use privtopk_domain::rng::SeedSpec;
use privtopk_domain::{NodeId, TopKVector, Value};
use privtopk_observe::{Ctx, Recorder};
use privtopk_ring::RingTopology;

use crate::{ProtocolConfig, ProtocolError, SimulationEngine};

/// Seed stream tags.
const STREAM_PARTITION: u64 = 0x40;
const STREAM_GROUP: u64 = 0x50;
const STREAM_LEADERS: u64 = 0x60;

/// Result of a group-parallel max execution.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupedMaxOutcome {
    /// The global maximum.
    pub result: Value,
    /// Each group's locally computed maximum (one per group, in group
    /// order).
    pub group_results: Vec<Value>,
    /// Which nodes acted as the designated second-stage participants.
    pub leaders: Vec<NodeId>,
    /// Total messages across all sub-protocols.
    pub total_messages: usize,
    /// Sequential hops on the critical path: the slowest group's messages
    /// plus the leader ring's messages — the latency the optimization
    /// reduces.
    pub critical_path_messages: usize,
}

/// Runs max selection in `groups` parallel subrings followed by a leader
/// ring, using the same probabilistic protocol at both stages.
///
/// Both stages need at least 3 participants for the probabilistic
/// protocol, so `groups >= 3` and `values.len() >= 3 * groups` are
/// required (or `groups == 1`, which degenerates to the flat protocol).
///
/// # Errors
///
/// - [`ProtocolError::TooFewNodes`] if the grouping constraints fail.
/// - [`ProtocolError::MaxRequiresKOne`] if `config` is not a max
///   configuration.
/// - Execution errors from the underlying engine.
///
/// # Example
///
/// ```
/// use privtopk_core::groups::grouped_max;
/// use privtopk_core::{ProtocolConfig, RoundPolicy};
/// use privtopk_domain::Value;
///
/// let values: Vec<Value> = (1..=30).map(|i| Value::new(i * 10)).collect();
/// let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(8));
/// let outcome = grouped_max(&config, &values, 3, 42)?;
/// assert_eq!(outcome.result, Value::new(300));
/// # Ok::<(), privtopk_core::ProtocolError>(())
/// ```
pub fn grouped_max(
    config: &ProtocolConfig,
    values: &[Value],
    groups: usize,
    seed: u64,
) -> Result<GroupedMaxOutcome, ProtocolError> {
    grouped_max_traced(config, values, groups, seed, &Recorder::disabled())
}

/// One scalar local value per node, as `run_values` builds them.
fn scalar_locals(
    config: &ProtocolConfig,
    values: &[Value],
) -> Result<Vec<TopKVector>, ProtocolError> {
    let domain = config.domain();
    values
        .iter()
        .map(|&v| TopKVector::from_values(config.k(), [v], &domain))
        .collect::<Result<Vec<_>, _>>()
        .map_err(Into::into)
}

/// [`grouped_max`] with telemetry: every hop of group `g`'s subring is
/// tagged with query coordinate `g`, and the second-stage leader ring
/// with query coordinate `groups` — so a collected trace reconstructs
/// one causal chain per sub-protocol and an analyzer can measure the
/// §4.2 critical path (slowest group + leader ring) from real spans.
/// Recording never touches the seeded RNG streams; the outcome is
/// bit-identical to the untraced run.
///
/// # Errors
///
/// As for [`grouped_max`].
pub fn grouped_max_traced(
    config: &ProtocolConfig,
    values: &[Value],
    groups: usize,
    seed: u64,
    recorder: &Recorder,
) -> Result<GroupedMaxOutcome, ProtocolError> {
    if config.k() != 1 {
        return Err(ProtocolError::MaxRequiresKOne { got: config.k() });
    }
    let n = values.len();
    let engine = SimulationEngine::new(config.clone()).with_recorder(recorder.clone());
    let spec = SeedSpec::new(seed);

    if groups == 1 {
        let t = engine.run_ctx(
            &scalar_locals(config, values)?,
            spec.stream(STREAM_GROUP).base(),
            Ctx::default().with_query(0),
        )?;
        return Ok(GroupedMaxOutcome {
            result: t.result_value(),
            group_results: vec![t.result_value()],
            leaders: vec![t.ring_order(1).expect("round 1 exists")[0]],
            total_messages: t.message_count(),
            critical_path_messages: t.message_count(),
        });
    }
    if groups < 3 || n < 3 * groups {
        return Err(ProtocolError::TooFewNodes {
            got: n,
            minimum: 3 * groups.max(3),
        });
    }

    // Random partition of the nodes into contiguous groups of a random
    // arrangement (the paper's random grouping).
    let arrangement = RingTopology::random(n, &mut spec.stream(STREAM_PARTITION).rng())?;
    let partitions = arrangement.split_into_groups(groups)?;

    let mut group_results = Vec::with_capacity(groups);
    let mut leaders = Vec::with_capacity(groups);
    let mut total_messages = 0usize;
    let mut slowest_group = 0usize;
    for (g, part) in partitions.iter().enumerate() {
        let group_values: Vec<Value> = part.order().iter().map(|id| values[id.get()]).collect();
        let t = engine.run_ctx(
            &scalar_locals(config, &group_values)?,
            spec.stream(STREAM_GROUP).stream(g as u64).base(),
            Ctx::default().with_query(g as u64),
        )?;
        group_results.push(t.result_value());
        total_messages += t.message_count();
        slowest_group = slowest_group.max(t.message_count());
        // Designated node: randomly selected member of the group — take
        // the group subring's own starting node.
        let local_start = t.ring_order(1).expect("round 1 exists")[0];
        leaders.push(part.order()[local_start.get() % part.len()]);
    }

    // Second stage: the designated nodes run the same protocol over the
    // group maxima.
    let leader_transcript = engine.run_ctx(
        &scalar_locals(config, &group_results)?,
        spec.stream(STREAM_LEADERS).base(),
        Ctx::default().with_query(groups as u64),
    )?;
    total_messages += leader_transcript.message_count();

    Ok(GroupedMaxOutcome {
        result: leader_transcript.result_value(),
        group_results,
        leaders,
        total_messages,
        critical_path_messages: slowest_group + leader_transcript.message_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundPolicy;

    fn config() -> ProtocolConfig {
        ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-9 })
    }

    fn values(n: usize) -> Vec<Value> {
        (0..n)
            .map(|i| Value::new(((i * 37) % 9000 + 1) as i64))
            .collect()
    }

    #[test]
    fn grouped_max_is_correct() {
        let vals = values(30);
        let truth = vals.iter().copied().max().unwrap();
        for groups in [3, 5] {
            let out = grouped_max(&config(), &vals, groups, 7).unwrap();
            assert_eq!(out.result, truth, "groups = {groups}");
            assert_eq!(out.group_results.len(), groups);
            assert_eq!(out.leaders.len(), groups);
        }
    }

    #[test]
    fn single_group_degenerates_to_flat() {
        let vals = values(9);
        let out = grouped_max(&config(), &vals, 1, 3).unwrap();
        assert_eq!(out.result, vals.iter().copied().max().unwrap());
        assert_eq!(out.total_messages, out.critical_path_messages);
    }

    #[test]
    fn group_results_are_group_maxima() {
        let vals = values(12);
        let out = grouped_max(&config(), &vals, 3, 11).unwrap();
        let global = vals.iter().copied().max().unwrap();
        assert!(out.group_results.contains(&global));
        assert!(out.group_results.iter().all(|&g| g <= global));
    }

    #[test]
    fn critical_path_shorter_than_flat() {
        let vals = values(60);
        let flat = SimulationEngine::new(config())
            .run_values(&vals, 1)
            .unwrap()
            .message_count();
        let out = grouped_max(&config(), &vals, 6, 1).unwrap();
        assert!(
            out.critical_path_messages < flat,
            "grouped {} vs flat {flat}",
            out.critical_path_messages
        );
    }

    #[test]
    fn traced_grouped_run_is_identical_and_tags_every_subring() {
        let vals = values(12);
        let plain = grouped_max(&config(), &vals, 3, 11).unwrap();
        let recorder = Recorder::new();
        let traced = grouped_max_traced(&config(), &vals, 3, 11, &recorder).unwrap();
        assert_eq!(plain, traced, "recording must not perturb the protocol");
        // Queries 0..3 are the subrings, query 3 the leader ring.
        let trace = recorder.trace_jsonl();
        for q in 0..=3u64 {
            assert!(
                trace.contains(&format!("\"query\":{q},")),
                "missing sub-protocol chain {q}"
            );
        }
    }

    #[test]
    fn rejects_undersized_groupings() {
        let vals = values(8);
        assert!(grouped_max(&config(), &vals, 3, 0).is_err()); // 8 < 9
        assert!(grouped_max(&config(), &vals, 2, 0).is_err()); // stage 2 too small
    }

    #[test]
    fn rejects_topk_configuration() {
        let vals = values(9);
        let bad = ProtocolConfig::topk(2);
        assert!(matches!(
            grouped_max(&bad, &vals, 3, 0),
            Err(ProtocolError::MaxRequiresKOne { got: 2 })
        ));
    }

    #[test]
    fn leaders_are_members_of_their_groups() {
        let vals = values(15);
        let out = grouped_max(&config(), &vals, 3, 21).unwrap();
        for leader in &out.leaders {
            assert!(leader.get() < vals.len());
        }
        // All leaders distinct.
        let set: std::collections::HashSet<_> = out.leaders.iter().collect();
        assert_eq!(set.len(), out.leaders.len());
    }
}
