//! Latency modelling for the ring protocol (Section 4.2).
//!
//! The paper argues "the computation at each node ... should be negligible
//! compared to the communication cost" and proposes group-parallel
//! execution to cut latency for large `n`. The token ring is strictly
//! sequential — one message in flight at a time — so wall-clock latency is
//! the *sum* of per-hop delays for a flat ring, and the *max over parallel
//! subrings plus the leader ring* for the grouped variant. This module
//! samples per-hop delays from a configurable distribution and computes
//! both makespans, quantifying the §4.2 claim in (simulated) time rather
//! than message counts.

use rand::Rng;

use privtopk_domain::rng::SeedSpec;

use crate::{ProtocolConfig, ProtocolError};

/// Per-hop network delay model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LatencyModel {
    /// Every hop takes exactly `ms` milliseconds.
    Constant {
        /// Per-hop delay.
        ms: f64,
    },
    /// Hop delays are uniform in `[min_ms, max_ms]` — a simple jitter
    /// model.
    Uniform {
        /// Fastest hop.
        min_ms: f64,
        /// Slowest hop.
        max_ms: f64,
    },
    /// A heavy-ish tail: base delay plus an exponential component with
    /// the given mean — occasional slow hops dominate, which is what
    /// makes the parallel variant attractive.
    LongTail {
        /// Deterministic floor.
        base_ms: f64,
        /// Mean of the exponential excess.
        tail_mean_ms: f64,
    },
}

impl LatencyModel {
    /// A WAN-ish default: 20ms floor with a 10ms-mean exponential tail.
    #[must_use]
    pub fn wan() -> Self {
        LatencyModel::LongTail {
            base_ms: 20.0,
            tail_mean_ms: 10.0,
        }
    }

    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            LatencyModel::Constant { ms } => ms,
            LatencyModel::Uniform { min_ms, max_ms } => rng.gen_range(min_ms..=max_ms),
            LatencyModel::LongTail {
                base_ms,
                tail_mean_ms,
            } => {
                // Inverse-CDF exponential sample.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                base_ms - tail_mean_ms * u.ln()
            }
        }
    }
}

/// Predicted wall-clock makespans (milliseconds) for one query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MakespanEstimate {
    /// Flat ring: all hops strictly sequential.
    pub flat_ms: f64,
    /// Group-parallel (§4.2): slowest subring plus the leader ring.
    pub grouped_ms: f64,
    /// Number of groups the grouped estimate used.
    pub groups: usize,
}

impl MakespanEstimate {
    /// The speedup factor the grouping buys.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.grouped_ms <= 0.0 {
            return 1.0;
        }
        self.flat_ms / self.grouped_ms
    }
}

/// Estimates query makespan for `n` nodes under `config`'s round policy,
/// comparing the flat ring against `groups` parallel subrings
/// (`groups = 1` compares flat against itself).
///
/// Hops include the termination circulation, matching the distributed
/// driver's message accounting.
///
/// # Errors
///
/// - Round-policy resolution errors from the configuration.
/// - [`ProtocolError::TooFewNodes`] if `groups` is zero or exceeds `n`.
pub fn estimate_makespan(
    config: &ProtocolConfig,
    n: usize,
    groups: usize,
    model: LatencyModel,
    seed: u64,
) -> Result<MakespanEstimate, ProtocolError> {
    if groups == 0 || groups > n {
        return Err(ProtocolError::TooFewNodes {
            got: groups,
            minimum: 1,
        });
    }
    let rounds = config.resolve_rounds()?;
    let hops_per_node = rounds as usize + 1; // computation + termination
    let spec = SeedSpec::new(seed);

    // Flat ring: n * (rounds + 1) sequential hops.
    let mut rng = spec.stream(1).rng();
    let flat_ms: f64 = (0..n * hops_per_node).map(|_| model.sample(&mut rng)).sum();

    // Grouped: each subring of ~n/groups nodes runs in parallel; the
    // leader ring then runs over `groups` nodes.
    let base = n / groups;
    let extra = n % groups;
    let mut slowest_group = 0.0f64;
    for g in 0..groups {
        let size = base + usize::from(g < extra);
        let mut grng = spec.stream(2).stream(g as u64).rng();
        let total: f64 = (0..size * hops_per_node)
            .map(|_| model.sample(&mut grng))
            .sum();
        slowest_group = slowest_group.max(total);
    }
    let mut lrng = spec.stream(3).rng();
    let leader_ms: f64 = (0..groups * hops_per_node)
        .map(|_| model.sample(&mut lrng))
        .sum();
    let grouped_ms = if groups == 1 {
        flat_ms
    } else {
        slowest_group + leader_ms
    };

    Ok(MakespanEstimate {
        flat_ms,
        grouped_ms,
        groups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoundPolicy;

    fn config() -> ProtocolConfig {
        ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(5))
    }

    #[test]
    fn constant_model_is_exact() {
        let est =
            estimate_makespan(&config(), 10, 1, LatencyModel::Constant { ms: 2.0 }, 0).unwrap();
        // 10 nodes * 6 hops * 2ms.
        assert_eq!(est.flat_ms, 120.0);
        assert_eq!(est.grouped_ms, est.flat_ms);
        assert_eq!(est.speedup(), 1.0);
    }

    #[test]
    fn grouping_speeds_up_large_rings() {
        let est =
            estimate_makespan(&config(), 100, 10, LatencyModel::Constant { ms: 1.0 }, 0).unwrap();
        // Flat: 100*6 = 600ms. Grouped: 10*6 + 10*6 = 120ms -> 5x.
        assert_eq!(est.flat_ms, 600.0);
        assert_eq!(est.grouped_ms, 120.0);
        assert!((est.speedup() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn jitter_models_stay_positive_and_deterministic() {
        for model in [
            LatencyModel::Uniform {
                min_ms: 1.0,
                max_ms: 5.0,
            },
            LatencyModel::wan(),
        ] {
            let a = estimate_makespan(&config(), 20, 4, model, 7).unwrap();
            let b = estimate_makespan(&config(), 20, 4, model, 7).unwrap();
            assert_eq!(a, b, "deterministic under seed");
            assert!(a.flat_ms > 0.0 && a.grouped_ms > 0.0);
            assert!(a.speedup() > 1.0, "grouping should win at n=20");
        }
    }

    #[test]
    fn uniform_mean_is_plausible() {
        let est = estimate_makespan(
            &config(),
            50,
            1,
            LatencyModel::Uniform {
                min_ms: 10.0,
                max_ms: 20.0,
            },
            3,
        )
        .unwrap();
        // 300 hops with mean 15ms: expect ~4500 +- noise.
        assert!((est.flat_ms - 4500.0).abs() < 500.0, "{}", est.flat_ms);
    }

    #[test]
    fn rejects_bad_groupings() {
        assert!(estimate_makespan(&config(), 5, 0, LatencyModel::wan(), 0).is_err());
        assert!(estimate_makespan(&config(), 5, 6, LatencyModel::wan(), 0).is_err());
    }
}
