//! The privacy-preserving top-k selection protocols of *"Topk Queries
//! across Multiple Private Databases"* (Xiong, Chitti, Liu — ICDCS 2005).
//!
//! Multiple organizations each hold a private database; they want the
//! global top-k values of a common attribute without a trusted third party
//! and without revealing their own values. The paper's protocol arranges
//! the `n > 2` parties on a randomly mapped ring and circulates a global
//! top-k vector for several rounds; in each round a node that would have
//! to reveal its data instead injects *bounded random noise* with a
//! probability `P_r(r) = p0 · d^(r−1)` that decays to zero, so the final
//! result is exact with probability arbitrarily close to 1 while no single
//! message provably exposes any node's data.
//!
//! # Crate layout
//!
//! - [`local`]: Algorithm 1 (max) and Algorithm 2 (top-k), as pure
//!   functions.
//! - [`Schedule`]: the randomization-probability schedules (Equation 2
//!   plus ablation variants).
//! - [`ProtocolConfig`]: query parameters, round policies, start policies.
//! - [`SimulationEngine`]: deterministic in-process execution producing a
//!   full [`Transcript`] of intermediate results.
//! - [`distributed`]: the same protocol over real transports
//!   (threads + in-memory channels or TCP loopback).
//! - [`service`]: the persistent service runtime — long-lived node
//!   workers answering a stream of queries over one standing ring, with
//!   a pipelined scheduler keeping several queries in flight at once.
//! - [`groups`]: the Section 4.2 group-parallel scaling optimization.
//!
//! # Quickstart
//!
//! ```
//! use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
//! use privtopk_domain::Value;
//!
//! // Four competing retailers, one private sales total each.
//! let sales = [3200i64, 1100, 4800, 2700].map(Value::new);
//! let engine = SimulationEngine::new(
//!     ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-6 }),
//! );
//! let transcript = engine.run_values(&sales, 42)?;
//! assert_eq!(transcript.result_value(), Value::new(4800));
//! # Ok::<(), privtopk_core::ProtocolError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversarial;
pub mod audit;
mod batch;
mod config;
pub mod distributed;
mod engine;
mod error;
pub mod groups;
pub mod latency;
pub mod local;
mod messages;
mod schedule;
pub mod service;
mod transcript;

pub use batch::{derive_batch_seed, BatchJob};
pub use config::{AlgorithmKind, ProtocolConfig, RoundPolicy, StartPolicy};
pub use engine::{run_simulated_batch, run_simulated_batch_traced, true_topk, SimulationEngine};
pub use error::ProtocolError;
pub use messages::{BatchMessage, SlotMessage, TokenMessage, MAX_BATCH_ENTRIES};
pub use schedule::Schedule;
pub use service::{
    QueryObserver, QueryTicket, ServiceOutcome, ServiceRuntime, ServiceStats, ServiceStatsHandle,
    ShardedService,
};
pub use transcript::{StepRecord, Transcript};

/// Chaos scenario types, re-exported from the ring substrate so service
/// embedders can build plans without a direct `privtopk-ring` dependency.
pub use privtopk_ring::chaos::{
    ChaosEvent, ChaosIncident, ChaosPlan, ChaosState, DEFAULT_HEAL_BUDGET,
};
