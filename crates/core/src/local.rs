//! The randomized local computation algorithms (Algorithms 1 and 2).
//!
//! These are pure functions of `(rng, randomization probability, incoming
//! global state, local state)`; all protocol drivers — the synchronous
//! simulation engine and the threaded distributed runner — call into the
//! same code, so correctness and privacy properties are established once.

use rand::Rng;

use privtopk_domain::{DomainError, TopKVector, Value, ValueDomain};

use serde::{Deserialize, Serialize};

/// What the local algorithm did with the node's own data this step —
/// ground-truth annotation for transcripts and tests. A protocol adversary
/// never sees this; it observes only the output value/vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LocalAction {
    /// The node forwarded the incoming global state unchanged (its own
    /// values contributed nothing).
    PassedOn,
    /// The node revealed its real contribution (the `1 − P_r` branch).
    InsertedReal,
    /// The node injected random values (the `P_r` branch).
    Randomized,
}

/// Output of one local step of the scalar max protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxStep {
    /// The value passed to the successor, `g_i(r)`.
    pub output: Value,
    /// Ground-truth annotation of the branch taken.
    pub action: LocalAction,
}

/// Algorithm 1: the local algorithm of the probabilistic max protocol,
/// executed by node `i` at round `r`.
///
/// - If `g_{i-1}(r) >= v_i`: pass the global value on (no disclosure).
/// - Otherwise, with probability `P_r(r)` output a uniform random value in
///   `[g_{i-1}(r), v_i)` — open at the top so the node's real value is
///   never emitted by the randomization branch — and with probability
///   `1 − P_r(r)` output `v_i` itself.
///
/// The output is always `>= g_{i-1}(r)` (the global value increases
/// monotonically along the ring) and always `<= max(g_{i-1}(r), v_i)`
/// (randomization can never overshoot the true maximum).
///
/// # Errors
///
/// Returns [`DomainError::EmptyRange`] only if `probability` is outside
/// `[0, 1]` — propagated as a defensive check; valid protocol
/// configurations cannot trigger it.
///
/// # Example
///
/// ```
/// use privtopk_core::local::{max_step, LocalAction};
/// use privtopk_domain::{rng::seeded_rng, Value, ValueDomain};
///
/// let domain = ValueDomain::paper_default();
/// let mut rng = seeded_rng(7);
/// // Randomization probability 1: the node must emit a masked value.
/// let step = max_step(&mut rng, 1.0, Value::new(10), Value::new(30), &domain)?;
/// assert_eq!(step.action, LocalAction::Randomized);
/// assert!(step.output >= Value::new(10) && step.output < Value::new(30));
/// # Ok::<(), privtopk_domain::DomainError>(())
/// ```
pub fn max_step<R: Rng + ?Sized>(
    rng: &mut R,
    probability: f64,
    incoming: Value,
    own: Value,
    domain: &ValueDomain,
) -> Result<MaxStep, DomainError> {
    if incoming >= own {
        return Ok(MaxStep {
            output: incoming,
            action: LocalAction::PassedOn,
        });
    }
    if rng.gen_bool(probability.clamp(0.0, 1.0)) {
        // Uniform over [g_{i-1}(r), v_i); non-empty because incoming < own.
        let masked = domain.sample_half_open(rng, incoming, own)?;
        Ok(MaxStep {
            output: masked,
            action: LocalAction::Randomized,
        })
    } else {
        Ok(MaxStep {
            output: own,
            action: LocalAction::InsertedReal,
        })
    }
}

/// Output of one local step of the general top-k protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopkStep {
    /// The vector passed to the successor, `G_i(r)`.
    pub output: TopKVector,
    /// Ground-truth annotation of the branch taken.
    pub action: LocalAction,
    /// Whether the node has (now or previously) really inserted its values.
    pub has_inserted: bool,
}

/// Output of [`topk_step_scratch`]: like [`TopkStep`] but without a clone
/// of the incoming vector when the step forwards it unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopkStepOutcome {
    /// The vector passed to the successor when it differs from the
    /// incoming one; `None` means "forward `G_{i-1}(r)` unchanged".
    pub output: Option<TopKVector>,
    /// Ground-truth annotation of the branch taken.
    pub action: LocalAction,
    /// Whether the node has (now or previously) really inserted its values.
    pub has_inserted: bool,
}

/// Reusable working memory for [`topk_step_scratch`], so a driver running
/// many steps (the simulation engine runs `n × rounds` of them per hop,
/// and batched drivers share one scratch across all B entries of a group)
/// does not allocate per hop. Both buffers are flat `Value` (= `i64`)
/// arrays the merge and tail loops sweep over linearly.
#[derive(Debug, Default)]
pub struct TopkScratch {
    merged: Vec<Value>,
    tail: Vec<Value>,
}

impl TopkScratch {
    /// An empty scratch; buffers grow on first use and are then reused.
    #[must_use]
    pub fn new() -> Self {
        TopkScratch::default()
    }
}

/// Algorithm 2: the local algorithm of the probabilistic top-k protocol,
/// executed by node `i` at round `r`.
///
/// Computes the real merged top-k `G'_i(r) = topK(G_{i-1}(r) ∪ V_i)` and
/// the node's contribution `V'_i = G'_i(r) − G_{i-1}(r)` (multiset
/// difference), `m = |V'_i|`, then:
///
/// - `m = 0`: pass `G_{i-1}(r)` on unchanged.
/// - `m > 0`, with probability `1 − P_r(r)`: output the real `G'_i(r)` and
///   set the *inserted* flag — per the paper, "a node only does this once".
/// - `m > 0`, with probability `P_r(r)`: copy the first `k − m` entries of
///   `G_{i-1}(r)` and fill the last `m` entries with independent uniform
///   values from `[min(G'_i(r)[k] − δ, G_{i-1}(r)[k−m+1]), G'_i(r)[k])`,
///   sorted. The upper bound keeps every random value strictly below the
///   real current `k`-th value, so junk is always eventually displaced.
///
/// **Insert-once semantics.** Once the flag is set, the node "will simply
/// pass on the global vector in the rest of the rounds" — *unchanged*.
/// Re-merging instead would be wrong: the multiset union would count the
/// node's own values a second time (its data is already inside
/// `G_{i-1}(r)`), inflating duplicates into the final result. The price of
/// the strict rule is a vanishingly rare corner case where another node's
/// random tail displaces an already-inserted true value and the emitter's
/// later real insertion does not restore it; the experiments (Figure 11
/// reproduction) confirm precision still converges to 100%.
///
/// # Errors
///
/// Returns a [`DomainError`] only on internal arithmetic violations;
/// validated configurations cannot trigger one.
///
/// # Panics
///
/// Panics if `delta == 0` (validated away by `ProtocolConfig`).
pub fn topk_step<R: Rng + ?Sized>(
    rng: &mut R,
    probability: f64,
    incoming: &TopKVector,
    own: &TopKVector,
    has_inserted: bool,
    delta: u64,
    domain: &ValueDomain,
) -> Result<TopkStep, DomainError> {
    let mut scratch = TopkScratch::new();
    let outcome = topk_step_scratch(
        rng,
        probability,
        incoming,
        own,
        has_inserted,
        delta,
        domain,
        &mut scratch,
    )?;
    Ok(TopkStep {
        output: outcome.output.unwrap_or_else(|| incoming.clone()),
        action: outcome.action,
        has_inserted: outcome.has_inserted,
    })
}

/// Allocation-light variant of [`topk_step`] for drivers that execute many
/// steps: the pass-on branches return `output: None` instead of cloning the
/// incoming vector, and the merge runs in the caller-provided
/// [`TopkScratch`] buffer instead of a fresh allocation per hop.
///
/// Consumes the RNG identically to [`topk_step`] and produces the same
/// vectors, so the two are interchangeable without affecting seeded runs.
///
/// # Errors
///
/// As for [`topk_step`].
///
/// # Panics
///
/// Panics if `delta == 0` (validated away by `ProtocolConfig`).
#[allow(clippy::too_many_arguments)]
pub fn topk_step_scratch<R: Rng + ?Sized>(
    rng: &mut R,
    probability: f64,
    incoming: &TopKVector,
    own: &TopKVector,
    has_inserted: bool,
    delta: u64,
    domain: &ValueDomain,
    scratch: &mut TopkScratch,
) -> Result<TopkStepOutcome, DomainError> {
    assert!(delta >= 1, "delta must be at least 1");
    let k = incoming.k();
    // The merge count is the contribution size m = |topK(G ∪ V) − G|
    // (ties prefer the incoming vector), so no difference vector is built.
    let m = incoming.merge_into(own, &mut scratch.merged);

    if m == 0 || has_inserted {
        // Case 1: nothing to contribute — forward unchanged. Same for a
        // node whose insert-once flag is set: re-merging would
        // double-count its values (they are already inside the vector);
        // see the function docs.
        return Ok(TopkStepOutcome {
            output: None,
            action: LocalAction::PassedOn,
            has_inserted,
        });
    }

    if !rng.gen_bool(probability.clamp(0.0, 1.0)) {
        // The 1 − P_r branch: reveal the real merged top-k, at most once.
        let merged = TopKVector::from_sorted(std::mem::take(&mut scratch.merged))?;
        return Ok(TopkStepOutcome {
            output: Some(merged),
            action: LocalAction::InsertedReal,
            has_inserted: true,
        });
    }

    // The P_r branch: keep the predecessor's prefix, randomize the tail.
    let kth_real = *scratch.merged.last().expect("k >= 1"); // G'_i(r)[k]
    let prefix_anchor = incoming
        .get(k - m + 1)
        .expect("k - m + 1 is within 1..=k because 0 < m <= k"); // G_{i-1}(r)[k-m+1]
    let lower = kth_real.saturating_sub(delta).min(prefix_anchor);
    scratch.tail.clear();
    scratch.tail.reserve(m);
    for _ in 0..m {
        scratch
            .tail
            .push(domain.sample_half_open(rng, lower, kth_real)?);
    }
    let output = TopKVector::with_randomized_tail_from(incoming, m, &mut scratch.tail)?;
    Ok(TopkStepOutcome {
        output: Some(output),
        action: LocalAction::Randomized,
        has_inserted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::rng::seeded_rng;

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    fn vk(k: usize, vals: &[i64]) -> TopKVector {
        TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain()).unwrap()
    }

    // ---- Algorithm 1 ----

    #[test]
    fn max_passes_on_when_not_larger() {
        let mut rng = seeded_rng(1);
        for own in [5, 10] {
            let s = max_step(&mut rng, 1.0, Value::new(10), Value::new(own), &domain()).unwrap();
            assert_eq!(s.output, Value::new(10));
            assert_eq!(s.action, LocalAction::PassedOn);
        }
    }

    #[test]
    fn max_reveals_with_zero_probability() {
        let mut rng = seeded_rng(2);
        let s = max_step(&mut rng, 0.0, Value::new(10), Value::new(30), &domain()).unwrap();
        assert_eq!(s.output, Value::new(30));
        assert_eq!(s.action, LocalAction::InsertedReal);
    }

    #[test]
    fn max_randomizes_with_probability_one() {
        let mut rng = seeded_rng(3);
        for _ in 0..200 {
            let s = max_step(&mut rng, 1.0, Value::new(10), Value::new(30), &domain()).unwrap();
            assert_eq!(s.action, LocalAction::Randomized);
            assert!(s.output >= Value::new(10), "monotone: {}", s.output);
            assert!(s.output < Value::new(30), "never reveals v_i: {}", s.output);
        }
    }

    #[test]
    fn max_random_value_never_equals_own() {
        // Adjacent values: the only possible random value is g itself.
        let mut rng = seeded_rng(4);
        for _ in 0..50 {
            let s = max_step(&mut rng, 1.0, Value::new(10), Value::new(11), &domain()).unwrap();
            assert_eq!(s.output, Value::new(10));
        }
    }

    #[test]
    fn max_branch_frequency_tracks_probability() {
        let mut rng = seeded_rng(5);
        let mut randomized = 0;
        let trials = 10_000;
        for _ in 0..trials {
            let s = max_step(&mut rng, 0.3, Value::new(10), Value::new(30), &domain()).unwrap();
            if s.action == LocalAction::Randomized {
                randomized += 1;
            }
        }
        let freq = f64::from(randomized) / f64::from(trials);
        assert!((freq - 0.3).abs() < 0.02, "freq = {freq}");
    }

    // ---- Algorithm 2 ----

    #[test]
    fn topk_passes_on_when_no_contribution() {
        let mut rng = seeded_rng(6);
        let g = vk(3, &[100, 90, 80]);
        let v = vk(3, &[70, 60, 50]);
        let s = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain()).unwrap();
        assert_eq!(s.output, g);
        assert_eq!(s.action, LocalAction::PassedOn);
        assert!(!s.has_inserted);
    }

    #[test]
    fn topk_reveals_real_merge_with_zero_probability() {
        let mut rng = seeded_rng(7);
        let g = vk(3, &[100, 50, 40]);
        let v = vk(3, &[90, 30, 20]);
        let s = topk_step(&mut rng, 0.0, &g, &v, false, 1, &domain()).unwrap();
        assert_eq!(s.output, vk(3, &[100, 90, 50]));
        assert_eq!(s.action, LocalAction::InsertedReal);
        assert!(s.has_inserted);
    }

    #[test]
    fn topk_randomized_tail_respects_paper_bounds() {
        // Figure 2 shape: k = 6, node contributes m = 3.
        let mut rng = seeded_rng(8);
        let g = vk(6, &[900, 800, 700, 600, 500, 400]);
        let v = vk(6, &[850, 750, 650, 1, 1, 1]);
        // merged = [900, 850, 800, 750, 700, 650]; m = 3; G'[k] = 650;
        // G_{i-1}[k-m+1] = G[4] = 600; lower = min(650-δ, 600) = 600.
        for _ in 0..100 {
            let s = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain()).unwrap();
            assert_eq!(s.action, LocalAction::Randomized);
            // Prefix copied from predecessor.
            assert_eq!(
                &s.output.as_slice()[..3],
                vk(3, &[900, 800, 700]).as_slice()
            );
            // Tail: three values in [600, 650), sorted descending.
            let tail = &s.output.as_slice()[3..];
            assert!(tail.windows(2).all(|w| w[0] >= w[1]));
            for t in tail {
                assert!(*t >= Value::new(600) && *t < Value::new(650), "tail {t}");
            }
            assert!(!s.has_inserted);
        }
    }

    #[test]
    fn topk_delta_widens_narrow_ranges() {
        // Predecessor anchor equals the real kth value: without δ the
        // range would be empty.
        let mut rng = seeded_rng(9);
        let g = vk(2, &[100, 90]);
        let v = vk(2, &[95, 1]);
        // merged = [100, 95], m = 1, G'[2] = 95, anchor = G[2] = 90,
        // lower = min(95-δ, 90).
        let s = topk_step(&mut rng, 1.0, &g, &v, false, 10, &domain()).unwrap();
        let tail = s.output.get(2).unwrap();
        assert!(tail >= Value::new(85) && tail < Value::new(95));
    }

    #[test]
    fn topk_full_replacement_when_m_equals_k() {
        // "In an extreme case when m = k ... replace all k values ...
        // randomly picked from the range between the first item of
        // G_{i-1}(r) and the kth (last) item of V_i."
        let mut rng = seeded_rng(10);
        let g = vk(3, &[50, 40, 30]);
        let v = vk(3, &[100, 90, 80]);
        for _ in 0..100 {
            let s = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain()).unwrap();
            assert_eq!(s.action, LocalAction::Randomized);
            for x in s.output.iter() {
                // lower = min(80-1, G[1]=50) = 50, upper = 80.
                assert!(x >= Value::new(50) && x < Value::new(80), "{x}");
            }
        }
    }

    #[test]
    fn topk_insert_once_flag_suppresses_randomization() {
        let mut rng = seeded_rng(11);
        let g = vk(2, &[100, 40]);
        let v = vk(2, &[90, 1]);
        // Even with probability 1, a flagged node passes the vector on
        // unchanged — no randomization, no re-merge (which would
        // double-count its own data).
        let s = topk_step(&mut rng, 1.0, &g, &v, true, 1, &domain()).unwrap();
        assert_eq!(s.output, g);
        assert_eq!(s.action, LocalAction::PassedOn);
        assert!(s.has_inserted);
    }

    #[test]
    fn topk_flag_set_exactly_on_real_insert() {
        let mut rng = seeded_rng(12);
        let g = vk(2, &[100, 40]);
        let v = vk(2, &[90, 1]);
        let randomized = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain()).unwrap();
        assert!(!randomized.has_inserted);
        let inserted = topk_step(&mut rng, 0.0, &g, &v, false, 1, &domain()).unwrap();
        assert!(inserted.has_inserted);
    }

    #[test]
    fn topk_randomized_never_emits_real_contribution() {
        // The randomized branch must never place the node's actual values
        // in the output (that is the whole point of masking).
        let mut rng = seeded_rng(13);
        let g = vk(3, &[500, 400, 300]);
        let v = vk(3, &[450, 350, 1]);
        for _ in 0..200 {
            let s = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain()).unwrap();
            // merged = [500, 450, 400], m=1 (just 450), G'[3]=400:
            // tail < 400 < 450, so 450 can never appear.
            assert!(!s.output.contains(Value::new(450)));
        }
    }

    #[test]
    fn topk_with_k_one_matches_max_monotonicity_in_common_case() {
        // For k = 1 with delta not exceeding the gap, Algorithm 2's range
        // [min(v−δ, g), v) includes [g, v); outputs stay below v.
        let mut rng = seeded_rng(14);
        let g = vk(1, &[10]);
        let v = vk(1, &[30]);
        for _ in 0..100 {
            let s = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain()).unwrap();
            let out = s.output.first();
            assert!(out < Value::new(30));
            assert!(out >= Value::new(10)); // lower = min(29, 10) = 10
        }
    }

    #[test]
    fn topk_duplicate_values_counted_as_multiset() {
        let mut rng = seeded_rng(15);
        // Node holds the same value twice; both copies contribute.
        let g = vk(2, &[50, 1]);
        let v = vk(2, &[80, 80]);
        let s = topk_step(&mut rng, 0.0, &g, &v, false, 1, &domain()).unwrap();
        assert_eq!(s.output, vk(2, &[80, 80]));
    }

    #[test]
    fn scratch_variant_matches_cloning_step_exactly() {
        // topk_step and topk_step_scratch must consume the RNG identically
        // and produce the same vectors — drivers may mix them freely
        // without perturbing seeded runs.
        let d = domain();
        let cases = [
            (vk(3, &[100, 90, 80]), vk(3, &[70, 60, 50]), false), // pass on
            (vk(3, &[100, 50, 40]), vk(3, &[90, 30, 20]), false), // contributes
            (vk(2, &[100, 40]), vk(2, &[90, 1]), true),           // flagged
            (vk(3, &[50, 40, 30]), vk(3, &[100, 90, 80]), false), // m = k
        ];
        for (g, v, flagged) in &cases {
            for seed in 0..50 {
                for probability in [0.0, 0.35, 1.0] {
                    let mut rng_a = seeded_rng(seed);
                    let mut rng_b = seeded_rng(seed);
                    let mut scratch = TopkScratch::new();
                    let plain = topk_step(&mut rng_a, probability, g, v, *flagged, 2, &d).unwrap();
                    let outcome = topk_step_scratch(
                        &mut rng_b,
                        probability,
                        g,
                        v,
                        *flagged,
                        2,
                        &d,
                        &mut scratch,
                    )
                    .unwrap();
                    assert_eq!(plain.action, outcome.action);
                    assert_eq!(plain.has_inserted, outcome.has_inserted);
                    match &outcome.output {
                        Some(out) => assert_eq!(&plain.output, out),
                        None => assert_eq!(&plain.output, g),
                    }
                    // Both RNGs must be in the same state afterwards.
                    assert_eq!(
                        rand::Rng::gen::<u64>(&mut rng_a),
                        rand::Rng::gen::<u64>(&mut rng_b)
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "delta")]
    fn topk_rejects_zero_delta() {
        let mut rng = seeded_rng(16);
        let g = vk(1, &[10]);
        let v = vk(1, &[30]);
        let _ = topk_step(&mut rng, 1.0, &g, &v, false, 0, &domain());
    }
}
