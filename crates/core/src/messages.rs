//! Wire messages exchanged by the distributed protocol drivers.

use bytes::{BufMut, BytesMut};

use privtopk_domain::TopKVector;
use privtopk_ring::wire::{WireDecode, WireEncode};
use privtopk_ring::RingError;

/// A message circulating on the ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenMessage {
    /// The global top-k vector in flight during computation round `round`.
    Token {
        /// 1-based round number.
        round: u32,
        /// The current global top-k vector.
        vector: TopKVector,
    },
    /// The termination circulation: the final result, passed once around
    /// the ring so every node learns it ("in the termination round all
    /// nodes simply passes on the final result").
    Finished {
        /// The final global top-k vector.
        vector: TopKVector,
    },
}

const TAG_TOKEN: u8 = 1;
const TAG_FINISHED: u8 = 2;
const TAG_BATCH_TOKENS: u8 = 3;
const TAG_BATCH_FINISHED: u8 = 4;
const TAG_SLOT: u8 = 5;

/// Hard cap on the number of piggybacked queries in one [`BatchMessage`].
///
/// Together with the per-vector `k` cap implied by the transport's maximum
/// frame length, this bounds the allocation an adversarial length prefix
/// can trigger during decode.
pub const MAX_BATCH_ENTRIES: usize = 4096;

impl WireEncode for TokenMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            TokenMessage::Token { round, vector } => {
                buf.put_u8(TAG_TOKEN);
                round.encode(buf);
                vector.encode(buf);
            }
            TokenMessage::Finished { vector } => {
                buf.put_u8(TAG_FINISHED);
                vector.encode(buf);
            }
        }
    }
}

impl WireDecode for TokenMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        match tag {
            TAG_TOKEN => Ok(TokenMessage::Token {
                round: u32::decode(buf)?,
                vector: TopKVector::decode(buf)?,
            }),
            TAG_FINISHED => Ok(TokenMessage::Finished {
                vector: TopKVector::decode(buf)?,
            }),
            _ => Err(RingError::Decode {
                reason: "unknown token message tag",
            }),
        }
    }
}

/// A service-runtime frame: one query's [`TokenMessage`] tagged with the
/// query id assigned by the scheduler.
///
/// The persistent service keeps several independent queries in flight on
/// the same ring at once; the tag is what lets a long-lived worker
/// demultiplex interleaved traversals back onto the right per-query slot
/// (each slot owns its own RNG stream, so the transcript of every tagged
/// query is bit-identical to its solo run regardless of interleaving).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotMessage {
    /// Scheduler-assigned query id; unique over a service's lifetime.
    pub query: u64,
    /// The hop payload, exactly as a solo run would frame it.
    pub inner: TokenMessage,
}

impl WireEncode for SlotMessage {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(TAG_SLOT);
        self.query.encode(buf);
        self.inner.encode(buf);
    }
}

impl WireDecode for SlotMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        if tag != TAG_SLOT {
            return Err(RingError::Decode {
                reason: "unknown slot message tag",
            });
        }
        Ok(SlotMessage {
            query: u64::decode(buf)?,
            inner: TokenMessage::decode(buf)?,
        })
    }
}

/// A batched ring message: the payloads of B independent queries
/// piggybacked in one frame per hop.
///
/// Entry `i` is the exact vector query `i` of the batch group would have
/// carried in its own [`TokenMessage`] at this hop; the `round` field is
/// shared because a batch group advances in lock-step. This is what
/// amortizes per-hop framing cost across the batch without perturbing any
/// individual query's transcript.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchMessage {
    /// Round `round` in flight for every query of the batch group.
    Tokens {
        /// 1-based round number, shared by the whole group.
        round: u32,
        /// Per-query global vectors, in batch-group order.
        vectors: Vec<TopKVector>,
    },
    /// The termination circulation for the whole group.
    Finished {
        /// Per-query final vectors, in batch-group order.
        vectors: Vec<TopKVector>,
    },
}

impl BatchMessage {
    /// Number of piggybacked queries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            BatchMessage::Tokens { vectors, .. } | BatchMessage::Finished { vectors } => {
                vectors.len()
            }
        }
    }

    /// Whether the batch carries no queries (never valid on the wire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn decode_batch_vectors(buf: &mut &[u8]) -> Result<Vec<TopKVector>, RingError> {
    let vectors = Vec::<TopKVector>::decode(buf)?;
    if vectors.is_empty() {
        return Err(RingError::Decode {
            reason: "batch message with zero entries",
        });
    }
    if vectors.len() > MAX_BATCH_ENTRIES {
        return Err(RingError::Decode {
            reason: "batch message exceeds entry cap",
        });
    }
    Ok(vectors)
}

impl WireEncode for BatchMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BatchMessage::Tokens { round, vectors } => {
                buf.put_u8(TAG_BATCH_TOKENS);
                round.encode(buf);
                vectors.encode(buf);
            }
            BatchMessage::Finished { vectors } => {
                buf.put_u8(TAG_BATCH_FINISHED);
                vectors.encode(buf);
            }
        }
    }
}

impl WireDecode for BatchMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        match tag {
            TAG_BATCH_TOKENS => {
                let round = u32::decode(buf)?;
                Ok(BatchMessage::Tokens {
                    round,
                    vectors: decode_batch_vectors(buf)?,
                })
            }
            TAG_BATCH_FINISHED => Ok(BatchMessage::Finished {
                vectors: decode_batch_vectors(buf)?,
            }),
            _ => Err(RingError::Decode {
                reason: "unknown batch message tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use privtopk_domain::{Value, ValueDomain};
    use privtopk_ring::wire::{decode_from_bytes, encode_to_bytes};

    fn vector() -> TopKVector {
        TopKVector::from_values(3, [9, 5, 5].map(Value::new), &ValueDomain::paper_default())
            .unwrap()
    }

    #[test]
    fn token_roundtrip() {
        let msg = TokenMessage::Token {
            round: 7,
            vector: vector(),
        };
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<TokenMessage>(&frame).unwrap(), msg);
    }

    #[test]
    fn finished_roundtrip() {
        let msg = TokenMessage::Finished { vector: vector() };
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<TokenMessage>(&frame).unwrap(), msg);
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = Bytes::from_static(&[99]);
        assert!(decode_from_bytes::<TokenMessage>(&frame).is_err());
        assert!(decode_from_bytes::<BatchMessage>(&frame).is_err());
        assert!(decode_from_bytes::<SlotMessage>(&frame).is_err());
    }

    #[test]
    fn slot_roundtrip() {
        for inner in [
            TokenMessage::Token {
                round: 9,
                vector: vector(),
            },
            TokenMessage::Finished { vector: vector() },
        ] {
            let msg = SlotMessage {
                query: u64::MAX - 3,
                inner,
            };
            let frame = encode_to_bytes(&msg);
            assert_eq!(decode_from_bytes::<SlotMessage>(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_slot_rejected() {
        let msg = SlotMessage {
            query: 12,
            inner: TokenMessage::Finished { vector: vector() },
        };
        let frame = encode_to_bytes(&msg);
        let short = frame.slice(0..frame.len() - 2);
        assert!(decode_from_bytes::<SlotMessage>(&short).is_err());
    }

    #[test]
    fn truncated_token_rejected() {
        let msg = TokenMessage::Token {
            round: 1,
            vector: vector(),
        };
        let frame = encode_to_bytes(&msg);
        let short = frame.slice(0..frame.len() - 3);
        assert!(decode_from_bytes::<TokenMessage>(&short).is_err());
    }

    #[test]
    fn batch_roundtrip() {
        let msg = BatchMessage::Tokens {
            round: 3,
            vectors: vec![vector(); 5],
        };
        assert_eq!(msg.len(), 5);
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<BatchMessage>(&frame).unwrap(), msg);

        let fin = BatchMessage::Finished {
            vectors: vec![vector(); 2],
        };
        let frame = encode_to_bytes(&fin);
        assert_eq!(decode_from_bytes::<BatchMessage>(&frame).unwrap(), fin);
    }

    #[test]
    fn empty_batch_rejected() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(TAG_BATCH_TOKENS);
        3u32.encode(&mut buf);
        buf.put_u32_le(0); // zero vectors
        assert!(decode_from_bytes::<BatchMessage>(&buf.freeze()).is_err());

        let mut buf = bytes::BytesMut::new();
        buf.put_u8(TAG_BATCH_FINISHED);
        buf.put_u32_le(0);
        assert!(decode_from_bytes::<BatchMessage>(&buf.freeze()).is_err());
    }

    #[test]
    fn oversized_batch_rejected() {
        // A batch of MAX_BATCH_ENTRIES + 1 k=1 vectors is structurally
        // valid but must be refused by the entry cap.
        let v = TopKVector::from_values(1, [Value::new(1)], &ValueDomain::paper_default()).unwrap();
        let msg = BatchMessage::Finished {
            vectors: vec![v; MAX_BATCH_ENTRIES + 1],
        };
        let frame = encode_to_bytes(&msg);
        assert!(decode_from_bytes::<BatchMessage>(&frame).is_err());
    }

    #[test]
    fn shared_round_field_amortizes_per_entry_bytes() {
        // The per-hop byte criterion: a batch of B entries must be
        // strictly smaller than B solo token frames.
        let b = 64;
        let solo = encode_to_bytes(&TokenMessage::Token {
            round: 4,
            vector: vector(),
        });
        let batch = encode_to_bytes(&BatchMessage::Tokens {
            round: 4,
            vectors: vec![vector(); b],
        });
        assert!(batch.len() < b * solo.len());
    }
}
