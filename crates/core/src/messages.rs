//! Wire messages exchanged by the distributed protocol drivers.

use bytes::{BufMut, Bytes, BytesMut};

use privtopk_domain::TopKVector;
use privtopk_ring::wire::{WireDecode, WireEncode};
use privtopk_ring::RingError;

/// A message circulating on the ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenMessage {
    /// The global top-k vector in flight during computation round `round`.
    Token {
        /// 1-based round number.
        round: u32,
        /// The current global top-k vector.
        vector: TopKVector,
    },
    /// The termination circulation: the final result, passed once around
    /// the ring so every node learns it ("in the termination round all
    /// nodes simply passes on the final result").
    Finished {
        /// The final global top-k vector.
        vector: TopKVector,
    },
}

const TAG_TOKEN: u8 = 1;
const TAG_FINISHED: u8 = 2;

impl WireEncode for TokenMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            TokenMessage::Token { round, vector } => {
                buf.put_u8(TAG_TOKEN);
                round.encode(buf);
                vector.encode(buf);
            }
            TokenMessage::Finished { vector } => {
                buf.put_u8(TAG_FINISHED);
                vector.encode(buf);
            }
        }
    }
}

impl WireDecode for TokenMessage {
    fn decode(buf: &mut Bytes) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        match tag {
            TAG_TOKEN => Ok(TokenMessage::Token {
                round: u32::decode(buf)?,
                vector: TopKVector::decode(buf)?,
            }),
            TAG_FINISHED => Ok(TokenMessage::Finished {
                vector: TopKVector::decode(buf)?,
            }),
            _ => Err(RingError::Decode {
                reason: "unknown token message tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::{Value, ValueDomain};
    use privtopk_ring::wire::{decode_from_bytes, encode_to_bytes};

    fn vector() -> TopKVector {
        TopKVector::from_values(3, [9, 5, 5].map(Value::new), &ValueDomain::paper_default())
            .unwrap()
    }

    #[test]
    fn token_roundtrip() {
        let msg = TokenMessage::Token {
            round: 7,
            vector: vector(),
        };
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<TokenMessage>(&frame).unwrap(), msg);
    }

    #[test]
    fn finished_roundtrip() {
        let msg = TokenMessage::Finished { vector: vector() };
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<TokenMessage>(&frame).unwrap(), msg);
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = Bytes::from_static(&[99]);
        assert!(decode_from_bytes::<TokenMessage>(&frame).is_err());
    }

    #[test]
    fn truncated_token_rejected() {
        let msg = TokenMessage::Token {
            round: 1,
            vector: vector(),
        };
        let frame = encode_to_bytes(&msg);
        let short = frame.slice(0..frame.len() - 3);
        assert!(decode_from_bytes::<TokenMessage>(&short).is_err());
    }
}
