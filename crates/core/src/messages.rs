//! Wire messages exchanged by the distributed protocol drivers.
//!
//! Two generations of frame layout coexist behind distinct tags:
//!
//! | tag | message              | layout                                        |
//! |-----|----------------------|-----------------------------------------------|
//! | 1   | token (legacy)       | `u32` round, `u32` k + `i64` values           |
//! | 2   | finished (legacy)    | `u32` k + `i64` values                        |
//! | 3   | batch tokens (legacy)| `u32` round, `u32` len, legacy vectors        |
//! | 4   | batch fin. (legacy)  | `u32` len, legacy vectors                     |
//! | 5   | slot (legacy)        | `u64` query, legacy token                     |
//! | 6   | token (compact)      | varint round, compact vector                  |
//! | 7   | finished (compact)   | compact vector                                |
//! | 8   | batch tokens (comp.) | varint round, varint len, compact vectors     |
//! | 9   | batch fin. (comp.)   | varint len, compact vectors                   |
//! | 10  | slot (compact)       | varint query, compact token                   |
//!
//! A *compact vector* is the sort-exploiting delta layout of
//! [`put_topk_compact`]: varint k, zigzag-varint first value, then
//! unsigned varint descending deltas. Encoders emit the compact tags;
//! decoders accept both generations, so frames recorded by earlier
//! builds (and mixed-version rings) keep decoding. The legacy layout
//! stays reachable through the `encode_legacy` methods for exactly that
//! compatibility surface, and its per-message size is what the
//! transport accounts as pre-compression baseline bytes.

use bytes::{BufMut, BytesMut};

use privtopk_domain::TopKVector;
use privtopk_ring::wire::{
    get_topk_compact, get_uvarint, put_topk_compact, put_uvarint, WireDecode, WireEncode,
};
use privtopk_ring::RingError;

/// A message circulating on the ring.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenMessage {
    /// The global top-k vector in flight during computation round `round`.
    Token {
        /// 1-based round number.
        round: u32,
        /// The current global top-k vector.
        vector: TopKVector,
    },
    /// The termination circulation: the final result, passed once around
    /// the ring so every node learns it ("in the termination round all
    /// nodes simply passes on the final result").
    Finished {
        /// The final global top-k vector.
        vector: TopKVector,
    },
}

const TAG_TOKEN: u8 = 1;
const TAG_FINISHED: u8 = 2;
const TAG_BATCH_TOKENS: u8 = 3;
const TAG_BATCH_FINISHED: u8 = 4;
const TAG_SLOT: u8 = 5;
const TAG_TOKEN_COMPACT: u8 = 6;
const TAG_FINISHED_COMPACT: u8 = 7;
const TAG_BATCH_TOKENS_COMPACT: u8 = 8;
const TAG_BATCH_FINISHED_COMPACT: u8 = 9;
const TAG_SLOT_COMPACT: u8 = 10;

/// Legacy fixed-width footprint of a [`TopKVector`]: `u32` k + `i64`s.
fn legacy_vector_len(vector: &TopKVector) -> usize {
    4 + 8 * vector.k()
}

/// Hard cap on the number of piggybacked queries in one [`BatchMessage`].
///
/// Together with the per-vector `k` cap implied by the transport's maximum
/// frame length, this bounds the allocation an adversarial length prefix
/// can trigger during decode.
pub const MAX_BATCH_ENTRIES: usize = 4096;

impl TokenMessage {
    /// Encodes in the legacy fixed-width layout (tags 1/2), exactly as
    /// pre-compact builds framed every hop. Kept for cross-version
    /// compatibility tests and recorded-frame replay.
    pub fn encode_legacy(&self, buf: &mut BytesMut) {
        match self {
            TokenMessage::Token { round, vector } => {
                buf.put_u8(TAG_TOKEN);
                round.encode(buf);
                vector.encode(buf);
            }
            TokenMessage::Finished { vector } => {
                buf.put_u8(TAG_FINISHED);
                vector.encode(buf);
            }
        }
    }
}

impl WireEncode for TokenMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            TokenMessage::Token { round, vector } => {
                buf.put_u8(TAG_TOKEN_COMPACT);
                put_uvarint(buf, u64::from(*round));
                put_topk_compact(buf, vector);
            }
            TokenMessage::Finished { vector } => {
                buf.put_u8(TAG_FINISHED_COMPACT);
                put_topk_compact(buf, vector);
            }
        }
    }

    fn baseline_len(&self) -> Option<usize> {
        Some(match self {
            TokenMessage::Token { vector, .. } => 1 + 4 + legacy_vector_len(vector),
            TokenMessage::Finished { vector } => 1 + legacy_vector_len(vector),
        })
    }
}

impl WireDecode for TokenMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        match tag {
            TAG_TOKEN => Ok(TokenMessage::Token {
                round: u32::decode(buf)?,
                vector: TopKVector::decode(buf)?,
            }),
            TAG_FINISHED => Ok(TokenMessage::Finished {
                vector: TopKVector::decode(buf)?,
            }),
            TAG_TOKEN_COMPACT => Ok(TokenMessage::Token {
                round: decode_round(buf)?,
                vector: get_topk_compact(buf)?,
            }),
            TAG_FINISHED_COMPACT => Ok(TokenMessage::Finished {
                vector: get_topk_compact(buf)?,
            }),
            _ => Err(RingError::Decode {
                reason: "unknown token message tag",
            }),
        }
    }
}

/// Reads a varint-encoded round number, rejecting values beyond `u32`.
fn decode_round(buf: &mut &[u8]) -> Result<u32, RingError> {
    u32::try_from(get_uvarint(buf)?).map_err(|_| RingError::Decode {
        reason: "round number exceeds u32",
    })
}

/// A service-runtime frame: one query's [`TokenMessage`] tagged with the
/// query id assigned by the scheduler.
///
/// The persistent service keeps several independent queries in flight on
/// the same ring at once; the tag is what lets a long-lived worker
/// demultiplex interleaved traversals back onto the right per-query slot
/// (each slot owns its own RNG stream, so the transcript of every tagged
/// query is bit-identical to its solo run regardless of interleaving).
#[derive(Debug, Clone, PartialEq)]
pub struct SlotMessage {
    /// Scheduler-assigned query id; unique over a service's lifetime.
    pub query: u64,
    /// The hop payload, exactly as a solo run would frame it.
    pub inner: TokenMessage,
}

impl SlotMessage {
    /// Encodes in the legacy layout (tag 5 wrapping a legacy token).
    pub fn encode_legacy(&self, buf: &mut BytesMut) {
        buf.put_u8(TAG_SLOT);
        self.query.encode(buf);
        self.inner.encode_legacy(buf);
    }
}

impl WireEncode for SlotMessage {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u8(TAG_SLOT_COMPACT);
        put_uvarint(buf, self.query);
        self.inner.encode(buf);
    }

    fn baseline_len(&self) -> Option<usize> {
        Some(1 + 8 + self.inner.baseline_len().unwrap_or(0))
    }
}

impl WireDecode for SlotMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        let query = match tag {
            TAG_SLOT => u64::decode(buf)?,
            TAG_SLOT_COMPACT => get_uvarint(buf)?,
            _ => {
                return Err(RingError::Decode {
                    reason: "unknown slot message tag",
                })
            }
        };
        // The inner decoder accepts both generations, so a legacy slot
        // wrapping a legacy token and a compact slot wrapping a compact
        // token both land here.
        Ok(SlotMessage {
            query,
            inner: TokenMessage::decode(buf)?,
        })
    }
}

/// A batched ring message: the payloads of B independent queries
/// piggybacked in one frame per hop.
///
/// Entry `i` is the exact vector query `i` of the batch group would have
/// carried in its own [`TokenMessage`] at this hop; the `round` field is
/// shared because a batch group advances in lock-step. This is what
/// amortizes per-hop framing cost across the batch without perturbing any
/// individual query's transcript.
#[derive(Debug, Clone, PartialEq)]
pub enum BatchMessage {
    /// Round `round` in flight for every query of the batch group.
    Tokens {
        /// 1-based round number, shared by the whole group.
        round: u32,
        /// Per-query global vectors, in batch-group order.
        vectors: Vec<TopKVector>,
    },
    /// The termination circulation for the whole group.
    Finished {
        /// Per-query final vectors, in batch-group order.
        vectors: Vec<TopKVector>,
    },
}

impl BatchMessage {
    /// Number of piggybacked queries.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            BatchMessage::Tokens { vectors, .. } | BatchMessage::Finished { vectors } => {
                vectors.len()
            }
        }
    }

    /// Whether the batch carries no queries (never valid on the wire).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn decode_batch_vectors(buf: &mut &[u8]) -> Result<Vec<TopKVector>, RingError> {
    let vectors = Vec::<TopKVector>::decode(buf)?;
    validate_batch_len(vectors.len())?;
    Ok(vectors)
}

fn decode_batch_vectors_compact(buf: &mut &[u8]) -> Result<Vec<TopKVector>, RingError> {
    let len = get_uvarint(buf)? as usize;
    validate_batch_len(len)?;
    // Each compact vector costs at least two bytes (k + first value), so
    // the cap plus this bound keep adversarial lengths from allocating.
    if len * 2 > buf.len() {
        return Err(RingError::Decode {
            reason: "batch entry count exceeds frame",
        });
    }
    let mut vectors = Vec::with_capacity(len);
    for _ in 0..len {
        vectors.push(get_topk_compact(buf)?);
    }
    Ok(vectors)
}

fn validate_batch_len(len: usize) -> Result<(), RingError> {
    if len == 0 {
        return Err(RingError::Decode {
            reason: "batch message with zero entries",
        });
    }
    if len > MAX_BATCH_ENTRIES {
        return Err(RingError::Decode {
            reason: "batch message exceeds entry cap",
        });
    }
    Ok(())
}

fn put_batch_vectors_compact(buf: &mut BytesMut, vectors: &[TopKVector]) {
    put_uvarint(buf, vectors.len() as u64);
    for vector in vectors {
        put_topk_compact(buf, vector);
    }
}

impl BatchMessage {
    /// Encodes in the legacy fixed-width layout (tags 3/4).
    pub fn encode_legacy(&self, buf: &mut BytesMut) {
        match self {
            BatchMessage::Tokens { round, vectors } => {
                buf.put_u8(TAG_BATCH_TOKENS);
                round.encode(buf);
                vectors.encode(buf);
            }
            BatchMessage::Finished { vectors } => {
                buf.put_u8(TAG_BATCH_FINISHED);
                vectors.encode(buf);
            }
        }
    }

    fn vectors(&self) -> &[TopKVector] {
        match self {
            BatchMessage::Tokens { vectors, .. } | BatchMessage::Finished { vectors } => vectors,
        }
    }
}

impl WireEncode for BatchMessage {
    fn encode(&self, buf: &mut BytesMut) {
        match self {
            BatchMessage::Tokens { round, vectors } => {
                buf.put_u8(TAG_BATCH_TOKENS_COMPACT);
                put_uvarint(buf, u64::from(*round));
                put_batch_vectors_compact(buf, vectors);
            }
            BatchMessage::Finished { vectors } => {
                buf.put_u8(TAG_BATCH_FINISHED_COMPACT);
                put_batch_vectors_compact(buf, vectors);
            }
        }
    }

    fn baseline_len(&self) -> Option<usize> {
        let body: usize = self.vectors().iter().map(legacy_vector_len).sum();
        Some(match self {
            BatchMessage::Tokens { .. } => 1 + 4 + 4 + body,
            BatchMessage::Finished { .. } => 1 + 4 + body,
        })
    }
}

impl WireDecode for BatchMessage {
    fn decode(buf: &mut &[u8]) -> Result<Self, RingError> {
        let tag = u8::decode(buf)?;
        match tag {
            TAG_BATCH_TOKENS => {
                let round = u32::decode(buf)?;
                Ok(BatchMessage::Tokens {
                    round,
                    vectors: decode_batch_vectors(buf)?,
                })
            }
            TAG_BATCH_FINISHED => Ok(BatchMessage::Finished {
                vectors: decode_batch_vectors(buf)?,
            }),
            TAG_BATCH_TOKENS_COMPACT => {
                let round = decode_round(buf)?;
                Ok(BatchMessage::Tokens {
                    round,
                    vectors: decode_batch_vectors_compact(buf)?,
                })
            }
            TAG_BATCH_FINISHED_COMPACT => Ok(BatchMessage::Finished {
                vectors: decode_batch_vectors_compact(buf)?,
            }),
            _ => Err(RingError::Decode {
                reason: "unknown batch message tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use privtopk_domain::{Value, ValueDomain};
    use privtopk_ring::wire::{decode_from_bytes, encode_to_bytes};

    fn vector() -> TopKVector {
        TopKVector::from_values(3, [9, 5, 5].map(Value::new), &ValueDomain::paper_default())
            .unwrap()
    }

    #[test]
    fn token_roundtrip() {
        let msg = TokenMessage::Token {
            round: 7,
            vector: vector(),
        };
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<TokenMessage>(&frame).unwrap(), msg);
    }

    #[test]
    fn finished_roundtrip() {
        let msg = TokenMessage::Finished { vector: vector() };
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<TokenMessage>(&frame).unwrap(), msg);
    }

    #[test]
    fn unknown_tag_rejected() {
        let frame = Bytes::from_static(&[99]);
        assert!(decode_from_bytes::<TokenMessage>(&frame).is_err());
        assert!(decode_from_bytes::<BatchMessage>(&frame).is_err());
        assert!(decode_from_bytes::<SlotMessage>(&frame).is_err());
    }

    #[test]
    fn slot_roundtrip() {
        for inner in [
            TokenMessage::Token {
                round: 9,
                vector: vector(),
            },
            TokenMessage::Finished { vector: vector() },
        ] {
            let msg = SlotMessage {
                query: u64::MAX - 3,
                inner,
            };
            let frame = encode_to_bytes(&msg);
            assert_eq!(decode_from_bytes::<SlotMessage>(&frame).unwrap(), msg);
        }
    }

    #[test]
    fn truncated_slot_rejected() {
        let msg = SlotMessage {
            query: 12,
            inner: TokenMessage::Finished { vector: vector() },
        };
        let frame = encode_to_bytes(&msg);
        let short = frame.slice(0..frame.len() - 2);
        assert!(decode_from_bytes::<SlotMessage>(&short).is_err());
    }

    #[test]
    fn truncated_token_rejected() {
        let msg = TokenMessage::Token {
            round: 1,
            vector: vector(),
        };
        let frame = encode_to_bytes(&msg);
        let short = frame.slice(0..frame.len() - 3);
        assert!(decode_from_bytes::<TokenMessage>(&short).is_err());
    }

    #[test]
    fn batch_roundtrip() {
        let msg = BatchMessage::Tokens {
            round: 3,
            vectors: vec![vector(); 5],
        };
        assert_eq!(msg.len(), 5);
        let frame = encode_to_bytes(&msg);
        assert_eq!(decode_from_bytes::<BatchMessage>(&frame).unwrap(), msg);

        let fin = BatchMessage::Finished {
            vectors: vec![vector(); 2],
        };
        let frame = encode_to_bytes(&fin);
        assert_eq!(decode_from_bytes::<BatchMessage>(&frame).unwrap(), fin);
    }

    #[test]
    fn empty_batch_rejected() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(TAG_BATCH_TOKENS);
        3u32.encode(&mut buf);
        buf.put_u32_le(0); // zero vectors
        assert!(decode_from_bytes::<BatchMessage>(&buf.freeze()).is_err());

        let mut buf = bytes::BytesMut::new();
        buf.put_u8(TAG_BATCH_FINISHED);
        buf.put_u32_le(0);
        assert!(decode_from_bytes::<BatchMessage>(&buf.freeze()).is_err());
    }

    #[test]
    fn oversized_batch_rejected() {
        // A batch of MAX_BATCH_ENTRIES + 1 k=1 vectors is structurally
        // valid but must be refused by the entry cap.
        let v = TopKVector::from_values(1, [Value::new(1)], &ValueDomain::paper_default()).unwrap();
        let msg = BatchMessage::Finished {
            vectors: vec![v; MAX_BATCH_ENTRIES + 1],
        };
        let frame = encode_to_bytes(&msg);
        assert!(decode_from_bytes::<BatchMessage>(&frame).is_err());
    }

    #[test]
    fn shared_round_field_amortizes_per_entry_bytes() {
        // The per-hop byte criterion: a batch of B entries must be
        // strictly smaller than B solo token frames.
        let b = 64;
        let solo = encode_to_bytes(&TokenMessage::Token {
            round: 4,
            vector: vector(),
        });
        let batch = encode_to_bytes(&BatchMessage::Tokens {
            round: 4,
            vectors: vec![vector(); b],
        });
        assert!(batch.len() < b * solo.len());
    }

    fn encode_legacy_token(msg: &TokenMessage) -> Bytes {
        let mut buf = BytesMut::new();
        msg.encode_legacy(&mut buf);
        buf.freeze()
    }

    #[test]
    fn compact_reader_accepts_legacy_frames() {
        // Cross-decode: frames recorded by pre-compact builds (tags 1-5)
        // must keep decoding to the same values the new encoder round-trips.
        let token = TokenMessage::Token {
            round: 7,
            vector: vector(),
        };
        assert_eq!(
            decode_from_bytes::<TokenMessage>(&encode_legacy_token(&token)).unwrap(),
            token
        );
        let finished = TokenMessage::Finished { vector: vector() };
        assert_eq!(
            decode_from_bytes::<TokenMessage>(&encode_legacy_token(&finished)).unwrap(),
            finished
        );
        let slot = SlotMessage {
            query: 123,
            inner: token.clone(),
        };
        let mut buf = BytesMut::new();
        slot.encode_legacy(&mut buf);
        assert_eq!(
            decode_from_bytes::<SlotMessage>(&buf.freeze()).unwrap(),
            slot
        );
        let batch = BatchMessage::Tokens {
            round: 2,
            vectors: vec![vector(); 3],
        };
        let mut buf = BytesMut::new();
        batch.encode_legacy(&mut buf);
        assert_eq!(
            decode_from_bytes::<BatchMessage>(&buf.freeze()).unwrap(),
            batch
        );
    }

    #[test]
    fn compact_frames_undercut_legacy_and_report_baseline() {
        let token = TokenMessage::Token {
            round: 7,
            vector: vector(),
        };
        let compact = encode_to_bytes(&token);
        let legacy = encode_legacy_token(&token);
        assert!(compact.len() < legacy.len());
        assert_eq!(token.baseline_len(), Some(legacy.len()));

        let batch = BatchMessage::Tokens {
            round: 4,
            vectors: vec![vector(); 64],
        };
        let compact = encode_to_bytes(&batch);
        let mut buf = BytesMut::new();
        batch.encode_legacy(&mut buf);
        let legacy = buf.freeze();
        assert!(
            compact.len() * 2 < legacy.len(),
            "compact batch ({}) must at least halve the legacy batch ({})",
            compact.len(),
            legacy.len()
        );
        assert_eq!(batch.baseline_len(), Some(legacy.len()));

        let slot = SlotMessage {
            query: 9,
            inner: token,
        };
        let mut buf = BytesMut::new();
        slot.encode_legacy(&mut buf);
        assert_eq!(slot.baseline_len(), Some(buf.len()));
    }

    #[test]
    fn compact_golden_bytes() {
        // Pinned byte-for-byte so the compact layout cannot drift
        // silently: tag 6, varint round 7, k = 3, zigzag(9) = 18, then
        // descending deltas 4 and 0 for values [9, 5, 5].
        let token = TokenMessage::Token {
            round: 7,
            vector: vector(),
        };
        assert_eq!(encode_to_bytes(&token).as_ref(), &[6, 7, 3, 18, 4, 0]);

        // Tag 8, varint round 300 (0xAC 0x02), varint len 2, two compact
        // vectors.
        let batch = BatchMessage::Tokens {
            round: 300,
            vectors: vec![vector(); 2],
        };
        assert_eq!(
            encode_to_bytes(&batch).as_ref(),
            &[8, 0xAC, 0x02, 2, 3, 18, 4, 0, 3, 18, 4, 0]
        );

        // Tag 10, varint query, then the compact finished token (tag 7).
        let slot = SlotMessage {
            query: 5,
            inner: TokenMessage::Finished { vector: vector() },
        };
        assert_eq!(encode_to_bytes(&slot).as_ref(), &[10, 5, 7, 3, 18, 4, 0]);
    }

    #[test]
    fn compact_empty_batch_rejected() {
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(8); // compact batch-tokens tag
        buf.put_u8(3); // round
        buf.put_u8(0); // zero entries
        assert!(decode_from_bytes::<BatchMessage>(&buf.freeze()).is_err());
    }

    #[test]
    fn compact_batch_length_lie_rejected() {
        // An entry count that cannot fit in the remaining payload must be
        // refused before allocation, not trusted.
        let mut buf = bytes::BytesMut::new();
        buf.put_u8(8);
        buf.put_u8(1); // round
        buf.put_u8(200); // claims 200 entries, no payload follows
        assert!(decode_from_bytes::<BatchMessage>(&buf.freeze()).is_err());
    }
}
