//! Randomization schedules: when, and with what probability, a node
//! injects a random value instead of revealing its own.

use std::fmt;

use serde::{Deserialize, Serialize};

use privtopk_analysis::RandomizationParams;

use crate::ProtocolError;

/// Cap on the round search in [`Schedule::min_rounds_for_precision`]; a
/// schedule that has not decayed below the error bound by then is treated
/// as unreachable.
const MAX_SEARCH_ROUNDS: u32 = 100_000;

/// The per-round randomization probability `P_r(r)`.
///
/// The paper uses the exponentially dampened schedule of Equation 2
/// (`P_r(r) = p0 · d^(r−1)`); the linear and constant variants are
/// ablations for the "other forms of randomization probability" the paper
/// lists as future work, and [`Schedule::Never`] (always reveal) turns the
/// probabilistic protocol into the deterministic naive protocol ("if we
/// set the initial randomization probability to be 0, the protocol is
/// reduced to the naive deterministic protocol").
///
/// # Example
///
/// ```
/// use privtopk_core::Schedule;
///
/// let s = Schedule::exponential(1.0, 0.5)?;
/// assert_eq!(s.probability(1), 1.0);
/// assert_eq!(s.probability(3), 0.25);
/// # Ok::<(), privtopk_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Schedule {
    /// Equation 2: `p0 · d^(r−1)`.
    Exponential {
        /// Initial randomization probability, in `(0, 1]`.
        p0: f64,
        /// Dampening factor, in `(0, 1]`. `d = 1` never decays — the paper
        /// still plots it (Figures 5b, 7b); fixed-round policies accept it
        /// and precision policies report it unreachable.
        d: f64,
    },
    /// Ablation: `max(0, p0 − step·(r−1))` — reaches zero in finitely many
    /// rounds.
    Linear {
        /// Initial randomization probability, in `(0, 1]`.
        p0: f64,
        /// Per-round decrement, `> 0`.
        step: f64,
    },
    /// Ablation: a fixed probability every round.
    Constant {
        /// The fixed probability, in `[0, 1)`.
        p: f64,
    },
    /// Never randomize: the naive deterministic protocol.
    Never,
}

impl Schedule {
    /// The paper's default schedule, `(p0, d) = (1, 1/2)`.
    #[must_use]
    pub fn paper_default() -> Self {
        Schedule::Exponential { p0: 1.0, d: 0.5 }
    }

    /// Validated constructor for the exponential schedule of Equation 2.
    ///
    /// # Errors
    ///
    /// Rejects `p0` outside `(0, 1]` and `d` outside `(0, 1]`.
    pub fn exponential(p0: f64, d: f64) -> Result<Self, ProtocolError> {
        if !(p0 > 0.0 && p0 <= 1.0) {
            return Err(ProtocolError::InvalidProbability {
                what: "p0",
                value: p0,
            });
        }
        if !(d > 0.0 && d <= 1.0) {
            return Err(ProtocolError::InvalidProbability {
                what: "d",
                value: d,
            });
        }
        Ok(Schedule::Exponential { p0, d })
    }

    /// Validated constructor for the linear ablation schedule.
    ///
    /// # Errors
    ///
    /// Rejects `p0` outside `(0, 1]` and non-positive `step`.
    pub fn linear(p0: f64, step: f64) -> Result<Self, ProtocolError> {
        if !(p0 > 0.0 && p0 <= 1.0) {
            return Err(ProtocolError::InvalidProbability {
                what: "p0",
                value: p0,
            });
        }
        if step.is_nan() || !step.is_finite() || step <= 0.0 {
            return Err(ProtocolError::InvalidProbability {
                what: "step",
                value: step,
            });
        }
        Ok(Schedule::Linear { p0, step })
    }

    /// Validated constructor for the constant ablation schedule.
    ///
    /// # Errors
    ///
    /// Rejects `p` outside `[0, 1)` — a constant probability of 1 would
    /// never reveal anything and the protocol could not terminate.
    pub fn constant(p: f64) -> Result<Self, ProtocolError> {
        if !(0.0..1.0).contains(&p) {
            return Err(ProtocolError::InvalidProbability {
                what: "p",
                value: p,
            });
        }
        Ok(Schedule::Constant { p })
    }

    /// The randomization probability at 1-based `round`.
    ///
    /// # Panics
    ///
    /// Panics if `round == 0`.
    #[must_use]
    pub fn probability(&self, round: u32) -> f64 {
        assert!(round >= 1, "rounds are 1-based");
        match *self {
            Schedule::Exponential { p0, d } => p0 * d.powi(round as i32 - 1),
            Schedule::Linear { p0, step } => (p0 - step * f64::from(round - 1)).max(0.0),
            Schedule::Constant { p } => p,
            Schedule::Never => 0.0,
        }
    }

    /// Whether the schedule ever randomizes at all.
    #[must_use]
    pub fn is_probabilistic(&self) -> bool {
        !matches!(self, Schedule::Never) && self.probability(1) > 0.0
    }

    /// The minimum rounds `r` such that the probability of *never* having
    /// revealed — `∏_{j=1..r} P_r(j)` — drops to `epsilon` or below
    /// (generalizing Equation 4 to every schedule).
    ///
    /// For the exponential schedule this agrees with the closed form in
    /// `privtopk_analysis::efficiency::min_rounds_for_precision` up to the
    /// paper's deliberate weakening of the bound (the closed form drops the
    /// `p0^r` factor, so it may require one round more — never fewer).
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::InvalidProbability`] for `epsilon` outside
    ///   `(0, 1)`.
    /// - [`ProtocolError::UnreachablePrecision`] if the product has not
    ///   dropped below `epsilon` after a very large number of rounds.
    pub fn min_rounds_for_precision(&self, epsilon: f64) -> Result<u32, ProtocolError> {
        if !(epsilon > 0.0 && epsilon < 1.0) {
            return Err(ProtocolError::InvalidProbability {
                what: "epsilon",
                value: epsilon,
            });
        }
        let mut failure = 1.0f64;
        for r in 1..=MAX_SEARCH_ROUNDS {
            failure *= self.probability(r);
            if failure <= epsilon {
                return Ok(r);
            }
        }
        Err(ProtocolError::UnreachablePrecision)
    }

    /// Exposes the exponential parameters when applicable (for interop
    /// with the closed-form analysis crate).
    #[must_use]
    pub fn as_randomization_params(&self) -> Option<RandomizationParams> {
        match *self {
            Schedule::Exponential { p0, d } => RandomizationParams::new(p0, d).ok(),
            _ => None,
        }
    }
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule::paper_default()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Schedule::Exponential { p0, d } => write!(f, "exponential(p0={p0}, d={d})"),
            Schedule::Linear { p0, step } => write!(f, "linear(p0={p0}, step={step})"),
            Schedule::Constant { p } => write!(f, "constant(p={p})"),
            Schedule::Never => write!(f, "never"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_matches_equation_2() {
        let s = Schedule::exponential(1.0, 0.5).unwrap();
        assert_eq!(s.probability(1), 1.0);
        assert_eq!(s.probability(2), 0.5);
        assert_eq!(s.probability(4), 0.125);
    }

    #[test]
    fn exponential_validation() {
        assert!(Schedule::exponential(0.0, 0.5).is_err());
        assert!(Schedule::exponential(1.5, 0.5).is_err());
        assert!(Schedule::exponential(1.0, 0.0).is_err());
        assert!(Schedule::exponential(1.0, 1.01).is_err());
        // d = 1 is representable (Figures 5b/7b plot it) even though a
        // precision round policy can never be satisfied under it.
        let flat = Schedule::exponential(1.0, 1.0).unwrap();
        assert_eq!(flat.probability(10), 1.0);
        assert!(flat.min_rounds_for_precision(1e-3).is_err());
    }

    #[test]
    fn linear_reaches_zero() {
        let s = Schedule::linear(1.0, 0.3).unwrap();
        assert_eq!(s.probability(1), 1.0);
        assert!((s.probability(2) - 0.7).abs() < 1e-12);
        assert_eq!(s.probability(5), 0.0);
        assert_eq!(s.probability(100), 0.0);
    }

    #[test]
    fn constant_and_never() {
        let c = Schedule::constant(0.4).unwrap();
        assert_eq!(c.probability(1), 0.4);
        assert_eq!(c.probability(50), 0.4);
        assert!(Schedule::constant(1.0).is_err());
        assert_eq!(Schedule::Never.probability(3), 0.0);
        assert!(!Schedule::Never.is_probabilistic());
        assert!(c.is_probabilistic());
        assert!(!Schedule::constant(0.0).unwrap().is_probabilistic());
    }

    #[test]
    fn min_rounds_exponential_close_to_closed_form() {
        let s = Schedule::exponential(1.0, 0.5).unwrap();
        let product = s.min_rounds_for_precision(1e-3).unwrap();
        let closed = privtopk_analysis::efficiency::min_rounds_for_precision(
            RandomizationParams::new(1.0, 0.5).unwrap(),
            1e-3,
        )
        .unwrap();
        // The closed form weakens the bound, so it may exceed the exact
        // product-based answer, never undershoot it.
        assert!(product <= closed);
        assert!(closed - product <= 1);
    }

    #[test]
    fn min_rounds_never_is_one() {
        // A deterministic protocol converges in a single round.
        assert_eq!(Schedule::Never.min_rounds_for_precision(1e-9).unwrap(), 1);
    }

    #[test]
    fn min_rounds_linear_terminates() {
        let s = Schedule::linear(1.0, 0.25).unwrap();
        // Probability hits 0 at round 5, so failure product becomes 0.
        assert!(s.min_rounds_for_precision(1e-12).unwrap() <= 5);
    }

    #[test]
    fn min_rounds_constant() {
        let s = Schedule::constant(0.5).unwrap();
        assert_eq!(s.min_rounds_for_precision(0.26).unwrap(), 2);
        // p = 0 -> immediately below epsilon.
        let z = Schedule::constant(0.0).unwrap();
        assert_eq!(z.min_rounds_for_precision(0.5).unwrap(), 1);
    }

    #[test]
    fn min_rounds_rejects_bad_epsilon() {
        let s = Schedule::paper_default();
        assert!(s.min_rounds_for_precision(0.0).is_err());
        assert!(s.min_rounds_for_precision(1.0).is_err());
    }

    #[test]
    fn randomization_params_interop() {
        assert!(Schedule::paper_default()
            .as_randomization_params()
            .is_some());
        assert!(Schedule::Never.as_randomization_params().is_none());
    }

    #[test]
    fn display_strings() {
        assert_eq!(
            Schedule::paper_default().to_string(),
            "exponential(p0=1, d=0.5)"
        );
        assert_eq!(Schedule::Never.to_string(), "never");
    }
}
