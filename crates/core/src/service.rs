//! The persistent service runtime: long-lived node workers answering a
//! stream of top-k queries over one standing ring.
//!
//! [`run_distributed`](crate::distributed::run_distributed) tears the
//! world down after every query — n thread spawns, n endpoint setups and
//! (over TCP) n connection handshakes per invocation — so setup cost
//! dominates sustained throughput, exactly the regime the paper's
//! "heavy traffic from millions of users" motivation cares about. A
//! [`ServiceRuntime`] instead spawns each node's worker **once**; the
//! worker owns its database snapshot, its ring endpoint and its
//! established successor connection for the lifetime of the service and
//! reuses them for every subsequent query.
//!
//! On top of the standing ring sits a **pipelined scheduler**: a ring
//! traversal only ever occupies one hop at a time, so the service keeps
//! up to `depth` independent queries in flight simultaneously, each at a
//! different position on the ring. Wire frames are tagged with a
//! scheduler-assigned query id ([`SlotMessage`](crate::SlotMessage)) so
//! workers demultiplex interleaved traversals onto per-query slots; each
//! slot owns its seed-derived RNG stream and step log (a
//! [`NodeWorker`]), so every transcript stays bit-identical to the same
//! query's solo [`run_distributed`](crate::distributed::run_distributed)
//! run regardless of how traversals interleave. Pipelining changes only
//! *scheduling*, never per-query randomness.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use privtopk_domain::{LocalTopkSource, NodeId, RingPosition, TopKVector};
use privtopk_observe::{Ctx, Histogram, HistogramSnapshot, Phase, Recorder};
use privtopk_ring::transport::{send_value_traced, FramePool, Transport};
use privtopk_ring::wire::decode_from_bytes;
use privtopk_ring::{MetricsSnapshot, RingError, RingTopology, TransportMetrics};

use privtopk_ring::chaos::{ChaosPlan, ChaosState, DEFAULT_HEAL_BUDGET};

use crate::distributed::{
    build_chaos_endpoints, build_endpoints, derive_topology, drain_endpoint, drain_window,
    NetworkKind, NodeWorker, WorkerReport, RECV_TIMEOUT,
};
use crate::local::TopkScratch;
use crate::messages::SlotMessage;
use crate::{ProtocolConfig, ProtocolError, StepRecord, TokenMessage, Transcript};

/// How often an active worker interrupts its endpoint wait to pick up
/// new slot assignments (or a shutdown) from the scheduler. Frames wake
/// the worker immediately; this only bounds control-plane latency.
const ACTIVE_POLL: Duration = Duration::from_millis(1);

/// Seed for the fault-injection RNGs of a lossy service network. Drop
/// decisions are transport-level and never reach a transcript, so a
/// fixed stream is fine.
const FAULT_SEED: u64 = 0x5EED_F417;

/// One query's execution on the standing ring, as observed by the
/// scheduler: the merged transcript plus what every node learned.
///
/// Bit-identical to the corresponding fields of the query's solo
/// [`run_distributed`](crate::distributed::run_distributed) outcome.
/// Wire accounting is *not* per-query here — concurrent traversals share
/// the transport — so cumulative counters live on
/// [`ServiceRuntime::metrics`] instead.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceOutcome {
    /// The assembled global transcript (merged from all workers).
    pub transcript: Transcript,
    /// The final result as learned by each node (indexed by `NodeId`).
    pub per_node_results: Vec<TopKVector>,
}

/// A handle for one submitted query, redeemed by
/// [`ServiceRuntime::collect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryTicket {
    query: u64,
}

impl QueryTicket {
    /// The scheduler-assigned query id this ticket redeems — the same
    /// id the query's trace spans carry, so embedders can correlate a
    /// collected outcome with its telemetry.
    #[must_use]
    pub fn id(&self) -> u64 {
        self.query
    }
}

/// Everything a worker needs to open a slot for one query.
struct SlotInit {
    query: u64,
    config: Arc<ProtocolConfig>,
    topology: Arc<RingTopology>,
    rounds: u32,
    seed: u64,
}

enum WorkerControl {
    Assign(Arc<SlotInit>),
    Shutdown,
}

/// One node's verdict on one query: its step log and learned result, or
/// the first error that killed the slot.
struct SlotReport {
    query: u64,
    node: NodeId,
    result: Result<(Vec<StepRecord>, TopKVector), ProtocolError>,
}

/// Where an in-flight slot stands in the ring protocol.
///
/// This is the solo worker's control flow unrolled into a state machine,
/// so one long-lived thread can hold many queries at different protocol
/// positions at once.
#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // every phase *is* a wait
enum SlotPhase {
    /// Waiting for `Token { round: expect }`; on arrival compute round
    /// `compute` (they differ only on the starting node, which consumes
    /// round r's closing token as input to round r + 1).
    AwaitToken { expect: u32, compute: u32 },
    /// Starting node, all rounds computed: waiting for the final round's
    /// closing token to initiate the termination circulation.
    AwaitClosing,
    /// Non-starting node, all rounds computed: waiting for the
    /// termination circulation.
    AwaitFinished,
}

/// One in-flight query at one node.
struct SlotState {
    query: u64,
    state: NodeWorker,
    phase: SlotPhase,
    position: RingPosition,
    successor: NodeId,
    rounds: u32,
    n: usize,
}

impl SlotState {
    /// The phase entered after computing round `computed`.
    fn phase_after(&self, computed: u32) -> SlotPhase {
        if self.position.is_start() {
            if computed < self.rounds {
                SlotPhase::AwaitToken {
                    expect: computed,
                    compute: computed + 1,
                }
            } else {
                SlotPhase::AwaitClosing
            }
        } else if computed < self.rounds {
            SlotPhase::AwaitToken {
                expect: computed + 1,
                compute: computed + 1,
            }
        } else {
            SlotPhase::AwaitFinished
        }
    }
}

enum SlotProgress {
    Running,
    Done(TopKVector),
}

fn expect_token(msg: TokenMessage, expect: u32) -> Result<TopKVector, ProtocolError> {
    match msg {
        TokenMessage::Token { round, vector } if round == expect => Ok(vector),
        TokenMessage::Token { .. } => Err(ProtocolError::Ring(RingError::Decode {
            reason: "unexpected round label",
        })),
        TokenMessage::Finished { .. } => Err(ProtocolError::Ring(RingError::Decode {
            reason: "premature termination message",
        })),
    }
}

enum FrameEvent {
    Frame(Bytes),
    ControlOnly,
    TimedOut,
    Broken(ProtocolError),
}

/// The long-lived per-node worker: owns the node's database snapshot and
/// ring endpoint, and multiplexes any number of in-flight query slots
/// over them until told to shut down.
struct ServiceWorker {
    me: NodeId,
    local: TopKVector,
    endpoint: Box<dyn Transport>,
    pool: FramePool,
    control: Receiver<WorkerControl>,
    reports: Sender<SlotReport>,
    drain_on_exit: Option<Duration>,
    recv_timeout: Duration,
    slots: HashMap<u64, SlotState>,
    draining: bool,
    recorder: Recorder,
    /// Hop-kernel working memory, shared across every in-flight slot:
    /// the scratch carries no state between hops, so pipelined queries
    /// cannot perturb each other's transcripts through it.
    scratch: TopkScratch,
}

impl ServiceWorker {
    /// The telemetry context every span from this worker carries.
    fn ctx(&self) -> Ctx {
        Ctx::default().with_node(self.me.get() as u32)
    }

    fn run(mut self) {
        loop {
            if !self.pump_control() {
                self.draining = true;
            }
            if self.slots.is_empty() {
                if self.draining {
                    break;
                }
                if self.drain_on_exit.is_some() {
                    // Lossy transport: a peer may be retransmitting a
                    // frame we already consumed whose ACK was dropped,
                    // and only a recv re-acknowledges it — so an idle
                    // worker must stay on the wire, not go deaf on the
                    // control channel.
                    match self.control.recv_timeout(ACTIVE_POLL) {
                        Ok(msg) => self.handle_control(msg),
                        Err(RecvTimeoutError::Timeout) => {
                            // Re-ACKs duplicates inside the reliability
                            // layer; a genuinely new frame (one that
                            // outran its own Assign) is dispatched.
                            if let Ok((_, frame)) = self.endpoint.recv_timeout(ACTIVE_POLL) {
                                self.dispatch(frame);
                            }
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                    continue;
                }
                // Idle: block until the scheduler speaks again — no
                // polling, so a depth-1 workload pays no poll latency.
                let idle_started = self.recorder.clock();
                match self.control.recv() {
                    Ok(msg) => {
                        self.recorder.record(Phase::Idle, self.ctx(), idle_started);
                        self.handle_control(msg);
                    }
                    Err(_) => break,
                }
                continue;
            }
            match self.recv_frame() {
                FrameEvent::Frame(frame) => self.dispatch(frame),
                FrameEvent::ControlOnly => {}
                FrameEvent::TimedOut => self.fail_all(|| ProtocolError::Ring(RingError::Timeout)),
                FrameEvent::Broken(e) => {
                    // The transport itself died: first slot gets the real
                    // error, the rest a disconnect.
                    let mut first = Some(e);
                    self.fail_all(move || {
                        first
                            .take()
                            .unwrap_or(ProtocolError::Ring(RingError::Disconnected))
                    });
                    self.draining = true;
                }
            }
        }
        // Over lossy transports, keep re-acknowledging retransmissions
        // for a grace window so peers whose ACKs were dropped finish.
        if let Some(window) = self.drain_on_exit {
            let _ = drain_endpoint(self.endpoint.as_mut(), window);
        }
    }

    /// Drains pending control messages; returns `false` once the
    /// scheduler has hung up.
    fn pump_control(&mut self) -> bool {
        loop {
            match self.control.try_recv() {
                Ok(msg) => self.handle_control(msg),
                Err(TryRecvError::Empty) => return true,
                Err(TryRecvError::Disconnected) => return false,
            }
        }
    }

    fn handle_control(&mut self, msg: WorkerControl) {
        match msg {
            WorkerControl::Assign(init) => {
                if let Err(e) = self.assign(&init) {
                    self.report_err(init.query, e);
                }
            }
            WorkerControl::Shutdown => self.draining = true,
        }
    }

    /// Opens a slot for one query; the starting node computes round 1
    /// from the domain floor and forwards it immediately.
    fn assign(&mut self, init: &SlotInit) -> Result<(), ProtocolError> {
        let position = init.topology.position_of(self.me)?;
        let successor = init.topology.successor_of(self.me)?;
        let state = NodeWorker::for_query(
            Arc::clone(&init.config),
            self.local.clone(),
            init.seed,
            self.me.get(),
            init.rounds,
        );
        let mut slot = SlotState {
            query: init.query,
            state,
            phase: SlotPhase::AwaitToken {
                expect: 1,
                compute: 1,
            },
            position,
            successor,
            rounds: init.rounds,
            n: init.topology.len(),
        };
        if position.is_start() {
            let incoming = slot.state.floor();
            let step_started = self.recorder.clock();
            let outgoing = slot
                .state
                .advance(1, position, self.me, incoming, &mut self.scratch)?;
            self.recorder.record(
                Phase::Step,
                self.ctx()
                    .with_query(slot.query)
                    .with_round(1)
                    .with_hop(position.get() as u32),
                step_started,
            );
            self.forward(
                &slot,
                Some(1),
                TokenMessage::Token {
                    round: 1,
                    vector: outgoing,
                },
            )?;
            slot.phase = slot.phase_after(1);
        }
        self.slots.insert(init.query, slot);
        Ok(())
    }

    /// Waits for a frame while keeping the control plane responsive.
    fn recv_frame(&mut self) -> FrameEvent {
        let ctx = self.ctx();
        let recv_started = self.recorder.clock();
        let deadline = Instant::now() + self.recv_timeout;
        loop {
            match self.endpoint.recv_timeout(ACTIVE_POLL) {
                Ok((_, frame)) => {
                    self.recorder.record(Phase::Recv, ctx, recv_started);
                    return FrameEvent::Frame(frame);
                }
                Err(RingError::Timeout) => {
                    if !self.pump_control() {
                        self.draining = true;
                    }
                    if self.draining && self.slots.is_empty() {
                        return FrameEvent::ControlOnly;
                    }
                    if Instant::now() >= deadline {
                        return FrameEvent::TimedOut;
                    }
                }
                Err(e) => return FrameEvent::Broken(e.into()),
            }
        }
    }

    /// Demultiplexes one tagged frame onto its slot and advances it.
    fn dispatch(&mut self, frame: Bytes) {
        let msg: SlotMessage = match decode_from_bytes(&frame) {
            Ok(msg) => msg,
            Err(e) => {
                // An unattributable frame: the ring is corrupt for
                // everyone currently on it.
                let mut first = Some(ProtocolError::from(e));
                self.fail_all(move || {
                    first
                        .take()
                        .unwrap_or(ProtocolError::Ring(RingError::Disconnected))
                });
                return;
            }
        };
        self.pool.recycle(frame);
        let query = msg.query;
        if !self.slots.contains_key(&query) && !self.await_assignment(query) {
            self.report_err(query, ProtocolError::Ring(RingError::Timeout));
            return;
        }
        let mut slot = self.slots.remove(&query).expect("assignment awaited");
        match self.slot_step(&mut slot, msg.inner) {
            Ok(SlotProgress::Running) => {
                self.slots.insert(query, slot);
            }
            Ok(SlotProgress::Done(result)) => {
                let _ = self.reports.send(SlotReport {
                    query,
                    node: self.me,
                    result: Ok((slot.state.into_steps(), result)),
                });
            }
            Err(e) => self.report_err(query, e),
        }
    }

    /// A frame can outrun its own `Assign`: the starting node kicks off
    /// the moment it is assigned, while the scheduler is still fanning
    /// the control message out to the other workers. Block on the
    /// control channel until this query's slot exists.
    fn await_assignment(&mut self, query: u64) -> bool {
        let deadline = Instant::now() + self.recv_timeout;
        while !self.slots.contains_key(&query) {
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return false;
            }
            match self.control.recv_timeout(remaining) {
                Ok(msg) => self.handle_control(msg),
                Err(RecvTimeoutError::Timeout) => return false,
                Err(RecvTimeoutError::Disconnected) => {
                    self.draining = true;
                    return false;
                }
            }
        }
        true
    }

    /// Runs one hop of one slot — the solo worker's per-round body, with
    /// the phase machine standing in for its sequential control flow.
    fn slot_step(
        &mut self,
        slot: &mut SlotState,
        msg: TokenMessage,
    ) -> Result<SlotProgress, ProtocolError> {
        match slot.phase {
            SlotPhase::AwaitToken { expect, compute } => {
                let incoming = expect_token(msg, expect)?;
                let step_started = self.recorder.clock();
                let outgoing = slot.state.advance(
                    compute,
                    slot.position,
                    self.me,
                    incoming,
                    &mut self.scratch,
                )?;
                self.recorder.record(
                    Phase::Step,
                    self.ctx()
                        .with_query(slot.query)
                        .with_round(compute)
                        .with_hop(slot.position.get() as u32),
                    step_started,
                );
                self.forward(
                    slot,
                    Some(compute),
                    TokenMessage::Token {
                        round: compute,
                        vector: outgoing,
                    },
                )?;
                slot.phase = slot.phase_after(compute);
                Ok(SlotProgress::Running)
            }
            SlotPhase::AwaitClosing => {
                let result = expect_token(msg, slot.rounds)?;
                self.forward(
                    slot,
                    None,
                    TokenMessage::Finished {
                        vector: result.clone(),
                    },
                )?;
                Ok(SlotProgress::Done(result))
            }
            SlotPhase::AwaitFinished => {
                let TokenMessage::Finished { vector } = msg else {
                    return Err(ProtocolError::Ring(RingError::Decode {
                        reason: "expected termination message",
                    }));
                };
                // Forward unless the successor is the starting node
                // (which initiated the circulation).
                if slot.position.get() + 1 < slot.n {
                    self.forward(
                        slot,
                        None,
                        TokenMessage::Finished {
                            vector: vector.clone(),
                        },
                    )?;
                }
                Ok(SlotProgress::Done(vector))
            }
        }
    }

    /// Sends `inner` to the slot's successor. `round` tags the send span
    /// so the trace analyzer can attribute wire time to a specific hop
    /// (`None` for the termination circulation, which belongs to no
    /// round).
    fn forward(
        &mut self,
        slot: &SlotState,
        round: Option<u32>,
        inner: TokenMessage,
    ) -> Result<(), ProtocolError> {
        let mut ctx = self
            .ctx()
            .with_query(slot.query)
            .with_hop(slot.position.get() as u32);
        if let Some(round) = round {
            ctx = ctx.with_round(round);
        }
        let msg = SlotMessage {
            query: slot.query,
            inner,
        };
        send_value_traced(
            self.endpoint.as_mut(),
            &self.pool,
            slot.successor,
            &msg,
            &self.recorder,
            ctx,
        )?;
        Ok(())
    }

    fn report_err(&mut self, query: u64, error: ProtocolError) {
        let _ = self.reports.send(SlotReport {
            query,
            node: self.me,
            result: Err(error),
        });
    }

    /// Fails every open slot (`ProtocolError` is not `Clone`, hence the
    /// factory).
    fn fail_all(&mut self, mut make: impl FnMut() -> ProtocolError) {
        let queries: Vec<u64> = self.slots.keys().copied().collect();
        self.slots.clear();
        for query in queries {
            let error = make();
            self.report_err(query, error);
        }
    }
}

/// A hook observing every query admitted into a service, fed nothing
/// but *protocol coordinates*: the (data-independent) configuration,
/// the ring size and the resolved round count. No private value, seed
/// or result ever reaches an observer, so whatever it accumulates is a
/// pure function of configuration — the foundation the live privacy
/// accountant builds on.
///
/// Observers run synchronously inside [`ServiceRuntime::submit`],
/// before the query's workers are assigned; they must be cheap and must
/// never block.
pub trait QueryObserver: Send + Sync {
    /// Called once per admitted query with its protocol coordinates.
    fn on_query(&self, config: &ProtocolConfig, n: usize, rounds: u32);
}

/// Bookkeeping the scheduler keeps per in-flight query.
struct QueryMeta {
    k: usize,
    rounds: u32,
    topology: Arc<RingTopology>,
}

/// A standing federation of long-lived node workers answering a stream
/// of queries — see the [module docs](self) for the full picture.
///
/// Created by [`start`](ServiceRuntime::start); torn down by
/// [`shutdown`](ServiceRuntime::shutdown) (which drains in-flight
/// queries and joins every worker thread). [`submit`](Self::submit)
/// admits a query as soon as a pipeline slot frees up and returns a
/// [`QueryTicket`]; [`collect`](Self::collect) redeems it.
pub struct ServiceRuntime {
    n: usize,
    k: usize,
    depth: usize,
    next_query: u64,
    in_flight: usize,
    controls: Vec<Sender<WorkerControl>>,
    reports: Receiver<SlotReport>,
    pending: HashMap<u64, Vec<WorkerReport>>,
    meta: HashMap<u64, QueryMeta>,
    done: HashMap<u64, Result<ServiceOutcome, ProtocolError>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    metrics: TransportMetrics,
    collect_timeout: Duration,
    recorder: Recorder,
    shared: Arc<SchedulerShared>,
    observer: Option<Arc<dyn QueryObserver>>,
}

/// The scheduler counters behind [`ServiceStats`], kept in atomics so a
/// [`ServiceStatsHandle`] on another thread (the Prometheus scrape
/// loop, a watcher) can snapshot them while the scheduler runs.
#[derive(Default)]
struct SchedulerShared {
    in_flight: AtomicUsize,
    queries_submitted: AtomicU64,
    queries_completed: AtomicU64,
    pipeline_high_water: AtomicUsize,
    queue_wait: Histogram,
}

impl SchedulerShared {
    fn set_in_flight(&self, value: usize) {
        self.in_flight.store(value, Ordering::Release);
        // The scheduler is single-threaded, so a read-then-max is safe.
        let high = self.pipeline_high_water.load(Ordering::Acquire);
        if value > high {
            self.pipeline_high_water.store(value, Ordering::Release);
        }
    }
}

/// A cloneable, `Send + Sync` live view of a running service's stats —
/// what the metrics endpoint renders from while the scheduler thread
/// owns the [`ServiceRuntime`] itself.
#[derive(Clone)]
pub struct ServiceStatsHandle {
    depth: usize,
    shared: Arc<SchedulerShared>,
    metrics: TransportMetrics,
}

impl ServiceStatsHandle {
    /// Snapshots the same [`ServiceStats`] as
    /// [`ServiceRuntime::stats`], readable from any thread.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let wire = self.metrics.peek();
        ServiceStats {
            depth: self.depth,
            in_flight: self.shared.in_flight.load(Ordering::Acquire),
            pipeline_high_water: self.shared.pipeline_high_water.load(Ordering::Acquire),
            queries_submitted: self.shared.queries_submitted.load(Ordering::Acquire),
            queries_completed: self.shared.queries_completed.load(Ordering::Acquire),
            queue_wait: self.shared.queue_wait.snapshot(),
            frames_sent: wire.frames_sent,
            logical_messages: wire.logical_messages,
            bytes_sent: wire.bytes_sent,
            baseline_bytes: wire.baseline_bytes,
            pooled_buffers_high_water: wire.pooled_buffers_high_water,
            retransmissions: wire.retransmissions,
            re_acks: wire.re_acks,
        }
    }
}

/// A live snapshot of a running service, readable mid-stream without
/// draining any counter — the service-side stats surface behind the
/// CLI's `--stats` flag and `FederationService::stats()`.
///
/// Pipeline occupancy and queue waits are maintained unconditionally;
/// the wire counters come from a non-draining
/// [`TransportMetrics::peek`]. Nothing here carries data values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Configured maximum number of queries in flight.
    pub depth: usize,
    /// Queries currently occupying a pipeline slot.
    pub in_flight: usize,
    /// Highest simultaneous occupancy observed so far.
    pub pipeline_high_water: usize,
    /// Queries admitted into the pipeline so far.
    pub queries_submitted: u64,
    /// Queries that have completed (successfully or not).
    pub queries_completed: u64,
    /// How long submissions waited for a free pipeline slot.
    pub queue_wait: HistogramSnapshot,
    /// Physical frames sent since the last `take()` on the metrics.
    pub frames_sent: u64,
    /// Logical messages carried by those frames.
    pub logical_messages: u64,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Pre-compression payload bytes: what the same frames would have
    /// cost under the legacy fixed-width codec.
    pub baseline_bytes: u64,
    /// Lifetime frame-pool high-water mark.
    pub pooled_buffers_high_water: u64,
    /// Frames retransmitted by the reliability layer (lossy networks).
    pub retransmissions: u64,
    /// Duplicate frames re-acknowledged by the reliability layer.
    pub re_acks: u64,
}

impl ServiceRuntime {
    /// Starts one long-lived worker per node over a fresh `network`.
    ///
    /// `locals[i]` is the database snapshot owned by `NodeId(i)` for the
    /// service's lifetime; `depth` is the maximum number of queries kept
    /// in flight on the ring at once (1 = no pipelining).
    ///
    /// # Errors
    ///
    /// - [`ProtocolError::TooFewNodes`] for fewer than three snapshots.
    /// - [`ProtocolError::InconsistentK`] if the snapshots disagree on k.
    /// - [`ProtocolError::InvalidService`] for a zero `depth`.
    pub fn start(
        locals: &[TopKVector],
        network: NetworkKind,
        depth: usize,
    ) -> Result<ServiceRuntime, ProtocolError> {
        Self::start_traced(locals, network, depth, Recorder::disabled())
    }

    /// [`start`](Self::start) with telemetry: every worker spans its
    /// receive waits, hop computations, sends and idle periods, tagged
    /// with the scheduler-assigned query id. The recorder is shared by
    /// all workers and the scheduler; transcripts stay bit-identical to
    /// the untraced service.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_traced(
        locals: &[TopKVector],
        network: NetworkKind,
        depth: usize,
        recorder: Recorder,
    ) -> Result<ServiceRuntime, ProtocolError> {
        let (n, k) = Self::validate(locals, depth)?;
        let (endpoints, metrics) = build_endpoints(network, n, FAULT_SEED, &recorder)?;
        let drain_on_exit = drain_window(network);
        Self::start_with_endpoints(
            locals,
            k,
            depth,
            endpoints,
            metrics,
            drain_on_exit,
            recorder,
        )
    }

    /// [`start_traced`](Self::start_traced) over an in-memory network
    /// with the plan's chaos incidents injected under the reliability
    /// layer. Returns the shared [`ChaosState`] so the caller can arm
    /// the chaos clock when traffic starts and read drop counts.
    ///
    /// Chaos only delays delivery — dropped frames are retransmitted
    /// verbatim and no protocol RNG stream is consulted — so every
    /// query's transcript stays bit-identical to a fault-free run.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start), plus [`ProtocolError::Ring`] for
    /// a plan the reliability layer could not heal.
    pub fn start_chaos_traced(
        locals: &[TopKVector],
        depth: usize,
        recorder: Recorder,
        plan: &ChaosPlan,
    ) -> Result<(ServiceRuntime, Arc<ChaosState>), ProtocolError> {
        plan.validate(DEFAULT_HEAL_BUDGET)?;
        let state = ChaosState::new(plan.clone());
        let runtime = Self::start_with_chaos_state(locals, depth, recorder, &state)?;
        Ok((runtime, state))
    }

    /// Starts a runtime whose endpoints consult an existing shared
    /// [`ChaosState`] — the building block that lets a
    /// [`ShardedService`] subject all its rings to the same incident
    /// schedule on one clock.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_with_chaos_state(
        locals: &[TopKVector],
        depth: usize,
        recorder: Recorder,
        state: &Arc<ChaosState>,
    ) -> Result<ServiceRuntime, ProtocolError> {
        let (n, k) = Self::validate(locals, depth)?;
        let (endpoints, metrics) = build_chaos_endpoints(n, FAULT_SEED, &recorder, state);
        // Same shutdown drain as a lossy network: finished workers keep
        // re-ACKing retransmissions for a grace window.
        let drain_on_exit = Some(Duration::from_secs(1));
        Self::start_with_endpoints(
            locals,
            k,
            depth,
            endpoints,
            metrics,
            drain_on_exit,
            recorder,
        )
    }

    fn validate(locals: &[TopKVector], depth: usize) -> Result<(usize, usize), ProtocolError> {
        if depth == 0 {
            return Err(ProtocolError::InvalidService {
                reason: "pipeline depth must be at least 1",
            });
        }
        let n = locals.len();
        if n < 3 {
            return Err(ProtocolError::TooFewNodes { got: n, minimum: 3 });
        }
        let k = locals[0].k();
        for local in locals {
            if local.k() != k {
                return Err(ProtocolError::InconsistentK {
                    expected: k,
                    got: local.k(),
                });
            }
        }
        Ok((n, k))
    }

    fn start_with_endpoints(
        locals: &[TopKVector],
        k: usize,
        depth: usize,
        endpoints: Vec<Box<dyn Transport>>,
        metrics: TransportMetrics,
        drain_on_exit: Option<Duration>,
        recorder: Recorder,
    ) -> Result<ServiceRuntime, ProtocolError> {
        let n = locals.len();
        let (report_tx, report_rx) = unbounded();
        let mut controls = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (i, endpoint) in endpoints.into_iter().enumerate() {
            let (control_tx, control_rx) = unbounded();
            let pool = endpoint.pool();
            let worker = ServiceWorker {
                me: NodeId::new(i),
                local: locals[i].clone(),
                endpoint,
                pool,
                control: control_rx,
                reports: report_tx.clone(),
                drain_on_exit,
                recv_timeout: RECV_TIMEOUT,
                slots: HashMap::new(),
                draining: false,
                recorder: recorder.clone(),
                scratch: TopkScratch::new(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("privtopk-svc-{i}"))
                .spawn(move || worker.run())
                .map_err(|_| ProtocolError::WorkerFailed { position: i })?;
            controls.push(control_tx);
            handles.push(handle);
        }
        Ok(ServiceRuntime {
            n,
            k,
            depth,
            next_query: 0,
            in_flight: 0,
            controls,
            reports: report_rx,
            pending: HashMap::new(),
            meta: HashMap::new(),
            done: HashMap::new(),
            handles,
            metrics,
            // Strictly longer than the workers' own deadline, so a hung
            // query surfaces as their timeout report, not ours.
            collect_timeout: RECV_TIMEOUT + RECV_TIMEOUT / 2,
            recorder,
            shared: Arc::new(SchedulerShared::default()),
            observer: None,
        })
    }

    /// Installs a [`QueryObserver`] notified of every subsequently
    /// submitted query's protocol coordinates (config, ring size,
    /// resolved rounds). Observation is strictly additive: transcripts
    /// and results are bit-identical with or without an observer.
    pub fn set_observer(&mut self, observer: Arc<dyn QueryObserver>) {
        self.observer = Some(observer);
    }

    /// Starts the service over [`LocalTopkSource`] backends instead of
    /// pre-extracted vectors: each node's local top-k snapshot is
    /// acquired here, at worker setup, so the standing ring answers
    /// every query from one consistent view per node while writes keep
    /// landing in the underlying stores.
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start), plus [`ProtocolError::Domain`] if a
    /// source cannot produce an exact top-`k` vector.
    pub fn start_from_sources<S>(
        sources: &[S],
        k: usize,
        network: NetworkKind,
        depth: usize,
    ) -> Result<ServiceRuntime, ProtocolError>
    where
        S: LocalTopkSource,
    {
        Self::start_from_sources_traced(sources, k, network, depth, Recorder::disabled())
    }

    /// [`start_from_sources`](Self::start_from_sources) with telemetry.
    ///
    /// # Errors
    ///
    /// As [`start_from_sources`](Self::start_from_sources).
    pub fn start_from_sources_traced<S>(
        sources: &[S],
        k: usize,
        network: NetworkKind,
        depth: usize,
        recorder: Recorder,
    ) -> Result<ServiceRuntime, ProtocolError>
    where
        S: LocalTopkSource,
    {
        let locals = snapshot_sources(sources, k)?;
        Self::start_traced(&locals, network, depth, recorder)
    }

    /// Number of member nodes on the standing ring.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.n
    }

    /// Maximum number of queries kept in flight at once.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Cumulative wire counters for the service's lifetime (shared by
    /// all in-flight queries), including the frame pool's high-water
    /// mark under pipelining.
    #[must_use]
    pub fn metrics(&self) -> TransportMetrics {
        self.metrics.clone()
    }

    /// The recorder this service publishes telemetry into (disabled
    /// unless the service was started via
    /// [`start_traced`](Self::start_traced)).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Takes a live snapshot of the service: pipeline occupancy, queue
    /// waits, and the shared wire counters — readable at any time,
    /// including while queries are in flight, without draining anything.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.stats_handle().stats()
    }

    /// A cloneable handle that reads the same stats from any thread —
    /// the live feed behind the service's metrics endpoint. Stays valid
    /// (final values frozen) after the runtime shuts down.
    #[must_use]
    pub fn stats_handle(&self) -> ServiceStatsHandle {
        ServiceStatsHandle {
            depth: self.depth,
            shared: Arc::clone(&self.shared),
            metrics: self.metrics.clone(),
        }
    }

    /// Submits one query, blocking only while the pipeline is full.
    ///
    /// Queries complete in ring order but may be collected in any
    /// order; results wait until their ticket is redeemed.
    ///
    /// # Errors
    ///
    /// Configuration errors as for
    /// [`run_distributed`](crate::distributed::run_distributed), or a
    /// transport error if the service has failed.
    pub fn submit(
        &mut self,
        config: &ProtocolConfig,
        seed: u64,
    ) -> Result<QueryTicket, ProtocolError> {
        config.validate(self.n)?;
        if config.k() != self.k {
            return Err(ProtocolError::InconsistentK {
                expected: self.k,
                got: config.k(),
            });
        }
        if config.remap_each_round() {
            return Err(ProtocolError::Ring(RingError::Decode {
                reason: "per-round remapping is not supported by the distributed driver",
            }));
        }
        let rounds = config.resolve_rounds()?;
        // Feed the privacy accountant (or any other observer) the
        // query's protocol coordinates — configuration only, never the
        // seed, data or results.
        if let Some(observer) = &self.observer {
            observer.on_query(config, self.n, rounds);
        }
        let topology = Arc::new(derive_topology(config, self.n, seed)?);
        let queued = Instant::now();
        while self.in_flight >= self.depth {
            self.pump_one()?;
        }
        self.shared.queue_wait.record_duration(queued.elapsed());
        self.recorder.observe_named("queue_wait", Some(queued));
        let query = self.next_query;
        self.next_query += 1;
        self.meta.insert(
            query,
            QueryMeta {
                k: config.k(),
                rounds,
                topology: Arc::clone(&topology),
            },
        );
        self.pending.insert(query, Vec::with_capacity(self.n));
        let init = Arc::new(SlotInit {
            query,
            config: Arc::new(config.clone()),
            topology,
            rounds,
            seed,
        });
        for (position, control) in self.controls.iter().enumerate() {
            control
                .send(WorkerControl::Assign(Arc::clone(&init)))
                .map_err(|_| ProtocolError::WorkerFailed { position })?;
        }
        self.in_flight += 1;
        self.shared.queries_submitted.fetch_add(1, Ordering::AcqRel);
        self.shared.set_in_flight(self.in_flight);
        self.recorder
            .gauge_set("pipeline_depth", self.in_flight as u64);
        Ok(QueryTicket { query })
    }

    /// Blocks until `ticket`'s query has completed and returns its
    /// outcome.
    ///
    /// # Errors
    ///
    /// The query's own first error if it failed, or
    /// [`ProtocolError::InvalidService`] for a ticket already collected.
    pub fn collect(&mut self, ticket: QueryTicket) -> Result<ServiceOutcome, ProtocolError> {
        loop {
            if let Some(outcome) = self.done.remove(&ticket.query) {
                return outcome;
            }
            if !self.meta.contains_key(&ticket.query) {
                return Err(ProtocolError::InvalidService {
                    reason: "unknown or already collected query ticket",
                });
            }
            self.pump_one()?;
        }
    }

    /// Submits and collects one query — the warm-path equivalent of
    /// [`run_distributed`](crate::distributed::run_distributed).
    ///
    /// # Errors
    ///
    /// As for [`submit`](Self::submit) and [`collect`](Self::collect).
    pub fn run(
        &mut self,
        config: &ProtocolConfig,
        seed: u64,
    ) -> Result<ServiceOutcome, ProtocolError> {
        let ticket = self.submit(config, seed)?;
        self.collect(ticket)
    }

    /// Runs a whole workload through the pipeline, returning outcomes in
    /// workload order.
    ///
    /// # Errors
    ///
    /// The first submission or per-query error encountered.
    pub fn run_workload(
        &mut self,
        queries: &[(ProtocolConfig, u64)],
    ) -> Result<Vec<ServiceOutcome>, ProtocolError> {
        let mut tickets = Vec::with_capacity(queries.len());
        for (config, seed) in queries {
            tickets.push(self.submit(config, *seed)?);
        }
        tickets
            .into_iter()
            .map(|ticket| self.collect(ticket))
            .collect()
    }

    /// Blocks for one worker report and folds it into the bookkeeping.
    fn pump_one(&mut self) -> Result<(), ProtocolError> {
        let report = self
            .reports
            .recv_timeout(self.collect_timeout)
            .map_err(|_| ProtocolError::Ring(RingError::Timeout))?;
        self.absorb(report);
        Ok(())
    }

    fn absorb(&mut self, report: SlotReport) {
        if !self.meta.contains_key(&report.query) {
            // A straggler for a query that already failed: the first
            // error decided the outcome.
            return;
        }
        match report.result {
            Err(error) => {
                self.meta.remove(&report.query);
                self.pending.remove(&report.query);
                self.done.insert(report.query, Err(error));
                self.in_flight -= 1;
                self.shared.queries_completed.fetch_add(1, Ordering::AcqRel);
                self.shared.set_in_flight(self.in_flight);
                self.recorder
                    .gauge_set("pipeline_depth", self.in_flight as u64);
            }
            Ok((steps, result)) => {
                let partial = self
                    .pending
                    .get_mut(&report.query)
                    .expect("pending exists while meta does");
                partial.push(WorkerReport {
                    node: report.node,
                    steps,
                    result,
                });
                if partial.len() == self.n {
                    let reports = self.pending.remove(&report.query).expect("just pushed");
                    let meta = self.meta.remove(&report.query).expect("checked above");
                    self.done
                        .insert(report.query, Ok(assemble(self.n, &meta, reports)));
                    self.in_flight -= 1;
                    self.shared.queries_completed.fetch_add(1, Ordering::AcqRel);
                    self.shared.set_in_flight(self.in_flight);
                    self.recorder
                        .gauge_set("pipeline_depth", self.in_flight as u64);
                }
            }
        }
    }

    /// Shuts the service down: in-flight queries are drained to
    /// completion (their uncollected results are discarded), then every
    /// worker thread is joined.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::WorkerFailed`] if a worker thread panicked.
    pub fn shutdown(mut self) -> Result<(), ProtocolError> {
        // Publish the lifetime wire counters into the recorder's
        // registry so a final summary carries them.
        self.metrics.peek().publish(&self.recorder);
        for control in &self.controls {
            let _ = control.send(WorkerControl::Shutdown);
        }
        // Hang up the control plane so no worker can block on it.
        self.controls.clear();
        let mut first_error = None;
        for (position, handle) in self.handles.drain(..).enumerate() {
            if handle.join().is_err() {
                first_error.get_or_insert(ProtocolError::WorkerFailed { position });
            }
        }
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

/// Merges n worker reports into a [`ServiceOutcome`] exactly the way the
/// one-shot driver assembles its [`DistributedOutcome`]
/// (`crate::distributed::run_once`) — that shared shape is what the
/// bit-identity tests compare.
fn assemble(n: usize, meta: &QueryMeta, mut reports: Vec<WorkerReport>) -> ServiceOutcome {
    reports.sort_by_key(|r| r.node.get());
    let per_node_results: Vec<TopKVector> = reports.iter().map(|r| r.result.clone()).collect();
    let mut steps: Vec<StepRecord> = reports.into_iter().flat_map(|r| r.steps).collect();
    steps.sort_by_key(|s| (s.round, s.position.get()));
    let result = per_node_results[0].clone();
    let transcript = Transcript::new(
        n,
        meta.k,
        meta.rounds,
        vec![meta.topology.order().to_vec()],
        steps,
        result,
    );
    ServiceOutcome {
        transcript,
        per_node_results,
    }
}

/// `W` independent standing federations answering one workload across
/// cores.
///
/// Each shard is a full [`ServiceRuntime`] — its own ring of node
/// workers over its own network — and queries are slotted onto shards
/// deterministically by workload index (`query i` runs on shard
/// `i mod W`, the same slotting the experiment harness's trial pool
/// uses). A query's transcript depends only on `(locals, config, seed)`,
/// never on which shard ran it or what else was in flight, so every
/// transcript stays bit-identical to a solo [`ServiceRuntime`] run.
///
/// `W = 1` degenerates to a plain [`ServiceRuntime`]; on a multi-core
/// host, `W` shards of depth `d` keep `W × d` queries in flight.
pub struct ShardedService {
    shards: Vec<ServiceRuntime>,
}

/// Acquires one consistent local top-k snapshot per source — the bridge
/// from [`LocalTopkSource`] backends to the vector-based service
/// constructors.
fn snapshot_sources<S>(sources: &[S], k: usize) -> Result<Vec<TopKVector>, ProtocolError>
where
    S: LocalTopkSource,
{
    sources
        .iter()
        .map(|s| s.local_topk(k).map_err(ProtocolError::from))
        .collect()
}

impl ShardedService {
    /// Starts `workers` independent shards, each a standing ring over
    /// its own `network` with pipeline `depth`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::InvalidService`] for a zero `workers`, plus
    /// everything [`ServiceRuntime::start`] can return.
    pub fn start(
        locals: &[TopKVector],
        network: NetworkKind,
        depth: usize,
        workers: usize,
    ) -> Result<ShardedService, ProtocolError> {
        Self::start_traced(locals, network, depth, workers, Recorder::disabled())
    }

    /// [`start`](Self::start) with telemetry; all shards share the one
    /// recorder.
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start).
    pub fn start_traced(
        locals: &[TopKVector],
        network: NetworkKind,
        depth: usize,
        workers: usize,
        recorder: Recorder,
    ) -> Result<ShardedService, ProtocolError> {
        if workers == 0 {
            return Err(ProtocolError::InvalidService {
                reason: "worker count must be at least 1",
            });
        }
        let shards = (0..workers)
            .map(|_| ServiceRuntime::start_traced(locals, network, depth, recorder.clone()))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardedService { shards })
    }

    /// [`start_traced`](Self::start_traced) with every shard's network
    /// subjected to the same chaos plan on one shared clock: an
    /// incident hits all rings simultaneously, as a real outage would.
    /// Returns the shared [`ChaosState`].
    ///
    /// # Errors
    ///
    /// As for [`start`](Self::start), plus [`ProtocolError::Ring`] for
    /// a plan the reliability layer could not heal.
    pub fn start_chaos_traced(
        locals: &[TopKVector],
        depth: usize,
        workers: usize,
        recorder: Recorder,
        plan: &ChaosPlan,
    ) -> Result<(ShardedService, Arc<ChaosState>), ProtocolError> {
        if workers == 0 {
            return Err(ProtocolError::InvalidService {
                reason: "worker count must be at least 1",
            });
        }
        plan.validate(DEFAULT_HEAL_BUDGET)?;
        let state = ChaosState::new(plan.clone());
        let shards = (0..workers)
            .map(|_| {
                ServiceRuntime::start_with_chaos_state(locals, depth, recorder.clone(), &state)
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok((ShardedService { shards }, state))
    }

    /// [`start`](Self::start) over [`LocalTopkSource`] backends: each
    /// node's snapshot is acquired once, here, and shared by all
    /// shards, so the whole sharded service answers from one consistent
    /// per-node view.
    ///
    /// # Errors
    ///
    /// As [`start`](Self::start), plus [`ProtocolError::Domain`] if a
    /// source cannot produce an exact top-`k` vector.
    pub fn start_from_sources<S>(
        sources: &[S],
        k: usize,
        network: NetworkKind,
        depth: usize,
        workers: usize,
    ) -> Result<ShardedService, ProtocolError>
    where
        S: LocalTopkSource,
    {
        let locals = snapshot_sources(sources, k)?;
        Self::start_traced(&locals, network, depth, workers, Recorder::disabled())
    }

    /// Installs one shared [`QueryObserver`] on every shard; each
    /// shard's scheduler notifies it at submit time, so the observer
    /// sees the whole workload regardless of slotting.
    pub fn set_observer(&mut self, observer: Arc<dyn QueryObserver>) {
        for shard in &mut self.shards {
            shard.set_observer(Arc::clone(&observer));
        }
    }

    /// Number of shards (independent standing rings).
    #[must_use]
    pub fn workers(&self) -> usize {
        self.shards.len()
    }

    /// Pipeline depth of each shard.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.shards[0].depth()
    }

    /// Sums the shards' live wire counters into one snapshot (without
    /// draining any of them).
    #[must_use]
    pub fn wire_totals(&self) -> MetricsSnapshot {
        let mut total = MetricsSnapshot::default();
        for shard in &self.shards {
            let snap = shard.metrics().peek();
            total.frames_sent += snap.frames_sent;
            total.logical_messages += snap.logical_messages;
            total.bytes_sent += snap.bytes_sent;
            total.baseline_bytes += snap.baseline_bytes;
            total.pooled_buffers_high_water += snap.pooled_buffers_high_water;
            total.retransmissions += snap.retransmissions;
            total.re_acks += snap.re_acks;
        }
        total
    }

    /// Per-shard service stats, indexed by shard.
    #[must_use]
    pub fn shard_stats(&self) -> Vec<ServiceStats> {
        self.shards.iter().map(ServiceRuntime::stats).collect()
    }

    /// Runs a workload across the shards, returning outcomes in
    /// workload order.
    ///
    /// One scheduler thread per shard submits and collects that shard's
    /// slice of the workload; results land in their original positions.
    ///
    /// # Errors
    ///
    /// The first submission or per-query error from any shard.
    pub fn run_workload(
        &mut self,
        queries: &[(ProtocolConfig, u64)],
    ) -> Result<Vec<ServiceOutcome>, ProtocolError> {
        let w = self.shards.len();
        if w == 1 {
            return self.shards[0].run_workload(queries);
        }
        let mut slots: Vec<Option<ServiceOutcome>> = Vec::new();
        slots.resize_with(queries.len(), || None);
        let per_shard: Vec<Result<Vec<(usize, ServiceOutcome)>, ProtocolError>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = self
                    .shards
                    .iter_mut()
                    .enumerate()
                    .map(|(s, shard)| {
                        scope.spawn(move || {
                            let mut tickets = Vec::new();
                            for (i, (config, seed)) in queries.iter().enumerate() {
                                if i % w == s {
                                    tickets.push((i, shard.submit(config, *seed)?));
                                }
                            }
                            tickets
                                .into_iter()
                                .map(|(i, ticket)| Ok((i, shard.collect(ticket)?)))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(position, handle)| {
                        handle
                            .join()
                            .unwrap_or(Err(ProtocolError::WorkerFailed { position }))
                    })
                    .collect()
            });
        for shard_results in per_shard {
            for (i, outcome) in shard_results? {
                slots[i] = Some(outcome);
            }
        }
        Ok(slots
            .into_iter()
            .map(|slot| slot.expect("slotting covers every workload index"))
            .collect())
    }

    /// Shuts every shard down, draining in-flight queries and joining
    /// all worker threads.
    ///
    /// # Errors
    ///
    /// The first [`ProtocolError::WorkerFailed`] from any shard.
    pub fn shutdown(self) -> Result<(), ProtocolError> {
        let mut first_error = None;
        for shard in self.shards {
            if let Err(error) = shard.shutdown() {
                first_error.get_or_insert(error);
            }
        }
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributed::run_distributed;
    use crate::{RoundPolicy, Schedule, StartPolicy};
    use privtopk_domain::{Value, ValueDomain};

    fn locals(n: usize, k: usize, seed: u64) -> Vec<TopKVector> {
        use rand::Rng;
        let domain = ValueDomain::paper_default();
        let mut rng = privtopk_domain::rng::SeedSpec::new(seed).rng();
        (0..n)
            .map(|_| {
                let values: Vec<Value> = (0..k)
                    .map(|_| Value::new(rng.gen_range(domain.as_range())))
                    .collect();
                TopKVector::from_values(k, values, &domain).unwrap()
            })
            .collect()
    }

    fn config(k: usize) -> ProtocolConfig {
        ProtocolConfig::topk(k)
            .with_schedule(Schedule::paper_default())
            .with_rounds(RoundPolicy::Fixed(6))
    }

    struct VecSource {
        values: Vec<Value>,
        domain: ValueDomain,
    }

    impl LocalTopkSource for VecSource {
        fn local_topk(&self, k: usize) -> Result<TopKVector, privtopk_domain::DomainError> {
            TopKVector::from_values(k, self.values.iter().copied(), &self.domain)
        }

        fn row_count(&self) -> u64 {
            self.values.len() as u64
        }
    }

    #[test]
    fn source_backed_service_matches_vector_backed() {
        let locals = locals(4, 3, 21);
        let sources: Vec<VecSource> = locals
            .iter()
            .map(|v| VecSource {
                values: v.as_slice().to_vec(),
                domain: ValueDomain::paper_default(),
            })
            .collect();
        let cfg = config(3);
        let mut from_vectors = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        let mut from_sources =
            ServiceRuntime::start_from_sources(&sources, 3, NetworkKind::InMemory, 1).unwrap();
        assert_eq!(from_sources.nodes(), 4);
        for seed in 0..4u64 {
            let a = from_vectors.run(&cfg, seed).unwrap();
            let b = from_sources.run(&cfg, seed).unwrap();
            assert_eq!(a, b, "seed {seed}");
        }
        from_vectors.shutdown().unwrap();
        from_sources.shutdown().unwrap();
    }

    #[test]
    fn source_backed_service_rejects_zero_k() {
        let sources: Vec<VecSource> = (0..3)
            .map(|_| VecSource {
                values: vec![Value::new(5)],
                domain: ValueDomain::paper_default(),
            })
            .collect();
        assert!(matches!(
            ServiceRuntime::start_from_sources(&sources, 0, NetworkKind::InMemory, 1),
            Err(ProtocolError::Domain(_))
        ));
    }

    #[test]
    fn sharded_service_from_sources_runs_workload() {
        let locals = locals(4, 2, 5);
        let sources: Vec<VecSource> = locals
            .iter()
            .map(|v| VecSource {
                values: v.as_slice().to_vec(),
                domain: ValueDomain::paper_default(),
            })
            .collect();
        let cfg = config(2);
        let workload: Vec<(ProtocolConfig, u64)> =
            (0..6u64).map(|seed| (cfg.clone(), seed)).collect();
        let mut sharded =
            ShardedService::start_from_sources(&sources, 2, NetworkKind::InMemory, 2, 2).unwrap();
        let outcomes = sharded.run_workload(&workload).unwrap();
        let mut solo = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        for (i, (cfg, seed)) in workload.iter().enumerate() {
            let expected = solo.run(cfg, *seed).unwrap();
            assert_eq!(outcomes[i], expected, "query {i}");
        }
        solo.shutdown().unwrap();
        sharded.shutdown().unwrap();
    }

    #[test]
    fn single_query_matches_cold_run() {
        let locals = locals(5, 3, 11);
        let cfg = config(3);
        let cold = run_distributed(&cfg, &locals, NetworkKind::InMemory, 42).unwrap();
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        let warm = service.run(&cfg, 42).unwrap();
        service.shutdown().unwrap();
        assert_eq!(warm.transcript, cold.transcript);
        assert_eq!(warm.per_node_results, cold.per_node_results);
    }

    #[test]
    fn sequential_reuse_matches_cold_runs() {
        let locals = locals(4, 2, 7);
        let cfg = config(2);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        for seed in 0..20u64 {
            let cold = run_distributed(&cfg, &locals, NetworkKind::InMemory, seed).unwrap();
            let warm = service.run(&cfg, seed).unwrap();
            assert_eq!(warm.transcript, cold.transcript, "seed {seed}");
        }
        service.shutdown().unwrap();
    }

    #[test]
    fn pipelined_depths_match_solo_transcripts() {
        let locals = locals(5, 3, 3);
        let cfg = config(3);
        let workload: Vec<(ProtocolConfig, u64)> =
            (0..24u64).map(|seed| (cfg.clone(), seed)).collect();
        let solo: Vec<Transcript> = workload
            .iter()
            .map(|(cfg, seed)| {
                run_distributed(cfg, &locals, NetworkKind::InMemory, *seed)
                    .unwrap()
                    .transcript
            })
            .collect();
        for depth in [1usize, 4, 16] {
            let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, depth).unwrap();
            let outcomes = service.run_workload(&workload).unwrap();
            service.shutdown().unwrap();
            for (i, outcome) in outcomes.iter().enumerate() {
                assert_eq!(outcome.transcript, solo[i], "depth {depth}, query {i}");
            }
        }
    }

    #[test]
    fn random_anonymous_topologies_per_query() {
        // Every query derives its own ring from its seed, exactly as the
        // one-shot driver does.
        let locals = locals(6, 2, 9);
        let cfg = config(2).with_start(StartPolicy::RandomAnonymous);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 4).unwrap();
        let workload: Vec<(ProtocolConfig, u64)> =
            (100..112u64).map(|seed| (cfg.clone(), seed)).collect();
        let outcomes = service.run_workload(&workload).unwrap();
        service.shutdown().unwrap();
        for ((_, seed), outcome) in workload.iter().zip(&outcomes) {
            let cold = run_distributed(&cfg, &locals, NetworkKind::InMemory, *seed).unwrap();
            assert_eq!(outcome.transcript, cold.transcript);
        }
    }

    #[test]
    fn tcp_service_reuses_connections() {
        let locals = locals(3, 2, 5);
        let cfg = config(2);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::Tcp, 2).unwrap();
        let workload: Vec<(ProtocolConfig, u64)> =
            (0..6u64).map(|seed| (cfg.clone(), seed)).collect();
        let outcomes = service.run_workload(&workload).unwrap();
        service.shutdown().unwrap();
        for ((_, seed), outcome) in workload.iter().zip(&outcomes) {
            let cold = run_distributed(&cfg, &locals, NetworkKind::InMemory, *seed).unwrap();
            assert_eq!(outcome.transcript, cold.transcript);
        }
    }

    #[test]
    fn lossy_service_heals_and_stays_deterministic() {
        let locals = locals(4, 2, 13);
        let cfg = config(2);
        let network = NetworkKind::LossyInMemory {
            drop_probability: 0.2,
        };
        let mut service = ServiceRuntime::start(&locals, network, 2).unwrap();
        let workload: Vec<(ProtocolConfig, u64)> =
            (0..4u64).map(|seed| (cfg.clone(), seed)).collect();
        let outcomes = service.run_workload(&workload).unwrap();
        service.shutdown().unwrap();
        for ((_, seed), outcome) in workload.iter().zip(&outcomes) {
            let cold = run_distributed(&cfg, &locals, NetworkKind::InMemory, *seed).unwrap();
            assert_eq!(outcome.transcript, cold.transcript);
        }
    }

    #[test]
    fn out_of_order_collection() {
        let locals = locals(4, 2, 21);
        let cfg = config(2);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 4).unwrap();
        let t0 = service.submit(&cfg, 0).unwrap();
        let t1 = service.submit(&cfg, 1).unwrap();
        let t2 = service.submit(&cfg, 2).unwrap();
        let o2 = service.collect(t2).unwrap();
        let o0 = service.collect(t0).unwrap();
        let o1 = service.collect(t1).unwrap();
        service.shutdown().unwrap();
        for (seed, outcome) in [(0u64, &o0), (1, &o1), (2, &o2)] {
            let cold = run_distributed(&cfg, &locals, NetworkKind::InMemory, seed).unwrap();
            assert_eq!(outcome.transcript, cold.transcript);
        }
    }

    #[test]
    fn double_collect_rejected() {
        let locals = locals(3, 1, 2);
        let cfg = ProtocolConfig::max()
            .with_schedule(Schedule::paper_default())
            .with_rounds(RoundPolicy::Fixed(3));
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        let ticket = service.submit(&cfg, 0).unwrap();
        service.collect(ticket).unwrap();
        assert!(matches!(
            service.collect(ticket),
            Err(ProtocolError::InvalidService { .. })
        ));
        service.shutdown().unwrap();
    }

    #[test]
    fn start_validation() {
        let two = locals(2, 2, 1);
        assert!(matches!(
            ServiceRuntime::start(&two, NetworkKind::InMemory, 1),
            Err(ProtocolError::TooFewNodes { got: 2, .. })
        ));
        let four = locals(4, 2, 1);
        assert!(matches!(
            ServiceRuntime::start(&four, NetworkKind::InMemory, 0),
            Err(ProtocolError::InvalidService { .. })
        ));
        let mut mixed = locals(4, 2, 1);
        mixed[2] = locals(1, 3, 8).pop().unwrap();
        assert!(matches!(
            ServiceRuntime::start(&mixed, NetworkKind::InMemory, 1),
            Err(ProtocolError::InconsistentK { .. })
        ));
    }

    #[test]
    fn submit_validation() {
        let locals = locals(4, 2, 1);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        assert!(matches!(
            service.submit(&config(3), 0),
            Err(ProtocolError::InconsistentK {
                expected: 2,
                got: 3
            })
        ));
        let remapped = config(2).with_remap_each_round(true);
        assert!(service.submit(&remapped, 0).is_err());
        // The service is still usable after rejected submissions.
        service.run(&config(2), 0).unwrap();
        service.shutdown().unwrap();
    }

    #[test]
    fn traced_service_is_bit_identical_and_spans_every_hop() {
        let locals = locals(4, 2, 19);
        let cfg = config(2);
        let workload: Vec<(ProtocolConfig, u64)> =
            (0..6u64).map(|seed| (cfg.clone(), seed)).collect();

        let mut plain = ServiceRuntime::start(&locals, NetworkKind::InMemory, 2).unwrap();
        let plain_outcomes = plain.run_workload(&workload).unwrap();
        plain.shutdown().unwrap();

        let recorder = Recorder::new();
        let mut traced =
            ServiceRuntime::start_traced(&locals, NetworkKind::InMemory, 2, recorder.clone())
                .unwrap();
        let traced_outcomes = traced.run_workload(&workload).unwrap();
        let stats = traced.stats();
        traced.shutdown().unwrap();

        assert_eq!(plain_outcomes, traced_outcomes);
        // Every hop of every query produced a Step span: 6 queries of
        // 6 rounds over 4 nodes.
        assert_eq!(recorder.phase(Phase::Step).count, 6 * 6 * 4);
        assert!(recorder.phase(Phase::Send).count > 0);
        assert!(recorder.phase(Phase::Recv).count > 0);
        // The scheduler tracked occupancy and queue waits.
        assert_eq!(stats.queries_submitted, 6);
        assert_eq!(stats.queries_completed, 6);
        assert_eq!(stats.in_flight, 0);
        assert!(stats.pipeline_high_water >= 1 && stats.pipeline_high_water <= 2);
        assert_eq!(stats.queue_wait.count, 6);
        assert!(stats.frames_sent > 0);
        assert!(stats.bytes_sent > 0);
        // And the registry carries the gauge mid-stream view.
        let gauge = recorder.gauge("pipeline_depth").unwrap();
        assert_eq!(gauge.value, 0);
        assert!(gauge.high_water >= 1);
    }

    #[test]
    fn stats_are_live_mid_stream() {
        let locals = locals(4, 2, 23);
        let cfg = config(2);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 4).unwrap();
        let t0 = service.submit(&cfg, 0).unwrap();
        let t1 = service.submit(&cfg, 1).unwrap();
        let mid = service.stats();
        assert_eq!(mid.queries_submitted, 2);
        assert_eq!(mid.in_flight + mid.queries_completed as usize, 2);
        assert!(mid.pipeline_high_water >= 1);
        service.collect(t0).unwrap();
        service.collect(t1).unwrap();
        let done = service.stats();
        assert_eq!(done.in_flight, 0);
        assert_eq!(done.queries_completed, 2);
        assert!(done.frames_sent >= mid.frames_sent);
        service.shutdown().unwrap();
    }

    #[test]
    fn lossy_service_stats_expose_healing_counters() {
        let locals = locals(4, 2, 29);
        let cfg = config(2);
        let network = NetworkKind::LossyInMemory {
            drop_probability: 0.3,
        };
        let recorder = Recorder::stats_only();
        let mut service =
            ServiceRuntime::start_traced(&locals, network, 2, recorder.clone()).unwrap();
        for seed in 0..3u64 {
            service.run(&cfg, seed).unwrap();
        }
        let stats = service.stats();
        assert!(
            stats.retransmissions > 0,
            "30% loss must force retransmissions"
        );
        assert!(stats.re_acks > 0, "dropped ACKs must force re-ACKs");
        assert_eq!(recorder.phase(Phase::Retry).count, stats.retransmissions);
        service.shutdown().unwrap();
    }

    #[test]
    fn shutdown_with_in_flight_queries_drains() {
        let locals = locals(4, 2, 17);
        let cfg = config(2);
        let mut service = ServiceRuntime::start(&locals, NetworkKind::InMemory, 8).unwrap();
        for seed in 0..8u64 {
            service.submit(&cfg, seed).unwrap();
        }
        // Never collected: shutdown must still drain and join cleanly.
        service.shutdown().unwrap();
    }

    #[test]
    fn sharded_service_matches_solo_transcripts() {
        // The multi-core identity gate: every query run through a
        // two-shard service must produce the byte-for-byte transcript a
        // solo depth-1 runtime produces for the same (locals, cfg, seed).
        let locals = locals(5, 3, 33);
        let cfg = config(3);
        let workload: Vec<(ProtocolConfig, u64)> =
            (0..6u64).map(|seed| (cfg.clone(), 100 + seed)).collect();
        let mut sharded = ShardedService::start(&locals, NetworkKind::InMemory, 2, 2).unwrap();
        assert_eq!(sharded.workers(), 2);
        assert_eq!(sharded.depth(), 2);
        let outcomes = sharded.run_workload(&workload).unwrap();
        assert_eq!(outcomes.len(), workload.len());
        let totals = sharded.wire_totals();
        assert!(totals.frames_sent > 0);
        assert!(
            totals.baseline_bytes > totals.bytes_sent,
            "compact codec must undercut the legacy baseline"
        );
        assert_eq!(sharded.shard_stats().len(), 2);
        sharded.shutdown().unwrap();

        let mut solo = ServiceRuntime::start(&locals, NetworkKind::InMemory, 1).unwrap();
        for (outcome, (config, seed)) in outcomes.iter().zip(&workload) {
            let reference = solo.run(config, *seed).unwrap();
            assert_eq!(outcome.transcript, reference.transcript);
            assert_eq!(outcome.per_node_results, reference.per_node_results);
        }
        solo.shutdown().unwrap();
    }

    #[test]
    fn sharded_service_rejects_zero_workers() {
        let locals = locals(4, 2, 3);
        assert!(matches!(
            ShardedService::start(&locals, NetworkKind::InMemory, 1, 0),
            Err(ProtocolError::InvalidService { .. })
        ));
    }
}
