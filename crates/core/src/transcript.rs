//! Execution transcripts: every intermediate result, for privacy analysis.
//!
//! The Loss-of-Privacy metric (Equation 1) is defined over "the
//! intermediate result set during the execution"; a [`Transcript`] is that
//! set, recorded with ground truth (who computed what, from which input,
//! taking which branch). Adversary models in `privtopk-privacy` restrict
//! themselves to the subset of this record a real adversary would see.

use serde::{Deserialize, Serialize};

use privtopk_domain::{NodeId, RingPosition, TopKVector, Value};

use crate::local::LocalAction;

/// One node's computation at one position of one round.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// 1-based round number.
    pub round: u32,
    /// The node's position on the ring *during this round* (position 0 is
    /// the starting node).
    pub position: RingPosition,
    /// The node that executed the step.
    pub node: NodeId,
    /// The global state received from the predecessor, `G_{i-1}(r)`.
    pub incoming: TopKVector,
    /// The global state passed to the successor, `G_i(r)`.
    pub outgoing: TopKVector,
    /// Ground-truth branch annotation (never visible to adversaries).
    pub action: LocalAction,
}

/// The complete record of one protocol execution.
///
/// # Example
///
/// ```
/// use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
/// use privtopk_domain::{TopKVector, Value, ValueDomain};
///
/// let domain = ValueDomain::paper_default();
/// let locals: Vec<TopKVector> = [30i64, 10, 40, 20]
///     .iter()
///     .map(|&v| TopKVector::from_values(1, [Value::new(v)], &domain).unwrap())
///     .collect();
/// let engine = SimulationEngine::new(ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(8)));
/// let transcript = engine.run(&locals, 42)?;
/// assert_eq!(transcript.result().first(), Value::new(40));
/// # Ok::<(), privtopk_core::ProtocolError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transcript {
    n: usize,
    k: usize,
    rounds: u32,
    /// Ring order used in each round (index 0 = round 1); more than one
    /// entry only when per-round remapping is enabled.
    ring_orders: Vec<Vec<NodeId>>,
    steps: Vec<StepRecord>,
    result: TopKVector,
}

impl Transcript {
    /// Assembles a transcript (used by the protocol drivers).
    #[must_use]
    pub fn new(
        n: usize,
        k: usize,
        rounds: u32,
        ring_orders: Vec<Vec<NodeId>>,
        steps: Vec<StepRecord>,
        result: TopKVector,
    ) -> Self {
        Transcript {
            n,
            k,
            rounds,
            ring_orders,
            steps,
            result,
        }
    }

    /// Number of participating nodes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// The query's `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of computation rounds executed.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// The final global top-k vector.
    #[must_use]
    pub fn result(&self) -> &TopKVector {
        &self.result
    }

    /// The final result as a scalar (for max protocols, `k = 1`).
    #[must_use]
    pub fn result_value(&self) -> Value {
        self.result.first()
    }

    /// All steps, in execution order.
    #[must_use]
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// The ring order used in `round` (1-based).
    #[must_use]
    pub fn ring_order(&self, round: u32) -> Option<&[NodeId]> {
        if round == 0 {
            return None;
        }
        // A single stored order means the ring was fixed for all rounds.
        if self.ring_orders.len() == 1 {
            return self.ring_orders.first().map(Vec::as_slice);
        }
        self.ring_orders.get(round as usize - 1).map(Vec::as_slice)
    }

    /// Steps executed by `node`, in round order.
    pub fn steps_of(&self, node: NodeId) -> impl Iterator<Item = &StepRecord> {
        self.steps.iter().filter(move |s| s.node == node)
    }

    /// Steps of round `round` (1-based), in ring order.
    pub fn steps_in_round(&self, round: u32) -> impl Iterator<Item = &StepRecord> {
        self.steps.iter().filter(move |s| s.round == round)
    }

    /// The vector `node` emitted in `round`, if it acted that round.
    #[must_use]
    pub fn outgoing_of(&self, node: NodeId, round: u32) -> Option<&TopKVector> {
        self.steps
            .iter()
            .find(|s| s.node == node && s.round == round)
            .map(|s| &s.outgoing)
    }

    /// The vector `node` received in `round`, if it acted that round.
    #[must_use]
    pub fn incoming_of(&self, node: NodeId, round: u32) -> Option<&TopKVector> {
        self.steps
            .iter()
            .find(|s| s.node == node && s.round == round)
            .map(|s| &s.incoming)
    }

    /// Ground truth: did `node` ever take the `InsertedReal` branch?
    #[must_use]
    pub fn node_inserted_real(&self, node: NodeId) -> bool {
        self.steps_of(node)
            .any(|s| s.action == LocalAction::InsertedReal)
    }

    /// Total messages exchanged during computation rounds (one per step).
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.steps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::ValueDomain;

    fn v1(x: i64) -> TopKVector {
        TopKVector::from_values(1, [Value::new(x)], &ValueDomain::paper_default()).unwrap()
    }

    fn record(round: u32, pos: usize, node: usize, inc: i64, out: i64) -> StepRecord {
        StepRecord {
            round,
            position: RingPosition::new(pos),
            node: NodeId::new(node),
            incoming: v1(inc),
            outgoing: v1(out),
            action: LocalAction::PassedOn,
        }
    }

    fn sample() -> Transcript {
        Transcript::new(
            2,
            1,
            2,
            vec![vec![NodeId::new(1), NodeId::new(0)]],
            vec![
                record(1, 0, 1, 1, 5),
                record(1, 1, 0, 5, 9),
                record(2, 0, 1, 9, 9),
                record(2, 1, 0, 9, 9),
            ],
            v1(9),
        )
    }

    #[test]
    fn accessors_report_shape() {
        let t = sample();
        assert_eq!(t.n(), 2);
        assert_eq!(t.k(), 1);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.result_value(), Value::new(9));
        assert_eq!(t.message_count(), 4);
    }

    #[test]
    fn per_node_and_per_round_filters() {
        let t = sample();
        assert_eq!(t.steps_of(NodeId::new(0)).count(), 2);
        assert_eq!(t.steps_in_round(1).count(), 2);
        assert_eq!(t.steps_in_round(3).count(), 0);
    }

    #[test]
    fn incoming_outgoing_lookup() {
        let t = sample();
        assert_eq!(
            t.incoming_of(NodeId::new(0), 1).unwrap().first(),
            Value::new(5)
        );
        assert_eq!(
            t.outgoing_of(NodeId::new(0), 1).unwrap().first(),
            Value::new(9)
        );
        assert!(t.outgoing_of(NodeId::new(5), 1).is_none());
    }

    #[test]
    fn ring_order_fixed_ring_answers_all_rounds() {
        let t = sample();
        assert_eq!(t.ring_order(1).unwrap()[0], NodeId::new(1));
        assert_eq!(t.ring_order(2).unwrap()[0], NodeId::new(1));
        assert!(t.ring_order(0).is_none());
    }

    #[test]
    fn inserted_real_detection() {
        let mut t = sample();
        assert!(!t.node_inserted_real(NodeId::new(0)));
        t.steps.push(StepRecord {
            action: LocalAction::InsertedReal,
            ..record(3, 1, 0, 9, 9)
        });
        assert!(t.node_inserted_real(NodeId::new(0)));
    }
}
