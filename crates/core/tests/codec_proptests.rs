//! Property-based tests pinning the compact wire codec to the legacy
//! one: every frame a legacy writer produces must decode identically to
//! its compact twin, varints must reject malformed input, and the
//! compact encoding must never lose a value. `scripts/ci.sh` runs this
//! file by name so a test filter cannot silently drop it.

use bytes::BytesMut;
use privtopk_core::{BatchMessage, SlotMessage, TokenMessage};
use privtopk_domain::{TopKVector, Value, ValueDomain};
use privtopk_ring::wire::{
    decode_from_bytes, encode_to_bytes, get_topk_compact, get_uvarint, put_topk_compact,
    put_uvarint, unzigzag, uvarint_len, zigzag,
};
use proptest::prelude::*;

fn domain() -> ValueDomain {
    ValueDomain::paper_default()
}

fn arb_vector() -> impl Strategy<Value = TopKVector> {
    (1usize..=8, prop::collection::vec(1i64..=10_000, 1..=8)).prop_map(|(k, vals)| {
        TopKVector::from_values(k, vals.into_iter().map(Value::new), &domain()).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// LEB128 varints roundtrip every u64 at their predicted width.
    #[test]
    fn uvarint_roundtrips(v in any::<u64>()) {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, v);
        prop_assert_eq!(buf.len(), uvarint_len(v));
        let mut slice = &buf[..];
        prop_assert_eq!(get_uvarint(&mut slice).unwrap(), v);
        prop_assert!(slice.is_empty(), "decoder must consume the whole varint");
    }

    /// A truncated varint is rejected, never misread: chopping any
    /// non-empty suffix off a continuation-carrying encoding errors.
    #[test]
    fn truncated_uvarint_rejected(v in 0x80u64..=u64::MAX, cut in 1usize..10) {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, v);
        let cut = cut.min(buf.len() - 1).max(1);
        let mut slice = &buf[..buf.len() - cut];
        prop_assert!(get_uvarint(&mut slice).is_err());
    }

    /// Zigzag is a bijection on i64.
    #[test]
    fn zigzag_roundtrips(v in any::<i64>()) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    /// The delta-compact top-k layout roundtrips arbitrary domain
    /// vectors and never exceeds the legacy fixed-width size.
    #[test]
    fn compact_topk_roundtrips(v in arb_vector()) {
        let mut buf = BytesMut::new();
        put_topk_compact(&mut buf, &v);
        let legacy = 4 + 8 * v.k();
        prop_assert!(buf.len() <= legacy, "compact {} > legacy {legacy}", buf.len());
        let mut slice = &buf[..];
        prop_assert_eq!(get_topk_compact(&mut slice).unwrap(), v);
    }

    /// Cross-decode: the reader accepts the legacy tags 1/2 and the
    /// compact tags 6/7 for the same token, yielding equal messages.
    #[test]
    fn token_old_and_new_tags_decode_identically(
        round in 1u32..=64,
        vector in arb_vector(),
        finished in any::<bool>(),
    ) {
        let msg = if finished {
            TokenMessage::Finished { vector }
        } else {
            TokenMessage::Token { round, vector }
        };
        let mut legacy = BytesMut::new();
        msg.encode_legacy(&mut legacy);
        let compact = encode_to_bytes(&msg);
        prop_assert!(compact.len() < legacy.len());
        let from_legacy: TokenMessage = decode_from_bytes(&legacy.freeze()).unwrap();
        let from_compact: TokenMessage = decode_from_bytes(&compact).unwrap();
        prop_assert_eq!(&from_legacy, &msg);
        prop_assert_eq!(&from_compact, &msg);
    }

    /// Cross-decode for batch frames (tags 3/4 vs 8/9).
    #[test]
    fn batch_old_and_new_tags_decode_identically(
        round in 1u32..=64,
        vectors in prop::collection::vec(arb_vector(), 1..=6),
        finished in any::<bool>(),
    ) {
        let msg = if finished {
            BatchMessage::Finished { vectors }
        } else {
            BatchMessage::Tokens { round, vectors }
        };
        let mut legacy = BytesMut::new();
        msg.encode_legacy(&mut legacy);
        let compact = encode_to_bytes(&msg);
        prop_assert!(compact.len() < legacy.len());
        let from_legacy: BatchMessage = decode_from_bytes(&legacy.freeze()).unwrap();
        let from_compact: BatchMessage = decode_from_bytes(&compact).unwrap();
        prop_assert_eq!(&from_legacy, &msg);
        prop_assert_eq!(&from_compact, &msg);
    }

    /// Cross-decode for service slot frames (tag 5 vs 10).
    #[test]
    fn slot_old_and_new_tags_decode_identically(
        query in any::<u64>(),
        round in 1u32..=64,
        vector in arb_vector(),
    ) {
        let msg = SlotMessage {
            query,
            inner: TokenMessage::Token { round, vector },
        };
        let mut legacy = BytesMut::new();
        msg.encode_legacy(&mut legacy);
        let compact = encode_to_bytes(&msg);
        let from_legacy: SlotMessage = decode_from_bytes(&legacy.freeze()).unwrap();
        let from_compact: SlotMessage = decode_from_bytes(&compact).unwrap();
        prop_assert_eq!(&from_legacy, &msg);
        prop_assert_eq!(&from_compact, &msg);
    }

    /// Truncating a compact frame anywhere past the tag never decodes:
    /// the length and value varints notice the missing bytes.
    #[test]
    fn truncated_compact_frame_rejected(vector in arb_vector(), cut in 1usize..16) {
        let msg = TokenMessage::Token { round: 3, vector };
        let full = encode_to_bytes(&msg);
        let cut = cut.min(full.len() - 1);
        let r: Result<TokenMessage, _> = privtopk_ring::wire::decode_from_slice(
            &full[..full.len() - cut],
        );
        prop_assert!(r.is_err());
    }
}
