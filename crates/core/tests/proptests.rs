//! Property-based tests for the core protocol crate.

use privtopk_core::local::{max_step, topk_step, LocalAction};
use privtopk_core::{
    BatchMessage, ProtocolConfig, RoundPolicy, Schedule, SimulationEngine, MAX_BATCH_ENTRIES,
};
use privtopk_domain::rng::seeded_rng;
use privtopk_domain::{TopKVector, Value, ValueDomain};
use privtopk_ring::wire::{decode_from_bytes, decode_from_slice, encode_to_bytes};
use proptest::prelude::*;

fn domain() -> ValueDomain {
    ValueDomain::paper_default()
}

fn arb_vals(len: usize) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(1i64..=10_000, 1..=len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Equation 2 invariants for every schedule: probabilities are valid,
    /// non-increasing, and (except for Constant/Never edge cases) decay.
    #[test]
    fn schedules_are_monotone_probabilities(
        p0 in 0.01f64..=1.0,
        d in 0.01f64..=1.0,
        step in 0.01f64..=1.0,
        c in 0.0f64..1.0,
    ) {
        let schedules = [
            Schedule::exponential(p0, d).unwrap(),
            Schedule::linear(p0, step).unwrap(),
            Schedule::constant(c).unwrap(),
            Schedule::Never,
        ];
        for s in schedules {
            let mut prev = 1.0f64;
            for r in 1..=30 {
                let p = s.probability(r);
                prop_assert!((0.0..=1.0).contains(&p), "{s}: p({r}) = {p}");
                prop_assert!(p <= prev + 1e-12, "{s} increased at round {r}");
                prev = p;
            }
        }
    }

    /// Algorithm 1 case analysis is exhaustive and correct for arbitrary
    /// inputs: output is max-bounded, monotone, and the action labels
    /// match the arithmetic.
    #[test]
    fn max_step_case_analysis(
        incoming in 1i64..=10_000,
        own in 1i64..=10_000,
        prob in 0.0f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = seeded_rng(seed);
        let s = max_step(
            &mut rng,
            prob,
            Value::new(incoming),
            Value::new(own),
            &domain(),
        )
        .unwrap();
        prop_assert!(s.output >= Value::new(incoming), "monotone");
        prop_assert!(s.output <= Value::new(incoming.max(own)), "bounded");
        match s.action {
            LocalAction::PassedOn => prop_assert!(incoming >= own),
            LocalAction::InsertedReal => {
                prop_assert!(own > incoming);
                prop_assert_eq!(s.output, Value::new(own));
            }
            LocalAction::Randomized => {
                prop_assert!(own > incoming);
                prop_assert!(s.output < Value::new(own));
            }
        }
    }

    /// Algorithm 2 output invariants for arbitrary vectors: sorted, the
    /// correct k, never exceeding the true merged top-k element-wise, and
    /// the randomized branch never exposes a contributing value.
    #[test]
    fn topk_step_structural_invariants(
        (g_vals, v_vals, k, prob, delta, seed) in (1usize..5).prop_flat_map(|k| {
            (arb_vals(8), arb_vals(8), Just(k), 0.0f64..=1.0, 1u64..500, any::<u64>())
        })
    ) {
        let d = domain();
        let g = TopKVector::from_values(k, g_vals.iter().map(|&x| Value::new(x)), &d).unwrap();
        let v = TopKVector::from_values(k, v_vals.iter().map(|&x| Value::new(x)), &d).unwrap();
        let merged = g.merged_with(&v);
        let mut rng = seeded_rng(seed);
        let s = topk_step(&mut rng, prob, &g, &v, false, delta, &d).unwrap();
        prop_assert_eq!(s.output.k(), k);
        let slice = s.output.as_slice();
        prop_assert!(slice.windows(2).all(|w| w[0] >= w[1]), "sorted");
        for rank in 1..=k {
            prop_assert!(
                s.output.get(rank).unwrap() <= merged.get(rank).unwrap(),
                "rank {rank} exceeds the true merge"
            );
        }
        if s.action == LocalAction::Randomized {
            // The contribution (what the node would have newly revealed)
            // must be absent from the randomized output above the real
            // kth value.
            let contribution = merged.multiset_subtract(&g);
            let kth_real = merged.kth();
            for c in contribution {
                if c > kth_real {
                    prop_assert!(
                        !s.output.contains(c),
                        "randomized output leaked contributing value {c}"
                    );
                }
            }
        }
    }

    /// Insert-once: once flagged, the step is a pure pass-through no
    /// matter the probability or data.
    #[test]
    fn flagged_nodes_are_pure_forwarders(
        (g_vals, v_vals, k, prob, seed) in (1usize..4).prop_flat_map(|k| {
            (arb_vals(6), arb_vals(6), Just(k), 0.0f64..=1.0, any::<u64>())
        })
    ) {
        let d = domain();
        let g = TopKVector::from_values(k, g_vals.iter().map(|&x| Value::new(x)), &d).unwrap();
        let v = TopKVector::from_values(k, v_vals.iter().map(|&x| Value::new(x)), &d).unwrap();
        let mut rng = seeded_rng(seed);
        let s = topk_step(&mut rng, prob, &g, &v, true, 1, &d).unwrap();
        prop_assert_eq!(s.output, g);
        prop_assert_eq!(s.action, LocalAction::PassedOn);
        prop_assert!(s.has_inserted);
    }

    /// The full engine respects the round policy exactly: a fixed-round
    /// run has exactly n*r steps and every round appears.
    #[test]
    fn engine_shape_matches_policy(
        (n, r, seed) in (3usize..7, 1u32..6, any::<u64>())
    ) {
        let values: Vec<Value> = (0..n).map(|i| Value::new((i as i64 * 131) % 9999 + 1)).collect();
        let engine = SimulationEngine::new(
            ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(r)),
        );
        let t = engine.run_values(&values, seed).unwrap();
        prop_assert_eq!(t.rounds(), r);
        prop_assert_eq!(t.message_count(), n * r as usize);
        for round in 1..=r {
            prop_assert_eq!(t.steps_in_round(round).count(), n);
        }
    }

    /// Every node acts exactly once per round, at its ring position.
    #[test]
    fn every_node_acts_once_per_round(
        (n, seed) in (3usize..8, any::<u64>())
    ) {
        let values: Vec<Value> = (0..n).map(|i| Value::new((i as i64 * 97) % 9999 + 1)).collect();
        let engine = SimulationEngine::new(
            ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(4)),
        );
        let t = engine.run_values(&values, seed).unwrap();
        for round in 1..=4 {
            let mut seen: Vec<usize> = t
                .steps_in_round(round)
                .map(|s| s.node.get())
                .collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..n).collect::<Vec<_>>());
        }
    }

    /// Token continuity: each step's incoming equals the previous step's
    /// outgoing (within and across rounds).
    #[test]
    fn token_chains_across_steps(
        (n, seed) in (3usize..7, any::<u64>())
    ) {
        let values: Vec<Value> = (0..n).map(|i| Value::new((i as i64 * 211) % 9999 + 1)).collect();
        let engine = SimulationEngine::new(
            ProtocolConfig::topk(1).with_rounds(RoundPolicy::Fixed(5)),
        );
        let locals: Vec<TopKVector> = values
            .iter()
            .map(|&v| TopKVector::from_values(1, [v], &domain()).unwrap())
            .collect();
        let t = engine.run(&locals, seed).unwrap();
        let steps = t.steps();
        for w in steps.windows(2) {
            prop_assert_eq!(&w[1].incoming, &w[0].outgoing);
        }
    }

    /// Batched wire frames are lossless: encode → decode is the identity
    /// for arbitrary batch widths, ks, round labels, and payloads, through
    /// both the owned-frame and zero-copy slice decoders.
    #[test]
    fn batch_message_roundtrips(
        (k, b, round, seed) in (1usize..4, 1usize..=40, any::<u32>(), any::<u64>())
    ) {
        let d = domain();
        let mut rng = seeded_rng(seed);
        let vectors: Vec<TopKVector> = (0..b)
            .map(|_| {
                let vals =
                    (0..k).map(|_| Value::new(rand::Rng::gen_range(&mut rng, 1i64..=10_000)));
                TopKVector::from_values(k, vals, &d).unwrap()
            })
            .collect();
        let tokens = BatchMessage::Tokens { round, vectors: vectors.clone() };
        let frame = encode_to_bytes(&tokens);
        prop_assert_eq!(decode_from_bytes::<BatchMessage>(&frame).unwrap(), tokens.clone());
        prop_assert_eq!(decode_from_slice::<BatchMessage>(frame.as_ref()).unwrap(), tokens);

        let finished = BatchMessage::Finished { vectors };
        let frame = encode_to_bytes(&finished);
        prop_assert_eq!(decode_from_bytes::<BatchMessage>(&frame).unwrap(), finished);
    }

    /// Truncating a batch frame anywhere never panics and never yields a
    /// valid message — decode either errors or (full length) roundtrips.
    #[test]
    fn truncated_batch_frames_never_decode(
        (b, cut_seed) in (1usize..=8, any::<u64>())
    ) {
        let d = domain();
        let v = TopKVector::from_values(2, [Value::new(9), Value::new(3)], &d).unwrap();
        let msg = BatchMessage::Tokens { round: 2, vectors: vec![v; b] };
        let frame = encode_to_bytes(&msg);
        let cut = (cut_seed as usize) % frame.len();
        prop_assert!(decode_from_slice::<BatchMessage>(&frame[..cut]).is_err());
    }
}

#[test]
fn zero_entry_batch_frames_are_rejected() {
    use privtopk_ring::wire::WireEncode;
    // Hand-craft frames with a zero entry count: structurally decodable,
    // semantically forbidden.
    for tag in [3u8, 4u8] {
        let mut buf = bytes::BytesMut::new();
        bytes::BufMut::put_u8(&mut buf, tag);
        if tag == 3 {
            1u32.encode(&mut buf); // round label (Tokens only)
        }
        bytes::BufMut::put_u32_le(&mut buf, 0); // zero vectors
        assert!(
            decode_from_slice::<BatchMessage>(buf.as_ref()).is_err(),
            "tag {tag} accepted an empty batch"
        );
    }
}

#[test]
fn over_cap_batch_frames_are_rejected() {
    let d = domain();
    let v = TopKVector::from_values(1, [Value::new(1)], &d).unwrap();
    let at_cap = BatchMessage::Finished {
        vectors: vec![v.clone(); MAX_BATCH_ENTRIES],
    };
    let frame = encode_to_bytes(&at_cap);
    assert!(decode_from_bytes::<BatchMessage>(&frame).is_ok());
    let over = BatchMessage::Finished {
        vectors: vec![v; MAX_BATCH_ENTRIES + 1],
    };
    let frame = encode_to_bytes(&over);
    assert!(decode_from_bytes::<BatchMessage>(&frame).is_err());
}
