//! Statistical conformance of the randomized local algorithms.
//!
//! Algorithm 1 specifies that the masked value is "generated uniformly
//! from the range `[g_{i-1}(r), v_i)`", and Algorithm 2 that tail values
//! are drawn "randomly and independently" from their range. These tests
//! check the implemented samplers against those specifications with a
//! chi-square goodness-of-fit test — a distributional bug here would
//! silently skew the privacy properties even with all unit tests green.

use privtopk_core::local::{max_step, topk_step, LocalAction};
use privtopk_domain::rng::seeded_rng;
use privtopk_domain::{TopKVector, Value, ValueDomain};

/// Chi-square statistic for observed counts against a uniform expectation.
fn chi_square_uniform(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .map(|&c| {
            let d = c as f64 - expected;
            d * d / expected
        })
        .sum()
}

/// 99.9th percentile of chi-square with 9 degrees of freedom — a seeded
/// (non-flaky) test can use a tight quantile.
const CHI2_9DF_999: f64 = 27.88;

#[test]
fn algorithm_1_masked_values_are_uniform() {
    let domain = ValueDomain::paper_default();
    let (g, v) = (Value::new(1000), Value::new(2000));
    let mut rng = seeded_rng(0xC0FFEE);
    let mut buckets = [0u64; 10];
    let mut samples = 0u64;
    while samples < 50_000 {
        let step = max_step(&mut rng, 1.0, g, v, &domain).unwrap();
        assert_eq!(step.action, LocalAction::Randomized);
        let x = step.output.get();
        assert!((1000..2000).contains(&x));
        buckets[((x - 1000) / 100) as usize] += 1;
        samples += 1;
    }
    let chi2 = chi_square_uniform(&buckets);
    assert!(
        chi2 < CHI2_9DF_999,
        "masked values not uniform: chi2 = {chi2}, buckets {buckets:?}"
    );
}

#[test]
fn algorithm_1_branch_probability_is_calibrated() {
    // The randomize/insert branch must follow P_r exactly; a miscalibrated
    // branch would shift both the correctness and the privacy curves.
    let domain = ValueDomain::paper_default();
    let (g, v) = (Value::new(10), Value::new(5000));
    for &p in &[0.1f64, 0.5, 0.9] {
        let mut rng = seeded_rng((p * 1000.0) as u64);
        let trials = 40_000u32;
        let mut randomized = 0u32;
        for _ in 0..trials {
            if max_step(&mut rng, p, g, v, &domain).unwrap().action == LocalAction::Randomized {
                randomized += 1;
            }
        }
        let freq = f64::from(randomized) / f64::from(trials);
        // Three-sigma band for a binomial proportion.
        let sigma = (p * (1.0 - p) / f64::from(trials)).sqrt();
        assert!(
            (freq - p).abs() < 4.0 * sigma + 1e-3,
            "p = {p}: frequency {freq}"
        );
    }
}

#[test]
fn algorithm_2_tail_values_are_uniform_in_their_range() {
    // G = [9000, 5000], V = [7000, 1]: merged = [9000, 7000], m = 1,
    // G'[k] = 7000, anchor = G[2] = 5000, lower = min(6999, 5000) = 5000.
    // Tail must be uniform over [5000, 7000).
    let domain = ValueDomain::paper_default();
    let g = TopKVector::from_values(2, [9000, 5000].map(Value::new), &domain).unwrap();
    let v = TopKVector::from_values(2, [7000, 1].map(Value::new), &domain).unwrap();
    let mut rng = seeded_rng(0xFACADE);
    let mut buckets = [0u64; 10];
    for _ in 0..50_000 {
        let step = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain).unwrap();
        assert_eq!(step.action, LocalAction::Randomized);
        let tail = step.output.get(2).unwrap().get();
        assert!((5000..7000).contains(&tail), "tail {tail}");
        buckets[((tail - 5000) / 200) as usize] += 1;
    }
    let chi2 = chi_square_uniform(&buckets);
    assert!(chi2 < CHI2_9DF_999, "tail not uniform: chi2 = {chi2}");
}

#[test]
fn algorithm_2_tail_values_are_independent() {
    // With m = 2 the two tail values must be drawn independently: their
    // empirical correlation over many draws should vanish.
    let domain = ValueDomain::paper_default();
    let g = TopKVector::from_values(2, [500, 400].map(Value::new), &domain).unwrap();
    let v = TopKVector::from_values(2, [9000, 8000].map(Value::new), &domain).unwrap();
    let mut rng = seeded_rng(0xDECADE);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for _ in 0..20_000 {
        let step = topk_step(&mut rng, 1.0, &g, &v, false, 1, &domain).unwrap();
        // Sorted output hides pairing, so compare sum/diff moments
        // instead: record both entries.
        xs.push(step.output.get(1).unwrap().get() as f64);
        ys.push(step.output.get(2).unwrap().get() as f64);
    }
    // For two iid uniforms reported as (max, min), the theoretical
    // correlation is 0.5 — far from 1.0 (perfectly coupled) and far from
    // what a shared-draw bug would produce. Check it.
    let n = xs.len() as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
    let (mx, my) = (mean(&xs), mean(&ys));
    let cov: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(a, b)| (a - mx) * (b - my))
        .sum::<f64>()
        / n;
    let sx = (xs.iter().map(|a| (a - mx).powi(2)).sum::<f64>() / n).sqrt();
    let sy = (ys.iter().map(|b| (b - my).powi(2)).sum::<f64>() / n).sqrt();
    let corr = cov / (sx * sy);
    assert!(
        (corr - 0.5).abs() < 0.05,
        "correlation of (max, min) of iid uniforms should be ~0.5, got {corr}"
    );
}

#[test]
fn masked_value_distribution_shifts_with_inputs() {
    // The sampler must track the [g, v) range, not cache it: moving g
    // moves the mass.
    let domain = ValueDomain::paper_default();
    let mut rng = seeded_rng(0xBEAD);
    let mean_for = |g: i64, v: i64, rng: &mut rand::rngs::SmallRng| -> f64 {
        let mut total = 0.0;
        for _ in 0..20_000 {
            let s = max_step(rng, 1.0, Value::new(g), Value::new(v), &domain).unwrap();
            total += s.output.get() as f64;
        }
        total / 20_000.0
    };
    let low = mean_for(0, 1000, &mut rng);
    let high = mean_for(8000, 9000, &mut rng);
    assert!((low - 500.0).abs() < 25.0, "mean {low}");
    assert!((high - 8500.0).abs() < 25.0, "mean {high}");
}
