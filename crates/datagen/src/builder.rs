//! Builder for whole synthetic datasets (one private database per node).

use rand::Rng;

use privtopk_domain::rng::SeedSpec;
use privtopk_domain::{NodeId, Value, ValueDomain};

use crate::{DataDistribution, DatagenError, PrivateDatabase};

/// Stream tags for [`SeedSpec`] derivation inside the builder.
const STREAM_NODE_DATA: u64 = 0x01;

/// Builds a fleet of synthetic [`PrivateDatabase`]s matching the paper's
/// experiment setup (Section 5.1): `n` nodes, values drawn i.i.d. from a
/// chosen distribution over a public domain.
///
/// # Example
///
/// ```
/// use privtopk_datagen::{DataDistribution, DatasetBuilder};
///
/// let dbs = DatasetBuilder::new(8)
///     .rows_per_node(50)
///     .distribution(DataDistribution::classic_zipf())
///     .seed(7)
///     .build()?;
/// assert_eq!(dbs.len(), 8);
/// assert!(dbs.iter().all(|db| db.len() == 50));
/// # Ok::<(), privtopk_datagen::DatagenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DatasetBuilder {
    nodes: usize,
    rows_min: usize,
    rows_max: usize,
    domain: ValueDomain,
    distribution: DataDistribution,
    seed: u64,
}

impl DatasetBuilder {
    /// Starts a builder for `nodes` private databases.
    #[must_use]
    pub fn new(nodes: usize) -> Self {
        DatasetBuilder {
            nodes,
            rows_min: 100,
            rows_max: 100,
            domain: ValueDomain::paper_default(),
            distribution: DataDistribution::Uniform,
            seed: 0,
        }
    }

    /// Every node holds exactly `rows` rows (the paper's setup).
    #[must_use]
    pub fn rows_per_node(mut self, rows: usize) -> Self {
        self.rows_min = rows;
        self.rows_max = rows;
        self
    }

    /// Node sizes drawn uniformly from `[min, max]` — heterogeneous
    /// databases, a more realistic variation.
    #[must_use]
    pub fn rows_between(mut self, min: usize, max: usize) -> Self {
        self.rows_min = min;
        self.rows_max = max;
        self
    }

    /// Overrides the public value domain (default: `[1, 10000]`).
    #[must_use]
    pub fn domain(mut self, domain: ValueDomain) -> Self {
        self.domain = domain;
        self
    }

    /// Chooses the value distribution (default: uniform).
    #[must_use]
    pub fn distribution(mut self, distribution: DataDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Sets the master seed; everything derives deterministically from it.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generates the databases.
    ///
    /// # Errors
    ///
    /// - [`DatagenError::InvalidParameter`] if `nodes == 0` or the row range
    ///   is inverted, or if the distribution parameters are invalid.
    pub fn build(&self) -> Result<Vec<PrivateDatabase>, DatagenError> {
        if self.nodes == 0 {
            return Err(DatagenError::InvalidParameter {
                what: "dataset needs at least one node",
            });
        }
        if self.rows_min > self.rows_max {
            return Err(DatagenError::InvalidParameter {
                what: "rows_between requires min <= max",
            });
        }
        let sampler = self.distribution.sampler(self.domain)?;
        let spec = SeedSpec::new(self.seed);
        let mut out = Vec::with_capacity(self.nodes);
        for i in 0..self.nodes {
            let mut rng = spec.stream(STREAM_NODE_DATA).stream(i as u64).rng();
            let rows = if self.rows_min == self.rows_max {
                self.rows_min
            } else {
                rng.gen_range(self.rows_min..=self.rows_max)
            };
            let values: Vec<Value> = sampler.sample_many(&mut rng, rows);
            out.push(PrivateDatabase::from_values(
                NodeId::new(i),
                self.domain,
                values,
            )?);
        }
        Ok(out)
    }

    /// Convenience: generate and immediately extract each node's local
    /// top-k vector.
    ///
    /// # Errors
    ///
    /// Propagates [`DatagenError`] from [`DatasetBuilder::build`] plus
    /// domain errors from top-k extraction.
    pub fn build_local_topk(
        &self,
        k: usize,
    ) -> Result<Vec<privtopk_domain::TopKVector>, DatagenError> {
        let dbs = self.build()?;
        let mut out = Vec::with_capacity(dbs.len());
        for db in &dbs {
            out.push(db.local_topk(k)?);
        }
        Ok(out)
    }

    /// A lazy value stream for one node — the streaming-ingest path.
    ///
    /// Yields exactly the values [`build`](Self::build) would place in
    /// node `node`'s database, in the same order (same per-node RNG
    /// stream, same sequential draws), but one at a time: feeding the
    /// stream straight into a persistent store keeps peak memory
    /// independent of the row count, which is what lets a 1-core
    /// container seed 10^6+ rows per node.
    ///
    /// # Errors
    ///
    /// As [`build`](Self::build): invalid node count, row range, or
    /// distribution parameters — plus `node >= nodes`.
    pub fn node_value_stream(&self, node: usize) -> Result<NodeValueStream, DatagenError> {
        if self.nodes == 0 {
            return Err(DatagenError::InvalidParameter {
                what: "dataset needs at least one node",
            });
        }
        if node >= self.nodes {
            return Err(DatagenError::InvalidParameter {
                what: "node index out of range",
            });
        }
        if self.rows_min > self.rows_max {
            return Err(DatagenError::InvalidParameter {
                what: "rows_between requires min <= max",
            });
        }
        let sampler = self.distribution.sampler(self.domain)?;
        let spec = SeedSpec::new(self.seed);
        let mut rng = spec.stream(STREAM_NODE_DATA).stream(node as u64).rng();
        let remaining = if self.rows_min == self.rows_max {
            self.rows_min
        } else {
            rng.gen_range(self.rows_min..=self.rows_max)
        };
        Ok(NodeValueStream {
            sampler,
            rng,
            remaining,
        })
    }
}

/// Lazy per-node value generator returned by
/// [`DatasetBuilder::node_value_stream`].
#[derive(Debug)]
pub struct NodeValueStream {
    sampler: crate::Sampler,
    rng: rand::rngs::SmallRng,
    remaining: usize,
}

impl Iterator for NodeValueStream {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.sampler.sample(&mut self.rng))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for NodeValueStream {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_requested_shape() {
        let dbs = DatasetBuilder::new(5)
            .rows_per_node(30)
            .seed(1)
            .build()
            .unwrap();
        assert_eq!(dbs.len(), 5);
        assert!(dbs.iter().all(|d| d.len() == 30));
        // NodeIds are sequential.
        assert_eq!(dbs[4].owner(), NodeId::new(4));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = DatasetBuilder::new(3).seed(9).build().unwrap();
        let b = DatasetBuilder::new(3).seed(9).build().unwrap();
        let c = DatasetBuilder::new(3).seed(10).build().unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn nodes_have_independent_data() {
        let dbs = DatasetBuilder::new(2)
            .rows_per_node(20)
            .seed(3)
            .build()
            .unwrap();
        assert!(!dbs[0].sensitive_values().eq(dbs[1].sensitive_values()));
    }

    #[test]
    fn heterogeneous_row_counts() {
        let dbs = DatasetBuilder::new(40)
            .rows_between(10, 50)
            .seed(4)
            .build()
            .unwrap();
        let sizes: Vec<usize> = dbs.iter().map(PrivateDatabase::len).collect();
        assert!(sizes.iter().all(|&s| (10..=50).contains(&s)));
        assert!(sizes.iter().any(|&s| s != sizes[0]), "sizes should vary");
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(DatasetBuilder::new(0).build().is_err());
        assert!(DatasetBuilder::new(2).rows_between(5, 4).build().is_err());
    }

    #[test]
    fn local_topk_extraction_shortcut() {
        let vecs = DatasetBuilder::new(4)
            .rows_per_node(10)
            .seed(5)
            .build_local_topk(3)
            .unwrap();
        assert_eq!(vecs.len(), 4);
        assert!(vecs.iter().all(|v| v.k() == 3));
    }

    #[test]
    fn value_stream_matches_build_exactly() {
        let builder = DatasetBuilder::new(3)
            .rows_between(10, 40)
            .distribution(DataDistribution::classic_zipf())
            .seed(11);
        let dbs = builder.build().unwrap();
        for (i, db) in dbs.iter().enumerate() {
            let streamed: Vec<Value> = builder.node_value_stream(i).unwrap().collect();
            assert!(
                db.sensitive_values().eq(streamed.iter().copied()),
                "node {i} stream diverged from build()"
            );
        }
    }

    #[test]
    fn value_stream_validates_node_index() {
        let builder = DatasetBuilder::new(2);
        assert!(builder.node_value_stream(2).is_err());
        assert!(DatasetBuilder::new(0).node_value_stream(0).is_err());
    }

    #[test]
    fn value_stream_reports_exact_length() {
        let stream = DatasetBuilder::new(1)
            .rows_per_node(25)
            .seed(2)
            .node_value_stream(0)
            .unwrap();
        assert_eq!(stream.len(), 25);
        assert_eq!(stream.count(), 25);
    }

    #[test]
    fn custom_domain_respected() {
        let domain = ValueDomain::new(Value::new(100), Value::new(200)).unwrap();
        let dbs = DatasetBuilder::new(2)
            .domain(domain)
            .rows_per_node(50)
            .seed(6)
            .build()
            .unwrap();
        for db in dbs {
            assert!(db.sensitive_values().all(|v| domain.contains(v)));
        }
    }
}
