//! The private database a node contributes to the protocol.

use std::fmt;

use serde::{Deserialize, Serialize};

use privtopk_domain::{DomainError, NodeId, TopKVector, Value, ValueDomain};

use crate::{ColumnId, DatagenError, Table};

/// One organization's private database: a [`Table`] plus the designated
/// sensitive column the top-k query ranges over.
///
/// The only artifact that ever leaves a `PrivateDatabase` is the *local
/// top-k vector* of the sensitive column ("each node first sorts its values
/// and takes the local set of topk values as its local topk vector", §3.4).
/// Everything else stays private by construction.
///
/// # Example
///
/// ```
/// use privtopk_datagen::PrivateDatabase;
/// use privtopk_domain::{NodeId, Value, ValueDomain};
///
/// let db = PrivateDatabase::from_values(
///     NodeId::new(0),
///     ValueDomain::paper_default(),
///     [Value::new(30), Value::new(12)],
/// )?;
/// assert_eq!(db.local_max()?, Value::new(30));
/// # Ok::<(), privtopk_datagen::DatagenError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateDatabase {
    owner: NodeId,
    domain: ValueDomain,
    table: Table,
    sensitive: ColumnId,
}

impl PrivateDatabase {
    /// Wraps an existing table, designating `sensitive_column` as the
    /// attribute queried by the protocol.
    ///
    /// # Errors
    ///
    /// - [`DatagenError::UnknownColumn`] if the column does not exist.
    /// - [`DatagenError::Domain`] if any sensitive value falls outside
    ///   `domain` (the paper assumes a publicly known domain).
    pub fn new(
        owner: NodeId,
        domain: ValueDomain,
        table: Table,
        sensitive_column: &str,
    ) -> Result<Self, DatagenError> {
        let sensitive = table.column_by_name(sensitive_column)?;
        for v in table.column_iter(sensitive) {
            if !domain.contains(v) {
                return Err(DomainError::OutOfDomain { value: v }.into());
            }
        }
        Ok(PrivateDatabase {
            owner,
            domain,
            table,
            sensitive,
        })
    }

    /// Builds a single-column database directly from values — the common
    /// case in experiments.
    ///
    /// # Errors
    ///
    /// Returns [`DatagenError::Domain`] if a value is outside `domain`.
    pub fn from_values<I>(
        owner: NodeId,
        domain: ValueDomain,
        values: I,
    ) -> Result<Self, DatagenError>
    where
        I: IntoIterator<Item = Value>,
    {
        let mut table = Table::new(["value"])?;
        for v in values {
            table.push_row(vec![v])?;
        }
        PrivateDatabase::new(owner, domain, table, "value")
    }

    /// The owning node.
    #[must_use]
    pub fn owner(&self) -> NodeId {
        self.owner
    }

    /// The public value domain of the sensitive attribute.
    #[must_use]
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }

    /// Number of rows held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the database holds no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Read-only access to the underlying table (local use only — handing
    /// this to another party is precisely the disclosure the protocol
    /// exists to avoid).
    #[must_use]
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// The sensitive column's values, unsorted, borrowed from the table
    /// (no per-call column clone).
    pub fn sensitive_values(&self) -> impl ExactSizeIterator<Item = Value> + '_ {
        self.table.column_iter(self.sensitive)
    }

    /// The node's local top-k vector for the protocol: its `k` largest
    /// sensitive values, padded with the domain floor if it holds fewer
    /// than `k` rows.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::ZeroK`] if `k == 0`.
    pub fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError> {
        TopKVector::from_values(k, self.sensitive_values(), &self.domain)
    }

    /// The node's local maximum (`k = 1` special case).
    ///
    /// # Errors
    ///
    /// Never fails for a non-empty database; an empty database yields the
    /// domain floor, which is correct protocol behavior (it contributes
    /// nothing).
    pub fn local_max(&self) -> Result<Value, DomainError> {
        Ok(self.local_topk(1)?.first())
    }
}

impl privtopk_domain::LocalTopkSource for PrivateDatabase {
    fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError> {
        PrivateDatabase::local_topk(self, k)
    }

    fn row_count(&self) -> u64 {
        self.table.len() as u64
    }
}

impl fmt::Display for PrivateDatabase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} private database ({} rows, domain {})",
            self.owner,
            self.table.len(),
            self.domain
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db(values: &[i64]) -> PrivateDatabase {
        PrivateDatabase::from_values(
            NodeId::new(1),
            ValueDomain::paper_default(),
            values.iter().copied().map(Value::new),
        )
        .unwrap()
    }

    #[test]
    fn local_topk_sorts_and_pads() {
        let d = db(&[500, 100, 900]);
        let top2 = d.local_topk(2).unwrap();
        assert_eq!(top2.as_slice(), &[Value::new(900), Value::new(500)]);
        let top5 = d.local_topk(5).unwrap();
        assert_eq!(top5.get(4), Some(Value::new(1))); // domain floor pad
    }

    #[test]
    fn local_max_is_largest_value() {
        assert_eq!(db(&[3, 9, 7]).local_max().unwrap(), Value::new(9));
    }

    #[test]
    fn empty_database_contributes_floor() {
        let d = db(&[]);
        assert!(d.is_empty());
        assert_eq!(d.local_max().unwrap(), Value::new(1));
    }

    #[test]
    fn rejects_out_of_domain_values() {
        let err = PrivateDatabase::from_values(
            NodeId::new(0),
            ValueDomain::paper_default(),
            [Value::new(0)],
        )
        .unwrap_err();
        assert!(matches!(err, DatagenError::Domain(_)));
    }

    #[test]
    fn multi_column_table_uses_designated_column() {
        let mut t = Table::new(["region", "sales"]).unwrap();
        t.push_row(vec![Value::new(1), Value::new(700)]).unwrap();
        t.push_row(vec![Value::new(2), Value::new(300)]).unwrap();
        let d =
            PrivateDatabase::new(NodeId::new(3), ValueDomain::paper_default(), t, "sales").unwrap();
        assert_eq!(d.local_max().unwrap(), Value::new(700));
        assert_eq!(d.owner(), NodeId::new(3));
        // The region column (value 1, 2) is not part of the query.
        assert_eq!(
            d.sensitive_values().collect::<Vec<_>>(),
            vec![Value::new(700), Value::new(300)]
        );
    }

    #[test]
    fn unknown_sensitive_column_rejected() {
        let t = Table::new(["a"]).unwrap();
        assert!(
            PrivateDatabase::new(NodeId::new(0), ValueDomain::paper_default(), t, "missing")
                .is_err()
        );
    }

    #[test]
    fn display_mentions_owner_and_rows() {
        let d = db(&[5, 6]);
        let s = d.to_string();
        assert!(s.contains("node#1"));
        assert!(s.contains("2 rows"));
    }
}
