//! Samplers for the data distributions used in the paper's evaluation.

use std::fmt;

use rand::Rng;
use serde::{Deserialize, Serialize};

use privtopk_domain::{Value, ValueDomain};

use crate::DatagenError;

/// The data distributions the paper experiments with (Section 5.1).
///
/// Results in the paper "are similar" across distributions, so uniform is
/// the default; normal and Zipf are provided to reproduce that robustness
/// claim.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum DataDistribution {
    /// Uniform over the whole domain.
    #[default]
    Uniform,
    /// Normal with the given mean and standard deviation *as fractions of
    /// the domain width*, clamped into the domain.
    ///
    /// `mean_frac = 0.5, stddev_frac = 0.15` puts the bell in the middle of
    /// the domain with ~3σ spanning it.
    Normal {
        /// Mean position as a fraction of the domain width in `[0, 1]`.
        mean_frac: f64,
        /// Standard deviation as a fraction of the domain width, `> 0`.
        stddev_frac: f64,
    },
    /// Zipf-distributed *ranks*: domain value `max − r + 1` is sampled with
    /// probability proportional to `1 / r^exponent`, so large values are
    /// rare — the adversarially interesting case for top-k queries.
    Zipf {
        /// Skew exponent `s > 0`; `s = 1` is classic Zipf.
        exponent: f64,
    },
}

impl DataDistribution {
    /// A centered normal matching the usual "bell over the domain" setup.
    #[must_use]
    pub fn centered_normal() -> Self {
        DataDistribution::Normal {
            mean_frac: 0.5,
            stddev_frac: 0.15,
        }
    }

    /// Classic Zipf with exponent 1.
    #[must_use]
    pub fn classic_zipf() -> Self {
        DataDistribution::Zipf { exponent: 1.0 }
    }

    /// Creates a sampler for this distribution over `domain`.
    ///
    /// # Errors
    ///
    /// Returns [`DatagenError::InvalidParameter`] for non-positive standard
    /// deviations or exponents, out-of-range means, or a Zipf domain too
    /// wide to tabulate.
    pub fn sampler(&self, domain: ValueDomain) -> Result<Sampler, DatagenError> {
        match *self {
            DataDistribution::Uniform => Ok(Sampler {
                domain,
                inner: SamplerInner::Uniform,
            }),
            DataDistribution::Normal {
                mean_frac,
                stddev_frac,
            } => {
                if !(0.0..=1.0).contains(&mean_frac) {
                    return Err(DatagenError::InvalidParameter {
                        what: "normal mean_frac must be within [0, 1]",
                    });
                }
                if stddev_frac.is_nan() || !stddev_frac.is_finite() || stddev_frac <= 0.0 {
                    return Err(DatagenError::InvalidParameter {
                        what: "normal stddev_frac must be positive and finite",
                    });
                }
                let width = domain.width() as f64;
                Ok(Sampler {
                    domain,
                    inner: SamplerInner::Normal {
                        mean: domain.min().get() as f64 + mean_frac * (width - 1.0),
                        stddev: stddev_frac * width,
                    },
                })
            }
            DataDistribution::Zipf { exponent } => {
                let zipf = ZipfSampler::new(domain, exponent)?;
                Ok(Sampler {
                    domain,
                    inner: SamplerInner::Zipf(zipf),
                })
            }
        }
    }
}

impl fmt::Display for DataDistribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataDistribution::Uniform => write!(f, "uniform"),
            DataDistribution::Normal {
                mean_frac,
                stddev_frac,
            } => write!(f, "normal(mean={mean_frac}, stddev={stddev_frac})"),
            DataDistribution::Zipf { exponent } => write!(f, "zipf(s={exponent})"),
        }
    }
}

/// A materialized sampler: a distribution bound to a concrete domain.
#[derive(Debug, Clone)]
pub struct Sampler {
    domain: ValueDomain,
    inner: SamplerInner,
}

#[derive(Debug, Clone)]
enum SamplerInner {
    Uniform,
    Normal { mean: f64, stddev: f64 },
    Zipf(ZipfSampler),
}

impl Sampler {
    /// The domain samples are drawn from.
    #[must_use]
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Value {
        match &self.inner {
            SamplerInner::Uniform => self.domain.sample_uniform(rng),
            SamplerInner::Normal { mean, stddev } => {
                let z = sample_standard_normal(rng);
                let raw = (mean + stddev * z).round() as i64;
                self.domain.clamp(Value::new(raw))
            }
            SamplerInner::Zipf(zipf) => zipf.sample(rng),
        }
    }

    /// Draws `count` values.
    pub fn sample_many<R: Rng + ?Sized>(&self, rng: &mut R, count: usize) -> Vec<Value> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

/// One draw from the standard normal via the Box–Muller transform.
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Inverse-CDF Zipf sampler over the *ranks* of a bounded integer domain.
///
/// Rank 1 (most probable) maps to the domain *minimum* and the last rank to
/// the domain maximum, so large attribute values — the ones a top-k query
/// hunts for — are the rare tail, which is the realistic shape for, e.g.,
/// sales figures.
///
/// The cumulative table costs `O(width)` memory; construction refuses
/// domains wider than [`ZipfSampler::MAX_WIDTH`].
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    domain: ValueDomain,
    /// `cdf[i]` = P(rank <= i+1), normalized to end at exactly 1.0.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Largest domain width the sampler will tabulate (16 Mi values).
    pub const MAX_WIDTH: u64 = 1 << 24;

    /// Builds the cumulative table for `domain` with skew `exponent`.
    ///
    /// # Errors
    ///
    /// Returns [`DatagenError::InvalidParameter`] if `exponent <= 0` or the
    /// domain is wider than [`ZipfSampler::MAX_WIDTH`].
    pub fn new(domain: ValueDomain, exponent: f64) -> Result<Self, DatagenError> {
        if exponent.is_nan() || !exponent.is_finite() || exponent <= 0.0 {
            return Err(DatagenError::InvalidParameter {
                what: "zipf exponent must be positive and finite",
            });
        }
        let width = domain.width();
        if width > Self::MAX_WIDTH {
            return Err(DatagenError::InvalidParameter {
                what: "zipf domain too wide to tabulate",
            });
        }
        let mut cdf = Vec::with_capacity(width as usize);
        let mut acc = 0.0f64;
        for rank in 1..=width {
            acc += 1.0 / (rank as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating point leaving the last entry below 1.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Ok(ZipfSampler { domain, cdf })
    }

    /// Draws one value.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Value {
        let u: f64 = rng.gen();
        // First index with cdf >= u.
        let idx = self.cdf.partition_point(|&c| c < u);
        // Rank 1 -> domain.min(), last rank -> domain.max().
        Value::new(self.domain.min().get() + idx as i64)
    }

    /// Probability mass of the value at 1-based `rank`.
    #[must_use]
    pub fn pmf(&self, rank: usize) -> f64 {
        if rank == 0 || rank > self.cdf.len() {
            return 0.0;
        }
        if rank == 1 {
            self.cdf[0]
        } else {
            self.cdf[rank - 1] - self.cdf[rank - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::rng::seeded_rng;

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    #[test]
    fn uniform_sampler_covers_domain() {
        let s = DataDistribution::Uniform.sampler(domain()).unwrap();
        let mut rng = seeded_rng(1);
        let values = s.sample_many(&mut rng, 20_000);
        assert!(values.iter().all(|v| domain().contains(*v)));
        // Empirical mean of U[1,10000] should be near 5000.5.
        let mean: f64 = values.iter().map(|v| v.get() as f64).sum::<f64>() / values.len() as f64;
        assert!((mean - 5000.5).abs() < 100.0, "mean was {mean}");
    }

    #[test]
    fn normal_sampler_concentrates_near_mean() {
        let s = DataDistribution::centered_normal()
            .sampler(domain())
            .unwrap();
        let mut rng = seeded_rng(2);
        let values = s.sample_many(&mut rng, 20_000);
        let mean: f64 = values.iter().map(|v| v.get() as f64).sum::<f64>() / values.len() as f64;
        assert!((mean - 5000.0).abs() < 100.0, "mean was {mean}");
        // ~68% within one sigma (1500).
        let within: f64 = values
            .iter()
            .filter(|v| (v.get() as f64 - 5000.0).abs() <= 1500.0)
            .count() as f64
            / values.len() as f64;
        assert!((within - 0.68).abs() < 0.05, "within-1-sigma was {within}");
    }

    #[test]
    fn normal_sampler_clamps_to_domain() {
        // Extreme sigma: lots of mass outside, all clamped back in.
        let dist = DataDistribution::Normal {
            mean_frac: 0.0,
            stddev_frac: 3.0,
        };
        let s = dist.sampler(domain()).unwrap();
        let mut rng = seeded_rng(3);
        for v in s.sample_many(&mut rng, 5000) {
            assert!(domain().contains(v));
        }
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert!(DataDistribution::Normal {
            mean_frac: 1.5,
            stddev_frac: 0.1
        }
        .sampler(domain())
        .is_err());
        assert!(DataDistribution::Normal {
            mean_frac: 0.5,
            stddev_frac: 0.0
        }
        .sampler(domain())
        .is_err());
    }

    #[test]
    fn zipf_small_values_dominate() {
        let s = DataDistribution::classic_zipf().sampler(domain()).unwrap();
        let mut rng = seeded_rng(4);
        let values = s.sample_many(&mut rng, 20_000);
        assert!(values.iter().all(|v| domain().contains(*v)));
        let low = values.iter().filter(|v| v.get() <= 100).count() as f64;
        let high = values.iter().filter(|v| v.get() > 9900).count() as f64;
        assert!(
            low > 10.0 * (high + 1.0),
            "zipf head should dominate: low={low}, high={high}"
        );
    }

    #[test]
    fn zipf_pmf_is_decreasing_and_normalized() {
        let z = ZipfSampler::new(
            ValueDomain::new(Value::new(1), Value::new(100)).unwrap(),
            1.2,
        )
        .unwrap();
        let mut total = 0.0;
        let mut prev = f64::INFINITY;
        for rank in 1..=100 {
            let p = z.pmf(rank);
            assert!(p <= prev + 1e-12);
            prev = p;
            total += p;
        }
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(101), 0.0);
    }

    #[test]
    fn zipf_rejects_bad_parameters() {
        assert!(ZipfSampler::new(domain(), 0.0).is_err());
        assert!(ZipfSampler::new(domain(), f64::NAN).is_err());
        let huge = ValueDomain::new(Value::new(0), Value::new(i64::MAX / 2)).unwrap();
        assert!(ZipfSampler::new(huge, 1.0).is_err());
    }

    #[test]
    fn samplers_are_deterministic_under_seed() {
        for dist in [
            DataDistribution::Uniform,
            DataDistribution::centered_normal(),
            DataDistribution::classic_zipf(),
        ] {
            let s = dist.sampler(domain()).unwrap();
            let a = s.sample_many(&mut seeded_rng(9), 50);
            let b = s.sample_many(&mut seeded_rng(9), 50);
            assert_eq!(a, b, "distribution {dist} not deterministic");
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DataDistribution::Uniform.to_string(), "uniform");
        assert_eq!(DataDistribution::classic_zipf().to_string(), "zipf(s=1)");
    }
}
