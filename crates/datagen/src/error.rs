//! Errors for data generation.

use std::error::Error;
use std::fmt;

use privtopk_domain::DomainError;

/// Errors produced while generating synthetic datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DatagenError {
    /// A distribution or builder parameter was invalid.
    InvalidParameter {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// A referenced column does not exist in the table.
    UnknownColumn {
        /// The requested column name.
        name: String,
    },
    /// A row had the wrong number of columns.
    RowArity {
        /// Expected number of columns.
        expected: usize,
        /// Number of values actually supplied.
        got: usize,
    },
    /// An underlying domain error (empty domain, zero k, ...).
    Domain(DomainError),
}

impl fmt::Display for DatagenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatagenError::InvalidParameter { what } => write!(f, "invalid parameter: {what}"),
            DatagenError::UnknownColumn { name } => write!(f, "unknown column `{name}`"),
            DatagenError::RowArity { expected, got } => {
                write!(f, "row has {got} values but table has {expected} columns")
            }
            DatagenError::Domain(e) => write!(f, "domain error: {e}"),
        }
    }
}

impl Error for DatagenError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DatagenError::Domain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DomainError> for DatagenError {
    fn from(e: DomainError) -> Self {
        DatagenError::Domain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::Value;

    #[test]
    fn display_all_variants() {
        let variants: Vec<DatagenError> = vec![
            DatagenError::InvalidParameter { what: "boom" },
            DatagenError::UnknownColumn {
                name: "sales".into(),
            },
            DatagenError::RowArity {
                expected: 3,
                got: 2,
            },
            DatagenError::Domain(DomainError::OutOfDomain {
                value: Value::new(-1),
            }),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn domain_error_converts_and_chains() {
        let e: DatagenError = DomainError::ZeroK.into();
        assert!(matches!(e, DatagenError::Domain(DomainError::ZeroK)));
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<DatagenError>();
    }
}
