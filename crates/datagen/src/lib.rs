//! Synthetic private databases for the `privtopk` reproduction.
//!
//! The paper's evaluation (Section 5.1) generates attribute values "randomly
//! ... over the integer domain `[1,10000]`" and experiments "with various
//! distributions of data, such as uniform distribution, normal distribution,
//! and zipf distribution". The offline dependency set has no `rand_distr`,
//! so normal (Box–Muller) and Zipf (inverse-CDF) sampling are implemented
//! here from first principles.
//!
//! The crate also models the *private database* itself: a small relational
//! [`Table`] with named columns, wrapped in a [`PrivateDatabase`] that knows
//! how to extract the local top-k vector of a sensitive attribute — the only
//! thing a node ever feeds into the protocol.
//!
//! # Example
//!
//! ```
//! use privtopk_datagen::{DatasetBuilder, DataDistribution};
//!
//! let dbs = DatasetBuilder::new(4)
//!     .rows_per_node(100)
//!     .distribution(DataDistribution::Uniform)
//!     .seed(42)
//!     .build()?;
//! assert_eq!(dbs.len(), 4);
//! let local_top3 = dbs[0].local_topk(3)?;
//! assert_eq!(local_top3.k(), 3);
//! # Ok::<(), privtopk_datagen::DatagenError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod database;
mod distribution;
mod error;
mod table;

pub use builder::{DatasetBuilder, NodeValueStream};
pub use database::PrivateDatabase;
pub use distribution::{DataDistribution, Sampler, ZipfSampler};
pub use error::DatagenError;
pub use table::{ColumnId, Table};
