//! A minimal relational table: the "private database" behind each node.
//!
//! The protocol only ever touches one sensitive column, but modelling a real
//! multi-column table keeps the examples honest (a retailer's database has
//! more than one number in it) and exercises the paper's assumption that
//! "database schemas and attribute names are known and well matched across
//! n nodes".

use std::fmt;

use serde::{Deserialize, Serialize};

use privtopk_domain::Value;

use crate::DatagenError;

/// Index of a column within a [`Table`] schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ColumnId(usize);

impl ColumnId {
    /// Raw column index.
    #[must_use]
    pub const fn get(self) -> usize {
        self.0
    }
}

/// An in-memory table with a fixed schema of named integer columns.
///
/// # Example
///
/// ```
/// use privtopk_datagen::Table;
/// use privtopk_domain::Value;
///
/// let mut t = Table::new(["region", "sales"])?;
/// t.push_row(vec![Value::new(1), Value::new(870)])?;
/// t.push_row(vec![Value::new(2), Value::new(430)])?;
/// let sales = t.column_by_name("sales")?;
/// assert_eq!(t.column_values(sales), vec![Value::new(870), Value::new(430)]);
/// # Ok::<(), privtopk_datagen::DatagenError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<String>,
    /// Row-major storage; every row has exactly `columns.len()` values.
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table with the given column names.
    ///
    /// # Errors
    ///
    /// Returns [`DatagenError::InvalidParameter`] if no columns are given or
    /// names are duplicated.
    pub fn new<I, S>(columns: I) -> Result<Self, DatagenError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let columns: Vec<String> = columns.into_iter().map(Into::into).collect();
        if columns.is_empty() {
            return Err(DatagenError::InvalidParameter {
                what: "table needs at least one column",
            });
        }
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].contains(c) {
                return Err(DatagenError::InvalidParameter {
                    what: "duplicate column name",
                });
            }
        }
        Ok(Table {
            columns,
            rows: Vec::new(),
        })
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The schema's column names, in order.
    #[must_use]
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Resolves a column name to its id.
    ///
    /// # Errors
    ///
    /// Returns [`DatagenError::UnknownColumn`] if no column has that name.
    pub fn column_by_name(&self, name: &str) -> Result<ColumnId, DatagenError> {
        self.columns
            .iter()
            .position(|c| c == name)
            .map(ColumnId)
            .ok_or_else(|| DatagenError::UnknownColumn { name: name.into() })
    }

    /// Appends a row.
    ///
    /// # Errors
    ///
    /// Returns [`DatagenError::RowArity`] if the row length does not match
    /// the schema.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<(), DatagenError> {
        if row.len() != self.columns.len() {
            return Err(DatagenError::RowArity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        self.rows.push(row);
        Ok(())
    }

    /// Returns a row by index.
    #[must_use]
    pub fn row(&self, idx: usize) -> Option<&[Value]> {
        self.rows.get(idx).map(Vec::as_slice)
    }

    /// Extracts all values of one column (in row order).
    ///
    /// Allocates a fresh vector; prefer [`column_iter`](Self::column_iter)
    /// when a pass over the column is all that is needed.
    #[must_use]
    pub fn column_values(&self, col: ColumnId) -> Vec<Value> {
        self.column_iter(col).collect()
    }

    /// Iterates over one column's values (in row order) without
    /// allocating.
    pub fn column_iter(&self, col: ColumnId) -> impl ExactSizeIterator<Item = Value> + '_ {
        self.rows.iter().map(move |r| r[col.0])
    }

    /// Iterates over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, Vec<Value>> {
        self.rows.iter()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.columns.join(" | "))?;
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(Value::to_string).collect();
            writeln!(f, "{}", cells.join(" | "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new(["quarter", "sales"]).unwrap();
        t.push_row(vec![Value::new(1), Value::new(100)]).unwrap();
        t.push_row(vec![Value::new(2), Value::new(250)]).unwrap();
        t
    }

    #[test]
    fn schema_validation() {
        assert!(Table::new(Vec::<String>::new()).is_err());
        assert!(Table::new(["a", "a"]).is_err());
        assert!(Table::new(["a", "b"]).is_ok());
    }

    #[test]
    fn push_and_read_rows() {
        let t = sample_table();
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.row(0).unwrap()[1], Value::new(100));
        assert_eq!(t.row(5), None);
    }

    #[test]
    fn row_arity_enforced() {
        let mut t = sample_table();
        let err = t.push_row(vec![Value::new(1)]).unwrap_err();
        assert!(matches!(
            err,
            DatagenError::RowArity {
                expected: 2,
                got: 1
            }
        ));
    }

    #[test]
    fn column_lookup_and_extraction() {
        let t = sample_table();
        let sales = t.column_by_name("sales").unwrap();
        assert_eq!(sales.get(), 1);
        assert_eq!(
            t.column_values(sales),
            vec![Value::new(100), Value::new(250)]
        );
        assert!(t.column_by_name("profit").is_err());
    }

    #[test]
    fn display_renders_header_and_rows() {
        let rendered = sample_table().to_string();
        assert!(rendered.contains("quarter | sales"));
        assert!(rendered.contains("2 | 250"));
    }

    #[test]
    fn iteration_in_row_order() {
        let t = sample_table();
        let firsts: Vec<i64> = t.iter().map(|r| r[0].get()).collect();
        assert_eq!(firsts, vec![1, 2]);
    }
}
