//! Property-based tests for data generation.

use privtopk_datagen::{DataDistribution, DatasetBuilder, PrivateDatabase};
use privtopk_domain::rng::seeded_rng;
use privtopk_domain::{Value, ValueDomain};
use proptest::prelude::*;

fn arb_distribution() -> impl Strategy<Value = DataDistribution> {
    prop_oneof![
        Just(DataDistribution::Uniform),
        (0.0f64..=1.0, 0.01f64..=0.5).prop_map(|(m, s)| DataDistribution::Normal {
            mean_frac: m,
            stddev_frac: s,
        }),
        (0.5f64..=2.5).prop_map(|e| DataDistribution::Zipf { exponent: e }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every sampler respects the domain for arbitrary parameters.
    #[test]
    fn samples_always_in_domain(
        dist in arb_distribution(),
        min in -1000i64..1000,
        width in 1i64..5000,
        seed in any::<u64>(),
    ) {
        let domain = ValueDomain::new(Value::new(min), Value::new(min + width)).unwrap();
        let sampler = dist.sampler(domain).unwrap();
        let mut rng = seeded_rng(seed);
        for v in sampler.sample_many(&mut rng, 200) {
            prop_assert!(domain.contains(v), "{dist}: {v} outside {domain}");
        }
    }

    /// Builders are pure functions of their configuration.
    #[test]
    fn builder_is_deterministic(
        dist in arb_distribution(),
        n in 1usize..8,
        rows in 1usize..30,
        seed in any::<u64>(),
    ) {
        let build = || {
            DatasetBuilder::new(n)
                .rows_per_node(rows)
                .distribution(dist)
                .seed(seed)
                .build()
                .unwrap()
        };
        prop_assert_eq!(build(), build());
    }

    /// Local top-k extraction always returns the k largest values the
    /// database holds (cross-checked against a plain sort).
    #[test]
    fn local_topk_matches_sort(
        values in prop::collection::vec(1i64..=10_000, 1..40),
        k in 1usize..8,
    ) {
        let domain = ValueDomain::paper_default();
        let db = PrivateDatabase::from_values(
            privtopk_domain::NodeId::new(0),
            domain,
            values.iter().copied().map(Value::new),
        )
        .unwrap();
        let topk = db.local_topk(k).unwrap();
        let mut sorted = values.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        for (rank, &expect) in sorted.iter().take(k).enumerate() {
            prop_assert_eq!(topk.get(rank + 1).unwrap(), Value::new(expect));
        }
        // Padding applies beyond the population.
        if values.len() < k {
            prop_assert_eq!(topk.kth(), domain.min());
        }
    }

    /// Zipf's head dominates its tail for any exponent above 1.
    #[test]
    fn zipf_head_heavier_than_tail(exponent in 1.0f64..=2.5, seed in any::<u64>()) {
        let domain = ValueDomain::new(Value::new(1), Value::new(1000)).unwrap();
        let sampler = DataDistribution::Zipf { exponent }.sampler(domain).unwrap();
        let mut rng = seeded_rng(seed);
        let samples = sampler.sample_many(&mut rng, 3000);
        let head = samples.iter().filter(|v| v.get() <= 100).count();
        let tail = samples.iter().filter(|v| v.get() > 900).count();
        prop_assert!(head > tail, "head {head} vs tail {tail} at s={exponent}");
    }
}
