//! The privacy taxonomy of Section 2: claims, exposure kinds, and the
//! probabilistic privacy spectrum.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{NodeId, Value};

/// The kind of knowledge an adversary may deduce about a node's value
/// (Section 2.2).
///
/// Data value exposure is a special case of data range exposure, which is in
/// turn a special case of probability-distribution exposure; the paper (and
/// this reproduction) focuses its quantitative analysis on *value* exposure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExposureKind {
    /// The adversary can prove the exact value (`v_i = a`).
    Value,
    /// The adversary can prove a range (`a <= v_i <= b`).
    Range,
    /// The adversary can prove the probability distribution of the value.
    Distribution,
}

impl fmt::Display for ExposureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ExposureKind::Value => "value exposure",
            ExposureKind::Range => "range exposure",
            ExposureKind::Distribution => "distribution exposure",
        };
        f.write_str(s)
    }
}

/// A concrete claim an adversary makes about a node's private data.
///
/// # Example
///
/// ```
/// use privtopk_domain::{Claim, NodeId, Value};
///
/// let c = Claim::value_is(NodeId::new(2), Value::new(40));
/// assert_eq!(c.kind(), privtopk_domain::ExposureKind::Value);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Claim {
    /// `v_target = value`.
    ValueIs {
        /// The node the claim is about.
        target: NodeId,
        /// The claimed exact value.
        value: Value,
    },
    /// `lo <= v_target <= hi` (inclusive bounds).
    ValueInRange {
        /// The node the claim is about.
        target: NodeId,
        /// Inclusive lower bound.
        lo: Value,
        /// Inclusive upper bound.
        hi: Value,
    },
    /// `v_target <= bound` — the range exposure the naive ring protocol
    /// inflicts on every node with respect to its successor.
    ValueAtMost {
        /// The node the claim is about.
        target: NodeId,
        /// Inclusive upper bound.
        bound: Value,
    },
    /// `v_target > bound` — what a successor learns about a *known* starting
    /// node that emitted a randomized value (the Section 3.3 walk-through
    /// discussion).
    ValueAbove {
        /// The node the claim is about.
        target: NodeId,
        /// Exclusive lower bound.
        bound: Value,
    },
}

impl Claim {
    /// Convenience constructor for an exact-value claim.
    #[must_use]
    pub fn value_is(target: NodeId, value: Value) -> Self {
        Claim::ValueIs { target, value }
    }

    /// The node the claim targets.
    #[must_use]
    pub fn target(&self) -> NodeId {
        match *self {
            Claim::ValueIs { target, .. }
            | Claim::ValueInRange { target, .. }
            | Claim::ValueAtMost { target, .. }
            | Claim::ValueAbove { target, .. } => target,
        }
    }

    /// Which exposure category the claim falls in.
    #[must_use]
    pub fn kind(&self) -> ExposureKind {
        match self {
            Claim::ValueIs { .. } => ExposureKind::Value,
            Claim::ValueInRange { .. } | Claim::ValueAtMost { .. } | Claim::ValueAbove { .. } => {
                ExposureKind::Range
            }
        }
    }

    /// Evaluates the claim against the node's actual value.
    #[must_use]
    pub fn holds_for(&self, actual: Value) -> bool {
        match *self {
            Claim::ValueIs { value, .. } => actual == value,
            Claim::ValueInRange { lo, hi, .. } => lo <= actual && actual <= hi,
            Claim::ValueAtMost { bound, .. } => actual <= bound,
            Claim::ValueAbove { bound, .. } => actual > bound,
        }
    }
}

impl fmt::Display for Claim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Claim::ValueIs { target, value } => write!(f, "v[{target}] = {value}"),
            Claim::ValueInRange { target, lo, hi } => {
                write!(f, "{lo} <= v[{target}] <= {hi}")
            }
            Claim::ValueAtMost { target, bound } => write!(f, "v[{target}] <= {bound}"),
            Claim::ValueAbove { target, bound } => write!(f, "v[{target}] > {bound}"),
        }
    }
}

/// The probabilistic privacy spectrum of Reiter & Rubin (Crowds), which the
/// paper reviews — and improves on — in Section 2.3.
///
/// Classification is a function of the probability `p` that a claim is true
/// and the group size `n`:
///
/// - `p == 1`: **provably exposed**;
/// - `p == 0`: **absolute privacy**;
/// - `p <= 1/n`: **beyond suspicion** (no more likely than any other node,
///   i.e. m-anonymity holds);
/// - `p <= 1/2`: **probable innocence** (more likely innocent than not);
/// - otherwise: **possible innocence**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PrivacySpectrum {
    /// The claim cannot be true (`p = 0`).
    AbsolutePrivacy,
    /// The node is no more likely than any other to satisfy the claim.
    BeyondSuspicion,
    /// The claim is less likely to be true than false.
    ProbableInnocence,
    /// The claim is more likely to be true than false, but not certain.
    PossibleInnocence,
    /// The adversary can prove the claim (`p = 1`).
    ProvablyExposed,
}

impl PrivacySpectrum {
    /// Classifies a claim-probability `p` within a system of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]` or `n == 0`.
    #[must_use]
    pub fn classify(p: f64, n: usize) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
        assert!(n > 0, "group must be non-empty");
        if p == 0.0 {
            PrivacySpectrum::AbsolutePrivacy
        } else if p >= 1.0 {
            PrivacySpectrum::ProvablyExposed
        } else if p <= 1.0 / n as f64 {
            PrivacySpectrum::BeyondSuspicion
        } else if p <= 0.5 {
            PrivacySpectrum::ProbableInnocence
        } else {
            PrivacySpectrum::PossibleInnocence
        }
    }
}

impl fmt::Display for PrivacySpectrum {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrivacySpectrum::AbsolutePrivacy => "absolute privacy",
            PrivacySpectrum::BeyondSuspicion => "beyond suspicion",
            PrivacySpectrum::ProbableInnocence => "probable innocence",
            PrivacySpectrum::PossibleInnocence => "possible innocence",
            PrivacySpectrum::ProvablyExposed => "provably exposed",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_kind_classification() {
        let n = NodeId::new(1);
        assert_eq!(
            Claim::value_is(n, Value::new(3)).kind(),
            ExposureKind::Value
        );
        assert_eq!(
            Claim::ValueAtMost {
                target: n,
                bound: Value::new(3)
            }
            .kind(),
            ExposureKind::Range
        );
    }

    #[test]
    fn claim_evaluation() {
        let n = NodeId::new(0);
        assert!(Claim::value_is(n, Value::new(5)).holds_for(Value::new(5)));
        assert!(!Claim::value_is(n, Value::new(5)).holds_for(Value::new(6)));
        let range = Claim::ValueInRange {
            target: n,
            lo: Value::new(2),
            hi: Value::new(4),
        };
        assert!(range.holds_for(Value::new(2)));
        assert!(range.holds_for(Value::new(4)));
        assert!(!range.holds_for(Value::new(5)));
        let at_most = Claim::ValueAtMost {
            target: n,
            bound: Value::new(10),
        };
        assert!(at_most.holds_for(Value::new(10)));
        assert!(!at_most.holds_for(Value::new(11)));
        let above = Claim::ValueAbove {
            target: n,
            bound: Value::new(16),
        };
        assert!(above.holds_for(Value::new(17)));
        assert!(!above.holds_for(Value::new(16)));
    }

    #[test]
    fn claim_target_and_display() {
        let c = Claim::value_is(NodeId::new(3), Value::new(40));
        assert_eq!(c.target(), NodeId::new(3));
        assert_eq!(c.to_string(), "v[node#3] = 40");
    }

    #[test]
    fn spectrum_extremes() {
        assert_eq!(
            PrivacySpectrum::classify(0.0, 4),
            PrivacySpectrum::AbsolutePrivacy
        );
        assert_eq!(
            PrivacySpectrum::classify(1.0, 4),
            PrivacySpectrum::ProvablyExposed
        );
    }

    #[test]
    fn spectrum_beyond_suspicion_at_one_over_n() {
        assert_eq!(
            PrivacySpectrum::classify(0.25, 4),
            PrivacySpectrum::BeyondSuspicion
        );
        assert_eq!(
            PrivacySpectrum::classify(0.26, 4),
            PrivacySpectrum::ProbableInnocence
        );
    }

    #[test]
    fn spectrum_innocence_boundary() {
        assert_eq!(
            PrivacySpectrum::classify(0.5, 100),
            PrivacySpectrum::ProbableInnocence
        );
        assert_eq!(
            PrivacySpectrum::classify(0.51, 100),
            PrivacySpectrum::PossibleInnocence
        );
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn spectrum_rejects_bad_probability() {
        let _ = PrivacySpectrum::classify(1.5, 4);
    }

    #[test]
    fn spectrum_orders_from_private_to_exposed() {
        assert!(PrivacySpectrum::AbsolutePrivacy < PrivacySpectrum::ProvablyExposed);
        assert!(PrivacySpectrum::BeyondSuspicion < PrivacySpectrum::PossibleInnocence);
    }

    #[test]
    fn display_strings() {
        assert_eq!(ExposureKind::Value.to_string(), "value exposure");
        assert_eq!(
            PrivacySpectrum::BeyondSuspicion.to_string(),
            "beyond suspicion"
        );
    }
}
