//! Error types for domain-level operations.

use std::error::Error;
use std::fmt;

use crate::Value;

/// Errors produced by domain-level constructors and sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DomainError {
    /// A [`crate::ValueDomain`] was constructed with `min > max`.
    EmptyDomain {
        /// Requested lower endpoint.
        min: Value,
        /// Requested upper endpoint.
        max: Value,
    },
    /// A half-open sampling range `[lo, hi)` was empty (`lo >= hi`).
    EmptyRange {
        /// Requested (inclusive) lower bound.
        lo: Value,
        /// Requested (exclusive) upper bound.
        hi: Value,
    },
    /// A top-k vector was requested with `k == 0`.
    ZeroK,
    /// A value fell outside the public domain.
    OutOfDomain {
        /// The offending value.
        value: Value,
    },
    /// A top-k vector operation received vectors of mismatched `k`.
    MismatchedK {
        /// `k` of the left operand.
        left: usize,
        /// `k` of the right operand.
        right: usize,
    },
    /// A bounded candidate view held too few values to answer a top-k
    /// request exactly (the backing [`crate::LocalTopkSource`] must be
    /// rebuilt or re-snapshotted with a larger candidate budget).
    InsufficientCandidates {
        /// Candidates available in the view.
        have: usize,
        /// Candidates needed for an exact answer.
        need: usize,
    },
}

impl fmt::Display for DomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainError::EmptyDomain { min, max } => {
                write!(f, "empty value domain: min {min} exceeds max {max}")
            }
            DomainError::EmptyRange { lo, hi } => {
                write!(f, "empty sampling range [{lo}, {hi})")
            }
            DomainError::ZeroK => write!(f, "top-k parameter k must be at least 1"),
            DomainError::OutOfDomain { value } => {
                write!(f, "value {value} lies outside the public domain")
            }
            DomainError::MismatchedK { left, right } => {
                write!(f, "mismatched top-k sizes: {left} vs {right}")
            }
            DomainError::InsufficientCandidates { have, need } => {
                write!(
                    f,
                    "candidate view holds {have} values but {need} are needed"
                )
            }
        }
    }
}

impl Error for DomainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = DomainError::EmptyDomain {
            min: Value::new(5),
            max: Value::new(1),
        };
        let msg = e.to_string();
        assert!(msg.starts_with("empty value domain"));
        assert!(!msg.ends_with('.'));
    }

    #[test]
    fn all_variants_display() {
        let variants: Vec<DomainError> = vec![
            DomainError::EmptyDomain {
                min: Value::new(2),
                max: Value::new(1),
            },
            DomainError::EmptyRange {
                lo: Value::new(3),
                hi: Value::new(3),
            },
            DomainError::ZeroK,
            DomainError::OutOfDomain {
                value: Value::new(-1),
            },
            DomainError::MismatchedK { left: 3, right: 4 },
            DomainError::InsufficientCandidates { have: 2, need: 5 },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<DomainError>();
    }
}
