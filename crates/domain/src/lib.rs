//! Foundation types for the `privtopk` workspace.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! reproduction of *"Topk Queries across Multiple Private Databases"*
//! (Xiong, Chitti, Liu — ICDCS 2005):
//!
//! - [`Value`]: an attribute value drawn from a publicly known, bounded
//!   integer domain (the paper evaluates on `[1, 10000]`).
//! - [`ValueDomain`]: the public domain itself, with uniform sampling helpers
//!   used by the protocol's randomization step.
//! - [`TopKVector`]: the ordered multiset of `k` values passed around the
//!   ring (the "global top-k vector" of Algorithm 2).
//! - [`NodeId`] / [`RingPosition`]: identities of participating databases.
//! - [`LocalTopkSource`]: the read capability a node's backing store must
//!   provide to the protocol's local phase, abstracting over in-memory
//!   synthetic tables and persistent stores.
//! - [`Claim`], [`ExposureKind`], [`PrivacySpectrum`]: the privacy
//!   taxonomy of Section 2.
//! - [`rng`]: deterministic seed derivation so that every experiment in the
//!   workspace is reproducible.
//!
//! # Example
//!
//! ```
//! use privtopk_domain::{TopKVector, Value, ValueDomain};
//!
//! let domain = ValueDomain::new(Value::new(1), Value::new(10_000))?;
//! let mut global = TopKVector::floor(3, &domain);
//! let local = TopKVector::from_values(3, [Value::new(42), Value::new(7)], &domain)?;
//! let merged = global.merged_with(&local);
//! assert_eq!(merged.get(1), Some(Value::new(42)));
//! # Ok::<(), privtopk_domain::DomainError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod claim;
mod error;
mod node;
pub mod rng;
mod source;
mod topk;
mod value;

pub use claim::{Claim, ExposureKind, PrivacySpectrum};
pub use error::DomainError;
pub use node::{NodeId, RingPosition};
pub use source::LocalTopkSource;
pub use topk::TopKVector;
pub use value::{Value, ValueDomain};
