//! Identities of participating private databases.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Stable identity of a participating private database (a "node").
///
/// A `NodeId` identifies the *organization*; its location on the ring for a
/// given protocol execution is a separate [`RingPosition`], because the
/// protocol maps nodes onto the ring randomly (Section 3.2) and the
/// collusion-mitigation extension (Section 4.3) remaps the ring every round.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct NodeId(usize);

impl NodeId {
    /// Creates a node id from its raw index.
    #[must_use]
    pub const fn new(raw: usize) -> Self {
        NodeId(raw)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn get(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node#{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(raw: usize) -> Self {
        NodeId(raw)
    }
}

/// Zero-based position of a node on the ring for one protocol execution.
///
/// Position `0` is the starting node; messages flow from position `p` to
/// position `(p + 1) % n`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct RingPosition(usize);

impl RingPosition {
    /// Creates a ring position from its raw index.
    #[must_use]
    pub const fn new(raw: usize) -> Self {
        RingPosition(raw)
    }

    /// Returns the raw index.
    #[must_use]
    pub const fn get(self) -> usize {
        self.0
    }

    /// The successor position on a ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn successor(self, n: usize) -> RingPosition {
        assert!(n > 0, "ring must have at least one node");
        RingPosition((self.0 + 1) % n)
    }

    /// The predecessor position on a ring of `n` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn predecessor(self, n: usize) -> RingPosition {
        assert!(n > 0, "ring must have at least one node");
        RingPosition((self.0 + n - 1) % n)
    }

    /// Whether this is the starting position of the ring walk.
    #[must_use]
    pub const fn is_start(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for RingPosition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pos#{}", self.0)
    }
}

impl From<usize> for RingPosition {
    fn from(raw: usize) -> Self {
        RingPosition(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::new(7);
        assert_eq!(id.get(), 7);
        assert_eq!(NodeId::from(7usize), id);
        assert_eq!(id.to_string(), "node#7");
    }

    #[test]
    fn successor_wraps_around() {
        let n = 4;
        assert_eq!(RingPosition::new(0).successor(n), RingPosition::new(1));
        assert_eq!(RingPosition::new(3).successor(n), RingPosition::new(0));
    }

    #[test]
    fn predecessor_wraps_around() {
        let n = 4;
        assert_eq!(RingPosition::new(0).predecessor(n), RingPosition::new(3));
        assert_eq!(RingPosition::new(2).predecessor(n), RingPosition::new(1));
    }

    #[test]
    fn successor_and_predecessor_are_inverse() {
        let n = 9;
        for p in 0..n {
            let pos = RingPosition::new(p);
            assert_eq!(pos.successor(n).predecessor(n), pos);
            assert_eq!(pos.predecessor(n).successor(n), pos);
        }
    }

    #[test]
    fn start_detection() {
        assert!(RingPosition::new(0).is_start());
        assert!(!RingPosition::new(1).is_start());
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn successor_panics_on_empty_ring() {
        let _ = RingPosition::new(0).successor(0);
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(RingPosition::new(0) < RingPosition::new(5));
    }
}
