//! Deterministic randomness plumbing.
//!
//! Every stochastic component in the workspace (data generation, ring
//! mapping, the randomized local algorithms, experiment trials) draws from a
//! seedable RNG derived through this module, so a whole experiment — all
//! nodes, all rounds, all trials — replays bit-for-bit from a single `u64`
//! seed.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Creates a small, fast, deterministic RNG from a 64-bit seed.
///
/// # Example
///
/// ```
/// use privtopk_domain::rng::seeded_rng;
/// use rand::Rng;
///
/// let mut a = seeded_rng(42);
/// let mut b = seeded_rng(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
#[must_use]
pub fn seeded_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Derives a sub-seed for an independent random stream.
///
/// Uses the SplitMix64 finalizer, which is a bijective avalanche mixer: two
/// distinct `(base, stream)` pairs essentially never collide, and each
/// derived stream is statistically independent of its siblings. This is how
/// the experiment harness gives every (trial, node, purpose) tuple its own
/// RNG.
///
/// # Example
///
/// ```
/// use privtopk_domain::rng::derive_seed;
///
/// let s1 = derive_seed(1, 0);
/// let s2 = derive_seed(1, 1);
/// assert_ne!(s1, s2);
/// ```
#[must_use]
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(stream.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A hierarchical seed: `base` identifies the experiment, and named streams
/// hang off it for each component.
///
/// # Example
///
/// ```
/// use privtopk_domain::rng::SeedSpec;
/// use rand::Rng;
///
/// let spec = SeedSpec::new(7);
/// let mut trial0 = spec.stream(0).rng();
/// let mut trial1 = spec.stream(1).rng();
/// assert_ne!(trial0.gen::<u64>(), trial1.gen::<u64>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SeedSpec {
    base: u64,
}

impl SeedSpec {
    /// Creates a seed spec rooted at `base`.
    #[must_use]
    pub const fn new(base: u64) -> Self {
        SeedSpec { base }
    }

    /// The root seed.
    #[must_use]
    pub const fn base(&self) -> u64 {
        self.base
    }

    /// Derives a child spec for stream `stream`.
    #[must_use]
    pub fn stream(&self, stream: u64) -> SeedSpec {
        SeedSpec {
            base: derive_seed(self.base, stream),
        }
    }

    /// Materializes an RNG at this point of the hierarchy.
    #[must_use]
    pub fn rng(&self) -> SmallRng {
        seeded_rng(self.base)
    }
}

impl Default for SeedSpec {
    fn default() -> Self {
        SeedSpec::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_rng_is_deterministic() {
        let xs: Vec<u64> = seeded_rng(99)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        let ys: Vec<u64> = seeded_rng(99)
            .sample_iter(rand::distributions::Standard)
            .take(8)
            .collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let xa: u64 = a.gen();
        let xb: u64 = b.gen();
        assert_ne!(xa, xb);
    }

    #[test]
    fn derive_seed_spreads_streams() {
        let mut seen = std::collections::HashSet::new();
        for s in 0..1000 {
            assert!(seen.insert(derive_seed(12345, s)));
        }
    }

    #[test]
    fn derive_seed_differs_from_base() {
        assert_ne!(derive_seed(5, 0), 5);
    }

    #[test]
    fn seed_spec_hierarchy_is_stable() {
        let spec = SeedSpec::new(10);
        assert_eq!(spec.stream(3).base(), spec.stream(3).base());
        assert_ne!(spec.stream(3).base(), spec.stream(4).base());
        // Nested derivation: (10 -> 3 -> 1) != (10 -> 1 -> 3).
        assert_ne!(
            spec.stream(3).stream(1).base(),
            spec.stream(1).stream(3).base()
        );
    }
}
