//! The [`LocalTopkSource`] abstraction over a node's private data.
//!
//! The protocol's local phase ("each node first sorts its values") only
//! ever needs one thing from a node's database: its local top-k vector.
//! This trait names that capability so the ring, the standing service
//! and the federation can run against *any* backend — the synthetic
//! in-memory tables of `privtopk-datagen` or the persistent
//! log-structured store of `privtopk-store` — without caring how the
//! vector is produced.
//!
//! Implementations must be consistent: two calls to
//! [`local_topk`](LocalTopkSource::local_topk) with the same `k` and no
//! intervening writes must return identical vectors. Snapshot-style
//! backends expose [`source_epoch`](LocalTopkSource::source_epoch) so a
//! caller can tell whether the view it captured is still current.

use crate::{DomainError, TopKVector};

/// A read view over one node's private values, sufficient to answer the
/// protocol's local phase.
///
/// The trait is object-safe; the service layer holds
/// `&dyn LocalTopkSource` (or boxed/`Arc`ed forms) per node.
pub trait LocalTopkSource: Send + Sync {
    /// The node's local top-k vector: its `k` largest private values in
    /// descending order, floor-padded when fewer than `k` rows exist.
    ///
    /// # Errors
    ///
    /// [`DomainError::ZeroK`] for `k == 0`, plus any backend-specific
    /// failure surfaced through [`DomainError`].
    fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError>;

    /// Number of live rows backing this source.
    fn row_count(&self) -> u64;

    /// Monotonic generation of the view this source answers from.
    ///
    /// Immutable backends keep the default `0`; snapshot-based backends
    /// return the write generation the snapshot was taken at.
    fn source_epoch(&self) -> u64 {
        0
    }
}

impl<T: LocalTopkSource + ?Sized> LocalTopkSource for &T {
    fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError> {
        (**self).local_topk(k)
    }

    fn row_count(&self) -> u64 {
        (**self).row_count()
    }

    fn source_epoch(&self) -> u64 {
        (**self).source_epoch()
    }
}

impl<T: LocalTopkSource + ?Sized> LocalTopkSource for std::sync::Arc<T> {
    fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError> {
        (**self).local_topk(k)
    }

    fn row_count(&self) -> u64 {
        (**self).row_count()
    }

    fn source_epoch(&self) -> u64 {
        (**self).source_epoch()
    }
}

impl<T: LocalTopkSource + ?Sized> LocalTopkSource for Box<T> {
    fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError> {
        (**self).local_topk(k)
    }

    fn row_count(&self) -> u64 {
        (**self).row_count()
    }

    fn source_epoch(&self) -> u64 {
        (**self).source_epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Value, ValueDomain};

    struct Fixed {
        values: Vec<Value>,
        domain: ValueDomain,
    }

    impl LocalTopkSource for Fixed {
        fn local_topk(&self, k: usize) -> Result<TopKVector, DomainError> {
            TopKVector::from_values(k, self.values.iter().copied(), &self.domain)
        }

        fn row_count(&self) -> u64 {
            self.values.len() as u64
        }
    }

    fn fixture() -> Fixed {
        Fixed {
            values: vec![Value::new(5), Value::new(9), Value::new(2)],
            domain: ValueDomain::paper_default(),
        }
    }

    #[test]
    fn trait_is_object_safe() {
        let f = fixture();
        let dyn_ref: &dyn LocalTopkSource = &f;
        let v = dyn_ref.local_topk(2).unwrap();
        assert_eq!(v.as_slice(), &[Value::new(9), Value::new(5)]);
        assert_eq!(dyn_ref.row_count(), 3);
        assert_eq!(dyn_ref.source_epoch(), 0);
    }

    #[test]
    fn blanket_impls_delegate() {
        let f = fixture();
        let arc: std::sync::Arc<dyn LocalTopkSource> = std::sync::Arc::new(fixture());
        let boxed: Box<dyn LocalTopkSource> = Box::new(fixture());
        let by_ref = &f;
        for s in [
            &arc as &dyn LocalTopkSource,
            &boxed as &dyn LocalTopkSource,
            &by_ref as &dyn LocalTopkSource,
        ] {
            assert_eq!(s.row_count(), 3);
            assert_eq!(s.local_topk(1).unwrap().first(), Value::new(9));
        }
    }
}
