//! The ordered top-k multiset vector passed around the ring.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{DomainError, Value, ValueDomain};

/// An ordered multiset of exactly `k` values, sorted descending.
///
/// This is the "global top-k vector" `G_i(r)` and "local top-k vector" `V_i`
/// of Algorithm 2 in the paper. It is a *multiset*: duplicate values are
/// meaningful and preserved ("the global vector is an ordered multiset that
/// may include duplicate values").
///
/// The vector always holds exactly `k` entries. Construction from fewer than
/// `k` values pads with the domain floor ([`ValueDomain::min`]), which is
/// exactly how the protocol initializes the global vector ("initializes the
/// global topk vector to the lowest possible values in the corresponding
/// data domain").
///
/// Ranks are 1-based to mirror the paper's notation: `get(1)` is the largest
/// element (`G[1]`), `get(k)` the smallest (`G[k]`).
///
/// # Example
///
/// ```
/// use privtopk_domain::{TopKVector, Value, ValueDomain};
///
/// let domain = ValueDomain::paper_default();
/// let v = TopKVector::from_values(3, [10, 40, 20, 5].map(Value::new), &domain)?;
/// assert_eq!(v.get(1), Some(Value::new(40)));
/// assert_eq!(v.kth(), Value::new(10));
/// # Ok::<(), privtopk_domain::DomainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TopKVector {
    /// Invariant: `values.len() == k`, sorted descending.
    values: Vec<Value>,
}

impl TopKVector {
    /// Creates the all-floor vector used to initialize the protocol.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`; use [`TopKVector::from_values`] for fallible
    /// construction.
    #[must_use]
    pub fn floor(k: usize, domain: &ValueDomain) -> Self {
        assert!(k > 0, "top-k parameter k must be at least 1");
        TopKVector {
            values: vec![domain.min(); k],
        }
    }

    /// Builds a local top-k vector from a node's attribute values.
    ///
    /// Sorts `values` descending, keeps the largest `k`, and pads with the
    /// domain floor if fewer than `k` values were supplied.
    ///
    /// # Errors
    ///
    /// - [`DomainError::ZeroK`] if `k == 0`.
    /// - [`DomainError::OutOfDomain`] if any value lies outside `domain`.
    pub fn from_values<I>(k: usize, values: I, domain: &ValueDomain) -> Result<Self, DomainError>
    where
        I: IntoIterator<Item = Value>,
    {
        if k == 0 {
            return Err(DomainError::ZeroK);
        }
        let mut vs: Vec<Value> = Vec::new();
        for v in values {
            if !domain.contains(v) {
                return Err(DomainError::OutOfDomain { value: v });
            }
            vs.push(v);
        }
        vs.sort_unstable_by(|a, b| b.cmp(a));
        vs.truncate(k);
        while vs.len() < k {
            vs.push(domain.min());
        }
        Ok(TopKVector { values: vs })
    }

    /// Builds a vector from parts already known to be sorted descending.
    ///
    /// # Errors
    ///
    /// - [`DomainError::ZeroK`] if `parts` is empty.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `parts` is not sorted descending.
    pub fn from_sorted(parts: Vec<Value>) -> Result<Self, DomainError> {
        if parts.is_empty() {
            return Err(DomainError::ZeroK);
        }
        debug_assert!(
            parts.windows(2).all(|w| w[0] >= w[1]),
            "from_sorted requires descending input"
        );
        Ok(TopKVector { values: parts })
    }

    /// The `k` parameter (vector length).
    #[must_use]
    pub fn k(&self) -> usize {
        self.values.len()
    }

    /// The element at 1-based `rank` (`rank = 1` is the largest).
    ///
    /// Returns `None` if `rank == 0` or `rank > k`.
    #[must_use]
    pub fn get(&self, rank: usize) -> Option<Value> {
        if rank == 0 {
            return None;
        }
        self.values.get(rank - 1).copied()
    }

    /// The largest element, `G[1]`.
    #[must_use]
    pub fn first(&self) -> Value {
        self.values[0]
    }

    /// The smallest element, `G[k]`.
    #[must_use]
    pub fn kth(&self) -> Value {
        *self.values.last().expect("invariant: k >= 1")
    }

    /// A view of the values, sorted descending.
    #[must_use]
    pub fn as_slice(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over the values in descending order.
    pub fn iter(&self) -> std::iter::Copied<std::slice::Iter<'_, Value>> {
        self.values.iter().copied()
    }

    /// Multiset membership count of `v`.
    #[must_use]
    pub fn count_of(&self, v: Value) -> usize {
        self.values.iter().filter(|&&x| x == v).count()
    }

    /// Whether `v` occurs at least once.
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.count_of(v) > 0
    }

    /// The real merged top-k: `topK(self ∪ other)` as a multiset union.
    ///
    /// This computes `G'_i(r) = topK(G_{i-1}(r) ∪ V_i)` of Algorithm 2.
    /// Both operands keep their own `k`; the result has `self.k()` entries
    /// (the global vector's width).
    #[must_use]
    pub fn merged_with(&self, other: &TopKVector) -> TopKVector {
        let mut merged: Vec<Value> = Vec::with_capacity(self.values.len());
        self.merge_into(other, &mut merged);
        TopKVector { values: merged }
    }

    /// Allocation-free variant of [`TopKVector::merged_with`]: writes the
    /// merged top-k into `out` (cleared first, capacity reused) and returns
    /// the number of entries taken from `other`.
    ///
    /// Because ties prefer `self`, an entry is taken from `other` exactly
    /// when it is not covered by an occurrence in `self`, so the returned
    /// count equals `|merged − self|` — Algorithm 2's contribution size
    /// `m = |V'_i|` — without materializing the difference.
    pub fn merge_into(&self, other: &TopKVector, out: &mut Vec<Value>) -> usize {
        out.clear();
        let k = self.values.len();
        out.reserve(k);
        // Merge two descending runs (merge sort step, as the paper suggests).
        let (a, b) = (self.values.as_slice(), other.values.as_slice());
        let (mut i, mut j) = (0, 0);
        // Hot loop while both runs are live: the select and the index
        // bumps are data-independent of the branch predictor, so this
        // lowers to conditional moves the vectorizer can chew on.
        while out.len() < k && i < a.len() && j < b.len() {
            let take_left = a[i] >= b[j];
            out.push(if take_left { a[i] } else { b[j] });
            i += usize::from(take_left);
            j += usize::from(!take_left);
        }
        // Cold tails: at most one of these runs, after one side drained.
        while out.len() < k && i < a.len() {
            out.push(a[i]);
            i += 1;
        }
        while out.len() < k && j < b.len() {
            out.push(b[j]);
            j += 1;
        }
        // Ties prefer `self`, so `j` counts exactly the entries not covered
        // by an occurrence in `self` — Algorithm 2's contribution size `m`.
        j
    }

    /// Multiset difference `self − other`: the values of `self` that are
    /// *not* covered by occurrences in `other`.
    ///
    /// This computes `V'_i = G'_i(r) − G_{i-1}(r)` of Algorithm 2 — the
    /// values the node would newly contribute. The result is sorted
    /// descending and may be empty.
    #[must_use]
    pub fn multiset_subtract(&self, other: &TopKVector) -> Vec<Value> {
        let mut out = Vec::new();
        self.multiset_subtract_into(other, &mut out);
        out
    }

    /// Allocation-free variant of [`TopKVector::multiset_subtract`]:
    /// writes the difference into `out` (cleared first, capacity reused).
    ///
    /// Both operands are sorted descending, so a single two-pointer sweep
    /// pairs occurrences greedily — `O(k)` instead of the quadratic
    /// scan-and-remove over a cloned buffer this replaces.
    pub fn multiset_subtract_into(&self, other: &TopKVector, out: &mut Vec<Value>) {
        out.clear();
        let (a, b) = (&self.values, &other.values);
        let (mut i, mut j) = (0, 0);
        while i < a.len() {
            if j >= b.len() || a[i] > b[j] {
                // No occurrence in `other` can cover a[i] any more.
                out.push(a[i]);
                i += 1;
            } else if a[i] == b[j] {
                // Covered: consume one occurrence of each.
                i += 1;
                j += 1;
            } else {
                // b[j] > a[i]: this occurrence of `other` covers nothing.
                j += 1;
            }
        }
    }

    /// Number of elements of `self` that also occur in `other`, counting
    /// multiplicity (multiset intersection size).
    #[must_use]
    pub fn multiset_intersection_size(&self, other: &TopKVector) -> usize {
        let (a, b) = (&self.values, &other.values);
        let (mut i, mut j) = (0, 0);
        let mut count = 0;
        while i < a.len() && j < b.len() {
            if a[i] == b[j] {
                count += 1;
                i += 1;
                j += 1;
            } else if a[i] > b[j] {
                i += 1;
            } else {
                j += 1;
            }
        }
        count
    }

    /// The paper's precision metric: `|R ∩ TopK| / k` where `self` is the
    /// returned set `R` and `truth` the real top-k (Section 5.4).
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::MismatchedK`] if the two vectors have
    /// different `k`.
    pub fn precision_against(&self, truth: &TopKVector) -> Result<f64, DomainError> {
        if self.k() != truth.k() {
            return Err(DomainError::MismatchedK {
                left: self.k(),
                right: truth.k(),
            });
        }
        Ok(self.multiset_intersection_size(truth) as f64 / self.k() as f64)
    }

    /// Builds the randomized output of Algorithm 2's `P_r` branch: the first
    /// `k − m` entries copied from `prefix_source` and the last `m` entries
    /// replaced by `tail` (sorted descending internally).
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::MismatchedK`] if `tail.len() != m` or
    /// `m > k`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result would not be sorted descending
    /// (the caller must draw tail values at or below `prefix_source[k−m]`).
    pub fn with_randomized_tail(
        prefix_source: &TopKVector,
        m: usize,
        mut tail: Vec<Value>,
    ) -> Result<TopKVector, DomainError> {
        Self::with_randomized_tail_from(prefix_source, m, &mut tail)
    }

    /// Scratch-reusing variant of [`TopKVector::with_randomized_tail`]:
    /// sorts `tail` in place and drains it, so a hop loop can keep one
    /// tail buffer alive across steps instead of allocating per hop.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::MismatchedK`] if `tail.len() != m` or
    /// `m > k` (in which case `tail` is left untouched).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the result would not be sorted descending
    /// (the caller must draw tail values at or below `prefix_source[k−m]`).
    pub fn with_randomized_tail_from(
        prefix_source: &TopKVector,
        m: usize,
        tail: &mut Vec<Value>,
    ) -> Result<TopKVector, DomainError> {
        let k = prefix_source.k();
        if tail.len() != m || m > k {
            return Err(DomainError::MismatchedK {
                left: m,
                right: tail.len(),
            });
        }
        tail.sort_unstable_by(|a, b| b.cmp(a));
        let mut values = Vec::with_capacity(k);
        values.extend_from_slice(&prefix_source.values[..k - m]);
        values.extend_from_slice(tail);
        tail.clear();
        debug_assert!(
            values.windows(2).all(|w| w[0] >= w[1]),
            "randomized tail broke descending order"
        );
        Ok(TopKVector { values })
    }

    /// Consumes the vector and returns its values, sorted descending.
    #[must_use]
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }

    /// Whether every element equals the domain floor (i.e. the vector still
    /// carries no real information).
    #[must_use]
    pub fn is_floor(&self, domain: &ValueDomain) -> bool {
        self.values.iter().all(|&v| v == domain.min())
    }
}

impl fmt::Display for TopKVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

impl<'a> IntoIterator for &'a TopKVector {
    type Item = Value;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, Value>>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> ValueDomain {
        ValueDomain::paper_default()
    }

    fn vk(k: usize, vals: &[i64]) -> TopKVector {
        TopKVector::from_values(k, vals.iter().copied().map(Value::new), &domain()).unwrap()
    }

    #[test]
    fn floor_vector_is_all_domain_min() {
        let v = TopKVector::floor(4, &domain());
        assert_eq!(v.k(), 4);
        assert!(v.is_floor(&domain()));
        assert_eq!(v.first(), Value::new(1));
    }

    #[test]
    fn from_values_sorts_and_truncates() {
        let v = vk(3, &[10, 40, 20, 5]);
        assert_eq!(
            v.as_slice(),
            &[Value::new(40), Value::new(20), Value::new(10)]
        );
    }

    #[test]
    fn from_values_pads_with_floor() {
        let v = vk(4, &[100]);
        assert_eq!(v.get(1), Some(Value::new(100)));
        assert_eq!(v.get(2), Some(Value::new(1)));
        assert_eq!(v.kth(), Value::new(1));
    }

    #[test]
    fn from_values_rejects_zero_k() {
        let err = TopKVector::from_values(0, [], &domain()).unwrap_err();
        assert_eq!(err, DomainError::ZeroK);
    }

    #[test]
    fn from_values_rejects_out_of_domain() {
        let err = TopKVector::from_values(2, [Value::new(20_000)], &domain()).unwrap_err();
        assert!(matches!(err, DomainError::OutOfDomain { .. }));
    }

    #[test]
    fn one_based_rank_accessors() {
        let v = vk(3, &[30, 20, 10]);
        assert_eq!(v.get(0), None);
        assert_eq!(v.get(1), Some(Value::new(30)));
        assert_eq!(v.get(3), Some(Value::new(10)));
        assert_eq!(v.get(4), None);
    }

    #[test]
    fn merged_with_takes_global_topk() {
        let g = vk(3, &[50, 30, 10]);
        let v = vk(3, &[40, 20, 5]);
        let merged = g.merged_with(&v);
        assert_eq!(
            merged.as_slice(),
            &[Value::new(50), Value::new(40), Value::new(30)]
        );
    }

    #[test]
    fn merged_with_preserves_duplicates() {
        let g = vk(3, &[50, 50, 10]);
        let v = vk(3, &[50, 20, 5]);
        let merged = g.merged_with(&v);
        assert_eq!(
            merged.as_slice(),
            &[Value::new(50), Value::new(50), Value::new(50)]
        );
    }

    #[test]
    fn merged_with_differing_local_k() {
        // Local vector may conceptually be shorter; padding keeps it k-wide,
        // but merging with a wider global vector must still work.
        let g = vk(4, &[9, 8, 7, 6]);
        let v = vk(4, &[10]);
        let merged = g.merged_with(&v);
        assert_eq!(merged.get(1), Some(Value::new(10)));
        assert_eq!(merged.kth(), Value::new(7));
    }

    #[test]
    fn merge_into_reuses_buffer_and_counts_contribution() {
        let g = vk(3, &[50, 30, 10]);
        let v = vk(3, &[40, 20, 5]);
        let mut buf = vec![Value::new(999)]; // stale content must be cleared
        let m = g.merge_into(&v, &mut buf);
        assert_eq!(buf, vec![Value::new(50), Value::new(40), Value::new(30)]);
        // merged − g = {40}, so exactly one entry came from `v`.
        assert_eq!(m, 1);
        assert_eq!(m, g.merged_with(&v).multiset_subtract(&g).len());
    }

    #[test]
    fn merge_into_count_respects_duplicates() {
        // Ties prefer `self`, so a value the incoming vector already covers
        // is not counted as a contribution.
        let g = vk(3, &[50, 50, 10]);
        let v = vk(3, &[50, 20, 5]);
        let mut buf = Vec::new();
        assert_eq!(g.merge_into(&v, &mut buf), 1); // only the third 50 is new
        let g2 = vk(2, &[50, 1]);
        let v2 = vk(2, &[80, 80]);
        assert_eq!(g2.merge_into(&v2, &mut buf), 2); // both 80s are new
    }

    #[test]
    fn multiset_subtract_counts_multiplicity() {
        let a = vk(4, &[50, 40, 40, 10]);
        let b = vk(4, &[40, 10, 5, 1]);
        let diff = a.multiset_subtract(&b);
        assert_eq!(diff, vec![Value::new(50), Value::new(40)]);
    }

    #[test]
    fn multiset_subtract_identical_is_empty() {
        let a = vk(3, &[7, 7, 3]);
        assert!(a.multiset_subtract(&a).is_empty());
    }

    #[test]
    fn intersection_size_multiset_semantics() {
        let a = vk(4, &[9, 9, 5, 2]);
        let b = vk(4, &[9, 5, 5, 2]);
        assert_eq!(a.multiset_intersection_size(&b), 3); // one 9, one 5, one 2
    }

    #[test]
    fn precision_is_fraction_of_truth_recovered() {
        let truth = vk(4, &[100, 90, 80, 70]);
        let exact = vk(4, &[100, 90, 80, 70]);
        let half = vk(4, &[100, 90, 3, 2]);
        assert_eq!(exact.precision_against(&truth).unwrap(), 1.0);
        assert_eq!(half.precision_against(&truth).unwrap(), 0.5);
    }

    #[test]
    fn precision_rejects_mismatched_k() {
        let a = vk(3, &[3, 2, 1]);
        let b = vk(4, &[4, 3, 2, 1]);
        assert!(matches!(
            a.precision_against(&b),
            Err(DomainError::MismatchedK { .. })
        ));
    }

    #[test]
    fn with_randomized_tail_copies_prefix() {
        let g_prev = vk(6, &[90, 80, 70, 60, 50, 40]);
        let tail = vec![Value::new(55), Value::new(45), Value::new(58)];
        let out = TopKVector::with_randomized_tail(&g_prev, 3, tail).unwrap();
        assert_eq!(out.get(1), Some(Value::new(90)));
        assert_eq!(out.get(3), Some(Value::new(70)));
        // Tail sorted descending.
        assert_eq!(
            &out.as_slice()[3..],
            &[Value::new(58), Value::new(55), Value::new(45)]
        );
    }

    #[test]
    fn with_randomized_tail_full_replacement() {
        let g_prev = vk(3, &[30, 20, 10]);
        let tail = vec![Value::new(25), Value::new(15), Value::new(28)];
        let out = TopKVector::with_randomized_tail(&g_prev, 3, tail).unwrap();
        assert_eq!(
            out.as_slice(),
            &[Value::new(28), Value::new(25), Value::new(15)]
        );
    }

    #[test]
    fn with_randomized_tail_rejects_bad_m() {
        let g_prev = vk(3, &[30, 20, 10]);
        assert!(TopKVector::with_randomized_tail(&g_prev, 2, vec![Value::new(1)]).is_err());
        assert!(TopKVector::with_randomized_tail(&g_prev, 4, vec![Value::new(1); 4]).is_err());
    }

    #[test]
    fn with_randomized_tail_from_drains_and_reuses_buffer() {
        let g_prev = vk(4, &[90, 80, 70, 60]);
        let mut tail = vec![Value::new(65), Value::new(75)];
        let out = TopKVector::with_randomized_tail_from(&g_prev, 2, &mut tail).unwrap();
        assert_eq!(
            out.as_slice(),
            &[
                Value::new(90),
                Value::new(80),
                Value::new(75),
                Value::new(65)
            ]
        );
        assert!(tail.is_empty(), "tail scratch is drained for the next hop");
        // A failed call leaves the scratch intact.
        tail.push(Value::new(1));
        assert!(TopKVector::with_randomized_tail_from(&g_prev, 2, &mut tail).is_err());
        assert_eq!(tail, vec![Value::new(1)]);
        // The owning wrapper produces the identical vector.
        let owned =
            TopKVector::with_randomized_tail(&g_prev, 2, vec![Value::new(65), Value::new(75)])
                .unwrap();
        assert_eq!(owned, out);
    }

    #[test]
    fn display_formats_as_list() {
        let v = vk(3, &[3, 2, 1]);
        assert_eq!(v.to_string(), "[3, 2, 1]");
    }

    #[test]
    fn iteration_is_descending() {
        let v = vk(4, &[1, 9, 4, 6]);
        let collected: Vec<i64> = v.iter().map(Value::get).collect();
        assert_eq!(collected, vec![9, 6, 4, 1]);
    }

    #[test]
    fn from_sorted_roundtrip() {
        let v = TopKVector::from_sorted(vec![Value::new(5), Value::new(3)]).unwrap();
        assert_eq!(v.k(), 2);
        assert_eq!(v.into_values(), vec![Value::new(5), Value::new(3)]);
    }

    #[test]
    fn from_sorted_rejects_empty() {
        assert_eq!(
            TopKVector::from_sorted(Vec::new()).unwrap_err(),
            DomainError::ZeroK
        );
    }
}
