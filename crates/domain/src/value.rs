//! Attribute values and the public value domain.

use std::fmt;
use std::ops::RangeInclusive;

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::DomainError;

/// A single attribute value held by a private database.
///
/// The paper assumes "all data values of the attribute belong to a publicly
/// known data domain" and evaluates on the integer domain `[1, 10000]`.
/// `Value` is therefore a thin newtype over `i64`, ordered in the usual way.
/// Real-valued attributes can be represented by fixed-point scaling (the
/// kNN extension crate does exactly that for distances).
///
/// # Example
///
/// ```
/// use privtopk_domain::Value;
///
/// let a = Value::new(30);
/// let b = Value::new(40);
/// assert!(a < b);
/// assert_eq!(b.get(), 40);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Value(i64);

impl Value {
    /// Smallest representable value; used as an absolute sentinel floor.
    pub const MIN: Value = Value(i64::MIN);
    /// Largest representable value.
    pub const MAX: Value = Value(i64::MAX);

    /// Creates a value from a raw integer.
    #[must_use]
    pub const fn new(raw: i64) -> Self {
        Value(raw)
    }

    /// Returns the raw integer.
    #[must_use]
    pub const fn get(self) -> i64 {
        self.0
    }

    /// Returns the value one step below `self`, saturating at [`Value::MIN`].
    #[must_use]
    pub const fn pred(self) -> Self {
        Value(self.0.saturating_sub(1))
    }

    /// Returns the value one step above `self`, saturating at [`Value::MAX`].
    #[must_use]
    pub const fn succ(self) -> Self {
        Value(self.0.saturating_add(1))
    }

    /// Subtracts `delta` steps, saturating at [`Value::MIN`].
    ///
    /// Used by Algorithm 2 to compute the `G'_i(r)[k] − δ` lower bound for
    /// random-value generation.
    #[must_use]
    pub const fn saturating_sub(self, delta: u64) -> Self {
        let wide = self.0 as i128 - delta as i128;
        if wide < i64::MIN as i128 {
            Value(i64::MIN)
        } else {
            Value(wide as i64)
        }
    }

    /// Minimum of two values.
    #[must_use]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two values.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<i64> for Value {
    fn from(raw: i64) -> Self {
        Value(raw)
    }
}

impl From<Value> for i64 {
    fn from(v: Value) -> Self {
        v.0
    }
}

/// The publicly known, bounded domain all attribute values are drawn from.
///
/// Both endpoints are inclusive. The protocol initializes the global value
/// (or vector) to [`ValueDomain::min`], and the randomized local algorithms
/// sample uniformly from half-open sub-ranges of the domain.
///
/// # Example
///
/// ```
/// use privtopk_domain::{Value, ValueDomain};
///
/// let d = ValueDomain::new(Value::new(1), Value::new(10_000))?;
/// assert!(d.contains(Value::new(500)));
/// assert!(!d.contains(Value::new(0)));
/// assert_eq!(d.width(), 10_000);
/// # Ok::<(), privtopk_domain::DomainError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ValueDomain {
    min: Value,
    max: Value,
}

impl ValueDomain {
    /// Creates a domain with inclusive endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::EmptyDomain`] if `min > max`.
    pub fn new(min: Value, max: Value) -> Result<Self, DomainError> {
        if min > max {
            return Err(DomainError::EmptyDomain { min, max });
        }
        Ok(ValueDomain { min, max })
    }

    /// The integer domain `[1, 10000]` used throughout the paper's
    /// experimental evaluation (Section 5.1).
    #[must_use]
    pub fn paper_default() -> Self {
        ValueDomain {
            min: Value::new(1),
            max: Value::new(10_000),
        }
    }

    /// Inclusive lower endpoint.
    #[must_use]
    pub const fn min(&self) -> Value {
        self.min
    }

    /// Inclusive upper endpoint.
    #[must_use]
    pub const fn max(&self) -> Value {
        self.max
    }

    /// Number of distinct values in the domain.
    #[must_use]
    pub fn width(&self) -> u64 {
        (self.max.0 as i128 - self.min.0 as i128 + 1) as u64
    }

    /// Whether `v` lies inside the domain.
    #[must_use]
    pub fn contains(&self, v: Value) -> bool {
        self.min <= v && v <= self.max
    }

    /// The domain as an inclusive range of raw integers.
    #[must_use]
    pub fn as_range(&self) -> RangeInclusive<i64> {
        self.min.0..=self.max.0
    }

    /// Clamps `v` into the domain.
    #[must_use]
    pub fn clamp(&self, v: Value) -> Value {
        v.max(self.min).min(self.max)
    }

    /// Samples a value uniformly from the whole domain (inclusive).
    pub fn sample_uniform<R: Rng + ?Sized>(&self, rng: &mut R) -> Value {
        Value(rng.gen_range(self.min.0..=self.max.0))
    }

    /// Samples uniformly from the half-open range `[lo, hi)`.
    ///
    /// This is the randomization primitive of Algorithm 1: the random value
    /// replacing `v_i` is drawn from `[g_{i-1}(r), v_i)` — open at the top so
    /// the node never accidentally reveals its true value.
    ///
    /// # Errors
    ///
    /// Returns [`DomainError::EmptyRange`] if `lo >= hi`.
    pub fn sample_half_open<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        lo: Value,
        hi: Value,
    ) -> Result<Value, DomainError> {
        if lo >= hi {
            return Err(DomainError::EmptyRange { lo, hi });
        }
        Ok(Value(rng.gen_range(lo.0..hi.0)))
    }
}

impl Default for ValueDomain {
    fn default() -> Self {
        ValueDomain::paper_default()
    }
}

impl fmt::Display for ValueDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn value_ordering_and_accessors() {
        let a = Value::new(-5);
        let b = Value::new(3);
        assert!(a < b);
        assert_eq!(a.get(), -5);
        assert_eq!(b.max(a), b);
        assert_eq!(b.min(a), a);
    }

    #[test]
    fn value_pred_succ_saturate() {
        assert_eq!(Value::MIN.pred(), Value::MIN);
        assert_eq!(Value::MAX.succ(), Value::MAX);
        assert_eq!(Value::new(10).pred(), Value::new(9));
        assert_eq!(Value::new(10).succ(), Value::new(11));
    }

    #[test]
    fn value_saturating_sub() {
        assert_eq!(Value::new(100).saturating_sub(30), Value::new(70));
        assert_eq!(Value::MIN.saturating_sub(1), Value::MIN);
        assert_eq!(Value::new(0).saturating_sub(u64::MAX), Value::MIN);
    }

    #[test]
    fn value_display_and_conversions() {
        assert_eq!(Value::new(42).to_string(), "42");
        assert_eq!(Value::from(7i64), Value::new(7));
        assert_eq!(i64::from(Value::new(7)), 7);
    }

    #[test]
    fn domain_construction_rejects_empty() {
        let err = ValueDomain::new(Value::new(5), Value::new(4)).unwrap_err();
        assert!(matches!(err, DomainError::EmptyDomain { .. }));
    }

    #[test]
    fn domain_width_and_contains() {
        let d = ValueDomain::new(Value::new(1), Value::new(10)).unwrap();
        assert_eq!(d.width(), 10);
        assert!(d.contains(Value::new(1)));
        assert!(d.contains(Value::new(10)));
        assert!(!d.contains(Value::new(11)));
    }

    #[test]
    fn paper_default_matches_section_5() {
        let d = ValueDomain::paper_default();
        assert_eq!(d.min(), Value::new(1));
        assert_eq!(d.max(), Value::new(10_000));
        assert_eq!(d.width(), 10_000);
    }

    #[test]
    fn clamp_pins_to_endpoints() {
        let d = ValueDomain::new(Value::new(0), Value::new(9)).unwrap();
        assert_eq!(d.clamp(Value::new(-3)), Value::new(0));
        assert_eq!(d.clamp(Value::new(12)), Value::new(9));
        assert_eq!(d.clamp(Value::new(5)), Value::new(5));
    }

    #[test]
    fn sample_uniform_stays_in_domain() {
        let d = ValueDomain::new(Value::new(-4), Value::new(4)).unwrap();
        let mut rng = seeded_rng(7);
        for _ in 0..1000 {
            assert!(d.contains(d.sample_uniform(&mut rng)));
        }
    }

    #[test]
    fn sample_half_open_excludes_upper_bound() {
        let d = ValueDomain::paper_default();
        let mut rng = seeded_rng(11);
        let lo = Value::new(10);
        let hi = Value::new(12);
        for _ in 0..200 {
            let v = d.sample_half_open(&mut rng, lo, hi).unwrap();
            assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn sample_half_open_rejects_empty_range() {
        let d = ValueDomain::paper_default();
        let mut rng = seeded_rng(13);
        let err = d
            .sample_half_open(&mut rng, Value::new(5), Value::new(5))
            .unwrap_err();
        assert!(matches!(err, DomainError::EmptyRange { .. }));
    }

    #[test]
    fn single_point_domain_is_valid() {
        let d = ValueDomain::new(Value::new(3), Value::new(3)).unwrap();
        assert_eq!(d.width(), 1);
        let mut rng = seeded_rng(1);
        assert_eq!(d.sample_uniform(&mut rng), Value::new(3));
    }
}
