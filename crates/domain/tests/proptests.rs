//! Property-based tests for the domain foundation types.

use privtopk_domain::rng::{derive_seed, seeded_rng};
use privtopk_domain::{PrivacySpectrum, TopKVector, Value, ValueDomain};
use proptest::prelude::*;

fn arb_domain() -> impl Strategy<Value = ValueDomain> {
    (-10_000i64..10_000, 0i64..20_000).prop_map(|(min, width)| {
        ValueDomain::new(Value::new(min), Value::new(min + width)).expect("non-empty")
    })
}

fn arb_values(domain: ValueDomain, max_len: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        (domain.min().get()..=domain.max().get()).prop_map(Value::new),
        0..max_len,
    )
}

proptest! {
    #[test]
    fn topk_vector_is_always_sorted_descending(
        (domain, values, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 32), 1usize..8)
        })
    ) {
        let v = TopKVector::from_values(k, values, &domain).unwrap();
        prop_assert_eq!(v.k(), k);
        let s = v.as_slice();
        prop_assert!(s.windows(2).all(|w| w[0] >= w[1]));
        prop_assert!(s.iter().all(|&x| domain.contains(x)));
    }

    #[test]
    fn merge_is_commutative_on_equal_k(
        (domain, a, b, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), arb_values(d, 16), 1usize..6)
        })
    ) {
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let vb = TopKVector::from_values(k, b, &domain).unwrap();
        prop_assert_eq!(va.merged_with(&vb), vb.merged_with(&va));
    }

    #[test]
    fn self_merge_duplicates_each_element(
        (domain, a, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), 1usize..6)
        })
    ) {
        // Multiset-union semantics: merging a vector with itself doubles the
        // multiplicity of every element, so rank r of the merge equals rank
        // ceil(r/2) of the original. (This is why Algorithm 2's inputs are
        // disjoint data sources — duplicates are real data items.)
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let merged = va.merged_with(&va);
        for rank in 1..=k {
            prop_assert_eq!(merged.get(rank), va.get(rank.div_ceil(2)));
        }
    }

    #[test]
    fn merge_dominates_both_operands(
        (domain, a, b, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), arb_values(d, 16), 1usize..6)
        })
    ) {
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let vb = TopKVector::from_values(k, b, &domain).unwrap();
        let merged = va.merged_with(&vb);
        // Element-wise, the merged vector dominates each operand.
        for rank in 1..=k {
            prop_assert!(merged.get(rank).unwrap() >= va.get(rank).unwrap());
            prop_assert!(merged.get(rank).unwrap() >= vb.get(rank).unwrap());
        }
    }

    #[test]
    fn subtract_then_count_adds_up(
        (domain, a, b, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), arb_values(d, 16), 1usize..6)
        })
    ) {
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let vb = TopKVector::from_values(k, b, &domain).unwrap();
        let diff = va.multiset_subtract(&vb);
        let inter = va.multiset_intersection_size(&vb);
        prop_assert_eq!(diff.len() + inter, k);
    }

    #[test]
    fn merge_into_matches_reference_merge(
        (domain, a, b, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), arb_values(d, 16), 1usize..6)
        })
    ) {
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let vb = TopKVector::from_values(k, b, &domain).unwrap();
        // Reference: multiset union via concatenate-sort-truncate.
        let mut reference: Vec<Value> = va.iter().chain(vb.iter()).collect();
        reference.sort_unstable_by(|x, y| y.cmp(x));
        reference.truncate(k);
        let mut out = vec![Value::new(0); 3]; // stale content must be cleared
        let m = va.merge_into(&vb, &mut out);
        prop_assert_eq!(&out, &reference);
        let merged = va.merged_with(&vb);
        prop_assert_eq!(merged.as_slice(), &out[..]);
        // The returned count is the contribution size of Algorithm 2.
        prop_assert_eq!(m, merged.multiset_subtract(&va).len());
    }

    #[test]
    fn subtract_into_matches_scan_and_remove_reference(
        (domain, a, b, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), arb_values(d, 16), 1usize..6)
        })
    ) {
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let vb = TopKVector::from_values(k, b, &domain).unwrap();
        // Reference: the quadratic scan-and-remove the two-pointer sweep
        // replaced.
        let mut remaining: Vec<Value> = vb.iter().collect();
        let mut reference = Vec::new();
        for v in va.iter() {
            if let Some(pos) = remaining.iter().position(|&x| x == v) {
                remaining.remove(pos);
            } else {
                reference.push(v);
            }
        }
        prop_assert_eq!(va.multiset_subtract(&vb), reference);
    }

    #[test]
    fn precision_is_symmetric_and_bounded(
        (domain, a, b, k) in arb_domain().prop_flat_map(|d| {
            (Just(d), arb_values(d, 16), arb_values(d, 16), 1usize..6)
        })
    ) {
        let va = TopKVector::from_values(k, a, &domain).unwrap();
        let vb = TopKVector::from_values(k, b, &domain).unwrap();
        let p_ab = va.precision_against(&vb).unwrap();
        let p_ba = vb.precision_against(&va).unwrap();
        prop_assert!((p_ab - p_ba).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&p_ab));
        prop_assert!((va.precision_against(&va).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn half_open_sampling_never_hits_upper_bound(
        (lo, width, seed) in (-1000i64..1000, 1i64..500, any::<u64>())
    ) {
        let domain = ValueDomain::new(Value::new(-2000), Value::new(2000)).unwrap();
        let mut rng = seeded_rng(seed);
        let v = domain
            .sample_half_open(&mut rng, Value::new(lo), Value::new(lo + width))
            .unwrap();
        prop_assert!(v.get() >= lo);
        prop_assert!(v.get() < lo + width);
    }

    #[test]
    fn derive_seed_is_injective_in_stream(base in any::<u64>(), s1 in 0u64..10_000, s2 in 0u64..10_000) {
        prop_assume!(s1 != s2);
        prop_assert_ne!(derive_seed(base, s1), derive_seed(base, s2));
    }

    #[test]
    fn spectrum_is_monotone_in_probability(
        (p1, p2, n) in (0.0f64..=1.0, 0.0f64..=1.0, 1usize..100)
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let c_lo = PrivacySpectrum::classify(lo, n);
        let c_hi = PrivacySpectrum::classify(hi, n);
        prop_assert!(c_lo <= c_hi);
    }
}
