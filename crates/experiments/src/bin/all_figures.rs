//! Regenerates every figure of the paper: ASCII tables to stdout, CSVs
//! under `results/`.
//!
//! ```text
//! cargo run --release -p privtopk-experiments --bin all_figures [trials] [seed] [--threads N]
//! ```
//!
//! `--threads N` caps the trial-executor worker count (default: available
//! parallelism). The output is bit-identical for every value of `N`.

use std::path::Path;

use privtopk_experiments::figures::{self, Variant};
use privtopk_experiments::{pool, FigureData};

fn emit(fig: &FigureData, out_dir: &Path) {
    println!("{}", fig.to_ascii_table());
    match fig.write_csv(out_dir) {
        Ok(path) => println!("-> wrote {}\n", path.display()),
        Err(e) => eprintln!("-> could not write CSV for {}: {e}\n", fig.id),
    }
}

fn main() {
    let positional = pool::apply_threads_flag(std::env::args().skip(1));
    let mut args = positional.into_iter();
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0x5EED);
    let out_dir = Path::new("results");

    println!("{}", figures::parameter_table());
    // Note: the worker-thread count is deliberately absent from the output
    // so runs at different --threads settings stay byte-identical.
    println!("Running all figures with {trials} trials per point, seed {seed:#x}.\n");

    for fig in [
        figures::fig03_precision_bound(Variant::A),
        figures::fig03_precision_bound(Variant::B),
        figures::fig04_min_rounds(Variant::A),
        figures::fig04_min_rounds(Variant::B),
        figures::fig05_lop_bound(Variant::A),
        figures::fig05_lop_bound(Variant::B),
    ] {
        emit(&fig, out_dir);
    }

    emit(
        &figures::fig06_precision_vs_rounds(Variant::A, trials, seed),
        out_dir,
    );
    emit(
        &figures::fig06_precision_vs_rounds(Variant::B, trials, seed),
        out_dir,
    );
    emit(
        &figures::fig07_lop_per_round(Variant::A, trials, seed),
        out_dir,
    );
    emit(
        &figures::fig07_lop_per_round(Variant::B, trials, seed),
        out_dir,
    );
    emit(&figures::fig08_lop_vs_n(Variant::A, trials, seed), out_dir);
    emit(&figures::fig08_lop_vs_n(Variant::B, trials, seed), out_dir);
    emit(&figures::fig09_tradeoff(trials, seed), out_dir);
    emit(
        &figures::fig10_protocol_comparison(Variant::A, trials, seed),
        out_dir,
    );
    emit(
        &figures::fig10_protocol_comparison(Variant::B, trials, seed),
        out_dir,
    );
    emit(&figures::fig11_topk_precision(trials, seed), out_dir);
    emit(&figures::fig12_topk_lop(Variant::A, trials, seed), out_dir);
    emit(&figures::fig12_topk_lop(Variant::B, trials, seed), out_dir);

    println!("All figures regenerated.");
}
