//! Regenerates the extension experiments (beyond the paper's figures):
//! malicious-model pollution, schedule ablation, collusion vs remapping,
//! baseline comparison, multi-round adversary, trust-aware rings and
//! distribution robustness.
//!
//! ```text
//! cargo run --release -p privtopk-experiments --bin extensions [trials] [seed] [--threads N]
//! ```
//!
//! `--threads N` caps the trial-executor worker count (default: available
//! parallelism). The output is bit-identical for every value of `N`.

use std::path::Path;

use privtopk_experiments::{extensions, pool};

fn main() {
    let positional = pool::apply_threads_flag(std::env::args().skip(1));
    let mut args = positional.into_iter();
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0x5EED);
    let out_dir = Path::new("results");

    println!("Extension experiments: {trials} trials per point, seed {seed:#x}.\n");
    for fig in [
        extensions::ext_malicious_pollution(trials, seed),
        extensions::ext_schedule_comparison(trials, seed),
        extensions::ext_collusion_remap(trials, seed),
        extensions::ext_baseline_costs(trials.min(20), seed),
        extensions::ext_multiround_adversary(trials, seed),
        extensions::ext_trust_coverage(trials, seed),
        extensions::ext_distribution_robustness(trials, seed),
        extensions::ext_knn_accuracy(trials.min(20), seed),
        extensions::ext_latency_makespan(trials, seed),
    ] {
        println!("{}", fig.to_ascii_table());
        match fig.write_csv(out_dir) {
            Ok(path) => println!("-> wrote {}\n", path.display()),
            Err(e) => eprintln!("-> could not write CSV for {}: {e}\n", fig.id),
        }
    }
    println!("All extension experiments regenerated.");
}
