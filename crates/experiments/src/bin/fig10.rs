//! Regenerates Figure 10 (protocol comparison vs n) of the paper. Usage:
//! `cargo run --release -p privtopk-experiments --bin fig10 [trials] [seed]`

use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0x5EED);
    let _ = (trials, seed);
    println!("{}", privtopk_experiments::figures::parameter_table());
    for fig in [
        privtopk_experiments::figures::fig10_protocol_comparison(
            privtopk_experiments::figures::Variant::A,
            trials,
            seed,
        ),
        privtopk_experiments::figures::fig10_protocol_comparison(
            privtopk_experiments::figures::Variant::B,
            trials,
            seed,
        ),
    ] {
        println!("{}", fig.to_ascii_table());
        match fig.write_csv(Path::new("results")) {
            Ok(path) => println!("-> wrote {}\n", path.display()),
            Err(e) => eprintln!("-> could not write CSV for {}: {e}\n", fig.id),
        }
    }
}
