//! Regenerates Figure 11 (top-k precision vs rounds) of the paper. Usage:
//! `cargo run --release -p privtopk-experiments --bin fig11 [trials] [seed]`

use std::path::Path;

fn main() {
    let mut args = std::env::args().skip(1);
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0x5EED);
    let _ = (trials, seed);
    println!("{}", privtopk_experiments::figures::parameter_table());
    {
        let fig = privtopk_experiments::figures::fig11_topk_precision(trials, seed);
        println!("{}", fig.to_ascii_table());
        match fig.write_csv(Path::new("results")) {
            Ok(path) => println!("-> wrote {}\n", path.display()),
            Err(e) => eprintln!("-> could not write CSV for {}: {e}\n", fig.id),
        }
    }
}
