//! Executable verification of every paper claim EXPERIMENTS.md records:
//! re-measures each one and prints PASS/FAIL. Exit code is non-zero if
//! any claim fails.
//!
//! ```text
//! cargo run --release -p privtopk-experiments --bin verify_claims [trials] [seed] [--threads N]
//! ```
//!
//! `--threads N` caps the trial-executor worker count (default: available
//! parallelism). The verdicts are identical for every value of `N`.

use std::process::ExitCode;

use privtopk_experiments::figures::{self, Variant};
use privtopk_experiments::pool;

struct Checker {
    failures: u32,
    checks: u32,
}

impl Checker {
    fn assert(&mut self, claim: &str, ok: bool) {
        self.checks += 1;
        if ok {
            println!("PASS  {claim}");
        } else {
            self.failures += 1;
            println!("FAIL  {claim}");
        }
    }
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let positional = pool::apply_threads_flag(std::env::args().skip(1));
    let mut args = positional.into_iter();
    let trials: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(100);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(0x5EED);
    let mut c = Checker {
        failures: 0,
        checks: 0,
    };
    println!("verifying paper claims with {trials} trials per point, seed {seed:#x}\n");

    // Figure 3 (analytic).
    let f3a = figures::fig03_precision_bound(Variant::A);
    c.assert(
        "F3: precision bound monotone in rounds (every p0)",
        f3a.series
            .iter()
            .all(|s| s.points.windows(2).all(|w| w[1].1 >= w[0].1 - 1e-12)),
    );
    c.assert(
        "F3: smaller p0 gives higher round-1 precision",
        f3a.series_by_label("p0=0.25").unwrap().y_at(1.0)
            > f3a.series_by_label("p0=1").unwrap().y_at(1.0),
    );

    // Figure 4 (analytic).
    let f4b = figures::fig04_min_rounds(Variant::B);
    c.assert(
        "F4: smaller d needs fewer rounds at eps=1e-3",
        f4b.series_by_label("d=0.25").unwrap().y_at(1e-3)
            < f4b.series_by_label("d=0.75").unwrap().y_at(1e-3),
    );

    // Figure 5 (analytic).
    let f5a = figures::fig05_lop_bound(Variant::A);
    let p1 = f5a.series_by_label("p0=1").unwrap();
    c.assert(
        "F5: p0=1 starts at zero LoP and peaks in round 2",
        p1.y_at(1.0) == Some(0.0) && p1.max_y() == p1.y_at(2.0),
    );
    c.assert(
        "F5: larger p0 has the lower peak",
        p1.max_y() < f5a.series_by_label("p0=0.25").unwrap().max_y(),
    );

    // Figure 6 (measured).
    let f6a = figures::fig06_precision_vs_rounds(Variant::A, trials, seed);
    c.assert(
        "F6: measured precision reaches ~100% for every p0 (d=0.5)",
        f6a.series.iter().all(|s| s.last_y().unwrap_or(0.0) > 0.97),
    );
    c.assert(
        "F6: smaller p0 has higher round-1 precision",
        f6a.series_by_label("p0=0.25").unwrap().y_at(1.0)
            > f6a.series_by_label("p0=1").unwrap().y_at(1.0),
    );

    // Figure 7 (measured).
    let f7a = figures::fig07_lop_per_round(Variant::A, trials, seed);
    let m1 = f7a.series_by_label("p0=1").unwrap();
    let m025 = f7a.series_by_label("p0=0.25").unwrap();
    c.assert(
        "F7: p0=1 has zero LoP in round 1, peak at round 2",
        m1.y_at(1.0) == Some(0.0) && m1.max_y() == m1.y_at(2.0),
    );
    c.assert(
        "F7: small p0 peaks in round 1",
        m025.max_y() == m025.y_at(1.0),
    );
    c.assert(
        "F7: larger p0 gives lower peak LoP",
        m1.max_y() < m025.max_y(),
    );

    // Figure 8 (measured).
    let f8a = figures::fig08_lop_vs_n(Variant::A, trials, seed);
    c.assert(
        "F8: LoP decreases with n for every p0",
        f8a.series
            .iter()
            .all(|s| s.y_at(128.0).unwrap() <= s.y_at(4.0).unwrap() + 1e-9),
    );

    // Figure 9 (measured + analytic).
    let f9 = figures::fig09_tradeoff(trials, seed);
    c.assert("F9: d dominates efficiency (round counts ordered by d)", {
        let r25 = f9.series_by_label("d=0.25").unwrap().points[0].1;
        let r75 = f9.series_by_label("d=0.75").unwrap().points[0].1;
        r25 < r75
    });

    // Figure 10 (measured).
    let f10a = figures::fig10_protocol_comparison(Variant::A, trials, seed);
    let f10b = figures::fig10_protocol_comparison(Variant::B, trials, seed);
    c.assert(
        "F10a: probabilistic average LoP far below naive at n=4",
        f10a.series_by_label("probabilistic")
            .unwrap()
            .y_at(4.0)
            .unwrap()
            < f10a.series_by_label("naive").unwrap().y_at(4.0).unwrap() / 2.0,
    );
    c.assert(
        "F10b: naive worst case near provable exposure at large n",
        f10b.series_by_label("naive").unwrap().y_at(128.0).unwrap() > 0.9,
    );
    c.assert(
        "F10b: anonymous start removes the worst case",
        f10b.series_by_label("anonymous")
            .unwrap()
            .y_at(128.0)
            .unwrap()
            < 0.2,
    );

    // Figure 11 (measured).
    let f11 = figures::fig11_topk_precision(trials, seed);
    c.assert(
        "F11: top-k precision reaches ~100% for every k",
        f11.series.iter().all(|s| s.last_y().unwrap_or(0.0) > 0.97),
    );

    // Figure 12 (measured).
    let f12a = figures::fig12_topk_lop(Variant::A, trials, seed);
    let prob = f12a.series_by_label("probabilistic").unwrap();
    c.assert(
        "F12: probabilistic LoP grows with k",
        prob.y_at(16.0).unwrap() >= prob.y_at(2.0).unwrap() - 0.02,
    );
    c.assert(
        "F12: probabilistic below naive at every k",
        figures::K_SWEEP.iter().all(|&k| {
            prob.y_at(k as f64).unwrap()
                < f12a
                    .series_by_label("naive")
                    .unwrap()
                    .y_at(k as f64)
                    .unwrap()
        }),
    );

    println!(
        "\n{}/{} claims verified{}",
        c.checks - c.failures,
        c.checks,
        if c.failures == 0 { " — all PASS" } else { "" }
    );
    if c.failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
