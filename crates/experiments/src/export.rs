//! Exporting transcripts for external analysis tools.

use std::fmt::Write as _;

use privtopk_core::local::LocalAction;
use privtopk_core::Transcript;

/// Renders a transcript as CSV: one row per step with the full
/// intermediate state, suitable for loading into a notebook or spreadsheet
/// to audit an execution by hand.
///
/// Columns: `round,position,node,action,incoming,outgoing` — the vectors
/// are `|`-separated value lists.
///
/// # Example
///
/// ```
/// use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
/// use privtopk_domain::Value;
/// use privtopk_experiments::transcript_to_csv;
///
/// let engine = SimulationEngine::new(
///     ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(2)),
/// );
/// let t = engine.run_values(&[10, 30, 20].map(Value::new), 1)?;
/// let csv = transcript_to_csv(&t);
/// assert!(csv.starts_with("round,position,node,action,incoming,outgoing"));
/// assert_eq!(csv.lines().count(), 1 + 6); // header + 3 nodes x 2 rounds
/// # Ok::<(), privtopk_core::ProtocolError>(())
/// ```
#[must_use]
pub fn transcript_to_csv(transcript: &Transcript) -> String {
    let mut out = String::from("round,position,node,action,incoming,outgoing\n");
    for step in transcript.steps() {
        let action = match step.action {
            LocalAction::PassedOn => "pass",
            LocalAction::InsertedReal => "insert",
            LocalAction::Randomized => "randomize",
        };
        let join = |v: &privtopk_domain::TopKVector| -> String {
            v.iter()
                .map(|x| x.to_string())
                .collect::<Vec<_>>()
                .join("|")
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{}",
            step.round,
            step.position.get(),
            step.node.get(),
            action,
            join(&step.incoming),
            join(&step.outgoing),
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine, StartPolicy};
    use privtopk_domain::Value;

    #[test]
    fn csv_shape_and_content() {
        let engine = SimulationEngine::new(ProtocolConfig::naive(1).with_start(StartPolicy::Fixed));
        let t = engine.run_values(&[5, 25, 15].map(Value::new), 0).unwrap();
        let csv = transcript_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "round,position,node,action,incoming,outgoing");
        // Node 0 starts from the floor (1) and inserts its value 5.
        assert_eq!(lines[1], "1,0,0,insert,1,5");
        // Node 1 inserts 25 over 5; node 2 passes 25 on.
        assert_eq!(lines[2], "1,1,1,insert,5,25");
        assert_eq!(lines[3], "1,2,2,pass,25,25");
    }

    #[test]
    fn topk_vectors_pipe_separated() {
        let engine =
            SimulationEngine::new(ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(1)));
        let locals: Vec<privtopk_domain::TopKVector> = [[9i64, 7], [5, 3], [8, 6]]
            .iter()
            .map(|vals| {
                privtopk_domain::TopKVector::from_values(
                    2,
                    vals.iter().copied().map(Value::new),
                    &privtopk_domain::ValueDomain::paper_default(),
                )
                .unwrap()
            })
            .collect();
        let t = engine.run(&locals, 3).unwrap();
        let csv = transcript_to_csv(&t);
        assert!(csv.lines().skip(1).all(|l| l.matches('|').count() == 2));
    }
}
