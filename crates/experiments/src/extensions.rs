//! Extension experiments beyond the paper's figures: the future-work
//! items (malicious model, multi-round analysis, alternative schedules)
//! and the engineering ablations DESIGN.md calls out.

use privtopk_baselines::{kth_largest, TrustedThirdParty};
use privtopk_core::adversarial::{pollution, run_with_behaviors, Misbehavior};
use privtopk_core::latency::{estimate_makespan, LatencyModel};
use privtopk_core::{true_topk, ProtocolConfig, RoundPolicy, Schedule, SimulationEngine};
use privtopk_datagen::{DataDistribution, DatasetBuilder};
use privtopk_domain::rng::{derive_seed, seeded_rng};
use privtopk_domain::{NodeId, ValueDomain};
use privtopk_knn::{centralized_knn, KnnConfig, LabeledPoint, PrivateKnnClassifier};
use privtopk_privacy::{LopAccumulator, MultiRoundAdversary, SuccessorAdversary};
use privtopk_ring::trust::{coverage, trust_aware_arrangement, TrustGraph};
use privtopk_ring::RingTopology;

use crate::{pool, AdversaryKind, ExperimentSetup, FigureData, Series};

/// Extension E1: result pollution under the malicious model (spoofing and
/// hiding attacks, Section 2.1) as the number of attackers grows.
///
/// n = 8, k = 4; attackers are the lowest-id nodes.
#[must_use]
pub fn ext_malicious_pollution(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_malicious",
        "Result Pollution under Spoofing and Hiding Attacks (n=8, k=4)",
        "attackers",
        "pollution (1 - precision)",
    );
    let n = 8;
    let k = 4;
    let domain = ValueDomain::paper_default();
    let config = ProtocolConfig::topk(k).with_rounds(RoundPolicy::Precision { epsilon: 1e-9 });
    for (label, spoof) in [("spoof", true), ("hide", false)] {
        let mut pts = Vec::new();
        for attackers in 0..=4usize {
            let per_trial = pool::run_trials(trials, |trial| {
                let locals = DatasetBuilder::new(n)
                    .rows_per_node(k)
                    .seed(derive_seed(seed, trial as u64))
                    .build_local_topk(k)
                    .expect("valid dataset");
                let truth = true_topk(&locals, k, &domain).expect("valid k");
                let mut behaviors = vec![Misbehavior::Honest; n];
                for b in behaviors.iter_mut().take(attackers) {
                    *b = if spoof {
                        Misbehavior::ceiling_spoof(k, &domain).expect("valid k")
                    } else {
                        Misbehavior::Hide
                    };
                }
                let t = run_with_behaviors(&config, &locals, &behaviors, trial as u64)
                    .expect("valid run");
                pollution(t.result(), &truth).expect("matching k")
            });
            let total: f64 = per_trial.into_iter().sum();
            pts.push((attackers as f64, total / trials as f64));
        }
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Extension E2: the randomization-schedule family compared on all three
/// axes — rounds to reach 1−ε, measured precision at those rounds, and
/// measured peak LoP.
#[must_use]
pub fn ext_schedule_comparison(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_schedules",
        "Schedule Family Comparison (n=4, eps=1e-3): x = schedule index",
        "schedule",
        "rounds / precision / LoP",
    );
    let schedules = [
        (
            "exponential(1,0.5)",
            Schedule::exponential(1.0, 0.5).expect("valid"),
        ),
        (
            "linear(1,0.25)",
            Schedule::linear(1.0, 0.25).expect("valid"),
        ),
        ("constant(0.5)", Schedule::constant(0.5).expect("valid")),
    ];
    let setup = ExperimentSetup::paper(4, 1)
        .with_trials(trials)
        .with_seed(seed);
    let mut rounds_series = Vec::new();
    let mut precision_series = Vec::new();
    let mut lop_series = Vec::new();
    for (i, (_, schedule)) in schedules.iter().enumerate() {
        let rounds = schedule
            .min_rounds_for_precision(1e-3)
            .expect("reachable schedules only");
        let config = ProtocolConfig::max()
            .with_schedule(*schedule)
            .with_rounds(RoundPolicy::Fixed(rounds.max(10)));
        let precision = setup.measure_precision(
            &ProtocolConfig::max()
                .with_schedule(*schedule)
                .with_rounds(RoundPolicy::Fixed(rounds)),
        );
        let lop = setup
            .measure_lop(&config, AdversaryKind::Successor)
            .average_peak;
        rounds_series.push((i as f64, f64::from(rounds)));
        precision_series.push((i as f64, precision));
        lop_series.push((i as f64, lop));
    }
    fig.push_series(Series::new("rounds_for_eps", rounds_series));
    fig.push_series(Series::new("precision_at_rounds", precision_series));
    fig.push_series(Series::new("avg_peak_lop", lop_series));
    fig
}

/// Extension E3: collusion exposure with and without per-round ring
/// remapping (Section 4.3), as n grows.
#[must_use]
pub fn ext_collusion_remap(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_collusion",
        "Collusion LoP: Fixed Ring vs Per-Round Remapping",
        "nodes",
        "average LoP (colluding neighbors)",
    );
    for (label, remap) in [("fixed_ring", false), ("remap_each_round", true)] {
        let mut pts = Vec::new();
        for &n in &[4usize, 8, 16, 32] {
            let setup = ExperimentSetup::paper(n, 1)
                .with_trials(trials)
                .with_seed(seed);
            let config = ProtocolConfig::max()
                .with_remap_each_round(remap)
                .with_rounds(RoundPolicy::Fixed(10));
            let summary = setup.measure_lop(&config, AdversaryKind::Collusion);
            pts.push((n as f64, summary.average_peak));
        }
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Extension E4: cost and disclosure of the alternatives — the
/// probabilistic protocol vs the kth-ranked-element baseline vs the
/// trusted third party, at k = 1 over growing n.
#[must_use]
pub fn ext_baseline_costs(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_baselines",
        "Messages per Query: Probabilistic vs kth-Element vs Third Party",
        "nodes",
        "messages",
    );
    let domain = ValueDomain::paper_default();
    let mut prob = Vec::new();
    let mut kth = Vec::new();
    let mut ttp = Vec::new();
    for &n in &[4usize, 8, 16, 32, 64] {
        let per_trial = pool::run_trials(trials, |trial| {
            let locals = DatasetBuilder::new(n)
                .rows_per_node(1)
                .seed(derive_seed(seed, (n * 1000 + trial) as u64))
                .build_local_topk(1)
                .expect("valid dataset");
            let t = SimulationEngine::new(
                ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-3 }),
            )
            .run(&locals, trial as u64)
            .expect("valid run");
            let shards: Vec<Vec<privtopk_domain::Value>> =
                locals.iter().map(|l| l.iter().collect()).collect();
            let out = kth_largest(&shards, 1, &domain, trial as u64).expect("valid baseline");
            // Consistency: both compute the same maximum.
            assert_eq!(out.value, t.result_value());
            let _ = TrustedThirdParty::new()
                .topk(&locals, 1, &domain)
                .expect("valid k");
            (t.message_count() as f64, out.messages as f64)
        });
        let (prob_msgs, kth_msgs) = per_trial
            .into_iter()
            .fold((0.0, 0.0), |(p, q), (dp, dq)| (p + dp, q + dq));
        prob.push((n as f64, prob_msgs / trials as f64));
        kth.push((n as f64, kth_msgs / trials as f64));
        // TTP: n uploads + n result downloads.
        ttp.push((n as f64, 2.0 * n as f64));
    }
    fig.push_series(Series::new("probabilistic", prob));
    fig.push_series(Series::new("kth_element", kth));
    fig.push_series(Series::new("third_party", ttp));
    fig
}

/// Extension E5: the multi-round aggregation adversary (Section 7 future
/// work) vs the per-round peak, over n.
#[must_use]
pub fn ext_multiround_adversary(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_multiround",
        "Per-Round Peak vs Whole-Execution (Aggregated) LoP",
        "nodes",
        "average LoP",
    );
    let mut per_round = Vec::new();
    let mut aggregated = Vec::new();
    for &n in &[4usize, 8, 16, 32] {
        let per_trial = pool::run_trials(trials, |trial| {
            let locals = DatasetBuilder::new(n)
                .rows_per_node(1)
                .seed(derive_seed(seed, (n * 777 + trial) as u64))
                .build_local_topk(1)
                .expect("valid dataset");
            let t =
                SimulationEngine::new(ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(10)))
                    .run(&locals, trial as u64)
                    .expect("valid run");
            let matrix = SuccessorAdversary::estimate(&t, &locals);
            let aggregated = MultiRoundAdversary::estimate(&t, &locals).average();
            (matrix, aggregated)
        });
        let mut acc = LopAccumulator::new();
        let mut agg_total = 0.0;
        for (matrix, aggregated) in &per_trial {
            acc.add(matrix);
            agg_total += aggregated;
        }
        per_round.push((n as f64, acc.summarize().average_peak));
        aggregated.push((n as f64, agg_total / trials as f64));
    }
    fig.push_series(Series::new("per_round_peak", per_round));
    fig.push_series(Series::new("aggregated", aggregated));
    fig
}

/// Extension E6: trusted-neighbor coverage of random vs trust-aware ring
/// arrangements as the trust graph densifies.
#[must_use]
pub fn ext_trust_coverage(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_trust",
        "Trusted-Neighbor Coverage: Random vs Trust-Aware Arrangement (n=16)",
        "trust edges per node",
        "coverage fraction",
    );
    let n = 16;
    for (label, aware) in [("random", false), ("trust_aware", true)] {
        let mut pts = Vec::new();
        for &avg_degree in &[1usize, 2, 4, 8] {
            let per_trial = pool::run_trials(trials, |trial| {
                let mut rng = seeded_rng(derive_seed(seed, (avg_degree * 100 + trial) as u64));
                let mut graph = TrustGraph::new(n);
                let edges = n * avg_degree / 2;
                let mut added = 0;
                while added < edges {
                    let a = rand::Rng::gen_range(&mut rng, 0..n);
                    let b = rand::Rng::gen_range(&mut rng, 0..n);
                    if a != b {
                        graph
                            .add_trust(NodeId::new(a), NodeId::new(b))
                            .expect("in range");
                        added += 1;
                    }
                }
                let topo = if aware {
                    trust_aware_arrangement(&graph, &mut rng).expect("non-empty")
                } else {
                    RingTopology::random(n, &mut rng).expect("non-empty")
                };
                coverage(&topo, &graph).expect("well-formed").fraction()
            });
            let total: f64 = per_trial.into_iter().sum();
            pts.push((avg_degree as f64, total / trials as f64));
        }
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Extension E7: the Section 5.1 robustness claim — precision and LoP
/// across data distributions.
#[must_use]
pub fn ext_distribution_robustness(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_distributions",
        "Distribution Robustness (n=4, k=1): x = distribution index",
        "distribution",
        "precision / LoP",
    );
    let dists = [
        ("uniform", DataDistribution::Uniform),
        ("normal", DataDistribution::centered_normal()),
        ("zipf", DataDistribution::classic_zipf()),
    ];
    let mut precision = Vec::new();
    let mut lop = Vec::new();
    for (i, (_, dist)) in dists.iter().enumerate() {
        let setup = ExperimentSetup::paper(4, 1)
            .with_trials(trials)
            .with_seed(seed)
            .with_distribution(*dist)
            .with_rows_per_node(10);
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(10));
        precision.push((i as f64, setup.measure_precision(&config)));
        lop.push((
            i as f64,
            setup
                .measure_lop(&config, AdversaryKind::Successor)
                .average_peak,
        ));
    }
    fig.push_series(Series::new("precision@10", precision));
    fig.push_series(Series::new("avg_peak_lop", lop));
    fig
}

/// Extension E8: private kNN classification — agreement with the
/// centralized reference and accuracy on separable data, over k.
#[must_use]
pub fn ext_knn_accuracy(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_knn",
        "Private kNN: Agreement with Centralized Reference and Accuracy",
        "k",
        "fraction",
    );
    let mut agreement = Vec::new();
    let mut accuracy = Vec::new();
    for &k in &[1usize, 3, 7, 15] {
        let per_trial = pool::run_trials(trials, |trial| {
            let mut agree = 0usize;
            let mut correct = 0usize;
            let mut total = 0usize;
            let mut rng = seeded_rng(derive_seed(seed, (k * 1000 + trial) as u64));
            let shards: Vec<Vec<LabeledPoint>> = (0..4)
                .map(|_| {
                    (0..12)
                        .map(|_| {
                            let label = usize::from(rand::Rng::gen_bool(&mut rng, 0.5));
                            let c = if label == 0 { 0.0 } else { 4.0 };
                            LabeledPoint::new(
                                vec![
                                    c + rand::Rng::gen_range(&mut rng, -1.2..1.2),
                                    c + rand::Rng::gen_range(&mut rng, -1.2..1.2),
                                ],
                                label,
                            )
                        })
                        .collect()
                })
                .collect();
            let flat: Vec<LabeledPoint> = shards.iter().flatten().cloned().collect();
            let config = KnnConfig::new(k);
            let clf = PrivateKnnClassifier::new(config, shards).expect("valid shards");
            for q in 0..5 {
                let truth_label = usize::from(q % 2 == 1);
                let c = if truth_label == 0 { 0.0 } else { 4.0 };
                let query = [
                    c + rand::Rng::gen_range(&mut rng, -0.8..0.8),
                    c + rand::Rng::gen_range(&mut rng, -0.8..0.8),
                ];
                let private = clf
                    .classify(&query, (trial * 10 + q) as u64)
                    .expect("valid query");
                let reference = centralized_knn(&flat, &query, &config);
                total += 1;
                if private == reference {
                    agree += 1;
                }
                if private == truth_label {
                    correct += 1;
                }
            }
            (agree, correct, total)
        });
        let (agree, correct, total) = per_trial
            .into_iter()
            .fold((0, 0, 0), |(a, c, t), (da, dc, dt)| {
                (a + da, c + dc, t + dt)
            });
        agreement.push((k as f64, agree as f64 / total as f64));
        accuracy.push((k as f64, correct as f64 / total as f64));
    }
    fig.push_series(Series::new("agreement_with_centralized", agreement));
    fig.push_series(Series::new("accuracy_on_blobs", accuracy));
    fig
}

/// Extension E9: wall-clock makespan (Section 4.2) — flat ring vs
/// group-parallel execution under a WAN latency model, sqrt(n) groups.
#[must_use]
pub fn ext_latency_makespan(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "ext_latency",
        "Estimated Query Makespan: Flat Ring vs Group-Parallel (WAN model)",
        "nodes",
        "makespan (ms)",
    );
    let config = ProtocolConfig::max().with_rounds(RoundPolicy::Precision { epsilon: 1e-3 });
    let mut flat = Vec::new();
    let mut grouped = Vec::new();
    for &n in &[9usize, 36, 100, 225, 400] {
        let groups = (n as f64).sqrt().round() as usize;
        let per_trial = pool::run_trials(trials, |trial| {
            let est = estimate_makespan(
                &config,
                n,
                groups,
                LatencyModel::wan(),
                derive_seed(seed, (n * 31 + trial) as u64),
            )
            .expect("valid grouping");
            (est.flat_ms, est.grouped_ms)
        });
        let (flat_total, grouped_total) = per_trial
            .into_iter()
            .fold((0.0, 0.0), |(f, g), (df, dg)| (f + df, g + dg));
        flat.push((n as f64, flat_total / trials as f64));
        grouped.push((n as f64, grouped_total / trials as f64));
    }
    fig.push_series(Series::new("flat", flat));
    fig.push_series(Series::new("grouped_sqrt_n", grouped));
    fig
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 10;
    const SEED: u64 = 0xE47;

    #[test]
    fn malicious_pollution_grows_with_attackers() {
        let fig = ext_malicious_pollution(T, SEED);
        let spoof = fig.series_by_label("spoof").unwrap();
        assert_eq!(spoof.y_at(0.0).unwrap(), 0.0, "no attackers, no pollution");
        assert!(spoof.y_at(4.0).unwrap() > spoof.y_at(1.0).unwrap() - 1e-9);
        assert!(spoof.y_at(1.0).unwrap() > 0.0);
        let hide = fig.series_by_label("hide").unwrap();
        assert!(hide.y_at(4.0).unwrap() >= hide.y_at(0.0).unwrap());
        // Spoofing (injects fakes) pollutes at least as much as hiding.
        assert!(spoof.y_at(4.0).unwrap() >= hide.y_at(4.0).unwrap() - 1e-9);
    }

    #[test]
    fn schedule_comparison_all_reach_full_precision() {
        let fig = ext_schedule_comparison(T, SEED);
        let prec = fig.series_by_label("precision_at_rounds").unwrap();
        for &(_, p) in &prec.points {
            assert!(p > 0.9, "precision {p}");
        }
        let rounds = fig.series_by_label("rounds_for_eps").unwrap();
        assert!(rounds.points.iter().all(|&(_, r)| r >= 1.0));
    }

    #[test]
    fn collusion_lop_positive_and_decreasing_in_n() {
        let fig = ext_collusion_remap(T, SEED);
        for s in &fig.series {
            assert!(s.y_at(4.0).unwrap() > 0.0);
            assert!(s.y_at(32.0).unwrap() <= s.y_at(4.0).unwrap());
        }
    }

    #[test]
    fn baseline_costs_scale_as_expected() {
        let fig = ext_baseline_costs(5, SEED);
        let prob = fig.series_by_label("probabilistic").unwrap();
        let kth = fig.series_by_label("kth_element").unwrap();
        // Both linear in n; the probabilistic protocol needs fewer
        // sequential scans than the kth-element binary search over a
        // 10^4-wide domain (r_min ~ 5 vs log2(10^4) ~ 14).
        assert!(prob.y_at(64.0).unwrap() < kth.y_at(64.0).unwrap());
        // TTP is cheapest — its cost is privacy, not messages.
        let ttp = fig.series_by_label("third_party").unwrap();
        assert!(ttp.y_at(64.0).unwrap() < prob.y_at(64.0).unwrap());
    }

    #[test]
    fn multiround_dominates_per_round() {
        let fig = ext_multiround_adversary(T, SEED);
        let per_round = fig.series_by_label("per_round_peak").unwrap();
        let agg = fig.series_by_label("aggregated").unwrap();
        for &(x, y) in &agg.points {
            assert!(y >= per_round.y_at(x).unwrap() - 1e-9, "n={x}");
        }
    }

    #[test]
    fn trust_aware_dominates_random_coverage() {
        let fig = ext_trust_coverage(T, SEED);
        let aware = fig.series_by_label("trust_aware").unwrap();
        let random = fig.series_by_label("random").unwrap();
        for &(x, y) in &aware.points {
            assert!(y >= random.y_at(x).unwrap(), "degree {x}");
        }
        // Dense graphs approach full coverage.
        assert!(aware.y_at(8.0).unwrap() > 0.9);
    }

    #[test]
    fn latency_grouping_wins_and_scales_sublinearly() {
        let fig = ext_latency_makespan(5, SEED);
        let flat = fig.series_by_label("flat").unwrap();
        let grouped = fig.series_by_label("grouped_sqrt_n").unwrap();
        for &(n, ms) in &grouped.points {
            assert!(ms < flat.y_at(n).unwrap(), "n={n}");
        }
        // Flat grows ~linearly; grouped ~sqrt(n): at n=400 the gap is wide.
        let speedup = flat.y_at(400.0).unwrap() / grouped.y_at(400.0).unwrap();
        assert!(speedup > 5.0, "speedup {speedup}");
    }

    #[test]
    fn knn_agreement_is_total_and_accuracy_high() {
        let fig = ext_knn_accuracy(4, SEED);
        let agree = fig.series_by_label("agreement_with_centralized").unwrap();
        for &(k, a) in &agree.points {
            assert_eq!(a, 1.0, "k = {k}: private and centralized diverged");
        }
        let acc = fig.series_by_label("accuracy_on_blobs").unwrap();
        for &(k, a) in &acc.points {
            assert!(a > 0.9, "k = {k}: accuracy {a}");
        }
    }

    #[test]
    fn distribution_robustness_holds() {
        let fig = ext_distribution_robustness(T, SEED);
        let prec = fig.series_by_label("precision@10").unwrap();
        for &(_, p) in &prec.points {
            assert!(p > 0.95, "precision {p}");
        }
        let lop = fig.series_by_label("avg_peak_lop").unwrap();
        let max = lop.max_y().unwrap();
        for &(_, l) in &lop.points {
            assert!(l <= max);
            assert!(l < 0.3, "LoP {l} out of family");
        }
    }
}
