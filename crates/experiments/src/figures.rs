//! One generator per paper figure.
//!
//! Analytical figures (3, 4, 5) come straight from `privtopk-analysis`;
//! measured figures (6–12) run the protocol via [`ExperimentSetup`].
//! Binaries in `src/bin/` render these to ASCII + CSV.

use privtopk_analysis::{correctness, efficiency, privacy_bounds, RandomizationParams};
use privtopk_core::{ProtocolConfig, RoundPolicy, Schedule};

use crate::{AdversaryKind, ExperimentSetup, FigureData, Series};

/// Which panel of a two-panel figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Panel (a): sweep the initial randomization probability `p0`
    /// (dampening factor fixed at `1/2`).
    A,
    /// Panel (b): sweep the dampening factor `d` (`p0` fixed at 1).
    B,
}

impl Variant {
    fn suffix(self) -> &'static str {
        match self {
            Variant::A => "a",
            Variant::B => "b",
        }
    }
}

/// The `p0` sweep of the (a) panels.
pub const P0_SWEEP: [f64; 4] = [0.25, 0.5, 0.75, 1.0];
/// The `d` sweep of the (b) panels (the paper plots d = 1, 1/2, 1/4).
pub const D_SWEEP: [f64; 3] = [0.25, 0.5, 1.0];
/// The `d` sweep where `d = 1` is excluded because the quantity is
/// undefined/unreachable (Figure 4b).
pub const D_SWEEP_CONVERGENT: [f64; 3] = [0.25, 0.5, 0.75];
/// Node-count sweep for Figures 8 and 10.
pub const N_SWEEP: [usize; 6] = [4, 8, 16, 32, 64, 128];
/// k sweep for Figures 11 and 12.
pub const K_SWEEP: [usize; 4] = [2, 4, 8, 16];
/// Rounds plotted on the x axis of per-round figures.
pub const MAX_PLOT_ROUNDS: u32 = 10;
/// Error-bound sweep of Figure 4 (log-scale x axis).
pub const EPSILON_SWEEP: [f64; 8] = [1e-1, 1e-2, 1e-3, 1e-4, 1e-5, 1e-6, 1e-7, 1e-8];
/// The measured probabilistic protocol runs this many rounds in LoP
/// experiments (past convergence under the paper's default schedule).
pub const LOP_ROUNDS: u32 = 10;

fn sweep_params(variant: Variant) -> Vec<(String, f64, f64)> {
    match variant {
        Variant::A => P0_SWEEP
            .iter()
            .map(|&p0| (format!("p0={p0}"), p0, 0.5))
            .collect(),
        Variant::B => D_SWEEP
            .iter()
            .map(|&d| (format!("d={d}"), 1.0, d))
            .collect(),
    }
}

// ---------------------------------------------------------------------------
// Analytical figures (Section 4)
// ---------------------------------------------------------------------------

/// Figure 3: the Equation 3 precision lower bound vs number of rounds.
#[must_use]
pub fn fig03_precision_bound(variant: Variant) -> FigureData {
    let mut fig = FigureData::new(
        format!("fig03{}", variant.suffix()),
        "Precision Guarantee with Number of Rounds (Eq. 3)",
        "rounds",
        "precision bound",
    );
    for (label, p0, d) in sweep_params(variant) {
        let params = RandomizationParams::new(p0, d).expect("valid sweep");
        let pts = correctness::precision_series(params, MAX_PLOT_ROUNDS)
            .into_iter()
            .map(|(r, p)| (f64::from(r), p))
            .collect();
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Figure 4: minimum rounds for precision `1 − ε` vs `ε` (Eq. 4).
#[must_use]
pub fn fig04_min_rounds(variant: Variant) -> FigureData {
    let mut fig = FigureData::new(
        format!("fig04{}", variant.suffix()),
        "Required Number of Rounds with Precision Guarantee (Eq. 4)",
        "epsilon",
        "min rounds",
    );
    let sweeps: Vec<(String, f64, f64)> = match variant {
        Variant::A => sweep_params(Variant::A),
        // d = 1 never converges; Figure 4(b) therefore sweeps decaying d.
        Variant::B => D_SWEEP_CONVERGENT
            .iter()
            .map(|&d| (format!("d={d}"), 1.0, d))
            .collect(),
    };
    for (label, p0, d) in sweeps {
        let params = RandomizationParams::new(p0, d).expect("valid sweep");
        let pts = efficiency::min_rounds_series(params, &EPSILON_SWEEP)
            .expect("reachable precision")
            .into_iter()
            .map(|(e, r)| (e, f64::from(r)))
            .collect();
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Figure 5: the Equation 6 expected-LoP term per round.
#[must_use]
pub fn fig05_lop_bound(variant: Variant) -> FigureData {
    let mut fig = FigureData::new(
        format!("fig05{}", variant.suffix()),
        "Expected Loss of Privacy in Different Rounds (Eq. 6)",
        "round",
        "expected LoP bound",
    );
    for (label, p0, d) in sweep_params(variant) {
        let params = RandomizationParams::new(p0, d).expect("valid sweep");
        let pts = privacy_bounds::probabilistic_lop_series(params, MAX_PLOT_ROUNDS)
            .into_iter()
            .map(|(r, l)| (f64::from(r), l))
            .collect();
        fig.push_series(Series::new(label, pts));
    }
    fig
}

// ---------------------------------------------------------------------------
// Measured figures (Section 5)
// ---------------------------------------------------------------------------

fn max_config(p0: f64, d: f64, rounds: u32) -> ProtocolConfig {
    ProtocolConfig::max()
        .with_schedule(Schedule::exponential(p0, d).expect("valid sweep"))
        .with_rounds(RoundPolicy::Fixed(rounds))
}

/// Figure 6: measured precision of max selection vs number of rounds
/// (n = 4, uniform data, averaged over `trials` experiments).
#[must_use]
pub fn fig06_precision_vs_rounds(variant: Variant, trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        format!("fig06{}", variant.suffix()),
        "Precision of Max Selection with Number of Rounds",
        "rounds",
        "precision",
    );
    let setup = ExperimentSetup::paper(4, 1)
        .with_trials(trials)
        .with_seed(seed);
    for (label, p0, d) in sweep_params(variant) {
        let pts = (1..=MAX_PLOT_ROUNDS)
            .map(|r| (f64::from(r), setup.measure_precision(&max_config(p0, d, r))))
            .collect();
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Figure 7: measured average LoP per round for max selection (n = 4).
#[must_use]
pub fn fig07_lop_per_round(variant: Variant, trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        format!("fig07{}", variant.suffix()),
        "Loss of Privacy for Max Selection in Different Rounds",
        "round",
        "average LoP",
    );
    let setup = ExperimentSetup::paper(4, 1)
        .with_trials(trials)
        .with_seed(seed);
    for (label, p0, d) in sweep_params(variant) {
        let summary = setup.measure_lop(
            &max_config(p0, d, MAX_PLOT_ROUNDS),
            AdversaryKind::Successor,
        );
        let pts = summary
            .per_round_average
            .iter()
            .enumerate()
            .map(|(i, &l)| (i as f64 + 1.0, l))
            .collect();
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Figure 8: measured (peak) LoP vs number of nodes.
#[must_use]
pub fn fig08_lop_vs_n(variant: Variant, trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        format!("fig08{}", variant.suffix()),
        "Loss of Privacy for Max Selection with Different Number of Nodes",
        "nodes",
        "average LoP",
    );
    for (label, p0, d) in sweep_params(variant) {
        let mut pts = Vec::with_capacity(N_SWEEP.len());
        for &n in &N_SWEEP {
            let setup = ExperimentSetup::paper(n, 1)
                .with_trials(trials)
                .with_seed(seed);
            let summary =
                setup.measure_lop(&max_config(p0, d, LOP_ROUNDS), AdversaryKind::Successor);
            pts.push((n as f64, summary.average_peak));
        }
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Figure 9: the privacy-vs-efficiency tradeoff scatter. Each series is a
/// `d` value; each point is (measured peak LoP at n = 4, analytic
/// `r_min(ε = 0.001)`), one per `p0`.
#[must_use]
pub fn fig09_tradeoff(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "fig09",
        "Tradeoff between Privacy and Efficiency with Randomization Parameters",
        "average LoP",
        "rounds for eps=0.001",
    );
    let setup = ExperimentSetup::paper(4, 1)
        .with_trials(trials)
        .with_seed(seed);
    for &d in &D_SWEEP_CONVERGENT {
        let mut pts = Vec::with_capacity(P0_SWEEP.len());
        for &p0 in &P0_SWEEP {
            let params = RandomizationParams::new(p0, d).expect("valid sweep");
            let rounds =
                efficiency::min_rounds_for_precision(params, 1e-3).expect("reachable precision");
            let summary =
                setup.measure_lop(&max_config(p0, d, LOP_ROUNDS), AdversaryKind::Successor);
            pts.push((summary.average_peak, f64::from(rounds)));
        }
        // Sort by x so the table renders cleanly.
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        fig.push_series(Series::new(format!("d={d}"), pts));
    }
    fig
}

/// The three protocols compared in Figures 10 and 12.
fn comparison_protocols(k: usize) -> Vec<(&'static str, ProtocolConfig)> {
    vec![
        ("naive", ProtocolConfig::naive(k)),
        ("anonymous", ProtocolConfig::anonymous_naive(k)),
        (
            "probabilistic",
            if k == 1 {
                ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(LOP_ROUNDS))
            } else {
                ProtocolConfig::topk(k).with_rounds(RoundPolicy::Fixed(LOP_ROUNDS))
            },
        ),
    ]
}

/// Figure 10: average (panel a) and worst-case (panel b) LoP vs number of
/// nodes for the naive, anonymous-naive and probabilistic protocols.
#[must_use]
pub fn fig10_protocol_comparison(variant: Variant, trials: usize, seed: u64) -> FigureData {
    let (title, ylabel) = match variant {
        Variant::A => (
            "Comparison of Loss of Privacy with Number of Nodes (average)",
            "average LoP",
        ),
        Variant::B => (
            "Comparison of Loss of Privacy with Number of Nodes (worst case)",
            "worst-case LoP",
        ),
    };
    let mut fig = FigureData::new(format!("fig10{}", variant.suffix()), title, "nodes", ylabel);
    for (label, config) in comparison_protocols(1) {
        let mut pts = Vec::with_capacity(N_SWEEP.len());
        for &n in &N_SWEEP {
            let setup = ExperimentSetup::paper(n, 1)
                .with_trials(trials)
                .with_seed(seed);
            let summary = setup.measure_lop(&config, AdversaryKind::Successor);
            let y = match variant {
                Variant::A => summary.average_peak,
                Variant::B => summary.worst_peak,
            };
            pts.push((n as f64, y));
        }
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Figure 11: measured precision of top-k selection vs rounds, varying k
/// (n = 4).
#[must_use]
pub fn fig11_topk_precision(trials: usize, seed: u64) -> FigureData {
    let mut fig = FigureData::new(
        "fig11",
        "Precision of Topk Selection with Number of Rounds",
        "rounds",
        "precision",
    );
    for &k in &K_SWEEP {
        let setup = ExperimentSetup::paper(4, k)
            .with_trials(trials)
            .with_seed(seed);
        let pts = (1..=MAX_PLOT_ROUNDS)
            .map(|r| {
                let config = ProtocolConfig::topk(k).with_rounds(RoundPolicy::Fixed(r));
                (f64::from(r), setup.measure_precision(&config))
            })
            .collect();
        fig.push_series(Series::new(format!("k={k}"), pts));
    }
    fig
}

/// Figure 12: average (panel a) and worst-case (panel b) LoP vs k for the
/// three protocols (n = 4).
#[must_use]
pub fn fig12_topk_lop(variant: Variant, trials: usize, seed: u64) -> FigureData {
    let (title, ylabel) = match variant {
        Variant::A => (
            "Comparison of Loss of Privacy with k (average)",
            "average LoP",
        ),
        Variant::B => (
            "Comparison of Loss of Privacy with k (worst case)",
            "worst-case LoP",
        ),
    };
    let mut fig = FigureData::new(format!("fig12{}", variant.suffix()), title, "k", ylabel);
    let mut labels_points: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for &k in &K_SWEEP {
        let setup = ExperimentSetup::paper(4, k)
            .with_trials(trials)
            .with_seed(seed);
        for (label, config) in comparison_protocols(k) {
            let summary = setup.measure_lop(&config, AdversaryKind::Successor);
            let y = match variant {
                Variant::A => summary.average_peak,
                Variant::B => summary.worst_peak,
            };
            if let Some(entry) = labels_points.iter_mut().find(|(l, _)| l == label) {
                entry.1.push((k as f64, y));
            } else {
                labels_points.push((label.to_string(), vec![(k as f64, y)]));
            }
        }
    }
    for (label, pts) in labels_points {
        fig.push_series(Series::new(label, pts));
    }
    fig
}

/// Table 1: the experiment parameters, rendered for every binary's header.
#[must_use]
pub fn parameter_table() -> String {
    let rows = [
        ("n", "# of nodes in the system"),
        ("k", "parameter in topk"),
        ("p0", "initial randomization prob."),
        ("d", "dampening factor for randomization prob."),
    ];
    let mut out = String::from("Table 1: Experiment Parameters\n");
    for (p, desc) in rows {
        out.push_str(&format!("  {p:<4} {desc}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: usize = 12; // reduced trials for test speed
    const SEED: u64 = 0xFEED;

    #[test]
    fn fig03_shapes() {
        let a = fig03_precision_bound(Variant::A);
        assert_eq!(a.series.len(), 4);
        // Monotone increasing in rounds; smaller p0 above larger p0.
        let p025 = a.series_by_label("p0=0.25").unwrap();
        let p100 = a.series_by_label("p0=1").unwrap();
        assert!(p025.y_at(1.0).unwrap() > p100.y_at(1.0).unwrap());
        assert!(p100.last_y().unwrap() > 0.999);
        let b = fig03_precision_bound(Variant::B);
        // d = 1, p0 = 1 never converges analytically.
        assert_eq!(b.series_by_label("d=1").unwrap().last_y().unwrap(), 0.0);
    }

    #[test]
    fn fig04_shapes() {
        let a = fig04_min_rounds(Variant::A);
        for s in &a.series {
            // Rounds grow as epsilon shrinks (points ordered by desc eps).
            let r_loose = s.y_at(1e-1).unwrap();
            let r_tight = s.y_at(1e-8).unwrap();
            assert!(r_tight >= r_loose);
        }
        let b = fig04_min_rounds(Variant::B);
        let d25 = b.series_by_label("d=0.25").unwrap().y_at(1e-3).unwrap();
        let d75 = b.series_by_label("d=0.75").unwrap().y_at(1e-3).unwrap();
        assert!(d25 < d75, "smaller d needs fewer rounds");
    }

    #[test]
    fn fig05_shapes() {
        let a = fig05_lop_bound(Variant::A);
        // p0 = 1 starts at zero and peaks at round 2.
        let p1 = a.series_by_label("p0=1").unwrap();
        assert_eq!(p1.y_at(1.0).unwrap(), 0.0);
        assert_eq!(p1.max_y().unwrap(), p1.y_at(2.0).unwrap());
        // Small p0 peaks in round 1.
        let p025 = a.series_by_label("p0=0.25").unwrap();
        assert_eq!(p025.max_y().unwrap(), p025.y_at(1.0).unwrap());
        // Larger p0 has the lower peak.
        assert!(p1.max_y().unwrap() < p025.max_y().unwrap());
    }

    #[test]
    fn fig06_precision_converges_and_orders() {
        let a = fig06_precision_vs_rounds(Variant::A, T, SEED);
        for s in &a.series {
            assert!(
                s.last_y().unwrap() > 0.9,
                "{} final {:?}",
                s.label,
                s.last_y()
            );
        }
        // Smaller p0: higher precision in round 1.
        let p025 = a.series_by_label("p0=0.25").unwrap().y_at(1.0).unwrap();
        let p1 = a.series_by_label("p0=1").unwrap().y_at(1.0).unwrap();
        assert!(p025 > p1);
    }

    #[test]
    fn fig07_lop_shape_matches_analysis() {
        let a = fig07_lop_per_round(Variant::A, T, SEED);
        let p1 = a.series_by_label("p0=1").unwrap();
        // Zero in round 1, peak at round 2 (within noise), then decay.
        assert_eq!(p1.y_at(1.0).unwrap(), 0.0);
        assert!(p1.y_at(2.0).unwrap() > p1.y_at(6.0).unwrap());
    }

    #[test]
    fn fig08_lop_decreases_with_n() {
        let a = fig08_lop_vs_n(Variant::A, T, SEED);
        for s in &a.series {
            let small = s.y_at(4.0).unwrap();
            let large = s.y_at(128.0).unwrap();
            assert!(large <= small + 1e-9, "{}: {small} -> {large}", s.label);
        }
    }

    #[test]
    fn fig10_probabilistic_wins() {
        let avg = fig10_protocol_comparison(Variant::A, T, SEED);
        let naive = avg.series_by_label("naive").unwrap().y_at(4.0).unwrap();
        let prob = avg
            .series_by_label("probabilistic")
            .unwrap()
            .y_at(4.0)
            .unwrap();
        assert!(prob < naive / 2.0, "prob {prob} vs naive {naive}");
        let worst = fig10_protocol_comparison(Variant::B, T, SEED);
        // Naive worst case ~ provable exposure of the starting node. The
        // exact value is trial-noise dependent at test trial counts, so
        // accept the boundary.
        let naive_worst = worst.series_by_label("naive").unwrap().y_at(4.0).unwrap();
        assert!(naive_worst >= 0.5, "naive worst {naive_worst}");
        // Anonymous start removes the worst case.
        let anon_worst = worst
            .series_by_label("anonymous")
            .unwrap()
            .y_at(4.0)
            .unwrap();
        assert!(anon_worst < naive_worst);
    }

    #[test]
    fn fig11_topk_precision_converges_for_all_k() {
        let fig = fig11_topk_precision(T, SEED);
        assert_eq!(fig.series.len(), K_SWEEP.len());
        for s in &fig.series {
            assert!(
                s.last_y().unwrap() > 0.9,
                "{} final precision {:?}",
                s.label,
                s.last_y()
            );
        }
    }

    #[test]
    fn fig12_lop_increases_with_k_for_probabilistic() {
        let fig = fig12_topk_lop(Variant::A, T, SEED);
        let prob = fig.series_by_label("probabilistic").unwrap();
        let at_small = prob.y_at(2.0).unwrap();
        let at_large = prob.y_at(16.0).unwrap();
        assert!(
            at_large >= at_small,
            "LoP should not shrink with k: {at_small} -> {at_large}"
        );
        // Probabilistic still far below naive at every k.
        let naive = fig.series_by_label("naive").unwrap();
        for &k in &K_SWEEP {
            assert!(prob.y_at(k as f64).unwrap() < naive.y_at(k as f64).unwrap());
        }
    }

    #[test]
    fn parameter_table_lists_table_1() {
        let t = parameter_table();
        for p in ["n", "k", "p0", "d"] {
            assert!(t.contains(p));
        }
    }
}
