//! The multi-trial experiment runner shared by all figure generators.

use privtopk_core::{true_topk, ProtocolConfig, SimulationEngine};
use privtopk_datagen::{DataDistribution, DatasetBuilder};
use privtopk_domain::rng::derive_seed;
use privtopk_privacy::{CollusionAdversary, LopAccumulator, LopSummary, SuccessorAdversary};

use crate::pool::TrialPool;

/// Which adversary model the LoP measurement uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// The semi-honest successor (the paper's main model).
    Successor,
    /// Colluding predecessor + successor (Section 4.3).
    Collusion,
}

/// The Table 1 experiment parameters plus data-shape knobs.
///
/// Each trial draws a fresh dataset (seeded deterministically from
/// `base_seed` and the trial index), runs the configured protocol and
/// feeds the transcript to the measurement. The paper's default of "each
/// plot is averaged over 100 experiments" corresponds to `trials = 100`.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentSetup {
    /// Number of nodes `n`.
    pub n: usize,
    /// Query parameter `k`.
    pub k: usize,
    /// Rows held by each private database. The paper's dynamics correspond
    /// to each node contributing `k` candidate values, so the default
    /// experiments use `rows_per_node = k`.
    pub rows_per_node: usize,
    /// Data distribution (Section 5.1: uniform by default; normal and
    /// zipf give similar results).
    pub distribution: DataDistribution,
    /// Number of independent experiments to average over.
    pub trials: usize,
    /// Master seed.
    pub base_seed: u64,
    /// Worker threads for the trial loop; `0` uses the process default
    /// (see [`crate::pool::default_threads`]). Results are identical for
    /// every value — trials are independently seeded and reduced in trial
    /// order (see [`crate::pool`]).
    pub threads: usize,
}

impl ExperimentSetup {
    /// The paper's defaults for a given `n` and `k`: 100 trials, uniform
    /// data over `[1, 10000]`, `k` values per node.
    #[must_use]
    pub fn paper(n: usize, k: usize) -> Self {
        ExperimentSetup {
            n,
            k,
            rows_per_node: k,
            distribution: DataDistribution::Uniform,
            trials: 100,
            base_seed: 0x5EED,
            threads: 0,
        }
    }

    /// Overrides the trial count (smoke tests use small values).
    #[must_use]
    pub fn with_trials(mut self, trials: usize) -> Self {
        self.trials = trials;
        self
    }

    /// Overrides the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.base_seed = seed;
        self
    }

    /// Overrides the data distribution.
    #[must_use]
    pub fn with_distribution(mut self, distribution: DataDistribution) -> Self {
        self.distribution = distribution;
        self
    }

    /// Overrides the rows per node.
    #[must_use]
    pub fn with_rows_per_node(mut self, rows: usize) -> Self {
        self.rows_per_node = rows;
        self
    }

    /// Overrides the worker-thread count (`0` = process default). The
    /// measured numbers do not depend on this value.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn trial_locals(&self, trial: usize) -> Vec<privtopk_domain::TopKVector> {
        DatasetBuilder::new(self.n)
            .rows_per_node(self.rows_per_node.max(1))
            .distribution(self.distribution)
            .seed(derive_seed(self.base_seed, trial as u64))
            .build_local_topk(self.k)
            .expect("valid dataset parameters")
    }

    fn trial_seed(&self, trial: usize) -> u64 {
        derive_seed(self.base_seed ^ 0xABCD_EF01, trial as u64)
    }

    /// Average precision (`|R ∩ TopK| / k`, Section 5.4) over the trials.
    ///
    /// # Panics
    ///
    /// Panics on configuration errors (the figure generators only pass
    /// validated configurations).
    #[must_use]
    pub fn measure_precision(&self, config: &ProtocolConfig) -> f64 {
        let engine = SimulationEngine::new(config.clone());
        let per_trial = TrialPool::new(self.threads).run(self.trials, |trial| {
            let locals = self.trial_locals(trial);
            let truth = true_topk(&locals, self.k, &config.domain()).expect("valid k");
            let transcript = engine
                .run(&locals, self.trial_seed(trial))
                .expect("valid protocol configuration");
            transcript
                .result()
                .precision_against(&truth)
                .expect("matching k")
        });
        // Summing in trial order keeps the result bit-identical to the
        // serial loop for any thread count.
        per_trial.into_iter().sum::<f64>() / self.trials as f64
    }

    /// Trial-averaged LoP statistics under the chosen adversary.
    ///
    /// # Panics
    ///
    /// Panics on configuration errors.
    #[must_use]
    pub fn measure_lop(&self, config: &ProtocolConfig, adversary: AdversaryKind) -> LopSummary {
        let engine = SimulationEngine::new(config.clone());
        let matrices = TrialPool::new(self.threads).run(self.trials, |trial| {
            let locals = self.trial_locals(trial);
            let transcript = engine
                .run(&locals, self.trial_seed(trial))
                .expect("valid protocol configuration");
            match adversary {
                AdversaryKind::Successor => SuccessorAdversary::estimate(&transcript, &locals),
                AdversaryKind::Collusion => CollusionAdversary::estimate(&transcript, &locals),
            }
        });
        // Accumulating in trial order keeps the f64 sums bit-identical to
        // the serial loop for any thread count.
        let mut acc = LopAccumulator::new();
        for matrix in &matrices {
            acc.add(matrix);
        }
        acc.summarize()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_core::RoundPolicy;

    #[test]
    fn paper_defaults() {
        let s = ExperimentSetup::paper(4, 1);
        assert_eq!(s.n, 4);
        assert_eq!(s.trials, 100);
        assert_eq!(s.rows_per_node, 1);
    }

    #[test]
    fn precision_reaches_one_with_many_rounds() {
        let setup = ExperimentSetup::paper(4, 1).with_trials(25);
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(12));
        let p = setup.measure_precision(&config);
        assert!(p > 0.99, "precision {p}");
    }

    #[test]
    fn precision_low_with_single_round_high_p0() {
        let setup = ExperimentSetup::paper(4, 1).with_trials(25);
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(1));
        // p0 = 1: round 1 is fully randomized, so the result is essentially
        // never exact.
        let p = setup.measure_precision(&config);
        assert!(p < 0.2, "precision {p}");
    }

    #[test]
    fn lop_probabilistic_below_naive() {
        let setup = ExperimentSetup::paper(4, 1).with_trials(80);
        let naive = setup.measure_lop(&ProtocolConfig::naive(1), AdversaryKind::Successor);
        let prob = setup.measure_lop(
            &ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(10)),
            AdversaryKind::Successor,
        );
        assert!(
            prob.average_peak < naive.average_peak / 2.0,
            "prob {} vs naive {}",
            prob.average_peak,
            naive.average_peak
        );
        assert!(naive.worst_peak > 0.6, "naive worst {}", naive.worst_peak);
    }

    #[test]
    fn deterministic_under_seed() {
        let setup = ExperimentSetup::paper(4, 1).with_trials(5).with_seed(7);
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(6));
        assert_eq!(
            setup.measure_precision(&config),
            setup.measure_precision(&config)
        );
        let a = setup.measure_lop(&config, AdversaryKind::Successor);
        let b = setup.measure_lop(&config, AdversaryKind::Successor);
        assert_eq!(a, b);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        // The tentpole guarantee: parallel execution is bit-identical to
        // serial for both measurements, including the f64 accumulations.
        let base = ExperimentSetup::paper(4, 2)
            .with_trials(17)
            .with_seed(0xD1CE);
        let config = ProtocolConfig::topk(2).with_rounds(RoundPolicy::Fixed(8));
        let serial = base.with_threads(1);
        let parallel = base.with_threads(8);
        let p1 = serial.measure_precision(&config);
        let p8 = parallel.measure_precision(&config);
        assert_eq!(
            p1.to_bits(),
            p8.to_bits(),
            "precision diverged: {p1} vs {p8}"
        );
        let l1 = serial.measure_lop(&config, AdversaryKind::Successor);
        let l8 = parallel.measure_lop(&config, AdversaryKind::Successor);
        assert_eq!(l1, l8);
        let c1 = serial.measure_lop(&config, AdversaryKind::Collusion);
        let c8 = parallel.measure_lop(&config, AdversaryKind::Collusion);
        assert_eq!(c1, c8);
    }

    #[test]
    fn collusion_never_below_successor() {
        let setup = ExperimentSetup::paper(5, 1).with_trials(20);
        let config = ProtocolConfig::max().with_rounds(RoundPolicy::Fixed(8));
        let s = setup.measure_lop(&config, AdversaryKind::Successor);
        let c = setup.measure_lop(&config, AdversaryKind::Collusion);
        assert!(c.average_peak >= s.average_peak - 1e-9);
    }
}
