//! Reproduction harness for the paper's evaluation (Section 5) and
//! analytical plots (Section 4).
//!
//! Every figure of the paper has a generator function in [`figures`]
//! returning a [`FigureData`] — labelled series of `(x, y)` points — plus a
//! binary (`cargo run -p privtopk-experiments --bin figNN`) that renders it
//! as an ASCII table and a CSV under `results/`. `--bin all_figures` runs
//! the lot.
//!
//! The experimental setup mirrors Table 1 and Section 5.1: `n` nodes,
//! values drawn i.i.d. from a distribution over the integer domain
//! `[1, 10000]`, each plot averaged over 100 experiments.
//!
//! # Example
//!
//! ```
//! use privtopk_experiments::figures;
//!
//! // Regenerate Figure 6(a) at reduced trial count for a quick check.
//! let fig = figures::fig06_precision_vs_rounds(figures::Variant::A, 10, 42);
//! assert_eq!(fig.id, "fig06a");
//! assert!(!fig.series.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
pub mod extensions;
pub mod figures;
mod harness;
pub mod pool;
mod table;

pub use export::transcript_to_csv;
pub use harness::{AdversaryKind, ExperimentSetup};
pub use table::{FigureData, Series};
