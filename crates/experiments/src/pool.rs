//! Deterministic parallel trial executor.
//!
//! Every experiment in this crate averages a measurement over many
//! independent trials, each seeded from `derive_seed(base_seed, trial)`.
//! Because trials share no state, they can run on worker threads — but the
//! *reduction* over per-trial results must still happen in trial order, or
//! floating-point sums would depend on scheduling. [`TrialPool::run`]
//! therefore returns results as a `Vec` indexed by trial, so callers fold
//! them exactly as the old serial loops did and the output is bit-identical
//! for any thread count.
//!
//! The worker count resolves, in order, from: an explicit per-call value, a
//! process-wide default set via [`set_default_threads`] (the `--threads`
//! flag of the experiment binaries and the CLI), and finally
//! [`std::thread::available_parallelism`].
//!
//! # Example
//!
//! ```
//! use privtopk_experiments::pool::TrialPool;
//!
//! let serial: Vec<u64> = TrialPool::new(1).run(8, |t| (t as u64) * 3);
//! let parallel: Vec<u64> = TrialPool::new(4).run(8, |t| (t as u64) * 3);
//! assert_eq!(serial, parallel);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

use crossbeam::channel;

/// Process-wide default worker count; 0 means "use available parallelism".
static DEFAULT_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Sets the process-wide default worker count used by [`TrialPool::new`]
/// when a caller passes `0` (and by everything built on top of it: the
/// [`crate::ExperimentSetup`] measurements and the extension experiments).
///
/// Passing `0` restores the hardware default. This is what the `--threads`
/// flag of the experiment binaries and the `privtopk` CLI calls.
pub fn set_default_threads(threads: usize) {
    DEFAULT_THREADS.store(threads, Ordering::Relaxed);
}

/// The worker count [`TrialPool::new`] resolves `0` to: the value from
/// [`set_default_threads`] if one was set, otherwise
/// [`std::thread::available_parallelism`] (1 if that is unavailable).
#[must_use]
pub fn default_threads() -> usize {
    let configured = DEFAULT_THREADS.load(Ordering::Relaxed);
    if configured > 0 {
        return configured;
    }
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// A fixed-width pool of scoped worker threads for independent trials.
///
/// The pool is cheap to construct (threads are spawned per [`run`] call and
/// joined before it returns, via [`std::thread::scope`]); its only state is
/// the resolved worker count.
///
/// [`run`]: TrialPool::run
#[derive(Debug, Clone, Copy)]
pub struct TrialPool {
    threads: usize,
}

impl TrialPool {
    /// Creates a pool with the given worker count; `0` resolves to
    /// [`default_threads`] at run time.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        TrialPool { threads }
    }

    /// The worker count this pool will use right now.
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            default_threads()
        } else {
            self.threads
        }
    }

    /// Runs `run_trial(0), run_trial(1), …, run_trial(trials - 1)` and
    /// returns the results indexed by trial.
    ///
    /// Trials are dispatched to workers dynamically (an atomic cursor), so
    /// uneven trial costs balance automatically; results travel back over a
    /// channel tagged with their trial index and are slotted into place.
    /// The returned `Vec` is therefore identical to what a serial
    /// `(0..trials).map(run_trial).collect()` produces, regardless of the
    /// worker count or scheduling.
    ///
    /// # Panics
    ///
    /// Propagates the first panic raised by `run_trial` on any worker.
    pub fn run<T, F>(&self, trials: usize, run_trial: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if trials == 0 {
            return Vec::new();
        }
        let workers = self.threads().min(trials);
        if workers <= 1 {
            return (0..trials).map(run_trial).collect();
        }

        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
        let (tx, rx) = channel::unbounded::<(usize, T)>();
        thread::scope(|scope| {
            for _ in 0..workers {
                let tx = tx.clone();
                let next = &next;
                let run_trial = &run_trial;
                scope.spawn(move || loop {
                    let trial = next.fetch_add(1, Ordering::Relaxed);
                    if trial >= trials {
                        break;
                    }
                    let value = run_trial(trial);
                    if tx.send((trial, value)).is_err() {
                        break;
                    }
                });
            }
            // Drop the main handle so the channel disconnects once every
            // worker is done (including workers that panicked, whose
            // clones drop during unwinding — the scope re-raises the panic
            // after this loop drains).
            drop(tx);
            while let Ok((trial, value)) = rx.recv() {
                slots[trial] = Some(value);
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every trial index is dispatched exactly once"))
            .collect()
    }
}

impl Default for TrialPool {
    fn default() -> Self {
        TrialPool::new(0)
    }
}

/// Runs `trials` independent trials on the default pool (the `--threads`
/// process default, or available parallelism), returning results indexed by
/// trial. See [`TrialPool::run`] for the determinism guarantee.
pub fn run_trials<T, F>(trials: usize, run_trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    TrialPool::default().run(trials, run_trial)
}

/// Extracts `--threads N` from a raw argument list, applies it via
/// [`set_default_threads`], and returns the remaining (positional)
/// arguments. Used by the experiment binaries, whose other arguments are
/// positional.
///
/// A malformed or missing count is ignored (the flag is dropped, the
/// default stays untouched).
pub fn apply_threads_flag<I: IntoIterator<Item = String>>(args: I) -> Vec<String> {
    let mut positional = Vec::new();
    let mut args = args.into_iter();
    while let Some(arg) = args.next() {
        if arg == "--threads" {
            if let Some(threads) = args.next().and_then(|v| v.parse().ok()) {
                set_default_threads(threads);
            }
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            if let Ok(threads) = value.parse() {
                set_default_threads(threads);
            }
        } else {
            positional.push(arg);
        }
    }
    positional
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_indexed_by_trial() {
        for threads in [1, 2, 4, 9] {
            let out = TrialPool::new(threads).run(25, |t| t * t);
            assert_eq!(out, (0..25).map(|t| t * t).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_trials_yields_empty() {
        let out: Vec<u8> = TrialPool::new(4).run(0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn parallel_float_fold_matches_serial() {
        // The contract the harness relies on: summing the returned Vec in
        // order reproduces the serial accumulation bit for bit.
        let f = |t: usize| 1.0_f64 / (t as f64 + 1.7);
        let serial: f64 = (0..1000).map(f).sum();
        let parallel: f64 = TrialPool::new(8).run(1000, f).into_iter().sum();
        assert_eq!(serial.to_bits(), parallel.to_bits());
    }

    #[test]
    fn more_workers_than_trials_is_fine() {
        let out = TrialPool::new(64).run(3, |t| t + 1);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn threads_flag_is_stripped_from_args() {
        let args = ["12", "--threads", "3", "99"].map(String::from);
        assert_eq!(apply_threads_flag(args), vec!["12", "99"]);
        let args = ["--threads=2", "7"].map(String::from);
        assert_eq!(apply_threads_flag(args), vec!["7"]);
        // Malformed counts are dropped without panicking.
        let args = ["--threads", "nope"].map(String::from);
        assert!(apply_threads_flag(args).is_empty());
        set_default_threads(0);
    }

    #[test]
    fn uneven_trial_costs_still_order_results() {
        // Later trials finish first; slotting by index must reorder them.
        let out = TrialPool::new(4).run(12, |t| {
            std::thread::sleep(std::time::Duration::from_millis((12 - t as u64) % 4));
            t
        });
        assert_eq!(out, (0..12).collect::<Vec<_>>());
    }
}
