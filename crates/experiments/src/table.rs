//! Figure data containers, ASCII rendering and CSV emission.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use serde::{Deserialize, Serialize};

/// One labelled line of a figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label, e.g. `p0 = 0.5`.
    pub label: String,
    /// `(x, y)` points in x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from a label and points.
    #[must_use]
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The y value at a given x, if present.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|(px, _)| (px - x).abs() < 1e-9)
            .map(|&(_, y)| y)
    }

    /// The final (largest-x) y value.
    #[must_use]
    pub fn last_y(&self) -> Option<f64> {
        self.points.last().map(|&(_, y)| y)
    }

    /// Maximum y across the series.
    #[must_use]
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }
}

/// All the data behind one paper figure (or one panel of it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FigureData {
    /// Stable identifier, e.g. `fig06a`.
    pub id: String,
    /// Human title, e.g. `Precision of Max Selection (varying p0)`.
    pub title: String,
    /// X axis label.
    pub x_label: String,
    /// Y axis label.
    pub y_label: String,
    /// The series, in legend order.
    pub series: Vec<Series>,
}

impl FigureData {
    /// Creates an empty figure shell.
    #[must_use]
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        FigureData {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Appends a series.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Looks up a series by label.
    #[must_use]
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Renders an aligned ASCII table: one row per x, one column per
    /// series.
    #[must_use]
    pub fn to_ascii_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y = {}", self.y_label);
        // Union of x values across series, sorted.
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        let mut header = format!("{:>12}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>16}", s.label);
        }
        let _ = writeln!(out, "{header}");
        for x in xs {
            let mut row = format!("{x:>12.6}");
            for s in &self.series {
                match s.y_at(x) {
                    Some(y) => {
                        let _ = write!(row, " {y:>16.6}");
                    }
                    None => {
                        let _ = write!(row, " {:>16}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Renders CSV with columns `x,<label1>,<label2>,...`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let mut header = vec![self.x_label.clone()];
        header.extend(self.series.iter().map(|s| s.label.clone()));
        let _ = writeln!(out, "{}", header.join(","));
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        xs.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
        for x in xs {
            let mut row = vec![format!("{x}")];
            for s in &self.series {
                row.push(s.y_at(x).map_or_else(String::new, |y| format!("{y}")));
            }
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV into `dir/<id>.csv`, creating the directory if
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.id));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        let mut f = FigureData::new("figXX", "Test Figure", "rounds", "precision");
        f.push_series(Series::new("a", vec![(1.0, 0.5), (2.0, 1.0)]));
        f.push_series(Series::new("b", vec![(1.0, 0.25)]));
        f
    }

    #[test]
    fn series_accessors() {
        let s = Series::new("x", vec![(1.0, 0.1), (2.0, 0.9)]);
        assert_eq!(s.y_at(2.0), Some(0.9));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.last_y(), Some(0.9));
        assert_eq!(s.max_y(), Some(0.9));
        assert_eq!(Series::new("e", vec![]).max_y(), None);
    }

    #[test]
    fn ascii_table_includes_all_series() {
        let t = sample().to_ascii_table();
        assert!(t.contains("figXX"));
        assert!(t.contains("rounds"));
        assert!(t.contains('a'));
        // Missing point rendered as '-'.
        assert!(t.contains('-'));
    }

    #[test]
    fn csv_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "rounds,a,b");
        assert_eq!(lines.len(), 3); // header + two x values
        assert!(lines[1].starts_with("1,0.5,0.25"));
        assert!(lines[2].starts_with("2,1,")); // b missing at x=2
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("privtopk_table_test");
        let path = sample().write_csv(&dir).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("rounds,"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn lookup_by_label() {
        let f = sample();
        assert!(f.series_by_label("a").is_some());
        assert!(f.series_by_label("zzz").is_none());
    }
}
