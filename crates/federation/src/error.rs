//! Errors for the federation layer.

use std::error::Error;
use std::fmt;

use privtopk_core::ProtocolError;
use privtopk_datagen::DatagenError;
use privtopk_domain::DomainError;

/// Errors raised while assembling a federation or executing a query.
#[derive(Debug)]
#[non_exhaustive]
pub enum FederationError {
    /// A federation needs at least three members for the probabilistic
    /// protocol.
    TooFewMembers {
        /// Members supplied.
        got: usize,
    },
    /// Members disagree on the public value domain of the sensitive
    /// attribute.
    DomainMismatch,
    /// The queried attribute does not exist at every member — the paper's
    /// schema-matching assumption is violated.
    SchemaMismatch {
        /// The attribute requested.
        attribute: String,
        /// The member (by index) that lacks it.
        member: usize,
    },
    /// `k` was zero.
    ZeroK,
    /// A value could not be negated into the mirror domain (min queries).
    NegationOverflow,
    /// Aggregate queries (sum/mean) require non-negative values.
    NegativeAggregate {
        /// The offending value.
        value: privtopk_domain::Value,
    },
    /// The underlying protocol failed.
    Protocol(ProtocolError),
    /// A table-level failure.
    Datagen(DatagenError),
    /// A domain-level failure.
    Domain(DomainError),
}

impl fmt::Display for FederationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FederationError::TooFewMembers { got } => {
                write!(f, "federation needs at least 3 members, got {got}")
            }
            FederationError::DomainMismatch => {
                write!(f, "members disagree on the public value domain")
            }
            FederationError::SchemaMismatch { attribute, member } => {
                write!(f, "member {member} has no attribute `{attribute}`")
            }
            FederationError::ZeroK => write!(f, "k must be at least 1"),
            FederationError::NegationOverflow => {
                write!(f, "value cannot be mirrored for a min query")
            }
            FederationError::NegativeAggregate { value } => {
                write!(
                    f,
                    "aggregate queries require non-negative values, got {value}"
                )
            }
            FederationError::Protocol(e) => write!(f, "protocol error: {e}"),
            FederationError::Datagen(e) => write!(f, "table error: {e}"),
            FederationError::Domain(e) => write!(f, "domain error: {e}"),
        }
    }
}

impl Error for FederationError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FederationError::Protocol(e) => Some(e),
            FederationError::Datagen(e) => Some(e),
            FederationError::Domain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for FederationError {
    fn from(e: ProtocolError) -> Self {
        FederationError::Protocol(e)
    }
}

impl From<DatagenError> for FederationError {
    fn from(e: DatagenError) -> Self {
        FederationError::Datagen(e)
    }
}

impl From<DomainError> for FederationError {
    fn from(e: DomainError) -> Self {
        FederationError::Domain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants: Vec<FederationError> = vec![
            FederationError::TooFewMembers { got: 1 },
            FederationError::DomainMismatch,
            FederationError::SchemaMismatch {
                attribute: "sales".into(),
                member: 2,
            },
            FederationError::ZeroK,
            FederationError::NegationOverflow,
            FederationError::NegativeAggregate {
                value: privtopk_domain::Value::new(-3),
            },
            FederationError::Domain(DomainError::ZeroK),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e: FederationError = DomainError::ZeroK.into();
        assert!(Error::source(&e).is_some());
        assert!(Error::source(&FederationError::ZeroK).is_none());
    }
}
