//! The federation itself: schema validation and query execution.

use privtopk_core::distributed::{
    run_distributed, run_distributed_batch, run_distributed_batch_traced, run_distributed_traced,
    NetworkKind,
};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use privtopk_core::service::{QueryTicket, ServiceRuntime, ServiceStats, ServiceStatsHandle};
use privtopk_core::{
    derive_batch_seed, run_simulated_batch, run_simulated_batch_traced, BatchJob, ChaosPlan,
    ChaosState, ProtocolConfig, RoundPolicy, SimulationEngine, Transcript,
};
use privtopk_datagen::PrivateDatabase;
use privtopk_domain::{TopKVector, Value, ValueDomain};
use privtopk_observe::{
    render_summary, write_build_info, write_counter, write_gauge, write_gauge_f64,
    write_gauge_f64_series, write_histogram, MetricsServer, Recorder, SloConfig, SloEngine,
    SloReport,
};
use privtopk_privacy::{AccountantSnapshot, LopAccountant};
use privtopk_ring::TransportMetrics;

use crate::{FederationError, QuerySpec};

/// A group of private databases that jointly answer statistics queries.
///
/// Construction validates the paper's standing assumptions once — at
/// least three members, a shared public value domain — so queries fail
/// only for query-specific reasons (unknown attribute, out-of-domain
/// data).
#[derive(Debug, Clone)]
pub struct Federation {
    members: Vec<PrivateDatabase>,
    domain: ValueDomain,
}

impl Federation {
    /// Assembles a federation.
    ///
    /// # Errors
    ///
    /// - [`FederationError::TooFewMembers`] for fewer than 3 members.
    /// - [`FederationError::DomainMismatch`] if members disagree on the
    ///   public value domain.
    pub fn new(members: Vec<PrivateDatabase>) -> Result<Self, FederationError> {
        if members.len() < 3 {
            return Err(FederationError::TooFewMembers { got: members.len() });
        }
        let domain = members[0].domain();
        if members.iter().any(|m| m.domain() != domain) {
            return Err(FederationError::DomainMismatch);
        }
        Ok(Federation { members, domain })
    }

    /// Number of participating databases.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the federation has no members (never true once built).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The shared public value domain.
    #[must_use]
    pub fn domain(&self) -> ValueDomain {
        self.domain
    }

    /// Checks the paper's schema-matching assumption for one attribute.
    ///
    /// # Errors
    ///
    /// Returns [`FederationError::SchemaMismatch`] naming the first member
    /// that lacks the attribute.
    pub fn validate_attribute(&self, attribute: &str) -> Result<(), FederationError> {
        for (i, m) in self.members.iter().enumerate() {
            if m.table().column_by_name(attribute).is_err() {
                return Err(FederationError::SchemaMismatch {
                    attribute: attribute.to_string(),
                    member: i,
                });
            }
        }
        Ok(())
    }

    /// Executes a query over a real transport (one thread per member,
    /// in-memory channels or TCP loopback), producing the same result and
    /// transcript as [`Federation::execute`] with the same seed.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute`], plus transport failures.
    pub fn execute_distributed(
        &self,
        spec: &QuerySpec,
        network: NetworkKind,
        seed: u64,
    ) -> Result<QueryOutcome, FederationError> {
        let (config, locals, mirrored) = self.compile(spec)?;
        let outcome = run_distributed(&config, &locals, network, seed)?;
        Ok(self.finish(spec, outcome.transcript, mirrored))
    }

    /// [`Federation::execute_distributed`] with telemetry published into
    /// `recorder`: per-hop phase spans tagged with node, round and hop,
    /// plus wire counters. The outcome is bit-identical to the untraced
    /// call — telemetry carries protocol coordinates and timings only,
    /// never data values.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute_distributed`].
    pub fn execute_distributed_traced(
        &self,
        spec: &QuerySpec,
        network: NetworkKind,
        seed: u64,
        recorder: &Recorder,
    ) -> Result<QueryOutcome, FederationError> {
        let (config, locals, mirrored) = self.compile(spec)?;
        let outcome = run_distributed_traced(&config, &locals, network, seed, recorder)?;
        Ok(self.finish(spec, outcome.transcript, mirrored))
    }

    /// Stands up a persistent service for one query spec: every member
    /// spawns a long-lived worker owning its compiled database snapshot,
    /// its ring endpoint and its established successor connection, all
    /// reused for every subsequent query — no per-query setup cost.
    ///
    /// `depth` is the pipeline depth: the service keeps up to that many
    /// independent queries (distinct seeds) in flight on the ring at
    /// once. Each query's outcome is bit-identical to
    /// [`Federation::execute_distributed`] with the same spec and seed,
    /// at any depth — pipelining changes only scheduling, never
    /// per-query randomness.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute`] for spec compilation, plus
    /// [`privtopk_core::ProtocolError::InvalidService`] for a zero
    /// `depth`.
    pub fn serve(
        &self,
        spec: &QuerySpec,
        network: NetworkKind,
        depth: usize,
    ) -> Result<FederationService, FederationError> {
        self.serve_traced(spec, network, depth, Recorder::disabled())
    }

    /// [`Federation::serve`] with telemetry: every worker publishes
    /// per-hop phase spans and the scheduler publishes pipeline-depth
    /// and queue-wait figures into `recorder`. Outcomes stay
    /// bit-identical to the untraced service.
    ///
    /// # Errors
    ///
    /// As [`Federation::serve`].
    pub fn serve_traced(
        &self,
        spec: &QuerySpec,
        network: NetworkKind,
        depth: usize,
        recorder: Recorder,
    ) -> Result<FederationService, FederationError> {
        let (config, locals, mirrored) = self.compile(spec)?;
        let runtime = ServiceRuntime::start_traced(&locals, network, depth, recorder)?;
        Ok(self.finish_serve(spec, config, mirrored, runtime))
    }

    /// [`Federation::serve_traced`] over an in-memory network with the
    /// plan's chaos incidents — node outages, ring partitions, loss
    /// windows — injected under the reliability layer on a seeded
    /// schedule. Returns the shared [`ChaosState`] so the caller can
    /// arm the chaos clock and read drop counts.
    ///
    /// Chaos only delays delivery, so every outcome stays bit-identical
    /// to the same seeds on a fault-free service; the healing cost
    /// shows up in the recorder's retry/re-ACK spans instead.
    ///
    /// # Errors
    ///
    /// As [`Federation::serve`], plus
    /// [`privtopk_core::ProtocolError::Ring`] for a plan the
    /// reliability layer could not heal.
    pub fn serve_chaos_traced(
        &self,
        spec: &QuerySpec,
        depth: usize,
        recorder: Recorder,
        plan: &ChaosPlan,
    ) -> Result<(FederationService, Arc<ChaosState>), FederationError> {
        let (config, locals, mirrored) = self.compile(spec)?;
        let (runtime, state) = ServiceRuntime::start_chaos_traced(&locals, depth, recorder, plan)
            .map_err(FederationError::from)?;
        Ok((self.finish_serve(spec, config, mirrored, runtime), state))
    }

    fn finish_serve(
        &self,
        spec: &QuerySpec,
        config: ProtocolConfig,
        mirrored: bool,
        mut runtime: ServiceRuntime,
    ) -> FederationService {
        // Privacy accounting is always on: the accountant consumes only
        // data-independent protocol coordinates (n, k, schedule, rounds),
        // so it costs a few counter bumps per query and can never leak.
        let accountant = Arc::new(LopAccountant::new());
        runtime.set_observer(Arc::clone(&accountant) as _);
        FederationService {
            federation: self.clone(),
            runtime,
            spec: spec.clone(),
            config,
            mirrored,
            metrics_server: None,
            accountant,
            slo: Arc::new(SloEngine::new(SloConfig::default())),
            started: HashMap::new(),
        }
    }

    /// Executes a batch of independent queries in one protocol execution,
    /// sharing ring traversals between queries wherever possible.
    ///
    /// Query `i` runs under seed [`QueryBatch::query_seed`]`(i)` — an
    /// independent stream derived from the batch's base seed — and its
    /// [`QueryOutcome`] is byte-identical to
    /// [`Federation::execute`]`(spec_i, batch.query_seed(i))`. Batching
    /// changes only transport cost, never results, transcripts, or the
    /// level of privacy of any individual query.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute`] for each member query, plus
    /// [`FederationError::Protocol`] with
    /// [`privtopk_core::ProtocolError::InvalidBatch`] for an empty batch.
    pub fn execute_batch(&self, batch: &QueryBatch) -> Result<Vec<QueryOutcome>, FederationError> {
        let (jobs, mirrors) = self.compile_batch(batch)?;
        let transcripts = run_simulated_batch(&jobs)?;
        Ok(self.finish_batch(batch, transcripts, &mirrors))
    }

    /// [`Federation::execute_batch`] with telemetry: hop spans are
    /// tagged with each query's batch index. Outcomes are unchanged.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute_batch`].
    pub fn execute_batch_traced(
        &self,
        batch: &QueryBatch,
        recorder: &Recorder,
    ) -> Result<Vec<QueryOutcome>, FederationError> {
        let (jobs, mirrors) = self.compile_batch(batch)?;
        let transcripts = run_simulated_batch_traced(&jobs, recorder)?;
        Ok(self.finish_batch(batch, transcripts, &mirrors))
    }

    /// Executes a query batch over a real transport, piggybacking all
    /// queries' payloads in one wire frame per hop (per lock-step group).
    ///
    /// Produces the same outcomes as [`Federation::execute_batch`] with
    /// the same batch.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute_batch`], plus transport failures.
    pub fn execute_batch_distributed(
        &self,
        batch: &QueryBatch,
        network: NetworkKind,
    ) -> Result<Vec<QueryOutcome>, FederationError> {
        let (jobs, mirrors) = self.compile_batch(batch)?;
        let outcome = run_distributed_batch(&jobs, network)?;
        Ok(self.finish_batch(batch, outcome.transcripts, &mirrors))
    }

    /// [`Federation::execute_batch_distributed`] with telemetry, as for
    /// [`Federation::execute_distributed_traced`].
    ///
    /// # Errors
    ///
    /// As [`Federation::execute_batch_distributed`].
    pub fn execute_batch_distributed_traced(
        &self,
        batch: &QueryBatch,
        network: NetworkKind,
        recorder: &Recorder,
    ) -> Result<Vec<QueryOutcome>, FederationError> {
        let (jobs, mirrors) = self.compile_batch(batch)?;
        let outcome = run_distributed_batch_traced(&jobs, network, recorder)?;
        Ok(self.finish_batch(batch, outcome.transcripts, &mirrors))
    }

    /// Compiles every query of a batch into a protocol job plus its
    /// mirroring flag.
    fn compile_batch(
        &self,
        batch: &QueryBatch,
    ) -> Result<(Vec<BatchJob>, Vec<bool>), FederationError> {
        let mut jobs = Vec::with_capacity(batch.len());
        let mut mirrors = Vec::with_capacity(batch.len());
        for (i, spec) in batch.specs().iter().enumerate() {
            let (config, locals, mirrored) = self.compile(spec)?;
            jobs.push(BatchJob::new(config, locals, batch.query_seed(i)));
            mirrors.push(mirrored);
        }
        Ok((jobs, mirrors))
    }

    fn finish_batch(
        &self,
        batch: &QueryBatch,
        transcripts: Vec<Transcript>,
        mirrors: &[bool],
    ) -> Vec<QueryOutcome> {
        transcripts
            .into_iter()
            .zip(batch.specs())
            .zip(mirrors)
            .map(|((transcript, spec), &mirrored)| self.finish(spec, transcript, mirrored))
            .collect()
    }

    /// Executes a query, deterministic under `seed`.
    ///
    /// Min/bottom-k queries are compiled to max/top-k over *mirrored*
    /// values (`v ↦ domain.min + domain.max − v`), which stays inside the
    /// same public domain; results are mirrored back.
    ///
    /// # Errors
    ///
    /// - [`FederationError::ZeroK`] for `k = 0`.
    /// - [`FederationError::SchemaMismatch`] if a member lacks the
    ///   attribute.
    /// - [`FederationError::Domain`] if a member's attribute values fall
    ///   outside the public domain.
    /// - [`FederationError::Protocol`] for protocol-level failures.
    pub fn execute(&self, spec: &QuerySpec, seed: u64) -> Result<QueryOutcome, FederationError> {
        let (config, locals, mirrored) = self.compile(spec)?;
        let transcript = SimulationEngine::new(config).run(&locals, seed)?;
        Ok(self.finish(spec, transcript, mirrored))
    }

    /// [`Federation::execute`] with telemetry: the simulated engine
    /// spans every hop computation. The outcome is bit-identical to the
    /// untraced call.
    ///
    /// # Errors
    ///
    /// As [`Federation::execute`].
    pub fn execute_traced(
        &self,
        spec: &QuerySpec,
        seed: u64,
        recorder: &Recorder,
    ) -> Result<QueryOutcome, FederationError> {
        let (config, locals, mirrored) = self.compile(spec)?;
        let transcript = SimulationEngine::new(config)
            .with_recorder(recorder.clone())
            .run(&locals, seed)?;
        Ok(self.finish(spec, transcript, mirrored))
    }

    /// Compiles a query into protocol inputs.
    fn compile(
        &self,
        spec: &QuerySpec,
    ) -> Result<(ProtocolConfig, Vec<TopKVector>, bool), FederationError> {
        let k = spec.kind().k();
        if k == 0 {
            return Err(FederationError::ZeroK);
        }
        self.validate_attribute(spec.attribute())?;
        let mirrored = spec.kind().is_mirrored();
        let locals = self
            .members
            .iter()
            .map(|m| self.local_vector(m, spec.attribute(), k, mirrored))
            .collect::<Result<Vec<_>, _>>()?;
        let config = ProtocolConfig::topk(k)
            .with_domain(self.domain)
            .with_schedule(spec.schedule())
            .with_rounds(RoundPolicy::Precision {
                epsilon: spec.epsilon(),
            });
        Ok((config, locals, mirrored))
    }

    /// Converts a protocol transcript into a query outcome.
    fn finish(&self, spec: &QuerySpec, transcript: Transcript, mirrored: bool) -> QueryOutcome {
        let mut values: Vec<Value> = transcript.result().iter().collect();
        if mirrored {
            // Mirroring a descending vector back yields ascending order —
            // smallest first, which is the natural order for min queries.
            values = values.into_iter().map(|v| self.mirror(v)).collect();
        }
        if matches!(spec.kind(), crate::QueryKind::KthLargest(_)) {
            // Only the rank-th value is the answer; the rest of the vector
            // was scaffolding.
            values = vec![*values.last().expect("k >= 1")];
        }
        QueryOutcome {
            spec: spec.clone(),
            values,
            transcript,
        }
    }

    /// Privately sums `attribute` across all members (masked ring sum).
    ///
    /// Unlike the top-k protocol this reveals exactly one number — the
    /// total — and nothing about any member's contribution; the ring
    /// tokens are one-time-pad masked.
    ///
    /// # Errors
    ///
    /// - [`FederationError::SchemaMismatch`] if a member lacks the
    ///   attribute.
    /// - [`FederationError::NegativeAggregate`] if a value is negative
    ///   (sums are defined over non-negative attributes).
    pub fn sum(&self, attribute: &str, seed: u64) -> Result<u64, FederationError> {
        self.validate_attribute(attribute)?;
        let per_member: Vec<u64> = self
            .members
            .iter()
            .map(|m| {
                let col = m.table().column_by_name(attribute)?;
                let mut total = 0u64;
                for v in m.table().column_iter(col) {
                    let raw = v.get();
                    if raw < 0 {
                        return Err(FederationError::NegativeAggregate { value: v });
                    }
                    total += raw as u64;
                }
                Ok(total)
            })
            .collect::<Result<_, FederationError>>()?;
        Ok(privtopk_knn::secure_sum::secure_sum(&per_member, seed)
            .map_err(|_| FederationError::TooFewMembers {
                got: self.members.len(),
            })?
            .sum)
    }

    /// Privately counts the rows holding `attribute` across all members.
    ///
    /// # Errors
    ///
    /// As [`Federation::sum`].
    pub fn count(&self, attribute: &str, seed: u64) -> Result<u64, FederationError> {
        self.validate_attribute(attribute)?;
        let per_member: Vec<u64> = self
            .members
            .iter()
            .map(|m| m.table().len() as u64)
            .collect();
        Ok(privtopk_knn::secure_sum::secure_sum(&per_member, seed)
            .map_err(|_| FederationError::TooFewMembers {
                got: self.members.len(),
            })?
            .sum)
    }

    /// The mean of `attribute` across the federation: two masked ring
    /// sums (total and count), one division.
    ///
    /// # Errors
    ///
    /// As [`Federation::sum`]; additionally errors if the federation
    /// holds no rows.
    pub fn mean(&self, attribute: &str, seed: u64) -> Result<f64, FederationError> {
        let total = self.sum(attribute, seed)?;
        let count = self.count(attribute, seed.wrapping_add(1))?;
        if count == 0 {
            return Err(FederationError::ZeroK);
        }
        Ok(total as f64 / count as f64)
    }

    fn local_vector(
        &self,
        member: &PrivateDatabase,
        attribute: &str,
        k: usize,
        mirrored: bool,
    ) -> Result<TopKVector, FederationError> {
        let col = member.table().column_by_name(attribute)?;
        // Single borrowed pass: domain-check each value and (for min /
        // bottom-k queries) mirror it on the fly — no column clone.
        let mut bad = None;
        let values = member.table().column_iter(col).map(|v| {
            if !self.domain.contains(v) {
                bad.get_or_insert(v);
            }
            if mirrored {
                self.mirror(v)
            } else {
                v
            }
        });
        let vector = TopKVector::from_values(k, values, &self.domain);
        if let Some(value) = bad {
            return Err(privtopk_domain::DomainError::OutOfDomain { value }.into());
        }
        Ok(vector?)
    }

    /// Mirrors a value inside the domain: `lo + hi − v`.
    fn mirror(&self, v: Value) -> Value {
        // lo + hi - v stays inside [lo, hi] for v inside [lo, hi]; the
        // arithmetic is exact in i128 then narrowed.
        let wide =
            self.domain.min().get() as i128 + self.domain.max().get() as i128 - v.get() as i128;
        Value::new(wide as i64)
    }
}

/// A standing federated query service, created by [`Federation::serve`].
///
/// Holds one long-lived worker per member, all wired onto a persistent
/// ring; [`query`](Self::query) answers the served spec under a fresh
/// seed with no per-query setup, and [`query_many`](Self::query_many)
/// streams a whole seed workload through the pipeline. Tear it down with
/// [`shutdown`](Self::shutdown), which drains in-flight queries and
/// joins every worker.
pub struct FederationService {
    federation: Federation,
    runtime: ServiceRuntime,
    spec: QuerySpec,
    config: ProtocolConfig,
    mirrored: bool,
    metrics_server: Option<MetricsServer>,
    accountant: Arc<LopAccountant>,
    /// Rolling latency/availability objectives, fed by every collected
    /// query and rendered as burn-rate gauges on the exposition.
    slo: Arc<SloEngine>,
    /// Submission instants of in-flight tickets, consumed at collect
    /// time to feed the SLO engine.
    started: HashMap<u64, Instant>,
}

/// Renders the live exposition body a [`FederationService`] metrics
/// endpoint serves: the recorder's whole registry, the service
/// scheduler's own figures, and the privacy accountant's live LoP
/// estimates, all under the `privtopk_` prefix. Aggregate coordinates
/// and timings only — never data values.
fn render_service_metrics(
    recorder: &Recorder,
    handle: &ServiceStatsHandle,
    accountant: &LopAccountant,
    slo: &SloEngine,
) -> String {
    let mut body = render_summary(&recorder.summary());
    write_build_info(&mut body);
    if let Some(uptime) = recorder.uptime() {
        write_gauge_f64(
            &mut body,
            "privtopk_service_uptime_seconds",
            "Seconds since this service's recorder started observing.",
            uptime.as_secs_f64(),
        );
    }
    let stats = handle.stats();
    write_gauge(
        &mut body,
        "privtopk_service_pipeline_depth",
        "Configured maximum queries in flight.",
        stats.depth as u64,
    );
    write_gauge(
        &mut body,
        "privtopk_service_in_flight",
        "Queries currently occupying a pipeline slot.",
        stats.in_flight as u64,
    );
    write_gauge(
        &mut body,
        "privtopk_service_pipeline_high_water",
        "Highest simultaneous pipeline occupancy observed.",
        stats.pipeline_high_water as u64,
    );
    write_counter(
        &mut body,
        "privtopk_service_queries_submitted_total",
        "Queries admitted into the pipeline.",
        stats.queries_submitted,
    );
    write_counter(
        &mut body,
        "privtopk_service_queries_completed_total",
        "Queries completed (successfully or not).",
        stats.queries_completed,
    );
    write_histogram(
        &mut body,
        "privtopk_service_queue_wait_ns",
        "How long submissions waited for a free pipeline slot.",
        &stats.queue_wait,
    );
    write_counter(
        &mut body,
        "privtopk_service_frames_sent_total",
        "Physical frames sent by the service transport.",
        stats.frames_sent,
    );
    write_counter(
        &mut body,
        "privtopk_service_logical_messages_total",
        "Logical messages carried by those frames.",
        stats.logical_messages,
    );
    write_counter(
        &mut body,
        "privtopk_service_bytes_sent_total",
        "Payload bytes sent (post-compression wire size).",
        stats.bytes_sent,
    );
    write_counter(
        &mut body,
        "privtopk_service_baseline_bytes_total",
        "Pre-compression payload bytes: what the legacy fixed-width codec would have sent.",
        stats.baseline_bytes,
    );
    write_gauge(
        &mut body,
        "privtopk_service_pooled_buffers_high_water",
        "Lifetime frame-pool high-water mark.",
        stats.pooled_buffers_high_water,
    );
    write_counter(
        &mut body,
        "privtopk_service_retransmissions_total",
        "Frames retransmitted by the reliability layer.",
        stats.retransmissions,
    );
    write_counter(
        &mut body,
        "privtopk_service_re_acks_total",
        "Duplicate frames re-acknowledged.",
        stats.re_acks,
    );
    slo.evaluate().write_prometheus(&mut body);
    write_privacy_metrics(&mut body, &accountant.snapshot());
    body
}

/// Appends the privacy accountant's series to an exposition body:
/// per-node live LoP estimates, the spectrum classification counts, and
/// the cumulative accounted-query counter.
pub fn write_privacy_metrics(body: &mut String, privacy: &AccountantSnapshot) {
    let per_node: Vec<(String, f64)> = privacy
        .per_node
        .iter()
        .map(|e| (format!("node=\"{}\"", e.node), e.lop))
        .collect();
    write_gauge_f64_series(
        body,
        "privtopk_privacy_lop_node",
        "Live empirical peak loss of privacy per node (Eq. 2 estimate).",
        &per_node,
    );
    let ci: Vec<(String, f64)> = privacy
        .per_node
        .iter()
        .map(|e| (format!("node=\"{}\"", e.node), e.ci95))
        .collect();
    write_gauge_f64_series(
        body,
        "privtopk_privacy_lop_node_ci95",
        "95% confidence half-width of each node's live LoP estimate.",
        &ci,
    );
    write_gauge_f64(
        body,
        "privtopk_privacy_lop_average",
        "Average of the per-node live LoP estimates.",
        privacy.average_lop,
    );
    write_gauge_f64(
        body,
        "privtopk_privacy_lop_worst",
        "Worst per-node live LoP estimate.",
        privacy.worst_lop,
    );
    let classes: Vec<(String, f64)> = privacy
        .spectrum
        .as_labeled()
        .iter()
        .map(|(label, count)| (format!("class=\"{label}\""), *count as f64))
        .collect();
    write_gauge_f64_series(
        body,
        "privtopk_privacy_spectrum_class",
        "Node counts per privacy-spectrum class.",
        &classes,
    );
    write_counter(
        body,
        "privtopk_privacy_queries_accounted_total",
        "Queries folded into the privacy accountant.",
        privacy.queries_accounted,
    );
}

impl FederationService {
    /// The query spec this service answers.
    #[must_use]
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// Maximum number of queries kept in flight at once.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.runtime.depth()
    }

    /// Cumulative wire counters for the service's lifetime, including
    /// the frame pool's high-water mark under pipelining.
    #[must_use]
    pub fn metrics(&self) -> TransportMetrics {
        self.runtime.metrics()
    }

    /// A live snapshot of the running service — pipeline occupancy,
    /// queue waits and wire counters — readable at any time, including
    /// while queries are in flight. Nothing is drained by reading it.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.runtime.stats()
    }

    /// A live read of the service's privacy accountant: per-node
    /// empirical LoP estimates with confidence intervals, spectrum
    /// classification and the cumulative per-query ledger. Computed
    /// from data-independent protocol coordinates only; the first read
    /// after new coordinates appear pays the shadow Monte-Carlo cost,
    /// subsequent reads are memoized.
    #[must_use]
    pub fn privacy(&self) -> AccountantSnapshot {
        self.accountant.snapshot()
    }

    /// The recorder this service publishes telemetry into (disabled
    /// unless created via [`Federation::serve_traced`]).
    #[must_use]
    pub fn recorder(&self) -> &Recorder {
        self.runtime.recorder()
    }

    /// Replaces the SLO objectives this service evaluates. Call before
    /// [`metrics_endpoint`](Self::metrics_endpoint): the endpoint
    /// captures the engine at bind time, so a later swap needs a
    /// rebind to show up in scrapes.
    pub fn set_slo(&mut self, config: SloConfig) {
        self.slo = Arc::new(SloEngine::new(config));
    }

    /// Evaluates the service's SLOs right now: burn rates for the
    /// latency and availability objectives over both rolling windows,
    /// plus the overall health verdict.
    #[must_use]
    pub fn slo(&self) -> SloReport {
        self.slo.evaluate()
    }

    /// Dumps the recorder's always-on flight ring — the most recent
    /// span events, oldest first — as JSONL suitable for
    /// `privtopk trace analyze` or the [`privtopk_observe::analyze`]
    /// healing-cost analyzer. Available in every enabled recorder mode,
    /// including `stats_only` and sampled, because the flight ring is
    /// fed before sampling.
    #[must_use]
    pub fn dump_flight_recorder(&self) -> String {
        self.runtime.recorder().flight_jsonl()
    }

    /// Starts a live metrics endpoint on `addr` (Prometheus text
    /// exposition v0.0.4 over plain TCP; bind `127.0.0.1:0` for an
    /// ephemeral port) and returns the bound address.
    ///
    /// The endpoint serves the recorder's full registry plus the
    /// scheduler's own pipeline figures, readable mid-stream while
    /// queries are in flight; a scrape's counters always agree with
    /// [`stats`](Self::stats) at the same instant. Rebinding replaces
    /// the previous endpoint. Serving metrics never touches the query
    /// path: the exposition carries aggregates over protocol
    /// coordinates and timings only.
    ///
    /// # Errors
    ///
    /// Any [`std::io::Error`] from binding the listener.
    pub fn metrics_endpoint(&mut self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        let recorder = self.runtime.recorder().clone();
        let handle = self.runtime.stats_handle();
        let accountant = Arc::clone(&self.accountant);
        let slo = Arc::clone(&self.slo);
        let health_slo = Arc::clone(&self.slo);
        let server = MetricsServer::bind_with_health(
            addr,
            move || render_service_metrics(&recorder, &handle, &accountant, &slo),
            move || health_slo.evaluate().health_body(),
        )?;
        let bound = server.addr();
        self.metrics_server = Some(server);
        Ok(bound)
    }

    /// The metrics endpoint's bound address, if one is running.
    #[must_use]
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.metrics_server.as_ref().map(MetricsServer::addr)
    }

    /// Answers the served spec under `seed` — the warm-path equivalent
    /// of [`Federation::execute_distributed`], with a bit-identical
    /// outcome.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, as [`Federation::execute_distributed`].
    pub fn query(&mut self, seed: u64) -> Result<QueryOutcome, FederationError> {
        let ticket = self.submit(seed)?;
        self.collect(ticket)
    }

    /// Submits one query without waiting for it, blocking only while
    /// the pipeline is full.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query).
    pub fn submit(&mut self, seed: u64) -> Result<QueryTicket, FederationError> {
        let ticket = self.runtime.submit(&self.config, seed)?;
        self.started.insert(ticket.id(), Instant::now());
        Ok(ticket)
    }

    /// Redeems a ticket from [`submit`](Self::submit).
    ///
    /// # Errors
    ///
    /// The query's own failure, or
    /// [`privtopk_core::ProtocolError::InvalidService`] for a ticket
    /// already collected.
    pub fn collect(&mut self, ticket: QueryTicket) -> Result<QueryOutcome, FederationError> {
        let began = self.started.remove(&ticket.id());
        let collected = self.runtime.collect(ticket);
        if let Some(t0) = began {
            let latency = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.slo.record(latency, collected.is_ok());
        }
        let outcome = collected?;
        Ok(self
            .federation
            .finish(&self.spec, outcome.transcript, self.mirrored))
    }

    /// Streams a whole seed workload through the pipeline, returning
    /// outcomes in workload order.
    ///
    /// # Errors
    ///
    /// The first submission or per-query failure encountered.
    pub fn query_many(&mut self, seeds: &[u64]) -> Result<Vec<QueryOutcome>, FederationError> {
        let mut tickets = Vec::with_capacity(seeds.len());
        for seed in seeds {
            tickets.push(self.submit(*seed)?);
        }
        tickets
            .into_iter()
            .map(|ticket| self.collect(ticket))
            .collect()
    }

    /// Shuts the service down: drains in-flight queries (discarding
    /// their uncollected results) and joins every worker thread.
    ///
    /// # Errors
    ///
    /// [`privtopk_core::ProtocolError::WorkerFailed`] if a worker
    /// thread panicked.
    pub fn shutdown(mut self) -> Result<(), FederationError> {
        // Stop serving scrapes before the stats they render freeze.
        self.metrics_server.take();
        Ok(self.runtime.shutdown()?)
    }
}

/// A set of independent queries answered in one batched execution.
///
/// Each query gets its own seed stream derived from the batch's base seed
/// via [`derive_batch_seed`], so adding or removing other queries never
/// changes what any one query computes.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryBatch {
    specs: Vec<QuerySpec>,
    base_seed: u64,
}

impl QueryBatch {
    /// An empty batch rooted at `base_seed` (executing it is an error —
    /// push at least one query).
    #[must_use]
    pub fn new(base_seed: u64) -> Self {
        QueryBatch {
            specs: Vec::new(),
            base_seed,
        }
    }

    /// Builds a batch from a list of query specs.
    #[must_use]
    pub fn from_specs(specs: Vec<QuerySpec>, base_seed: u64) -> Self {
        QueryBatch { specs, base_seed }
    }

    /// Appends a query (builder style).
    #[must_use]
    pub fn with(mut self, spec: QuerySpec) -> Self {
        self.specs.push(spec);
        self
    }

    /// The member queries, in execution order.
    #[must_use]
    pub fn specs(&self) -> &[QuerySpec] {
        &self.specs
    }

    /// Number of queries in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// Whether the batch holds no queries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// The batch's base seed.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// The seed query `i` runs under: solo-executing its spec with this
    /// seed reproduces the batched outcome exactly.
    #[must_use]
    pub fn query_seed(&self, i: usize) -> u64 {
        derive_batch_seed(self.base_seed, i as u64)
    }
}

/// The result of a federated query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    spec: QuerySpec,
    values: Vec<Value>,
    transcript: Transcript,
}

impl QueryOutcome {
    /// The query this outcome answers.
    #[must_use]
    pub fn spec(&self) -> &QuerySpec {
        &self.spec
    }

    /// The answer values: descending for max/top-k, ascending for
    /// min/bottom-k.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The scalar answer for max/min queries.
    #[must_use]
    pub fn value(&self) -> Value {
        self.values[0]
    }

    /// The protocol transcript, for privacy audits (feed it to
    /// `privtopk-privacy`).
    #[must_use]
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// Rounds the protocol ran.
    #[must_use]
    pub fn rounds(&self) -> u32 {
        self.transcript.rounds()
    }

    /// Messages exchanged during computation.
    #[must_use]
    pub fn messages(&self) -> usize {
        self.transcript.message_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_datagen::{DatasetBuilder, Table};
    use privtopk_domain::NodeId;

    fn federation(n: usize, rows: usize, seed: u64) -> Federation {
        Federation::new(
            DatasetBuilder::new(n)
                .rows_per_node(rows)
                .seed(seed)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn all_values(f: &Federation, attr: &str) -> Vec<i64> {
        let mut out = Vec::new();
        for m in &f.members {
            let col = m.table().column_by_name(attr).unwrap();
            out.extend(m.table().column_iter(col).map(|v| v.get()));
        }
        out
    }

    #[test]
    fn max_and_min_queries() {
        let f = federation(5, 12, 1);
        let all = all_values(&f, "value");
        let max = f.execute(&QuerySpec::max("value"), 9).unwrap();
        assert_eq!(max.value().get(), *all.iter().max().unwrap());
        let min = f.execute(&QuerySpec::min("value"), 9).unwrap();
        assert_eq!(min.value().get(), *all.iter().min().unwrap());
    }

    #[test]
    fn top_k_and_bottom_k_queries() {
        let f = federation(4, 10, 2);
        let mut all = all_values(&f, "value");
        all.sort_unstable();

        let bottom = f
            .execute(&QuerySpec::bottom_k("value", 3).with_epsilon(1e-9), 5)
            .unwrap();
        let expect_bottom: Vec<i64> = all[..3].to_vec();
        assert_eq!(
            bottom.values().iter().map(|v| v.get()).collect::<Vec<_>>(),
            expect_bottom
        );

        let top = f
            .execute(&QuerySpec::top_k("value", 3).with_epsilon(1e-9), 5)
            .unwrap();
        let mut expect_top: Vec<i64> = all[all.len() - 3..].to_vec();
        expect_top.reverse();
        assert_eq!(
            top.values().iter().map(|v| v.get()).collect::<Vec<_>>(),
            expect_top
        );
    }

    #[test]
    fn outcome_carries_transcript_and_costs() {
        let f = federation(4, 5, 3);
        let out = f.execute(&QuerySpec::max("value"), 1).unwrap();
        assert!(out.rounds() >= 4);
        assert_eq!(out.messages(), 4 * out.rounds() as usize);
        assert_eq!(out.spec().attribute(), "value");
        assert_eq!(out.transcript().n(), 4);
    }

    #[test]
    fn rejects_small_federations_and_mixed_domains() {
        let dbs = DatasetBuilder::new(2).seed(0).build().unwrap();
        assert!(matches!(
            Federation::new(dbs),
            Err(FederationError::TooFewMembers { got: 2 })
        ));

        let mut dbs = DatasetBuilder::new(3).seed(0).build().unwrap();
        let other = ValueDomain::new(Value::new(1), Value::new(50)).unwrap();
        let mut t = Table::new(["value"]).unwrap();
        t.push_row(vec![Value::new(10)]).unwrap();
        dbs[2] = PrivateDatabase::new(NodeId::new(2), other, t, "value").unwrap();
        assert!(matches!(
            Federation::new(dbs),
            Err(FederationError::DomainMismatch)
        ));
    }

    #[test]
    fn schema_mismatch_detected_with_member_index() {
        let f = federation(4, 5, 4);
        let err = f.execute(&QuerySpec::max("revenue"), 0).unwrap_err();
        assert!(matches!(
            err,
            FederationError::SchemaMismatch { member: 0, .. }
        ));
        assert!(f.validate_attribute("value").is_ok());
    }

    #[test]
    fn zero_k_rejected() {
        let f = federation(3, 4, 5);
        assert!(matches!(
            f.execute(&QuerySpec::top_k("value", 0), 0),
            Err(FederationError::ZeroK)
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let f = federation(5, 8, 6);
        let a = f.execute(&QuerySpec::top_k("value", 2), 11).unwrap();
        let b = f.execute(&QuerySpec::top_k("value", 2), 11).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn distributed_execution_matches_simulation() {
        let f = federation(4, 6, 8);
        let spec = QuerySpec::top_k("value", 2).with_epsilon(1e-9);
        let sim = f.execute(&spec, 33).unwrap();
        let dist = f
            .execute_distributed(&spec, NetworkKind::InMemory, 33)
            .unwrap();
        assert_eq!(sim.values(), dist.values());
        assert_eq!(sim.transcript().steps(), dist.transcript().steps());
    }

    #[test]
    fn distributed_min_query_over_threads() {
        let f = federation(4, 6, 9);
        let all = all_values(&f, "value");
        let out = f
            .execute_distributed(
                &QuerySpec::min("value").with_epsilon(1e-9),
                NetworkKind::InMemory,
                2,
            )
            .unwrap();
        assert_eq!(out.value().get(), *all.iter().min().unwrap());
    }

    #[test]
    fn kth_largest_returns_single_rank() {
        let f = federation(4, 6, 21);
        let mut all = all_values(&f, "value");
        all.sort_unstable_by(|a, b| b.cmp(a));
        for rank in [1usize, 3, 7] {
            let out = f
                .execute(
                    &QuerySpec::kth_largest("value", rank).with_epsilon(1e-9),
                    rank as u64,
                )
                .unwrap();
            assert_eq!(out.values().len(), 1, "rank {rank}");
            assert_eq!(out.value().get(), all[rank - 1], "rank {rank}");
        }
    }

    #[test]
    fn aggregate_sum_count_mean() {
        let f = federation(5, 7, 31);
        let all = all_values(&f, "value");
        let expected_sum: i64 = all.iter().sum();
        assert_eq!(f.sum("value", 1).unwrap(), expected_sum as u64);
        assert_eq!(f.count("value", 2).unwrap(), all.len() as u64);
        let mean = f.mean("value", 3).unwrap();
        assert!((mean - expected_sum as f64 / all.len() as f64).abs() < 1e-9);
        // Unknown attribute rejected up front.
        assert!(matches!(
            f.sum("profit", 0),
            Err(FederationError::SchemaMismatch { .. })
        ));
    }

    fn spec_for_case(case: u64) -> QuerySpec {
        match case % 5 {
            0 => QuerySpec::max("value"),
            1 => QuerySpec::min("value"),
            2 => QuerySpec::top_k("value", 2),
            3 => QuerySpec::bottom_k("value", 3),
            _ => QuerySpec::kth_largest("value", 2),
        }
    }

    #[test]
    fn batch_of_one_matches_single_query_path_200_cases() {
        // The satellite acceptance gate: across 200 seeded cases covering
        // every query kind, a batch of one produces a byte-identical
        // QueryOutcome (values, transcript, spec) to the solo path under
        // the batch-derived seed.
        let f = federation(4, 6, 14);
        for base in 0..200u64 {
            let spec = spec_for_case(base);
            let batch = QueryBatch::new(base).with(spec.clone());
            let batched = f.execute_batch(&batch).unwrap();
            assert_eq!(batched.len(), 1);
            let solo = f.execute(&spec, batch.query_seed(0)).unwrap();
            assert_eq!(batched[0], solo, "case {base}");
        }
    }

    #[test]
    fn batched_queries_match_their_solo_runs() {
        // Determinism across batch widths: each member query's outcome is
        // independent of its co-batched neighbours.
        let f = federation(5, 8, 15);
        for width in [1usize, 8, 64] {
            let batch = QueryBatch::from_specs((0..width as u64).map(spec_for_case).collect(), 99);
            let batched = f.execute_batch(&batch).unwrap();
            assert_eq!(batched.len(), width);
            for (i, out) in batched.iter().enumerate() {
                let solo = f.execute(&batch.specs()[i], batch.query_seed(i)).unwrap();
                assert_eq!(out, &solo, "width {width}, query {i}");
            }
        }
    }

    #[test]
    fn distributed_batch_matches_simulated_batch() {
        let f = federation(4, 6, 16);
        let batch = QueryBatch::new(7)
            .with(QuerySpec::max("value"))
            .with(QuerySpec::top_k("value", 3).with_epsilon(1e-9))
            .with(QuerySpec::min("value"));
        let sim = f.execute_batch(&batch).unwrap();
        let dist = f
            .execute_batch_distributed(&batch, NetworkKind::InMemory)
            .unwrap();
        assert_eq!(sim, dist);
    }

    #[test]
    fn empty_batch_rejected() {
        let f = federation(3, 4, 17);
        assert!(matches!(
            f.execute_batch(&QueryBatch::new(0)),
            Err(FederationError::Protocol(
                privtopk_core::ProtocolError::InvalidBatch { .. }
            ))
        ));
    }

    #[test]
    fn service_matches_cold_distributed_for_every_kind() {
        let f = federation(4, 6, 22);
        for case in 0..5u64 {
            let spec = spec_for_case(case).with_epsilon(1e-9);
            let mut service = f.serve(&spec, NetworkKind::InMemory, 1).unwrap();
            for seed in 0..4u64 {
                let warm = service.query(seed).unwrap();
                let cold = f
                    .execute_distributed(&spec, NetworkKind::InMemory, seed)
                    .unwrap();
                assert_eq!(warm, cold, "case {case}, seed {seed}");
            }
            service.shutdown().unwrap();
        }
    }

    #[test]
    fn pipelined_service_matches_solo_outcomes() {
        let f = federation(5, 8, 23);
        let spec = QuerySpec::top_k("value", 3).with_epsilon(1e-9);
        let seeds: Vec<u64> = (0..16).collect();
        let solo: Vec<QueryOutcome> = seeds
            .iter()
            .map(|&s| f.execute(&spec, s).unwrap())
            .collect();
        for depth in [1usize, 4, 16] {
            let mut service = f.serve(&spec, NetworkKind::InMemory, depth).unwrap();
            let warm = service.query_many(&seeds).unwrap();
            service.shutdown().unwrap();
            assert_eq!(warm, solo, "depth {depth}");
        }
    }

    #[test]
    fn service_rejects_zero_depth_and_reports_metrics() {
        let f = federation(3, 4, 24);
        let spec = QuerySpec::max("value");
        assert!(f.serve(&spec, NetworkKind::InMemory, 0).is_err());
        let mut service = f.serve(&spec, NetworkKind::InMemory, 2).unwrap();
        assert_eq!(service.depth(), 2);
        assert_eq!(service.spec().attribute(), "value");
        service.query(0).unwrap();
        assert!(service.metrics().frames_sent() > 0);
        service.shutdown().unwrap();
    }

    #[test]
    fn traced_paths_match_untraced_across_all_modes() {
        use privtopk_observe::Phase;
        let f = federation(4, 6, 41);
        let spec = QuerySpec::top_k("value", 2).with_epsilon(1e-9);

        let recorder = Recorder::new();
        let sim = f.execute(&spec, 12).unwrap();
        assert_eq!(f.execute_traced(&spec, 12, &recorder).unwrap(), sim);

        let dist = f
            .execute_distributed(&spec, NetworkKind::InMemory, 12)
            .unwrap();
        assert_eq!(
            f.execute_distributed_traced(&spec, NetworkKind::InMemory, 12, &recorder)
                .unwrap(),
            dist
        );
        assert_eq!(sim.transcript().steps(), dist.transcript().steps());

        let batch = QueryBatch::new(5)
            .with(QuerySpec::max("value"))
            .with(spec.clone());
        let batched = f.execute_batch(&batch).unwrap();
        assert_eq!(f.execute_batch_traced(&batch, &recorder).unwrap(), batched);
        assert_eq!(
            f.execute_batch_distributed_traced(&batch, NetworkKind::InMemory, &recorder)
                .unwrap(),
            batched
        );

        // All four traced modes contributed hop spans.
        assert!(recorder.phase(Phase::Step).count > 0);
        assert!(!recorder.trace_jsonl().is_empty());
    }

    #[test]
    fn served_stats_are_live_and_summarized() {
        let f = federation(4, 6, 43);
        let spec = QuerySpec::top_k("value", 2).with_epsilon(1e-9);
        let recorder = Recorder::new();
        let mut service = f
            .serve_traced(&spec, NetworkKind::InMemory, 2, recorder.clone())
            .unwrap();
        let untraced_service = f.serve(&spec, NetworkKind::InMemory, 2).unwrap();
        drop(untraced_service.stats()); // stats work without a recorder too
        untraced_service.shutdown().unwrap();

        let seeds: Vec<u64> = (0..5).collect();
        let warm = service.query_many(&seeds).unwrap();
        let stats = service.stats();
        assert_eq!(stats.queries_submitted, 5);
        assert_eq!(stats.queries_completed, 5);
        assert_eq!(stats.queue_wait.count, 5);
        assert!(stats.frames_sent > 0);
        assert!(stats.pooled_buffers_high_water > 0);
        assert!(service.recorder().is_enabled());
        service.shutdown().unwrap();

        for (seed, outcome) in seeds.iter().zip(&warm) {
            let cold = f
                .execute_distributed(&spec, NetworkKind::InMemory, *seed)
                .unwrap();
            assert_eq!(outcome, &cold);
        }
        // The recorder's text summary renders without panicking and
        // names the phases.
        let summary = recorder.summary().to_string();
        assert!(summary.contains("step"));
    }

    #[test]
    fn metrics_endpoint_serves_live_scrapes_matching_stats() {
        let f = federation(4, 6, 47);
        let spec = QuerySpec::top_k("value", 2).with_epsilon(1e-9);
        let mut service = f
            .serve_traced(&spec, NetworkKind::InMemory, 2, Recorder::new())
            .unwrap();
        let addr = service.metrics_endpoint("127.0.0.1:0").unwrap();
        assert_eq!(service.metrics_addr(), Some(addr));

        let metric = |body: &str, name: &str| -> u64 {
            body.lines()
                .find(|l| l.starts_with(&format!("{name} ")))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| panic!("missing `{name}` in scrape:\n{body}"))
        };

        // Mid-stream: two queries submitted but not yet collected — the
        // scrape must see the live occupancy, not a post-hoc summary.
        let t1 = service.submit(1).unwrap();
        let t2 = service.submit(2).unwrap();
        let live = privtopk_observe::scrape(&addr).unwrap();
        assert_eq!(metric(&live, "privtopk_service_in_flight"), 2);
        assert_eq!(metric(&live, "privtopk_service_queries_submitted_total"), 2);
        service.collect(t1).unwrap();
        service.collect(t2).unwrap();

        // Quiesced: every exposed counter agrees with stats() exactly.
        let body = privtopk_observe::scrape(&addr).unwrap();
        let stats = service.stats();
        assert_eq!(
            metric(&body, "privtopk_service_queries_submitted_total"),
            stats.queries_submitted
        );
        assert_eq!(
            metric(&body, "privtopk_service_queries_completed_total"),
            stats.queries_completed
        );
        assert_eq!(
            metric(&body, "privtopk_service_frames_sent_total"),
            stats.frames_sent
        );
        assert_eq!(
            metric(&body, "privtopk_service_bytes_sent_total"),
            stats.bytes_sent
        );
        assert_eq!(
            metric(&body, "privtopk_service_baseline_bytes_total"),
            stats.baseline_bytes
        );
        assert!(
            stats.baseline_bytes > stats.bytes_sent,
            "compact codec must undercut the legacy baseline on the wire"
        );
        assert_eq!(
            metric(&body, "privtopk_service_queue_wait_ns_count"),
            stats.queue_wait.count
        );
        assert_eq!(
            metric(&body, "privtopk_service_pipeline_high_water"),
            stats.pipeline_high_water as u64
        );
        // The recorder's own registry rides along in the same body.
        assert!(body.contains("# TYPE privtopk_phase_step_ns histogram"));

        service.shutdown().unwrap();
        assert!(privtopk_observe::scrape(&addr).is_err());
    }

    #[test]
    fn service_accounts_privacy_and_exposes_it_on_the_scrape() {
        let f = federation(4, 6, 53);
        let spec = QuerySpec::top_k("value", 2).with_epsilon(1e-9);
        let mut service = f
            .serve_traced(&spec, NetworkKind::InMemory, 2, Recorder::new())
            .unwrap();
        let addr = service.metrics_endpoint("127.0.0.1:0").unwrap();

        // Before any query the accountant is empty and the scrape says so.
        let idle = privtopk_observe::scrape(&addr).unwrap();
        assert!(idle.contains("privtopk_privacy_queries_accounted_total 0"));

        service.query_many(&[1, 2, 3]).unwrap();

        let privacy = service.privacy();
        assert_eq!(privacy.queries_accounted, 3);
        assert_eq!(privacy.per_node.len(), 4);
        assert_eq!(privacy.ledger.len(), 3);
        assert!(privacy.worst_lop >= privacy.average_lop);
        let counted: usize = privacy.spectrum.as_labeled().iter().map(|(_, c)| *c).sum();
        assert_eq!(counted, 4, "every node lands in exactly one class");

        let body = privtopk_observe::scrape(&addr).unwrap();
        assert!(body.contains("privtopk_privacy_queries_accounted_total 3"));
        assert!(body.contains("# TYPE privtopk_privacy_lop_node gauge"));
        for node in 0..4 {
            assert!(
                body.contains(&format!("privtopk_privacy_lop_node{{node=\"{node}\"}}")),
                "missing node {node} LoP gauge in scrape:\n{body}"
            );
        }
        assert!(body.contains("privtopk_privacy_spectrum_class{class=\"beyond_suspicion\"}"));
        assert!(body.contains("privtopk_privacy_lop_worst"));

        // The scrape's per-node figures agree with privacy() exactly.
        for estimate in &privacy.per_node {
            let line = format!(
                "privtopk_privacy_lop_node{{node=\"{}\"}} {}",
                estimate.node, estimate.lop
            );
            assert!(body.contains(&line), "missing `{line}` in scrape:\n{body}");
        }
        service.shutdown().unwrap();
    }

    #[test]
    fn mirror_is_involutive_and_stays_in_domain() {
        let f = federation(3, 4, 7);
        for raw in [1i64, 2, 5000, 9999, 10_000] {
            let v = Value::new(raw);
            let m = f.mirror(v);
            assert!(f.domain().contains(m), "mirror({raw}) = {m}");
            assert_eq!(f.mirror(m), v);
        }
    }
}
