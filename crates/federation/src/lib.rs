//! A high-level federated query API over private databases.
//!
//! The protocol crates operate on bare local top-k vectors; real
//! deployments operate on *tables*. This crate supplies the missing
//! layer: a [`Federation`] of [`PrivateDatabase`]s that
//!
//! - validates the paper's schema assumption up front ("the database
//!   schemas and attribute names are known and are well matched across n
//!   nodes") instead of failing mid-protocol,
//! - accepts declarative [`QuerySpec`]s — max, min, top-k and bottom-k of
//!   a named attribute — and compiles them onto the underlying protocol
//!   (min/bottom-k run as max/top-k over *negated* values, as the paper
//!   notes max and min are symmetric),
//! - returns a [`QueryOutcome`] carrying the answer, the protocol
//!   transcript (for privacy audits) and cost counters.
//!
//! # Example
//!
//! ```
//! use privtopk_datagen::{DatasetBuilder};
//! use privtopk_federation::{Federation, QuerySpec};
//!
//! let dbs = DatasetBuilder::new(5).rows_per_node(20).seed(3).build()?;
//! let federation = Federation::new(dbs)?;
//! let outcome = federation.execute(&QuerySpec::top_k("value", 3), 42)?;
//! assert_eq!(outcome.values().len(), 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod federation;
mod query;

pub use error::FederationError;
pub use federation::{
    write_privacy_metrics, Federation, FederationService, QueryBatch, QueryOutcome,
};
pub use query::{QueryKind, QuerySpec};

pub use privtopk_datagen::PrivateDatabase;

/// Chaos scenario types, re-exported so embedders can schedule
/// incidents against a [`FederationService`] without depending on the
/// protocol crates directly.
pub use privtopk_core::{ChaosEvent, ChaosIncident, ChaosPlan, ChaosState, DEFAULT_HEAL_BUDGET};
