//! Declarative query specifications.

use serde::{Deserialize, Serialize};

use privtopk_core::Schedule;

/// What the federation computes over the attribute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryKind {
    /// The single largest value (`k = 1` top-k).
    Max,
    /// The single smallest value (a max query over mirrored values).
    Min,
    /// The `k` largest values.
    TopK(usize),
    /// The `k` smallest values (a top-k query over mirrored values).
    BottomK(usize),
    /// The single value at 1-based `rank` from the top (`rank = 1` is the
    /// maximum) — a top-`rank` query reporting only its last element.
    KthLargest(usize),
}

impl QueryKind {
    /// The `k` this query needs from the protocol.
    #[must_use]
    pub fn k(&self) -> usize {
        match *self {
            QueryKind::Max | QueryKind::Min => 1,
            QueryKind::TopK(k) | QueryKind::BottomK(k) | QueryKind::KthLargest(k) => k,
        }
    }

    /// Whether the query runs over mirrored (negated) values.
    #[must_use]
    pub fn is_mirrored(&self) -> bool {
        matches!(self, QueryKind::Min | QueryKind::BottomK(_))
    }
}

/// A complete federated statistics query: an attribute, a kind, and the
/// privacy/efficiency knobs of the underlying protocol.
///
/// # Example
///
/// ```
/// use privtopk_federation::QuerySpec;
///
/// let q = QuerySpec::bottom_k("latency_ms", 5).with_epsilon(1e-9);
/// assert_eq!(q.kind().k(), 5);
/// assert!(q.kind().is_mirrored());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuerySpec {
    attribute: String,
    kind: QueryKind,
    schedule: Schedule,
    epsilon: f64,
}

impl QuerySpec {
    /// A max query over `attribute`.
    #[must_use]
    pub fn max(attribute: impl Into<String>) -> Self {
        QuerySpec::new(attribute, QueryKind::Max)
    }

    /// A min query over `attribute`.
    #[must_use]
    pub fn min(attribute: impl Into<String>) -> Self {
        QuerySpec::new(attribute, QueryKind::Min)
    }

    /// The `k` largest values of `attribute`.
    #[must_use]
    pub fn top_k(attribute: impl Into<String>, k: usize) -> Self {
        QuerySpec::new(attribute, QueryKind::TopK(k))
    }

    /// The `k` smallest values of `attribute`.
    #[must_use]
    pub fn bottom_k(attribute: impl Into<String>, k: usize) -> Self {
        QuerySpec::new(attribute, QueryKind::BottomK(k))
    }

    /// The single value at 1-based `rank` from the top of `attribute`.
    #[must_use]
    pub fn kth_largest(attribute: impl Into<String>, rank: usize) -> Self {
        QuerySpec::new(attribute, QueryKind::KthLargest(rank))
    }

    fn new(attribute: impl Into<String>, kind: QueryKind) -> Self {
        QuerySpec {
            attribute: attribute.into(),
            kind,
            schedule: Schedule::paper_default(),
            epsilon: 1e-6,
        }
    }

    /// Overrides the randomization schedule.
    #[must_use]
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Overrides the correctness error bound (default `1e-6`).
    #[must_use]
    pub fn with_epsilon(mut self, epsilon: f64) -> Self {
        self.epsilon = epsilon;
        self
    }

    /// The queried attribute name.
    #[must_use]
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The query kind.
    #[must_use]
    pub fn kind(&self) -> QueryKind {
        self.kind
    }

    /// The protocol schedule.
    #[must_use]
    pub fn schedule(&self) -> Schedule {
        self.schedule
    }

    /// The correctness error bound.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_report_k_and_mirroring() {
        assert_eq!(QueryKind::Max.k(), 1);
        assert_eq!(QueryKind::TopK(7).k(), 7);
        assert_eq!(QueryKind::BottomK(3).k(), 3);
        assert!(!QueryKind::Max.is_mirrored());
        assert!(QueryKind::Min.is_mirrored());
        assert!(QueryKind::BottomK(2).is_mirrored());
        assert!(!QueryKind::TopK(2).is_mirrored());
        assert_eq!(QueryKind::KthLargest(5).k(), 5);
        assert!(!QueryKind::KthLargest(5).is_mirrored());
    }

    #[test]
    fn constructors_and_builders() {
        let q = QuerySpec::max("sales");
        assert_eq!(q.attribute(), "sales");
        assert_eq!(q.kind(), QueryKind::Max);
        assert_eq!(q.epsilon(), 1e-6);

        let q = QuerySpec::top_k("sales", 4)
            .with_epsilon(1e-3)
            .with_schedule(Schedule::Never);
        assert_eq!(q.kind(), QueryKind::TopK(4));
        assert_eq!(q.epsilon(), 1e-3);
        assert_eq!(q.schedule(), Schedule::Never);
    }
}
