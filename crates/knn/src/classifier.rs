//! The private kNN classifier built on the top-k protocol.

use privtopk_core::{ProtocolConfig, RoundPolicy, SimulationEngine};
use privtopk_domain::{TopKVector, Value, ValueDomain};

use crate::secure_sum::secure_sum_vectors;
use crate::{KnnError, LabeledPoint};

/// Configuration of the private kNN classifier.
///
/// Distances are squared-Euclidean, fixed-point encoded with `scale`
/// fractional resolution and clamped to `ceiling`. The min-k selection is
/// a max-top-k query over `ceiling − encoded_distance`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KnnConfig {
    /// Number of neighbors `k`.
    pub k: usize,
    /// Fixed-point scale: encoded = round(distance² · scale).
    pub scale: f64,
    /// Distance ceiling (encoded distances are clamped here); also the
    /// width of the protocol's public value domain.
    pub ceiling: i64,
    /// Error bound for the underlying probabilistic protocol's round
    /// policy.
    pub epsilon: f64,
}

impl KnnConfig {
    /// A sensible default: millis resolution, a 10^12 ceiling, and a
    /// 10^-9 protocol error bound.
    #[must_use]
    pub fn new(k: usize) -> Self {
        KnnConfig {
            k,
            scale: 1000.0,
            ceiling: 1_000_000_000_000,
            epsilon: 1e-9,
        }
    }
}

/// Fixed-point encodes a squared distance and flips it into "bigger is
/// closer" protocol space.
fn encode_distance(d2: f64, config: &KnnConfig) -> i64 {
    let scaled = (d2 * config.scale).round();
    let clamped = if scaled >= config.ceiling as f64 {
        config.ceiling
    } else {
        scaled as i64
    };
    config.ceiling - clamped
}

/// Recovers the scaled distance from protocol space.
fn decode_distance(encoded: Value, config: &KnnConfig) -> i64 {
    config.ceiling - encoded.get()
}

/// A federation of private databases able to answer kNN classification
/// queries without pooling their training data.
///
/// See the crate docs for the protocol composition; [`centralized_knn`]
/// is the plaintext reference the private result provably matches (same
/// fixed-point encoding, same tie rule).
#[derive(Debug, Clone)]
pub struct PrivateKnnClassifier {
    config: KnnConfig,
    shards: Vec<Vec<LabeledPoint>>,
    dim: usize,
    num_classes: usize,
}

impl PrivateKnnClassifier {
    /// Validates and wraps the per-party training shards.
    ///
    /// # Errors
    ///
    /// - [`KnnError::ZeroK`] if `config.k == 0`.
    /// - [`KnnError::TooFewParties`] for fewer than 3 shards.
    /// - [`KnnError::EmptyTrainingSet`] if no shard holds any point.
    /// - [`KnnError::DimensionMismatch`] / [`KnnError::NonFiniteFeature`]
    ///   on malformed features.
    pub fn new(config: KnnConfig, shards: Vec<Vec<LabeledPoint>>) -> Result<Self, KnnError> {
        if config.k == 0 {
            return Err(KnnError::ZeroK);
        }
        if shards.len() < 3 {
            return Err(KnnError::TooFewParties { got: shards.len() });
        }
        let mut dim = None;
        let mut num_classes = 0;
        for shard in &shards {
            for p in shard {
                match dim {
                    None => dim = Some(p.dim()),
                    Some(d) if d != p.dim() => {
                        return Err(KnnError::DimensionMismatch {
                            expected: d,
                            got: p.dim(),
                        })
                    }
                    _ => {}
                }
                if p.features().iter().any(|f| !f.is_finite()) {
                    return Err(KnnError::NonFiniteFeature);
                }
                num_classes = num_classes.max(p.label() + 1);
            }
        }
        let Some(dim) = dim else {
            return Err(KnnError::EmptyTrainingSet);
        };
        Ok(PrivateKnnClassifier {
            config,
            shards,
            dim,
            num_classes,
        })
    }

    /// Number of participating parties.
    #[must_use]
    pub fn parties(&self) -> usize {
        self.shards.len()
    }

    /// Number of classes observed in the training data.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Classifies `query` privately.
    ///
    /// # Errors
    ///
    /// - [`KnnError::DimensionMismatch`] / [`KnnError::NonFiniteFeature`]
    ///   for malformed queries.
    /// - [`KnnError::Protocol`] if the underlying protocol fails.
    pub fn classify(&self, query: &[f64], seed: u64) -> Result<usize, KnnError> {
        let threshold = self.private_distance_threshold(query, seed)?;
        let votes = self.private_votes(query, threshold, seed)?;
        Ok(argmax_lowest(&votes))
    }

    /// Stage 1: the k-th smallest (scaled) distance, found with the
    /// privacy-preserving top-k protocol over negated distances.
    ///
    /// # Errors
    ///
    /// As for [`PrivateKnnClassifier::classify`].
    pub fn private_distance_threshold(&self, query: &[f64], seed: u64) -> Result<i64, KnnError> {
        self.validate_query(query)?;
        let domain = ValueDomain::new(Value::new(0), Value::new(self.config.ceiling))?;
        let protocol = ProtocolConfig::topk(self.config.k)
            .with_domain(domain)
            .with_rounds(RoundPolicy::Precision {
                epsilon: self.config.epsilon,
            });
        let locals = self
            .shards
            .iter()
            .map(|shard| {
                let encoded = shard
                    .iter()
                    .map(|p| Value::new(encode_distance(p.squared_distance(query), &self.config)));
                TopKVector::from_values(self.config.k, encoded, &domain)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let transcript = SimulationEngine::new(protocol).run(&locals, seed)?;
        // The k-th *largest* negated distance is the k-th *smallest*
        // distance.
        Ok(decode_distance(transcript.result().kth(), &self.config))
    }

    /// Stage 2: per-class votes for points within `threshold`, aggregated
    /// with the secure ring sum.
    fn private_votes(
        &self,
        query: &[f64],
        threshold: i64,
        seed: u64,
    ) -> Result<Vec<u64>, KnnError> {
        let per_party: Vec<Vec<u64>> = self
            .shards
            .iter()
            .map(|shard| {
                let mut votes = vec![0u64; self.num_classes];
                for p in shard {
                    let scaled = self.config.ceiling
                        - encode_distance(p.squared_distance(query), &self.config);
                    if scaled <= threshold {
                        votes[p.label()] += 1;
                    }
                }
                votes
            })
            .collect();
        secure_sum_vectors(&per_party, seed ^ 0x5A5A_5A5A)
    }

    fn validate_query(&self, query: &[f64]) -> Result<(), KnnError> {
        if query.len() != self.dim {
            return Err(KnnError::DimensionMismatch {
                expected: self.dim,
                got: query.len(),
            });
        }
        if query.iter().any(|f| !f.is_finite()) {
            return Err(KnnError::NonFiniteFeature);
        }
        Ok(())
    }
}

/// Index of the largest count, preferring the lowest label on ties.
fn argmax_lowest(votes: &[u64]) -> usize {
    let mut best = 0;
    for (i, &v) in votes.iter().enumerate() {
        if v > votes[best] {
            best = i;
        }
    }
    best
}

/// The plaintext reference: classic kNN with the *same* fixed-point
/// encoding and tie rule (all points at the k-th distance are included,
/// majority label wins, lowest label breaks ties).
///
/// Used by tests and experiments to verify the private classifier is
/// exact, not approximate.
///
/// # Panics
///
/// Panics on empty input or `k == 0`.
#[must_use]
pub fn centralized_knn(points: &[LabeledPoint], query: &[f64], config: &KnnConfig) -> usize {
    assert!(config.k >= 1 && !points.is_empty());
    let mut scaled: Vec<(i64, usize)> = points
        .iter()
        .map(|p| {
            (
                config.ceiling - encode_distance(p.squared_distance(query), config),
                p.label(),
            )
        })
        .collect();
    scaled.sort_by_key(|&(d, _)| d);
    let kth = scaled[(config.k - 1).min(scaled.len() - 1)].0;
    let num_classes = points.iter().map(|p| p.label() + 1).max().unwrap_or(1);
    let mut votes = vec![0u64; num_classes];
    for &(d, label) in &scaled {
        if d <= kth {
            votes[label] += 1;
        }
    }
    argmax_lowest(&votes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privtopk_domain::rng::seeded_rng;
    use rand::Rng;

    fn blobs(parties: usize, per_party: usize, seed: u64) -> Vec<Vec<LabeledPoint>> {
        // Two well-separated Gaussian-ish blobs at (0,0) and (6,6).
        let mut rng = seeded_rng(seed);
        (0..parties)
            .map(|_| {
                (0..per_party)
                    .map(|_| {
                        let label = usize::from(rng.gen_bool(0.5));
                        let center = if label == 0 { 0.0 } else { 6.0 };
                        let x = center + rng.gen_range(-1.0..1.0);
                        let y = center + rng.gen_range(-1.0..1.0);
                        LabeledPoint::new(vec![x, y], label)
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn classifies_separable_blobs() {
        let shards = blobs(4, 10, 1);
        let clf = PrivateKnnClassifier::new(KnnConfig::new(5), shards).unwrap();
        assert_eq!(clf.classify(&[0.2, -0.1], 7).unwrap(), 0);
        assert_eq!(clf.classify(&[6.3, 5.9], 7).unwrap(), 1);
    }

    #[test]
    fn matches_centralized_reference_exactly() {
        let shards = blobs(5, 8, 2);
        let flat: Vec<LabeledPoint> = shards.iter().flatten().cloned().collect();
        let config = KnnConfig::new(7);
        let clf = PrivateKnnClassifier::new(config, shards).unwrap();
        let mut rng = seeded_rng(3);
        for q in 0..25 {
            let query = [rng.gen_range(-2.0..8.0), rng.gen_range(-2.0..8.0)];
            let private = clf.classify(&query, q).unwrap();
            let reference = centralized_knn(&flat, &query, &config);
            assert_eq!(private, reference, "query {query:?}");
        }
    }

    #[test]
    fn threshold_is_kth_smallest_distance() {
        // 3 parties, known distances: query at origin, points on the axes.
        let shards = vec![
            vec![LabeledPoint::new(vec![1.0, 0.0], 0)], // d2 = 1
            vec![LabeledPoint::new(vec![2.0, 0.0], 0)], // d2 = 4
            vec![LabeledPoint::new(vec![3.0, 0.0], 1)], // d2 = 9
        ];
        let config = KnnConfig::new(2);
        let clf = PrivateKnnClassifier::new(config, shards).unwrap();
        let theta = clf.private_distance_threshold(&[0.0, 0.0], 11).unwrap();
        // k = 2: threshold is the 2nd smallest scaled distance = 4 * 1000.
        assert_eq!(theta, 4000);
    }

    #[test]
    fn validates_construction() {
        assert!(matches!(
            PrivateKnnClassifier::new(KnnConfig::new(0), blobs(3, 2, 0)),
            Err(KnnError::ZeroK)
        ));
        assert!(matches!(
            PrivateKnnClassifier::new(KnnConfig::new(1), blobs(2, 2, 0)),
            Err(KnnError::TooFewParties { got: 2 })
        ));
        assert!(matches!(
            PrivateKnnClassifier::new(KnnConfig::new(1), vec![vec![], vec![], vec![]]),
            Err(KnnError::EmptyTrainingSet)
        ));
        let mixed = vec![
            vec![LabeledPoint::new(vec![1.0], 0)],
            vec![LabeledPoint::new(vec![1.0, 2.0], 0)],
            vec![],
        ];
        assert!(matches!(
            PrivateKnnClassifier::new(KnnConfig::new(1), mixed),
            Err(KnnError::DimensionMismatch { .. })
        ));
        let nan = vec![vec![LabeledPoint::new(vec![f64::NAN], 0)], vec![], vec![]];
        assert!(matches!(
            PrivateKnnClassifier::new(KnnConfig::new(1), nan),
            Err(KnnError::NonFiniteFeature)
        ));
    }

    #[test]
    fn validates_queries() {
        let clf = PrivateKnnClassifier::new(KnnConfig::new(1), blobs(3, 3, 4)).unwrap();
        assert!(matches!(
            clf.classify(&[1.0], 0),
            Err(KnnError::DimensionMismatch { .. })
        ));
        assert!(matches!(
            clf.classify(&[f64::INFINITY, 0.0], 0),
            Err(KnnError::NonFiniteFeature)
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let clf = PrivateKnnClassifier::new(KnnConfig::new(3), blobs(4, 6, 5)).unwrap();
        let a = clf.classify(&[3.0, 3.0], 9).unwrap();
        let b = clf.classify(&[3.0, 3.0], 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn tie_break_prefers_lowest_label() {
        assert_eq!(argmax_lowest(&[2, 2, 1]), 0);
        assert_eq!(argmax_lowest(&[1, 3, 3]), 1);
        assert_eq!(argmax_lowest(&[0]), 0);
    }

    #[test]
    fn k_larger_than_dataset_includes_everything() {
        let shards = vec![
            vec![LabeledPoint::new(vec![0.0], 0)],
            vec![LabeledPoint::new(vec![1.0], 1)],
            vec![LabeledPoint::new(vec![2.0], 1)],
        ];
        let clf = PrivateKnnClassifier::new(KnnConfig::new(10), shards).unwrap();
        // All three points vote: label 1 wins 2:1 everywhere.
        assert_eq!(clf.classify(&[0.0], 3).unwrap(), 1);
    }
}
