//! Errors for the kNN extension.

use std::error::Error;
use std::fmt;

use privtopk_core::ProtocolError;
use privtopk_domain::DomainError;

/// Errors from building or querying the private kNN classifier.
#[derive(Debug)]
#[non_exhaustive]
pub enum KnnError {
    /// `k` must be at least 1.
    ZeroK,
    /// The classifier needs at least three participating databases (the
    /// underlying protocol's `n > 2` requirement).
    TooFewParties {
        /// Parties supplied.
        got: usize,
    },
    /// No party holds any training points.
    EmptyTrainingSet,
    /// Query/feature dimensionality mismatch.
    DimensionMismatch {
        /// Expected dimensionality (from the training data).
        expected: usize,
        /// The offending dimensionality.
        got: usize,
    },
    /// A feature value was not finite.
    NonFiniteFeature,
    /// The underlying top-k protocol failed.
    Protocol(ProtocolError),
    /// A domain-level error (distance encoding overflow etc.).
    Domain(DomainError),
}

impl fmt::Display for KnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KnnError::ZeroK => write!(f, "k must be at least 1"),
            KnnError::TooFewParties { got } => {
                write!(f, "private knn needs at least 3 parties, got {got}")
            }
            KnnError::EmptyTrainingSet => write!(f, "no training points supplied"),
            KnnError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "feature dimension {got} does not match training dimension {expected}"
                )
            }
            KnnError::NonFiniteFeature => write!(f, "feature values must be finite"),
            KnnError::Protocol(e) => write!(f, "protocol error: {e}"),
            KnnError::Domain(e) => write!(f, "domain error: {e}"),
        }
    }
}

impl Error for KnnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KnnError::Protocol(e) => Some(e),
            KnnError::Domain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProtocolError> for KnnError {
    fn from(e: ProtocolError) -> Self {
        KnnError::Protocol(e)
    }
}

impl From<DomainError> for KnnError {
    fn from(e: DomainError) -> Self {
        KnnError::Domain(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_all_variants() {
        let variants: Vec<KnnError> = vec![
            KnnError::ZeroK,
            KnnError::TooFewParties { got: 2 },
            KnnError::EmptyTrainingSet,
            KnnError::DimensionMismatch {
                expected: 2,
                got: 3,
            },
            KnnError::NonFiniteFeature,
            KnnError::Domain(DomainError::ZeroK),
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn conversions_chain_sources() {
        let e: KnnError = DomainError::ZeroK.into();
        assert!(Error::source(&e).is_some());
    }
}
