//! Privacy-preserving kNN classification across private databases.
//!
//! The paper closes with: "we are developing a privacy preserving kNN
//! classifier on top of the topk protocol". This crate builds that
//! extension out of two privacy-preserving primitives:
//!
//! 1. **Min-k distance selection** — the global `k` smallest
//!    query-to-point distances, computed with the paper's probabilistic
//!    top-k protocol over *negated* distances (a max query over
//!    `ceiling − distance` is a min query over distance).
//! 2. **Secure vote aggregation** — per-class vote counts summed with a
//!    classic masked ring sum ([`secure_sum`]): the initiator adds a
//!    random mask, every node adds its private count, the initiator
//!    removes the mask. No node learns another node's count.
//!
//! The classifier then predicts the majority label among all points within
//! the k-th smallest distance (standard kNN with ties included), which a
//! centralized reference implementation reproduces exactly.
//!
//! # Example
//!
//! ```
//! use privtopk_knn::{KnnConfig, LabeledPoint, PrivateKnnClassifier};
//!
//! // Three hospitals, each with a few labelled patients (2-D features).
//! let shards = vec![
//!     vec![LabeledPoint::new(vec![0.0, 0.1], 0), LabeledPoint::new(vec![0.2, 0.0], 0)],
//!     vec![LabeledPoint::new(vec![5.0, 5.2], 1), LabeledPoint::new(vec![5.1, 4.9], 1)],
//!     vec![LabeledPoint::new(vec![0.1, 0.2], 0), LabeledPoint::new(vec![5.2, 5.1], 1)],
//! ];
//! let classifier = PrivateKnnClassifier::new(KnnConfig::new(3), shards)?;
//! let label = classifier.classify(&[0.1, 0.0], 42)?;
//! assert_eq!(label, 0);
//! # Ok::<(), privtopk_knn::KnnError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod error;
mod point;
pub mod secure_sum;

pub use classifier::{centralized_knn, KnnConfig, PrivateKnnClassifier};
pub use error::KnnError;
pub use point::LabeledPoint;
