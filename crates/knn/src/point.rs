//! Labelled training points.

use serde::{Deserialize, Serialize};

/// One labelled training example held by some private database.
///
/// # Example
///
/// ```
/// use privtopk_knn::LabeledPoint;
///
/// let p = LabeledPoint::new(vec![1.0, -0.5], 3);
/// assert_eq!(p.label(), 3);
/// assert_eq!(p.features(), &[1.0, -0.5]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledPoint {
    features: Vec<f64>,
    label: usize,
}

impl LabeledPoint {
    /// Creates a point from its feature vector and class label.
    #[must_use]
    pub fn new(features: Vec<f64>, label: usize) -> Self {
        LabeledPoint { features, label }
    }

    /// The feature vector.
    #[must_use]
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// The class label.
    #[must_use]
    pub fn label(&self) -> usize {
        self.label
    }

    /// Feature dimensionality.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.features.len()
    }

    /// Squared Euclidean distance to `query`.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ (validated by the classifier before
    /// use).
    #[must_use]
    pub fn squared_distance(&self, query: &[f64]) -> f64 {
        assert_eq!(self.features.len(), query.len(), "dimension mismatch");
        self.features
            .iter()
            .zip(query)
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let p = LabeledPoint::new(vec![3.0, 4.0], 1);
        assert_eq!(p.dim(), 2);
        assert_eq!(p.label(), 1);
    }

    #[test]
    fn squared_distance_is_euclidean() {
        let p = LabeledPoint::new(vec![0.0, 0.0], 0);
        assert_eq!(p.squared_distance(&[3.0, 4.0]), 25.0);
        assert_eq!(p.squared_distance(&[0.0, 0.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn distance_requires_matching_dims() {
        let p = LabeledPoint::new(vec![1.0], 0);
        let _ = p.squared_distance(&[1.0, 2.0]);
    }
}
