//! Masked ring summation: privately sums one integer per node.
//!
//! The classic scheme the paper's related work builds on: the initiator
//! adds a uniformly random mask to its value before sending; every other
//! node adds its own value to the running total; when the token returns,
//! the initiator subtracts the mask. Each node only ever sees
//! `mask + (partial sum)`, which is uniformly distributed and therefore
//! reveals nothing about the partial sum (a one-time pad over the additive
//! group of `u64`, with wrapping arithmetic).
//!
//! This is the vote-aggregation substrate for the private kNN classifier.

use rand::Rng;

use privtopk_domain::rng::seeded_rng;

use crate::KnnError;

/// The view a single node gets during one ring sum — used by tests to
/// verify the masking actually hides partial sums.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecureSumTrace {
    /// The running (masked) token each node observed, indexed by ring
    /// position (position 0 = the initiator's outgoing token).
    pub observed: Vec<u64>,
    /// The true sum.
    pub sum: u64,
}

/// Privately sums `values[i]` over all nodes (node 0 initiates).
///
/// The result is exact as long as the true sum fits in `u64` (wrapping
/// arithmetic makes the mask a perfect one-time pad either way).
///
/// # Errors
///
/// Returns [`KnnError::TooFewParties`] for fewer than 3 participants —
/// with 2, the non-initiator's value is trivially derivable by the
/// initiator from the result, so the scheme offers nothing.
///
/// # Example
///
/// ```
/// use privtopk_knn::secure_sum::secure_sum;
///
/// let trace = secure_sum(&[5, 7, 11], 42)?;
/// assert_eq!(trace.sum, 23);
/// # Ok::<(), privtopk_knn::KnnError>(())
/// ```
pub fn secure_sum(values: &[u64], seed: u64) -> Result<SecureSumTrace, KnnError> {
    if values.len() < 3 {
        return Err(KnnError::TooFewParties { got: values.len() });
    }
    let mut rng = seeded_rng(seed);
    let mask: u64 = rng.gen();
    let mut observed = Vec::with_capacity(values.len());
    // Initiator (position 0) sends mask + its own value.
    let mut token = mask.wrapping_add(values[0]);
    observed.push(token);
    for &v in &values[1..] {
        token = token.wrapping_add(v);
        observed.push(token);
    }
    let sum = token.wrapping_sub(mask);
    Ok(SecureSumTrace { observed, sum })
}

/// Privately sums a vector per node (component-wise), e.g. one vote count
/// per class. A fresh mask is drawn per component.
///
/// # Errors
///
/// As [`secure_sum`]; additionally all vectors must share a length, or
/// [`KnnError::DimensionMismatch`] is returned.
pub fn secure_sum_vectors(vectors: &[Vec<u64>], seed: u64) -> Result<Vec<u64>, KnnError> {
    let Some(first) = vectors.first() else {
        return Err(KnnError::TooFewParties { got: 0 });
    };
    let width = first.len();
    for v in vectors {
        if v.len() != width {
            return Err(KnnError::DimensionMismatch {
                expected: width,
                got: v.len(),
            });
        }
    }
    let mut out = Vec::with_capacity(width);
    for c in 0..width {
        let column: Vec<u64> = vectors.iter().map(|v| v[c]).collect();
        out.push(secure_sum(&column, seed.wrapping_add(c as u64))?.sum);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_exactly() {
        let t = secure_sum(&[1, 2, 3, 4], 0).unwrap();
        assert_eq!(t.sum, 10);
        let t = secure_sum(&[0, 0, 0], 1).unwrap();
        assert_eq!(t.sum, 0);
    }

    #[test]
    fn wrapping_sums_still_correct_for_modular_interpretation() {
        let t = secure_sum(&[u64::MAX, 2, 3], 5).unwrap();
        // Wrapping: MAX + 5 = 4 (mod 2^64).
        assert_eq!(t.sum, 4);
    }

    #[test]
    fn rejects_small_rings() {
        assert!(secure_sum(&[1, 2], 0).is_err());
        assert!(secure_sum(&[], 0).is_err());
    }

    #[test]
    fn observed_tokens_do_not_reveal_partial_sums() {
        // Same values, different seeds: every observed token changes,
        // because each is offset by the fresh random mask.
        let a = secure_sum(&[100, 200, 300], 1).unwrap();
        let b = secure_sum(&[100, 200, 300], 2).unwrap();
        assert_eq!(a.sum, b.sum);
        for (x, y) in a.observed.iter().zip(&b.observed) {
            assert_ne!(x, y, "token leaked through the mask");
        }
    }

    #[test]
    fn mask_distributes_tokens_uniformly_ish() {
        // The first observed token (mask + v0) over many seeds should
        // cover both halves of the u64 range roughly evenly.
        let mut high = 0;
        let trials = 2000;
        for seed in 0..trials {
            let t = secure_sum(&[42, 1, 1], seed).unwrap();
            if t.observed[0] > u64::MAX / 2 {
                high += 1;
            }
        }
        let frac = high as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.05, "high fraction {frac}");
    }

    #[test]
    fn vector_sum_componentwise() {
        let sums = secure_sum_vectors(&[vec![1, 10], vec![2, 20], vec![3, 30]], 9).unwrap();
        assert_eq!(sums, vec![6, 60]);
    }

    #[test]
    fn vector_sum_validates_shapes() {
        assert!(secure_sum_vectors(&[], 0).is_err());
        assert!(secure_sum_vectors(&[vec![1], vec![1, 2], vec![1]], 0).is_err());
    }
}
