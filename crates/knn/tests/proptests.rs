//! Property-based tests for the private kNN extension.

use privtopk_knn::secure_sum::{secure_sum, secure_sum_vectors};
use privtopk_knn::{centralized_knn, KnnConfig, LabeledPoint, PrivateKnnClassifier};
use proptest::prelude::*;

fn arb_points(max_points: usize) -> impl Strategy<Value = Vec<LabeledPoint>> {
    prop::collection::vec(
        (prop::collection::vec(-10.0f64..10.0, 2), 0usize..3)
            .prop_map(|(f, l)| LabeledPoint::new(f, l)),
        1..max_points,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The masked ring sum is exact for arbitrary values and seeds.
    #[test]
    fn secure_sum_exact(
        values in prop::collection::vec(0u64..1_000_000, 3..20),
        seed in any::<u64>(),
    ) {
        let expected: u64 = values.iter().sum();
        let trace = secure_sum(&values, seed).unwrap();
        prop_assert_eq!(trace.sum, expected);
        prop_assert_eq!(trace.observed.len(), values.len());
    }

    /// Component-wise vector sums match scalar sums.
    #[test]
    fn secure_vector_sum_matches_columns(
        rows in prop::collection::vec(prop::collection::vec(0u64..10_000, 3), 3..10),
        seed in any::<u64>(),
    ) {
        let sums = secure_sum_vectors(&rows, seed).unwrap();
        for (c, &s) in sums.iter().enumerate() {
            let expect: u64 = rows.iter().map(|r| r[c]).sum();
            prop_assert_eq!(s, expect);
        }
    }

    /// The private classifier always agrees with the centralized
    /// reference, for arbitrary shard contents, k, and queries.
    #[test]
    fn private_knn_equals_centralized(
        (shards, k, qx, qy, seed) in (
            prop::collection::vec(arb_points(8), 3..6),
            1usize..6,
            -10.0f64..10.0,
            -10.0f64..10.0,
            any::<u64>(),
        )
    ) {
        let flat: Vec<LabeledPoint> = shards.iter().flatten().cloned().collect();
        let config = KnnConfig::new(k);
        let clf = PrivateKnnClassifier::new(config, shards).unwrap();
        let private = clf.classify(&[qx, qy], seed).unwrap();
        let reference = centralized_knn(&flat, &[qx, qy], &config);
        prop_assert_eq!(private, reference);
    }

    /// The distance threshold is achievable: at least one training point
    /// sits exactly at it (unless padding produced the floor threshold).
    #[test]
    fn threshold_is_witnessed(
        (shards, k, qx, qy, seed) in (
            prop::collection::vec(arb_points(6), 3..5),
            1usize..4,
            -5.0f64..5.0,
            -5.0f64..5.0,
            any::<u64>(),
        )
    ) {
        let total: usize = shards.iter().map(Vec::len).sum();
        let config = KnnConfig::new(k);
        let flat: Vec<LabeledPoint> = shards.iter().flatten().cloned().collect();
        let clf = PrivateKnnClassifier::new(config, shards).unwrap();
        let theta = clf.private_distance_threshold(&[qx, qy], seed).unwrap();
        if total >= k {
            let witnessed = flat.iter().any(|p| {
                let scaled = (p.squared_distance(&[qx, qy]) * config.scale).round() as i64;
                scaled.min(config.ceiling) == theta
            });
            prop_assert!(witnessed, "threshold {theta} not a real distance");
        } else {
            // Padding: threshold degenerates to the ceiling.
            prop_assert_eq!(theta, config.ceiling);
        }
    }
}
