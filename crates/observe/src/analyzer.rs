//! Critical-path analysis over a [`CollectedTrace`].
//!
//! The ring protocol gives every query a linear causal chain — round 1
//! hops `0..n`, round 2 hops `0..n`, … (Algorithm 1/2's token path) — so
//! per-query critical-path reconstruction is a join, not a search: step
//! spans *are* the chain, and encode/send/recv spans attach to a hop by
//! their `(query, node, round)` coordinates. On top of the
//! reconstruction the analyzer reports stalls (hops beyond a
//! configurable multiple of the query's median hop latency), per-node
//! load skew, and retransmission attribution on lossy transports.
//!
//! Everything here consumes and produces protocol coordinates and
//! timings only — the same no-leak vocabulary as the trace itself.

use std::collections::BTreeMap;

use crate::collector::{CollectedTrace, Diagnostic, PrivacyLedger};
use crate::Phase;

/// Tunables for [`analyze`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzerConfig {
    /// A hop stalls when its total latency exceeds this multiple of the
    /// query's median hop latency.
    pub stall_multiplier: f64,
    /// Healing events (retries, re-ACKs) closer together than this gap
    /// belong to the same incident; a longer quiet period closes the
    /// incident and returns the timeline to steady state.
    pub incident_gap_us: u64,
    /// Mean wire bytes per frame for this run, when the caller knows it
    /// (e.g. `bytes_sent / frames_sent` from transport counters). Used
    /// only to estimate per-incident byte overhead from frame counts —
    /// a run-level aggregate, so no per-event size ever enters a trace.
    pub bytes_per_frame_hint: Option<f64>,
}

impl Default for AnalyzerConfig {
    fn default() -> Self {
        AnalyzerConfig {
            stall_multiplier: 3.0,
            incident_gap_us: 200_000,
            bytes_per_frame_hint: None,
        }
    }
}

/// Wall-clock decomposition of one hop of one query's chain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HopBreakdown {
    /// Protocol round (from 1).
    pub round: u32,
    /// Ring position (from 0).
    pub hop: u32,
    /// Node that executed the hop, when the trace says.
    pub node: Option<u32>,
    /// Serialization time attributed to this hop, in nanoseconds.
    pub encode_ns: u64,
    /// Transport hand-off time attributed to this hop.
    pub send_ns: u64,
    /// Predecessor-wait time attributed to this hop.
    pub recv_ns: u64,
    /// The local max/top-k computation.
    pub step_ns: u64,
    /// Gap between the attributed receive completing and the step
    /// starting — time the token sat in the worker's slot queue.
    pub queue_ns: u64,
}

impl HopBreakdown {
    /// Everything this hop contributed to the critical path.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.encode_ns + self.send_ns + self.recv_ns + self.step_ns + self.queue_ns
    }
}

/// A hop flagged as anomalously slow for its query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stall {
    /// Protocol round of the stalled hop.
    pub round: u32,
    /// Ring position of the stalled hop.
    pub hop: u32,
    /// The stalled hop's total latency.
    pub total_ns: u64,
    /// The query's median hop latency it is measured against.
    pub median_ns: u64,
}

/// One query's reconstructed critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPath {
    /// Query id (`None` for untagged solo traces).
    pub query: Option<u64>,
    /// The causal chain, round-major.
    pub hops: Vec<HopBreakdown>,
    /// Sum of every hop's attributed time — the protocol's serial cost.
    pub critical_path_ns: u64,
    /// Last span end minus first span start: elapsed wall clock, which
    /// under pipelining can exceed the critical path's share of it.
    pub wall_clock_ns: u64,
    /// Hops beyond the configured multiple of the median hop latency.
    pub stalls: Vec<Stall>,
    /// Whether the chain covers a full `nodes x rounds` grid with no
    /// gaps (inferred from the trace's own maxima).
    pub complete: bool,
}

/// One node's share of one incident's healing cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeHealingCost {
    /// Node index.
    pub node: u32,
    /// Frames this node retransmitted during the incident.
    pub retransmissions: u64,
    /// Duplicate frames this node re-acknowledged.
    pub re_acks: u64,
    /// Time the node spent waiting out lost frames (the summed
    /// durations of its retry spans), in nanoseconds.
    pub backoff_ns: u64,
}

impl NodeHealingCost {
    /// Extra frames the incident put on the wire through this node.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.retransmissions + self.re_acks
    }
}

/// One reconstructed degradation incident: a cluster of healing events
/// (retransmissions and re-ACKs) separated from the next cluster by at
/// least [`AnalyzerConfig::incident_gap_us`] of quiet.
///
/// The timeline reads detect -> storm -> steady state: the first
/// healing event marks detection (`start_us`), the retransmit/re-ACK
/// storm runs until its last event finishes (`end_us`, which for a
/// crash-and-reconstruct scenario is when the ring has re-formed), and
/// steady state resumes after the configured quiet gap.
#[derive(Debug, Clone, PartialEq)]
pub struct Incident {
    /// Incident ordinal, from 1, in timeline order.
    pub index: usize,
    /// Trace timestamp of the first healing event (detection).
    pub start_us: u64,
    /// Trace timestamp at which the last healing event finished.
    pub end_us: u64,
    /// Healing latency: detection to last healing event end, in
    /// nanoseconds (a single retry still has its wait duration, so a
    /// real incident's healing cost is never zero).
    pub healing_ns: u64,
    /// Frames retransmitted during the incident.
    pub retransmissions: u64,
    /// Duplicate frames re-acknowledged during the incident.
    pub re_acks: u64,
    /// Summed retry-wait time across all nodes, in nanoseconds.
    pub backoff_ns: u64,
    /// Estimated extra wire bytes, when the caller supplied
    /// [`AnalyzerConfig::bytes_per_frame_hint`].
    pub overhead_bytes_est: Option<u64>,
    /// Per-node decomposition, sorted by node index.
    pub nodes: Vec<NodeHealingCost>,
}

impl Incident {
    /// Extra frames the incident put on the wire in total.
    #[must_use]
    pub fn frames(&self) -> u64 {
        self.retransmissions + self.re_acks
    }
}

/// One node's share of the trace's total busy time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeLoad {
    /// Node index.
    pub node: u32,
    /// Nanoseconds of encode/send/step work attributed to the node.
    pub busy_ns: u64,
    /// `busy_ns` as a fraction of all nodes' busy time (0 when idle).
    pub share: f64,
    /// Retransmissions attributed to the node (lossy transports).
    pub retransmissions: u64,
}

/// The full analysis of a collected trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Per-query critical paths, sorted by query id.
    pub queries: Vec<QueryPath>,
    /// Per-node load, sorted by node index.
    pub node_load: Vec<NodeLoad>,
    /// Total retransmissions seen (retry ticks across all nodes).
    pub retransmissions: u64,
    /// Total re-acknowledgements seen (duplicate suppression).
    pub re_acks: u64,
    /// Reconstructed degradation incidents, in timeline order.
    pub incidents: Vec<Incident>,
    /// Diagnostics carried over from collection/validation.
    pub diagnostics: Vec<Diagnostic>,
    /// Privacy-accounting figures carried over from collection, when a
    /// ledger was attached. Rendered as a privacy panel only when
    /// present, so ledger-free analyses print exactly as before.
    pub privacy: Option<PrivacyLedger>,
}

impl Analysis {
    /// Largest node-load share divided by the mean share — 1.0 means a
    /// perfectly balanced ring (0.0 when no load was attributed).
    #[must_use]
    pub fn load_skew(&self) -> f64 {
        if self.node_load.is_empty() {
            return 0.0;
        }
        let total: u64 = self.node_load.iter().map(|l| l.busy_ns).sum();
        if total == 0 {
            return 0.0;
        }
        let mean = total as f64 / self.node_load.len() as f64;
        let max = self.node_load.iter().map(|l| l.busy_ns).max().unwrap_or(0);
        max as f64 / mean
    }
}

/// Reconstructs every query's critical path from `trace` and scores
/// stalls, load skew and retransmissions. Never fails: an empty or
/// incoherent trace yields an empty analysis plus whatever diagnostics
/// collection already produced.
#[must_use]
pub fn analyze(trace: &CollectedTrace, config: &AnalyzerConfig) -> Analysis {
    let mut queries = Vec::new();
    for query in trace.queries() {
        queries.push(analyze_query(trace, query, config));
    }

    // Node load and healing counters come from every span, not just
    // chain members, so unattributable work still shows up somewhere.
    let mut busy: BTreeMap<u32, u64> = BTreeMap::new();
    let mut retries: BTreeMap<u32, u64> = BTreeMap::new();
    let mut retransmissions = 0u64;
    let mut re_acks = 0u64;
    for span in &trace.spans {
        match span.event.phase {
            Phase::Encode | Phase::Send | Phase::Step => {
                if let Some(node) = span.event.ctx.node {
                    *busy.entry(node).or_insert(0) += span.event.dur_ns;
                }
            }
            Phase::Retry => {
                retransmissions += 1;
                if let Some(node) = span.event.ctx.node {
                    *retries.entry(node).or_insert(0) += 1;
                }
            }
            Phase::Ack => re_acks += 1,
            Phase::Recv | Phase::Idle => {}
        }
    }
    // Live node summaries cover spans the event buffer may have dropped
    // (or never captured, in stats-only mode).
    for summary in &trace.node_summaries {
        let entry = busy.entry(summary.node).or_insert(0);
        *entry = (*entry).max(summary.busy_ns());
    }
    let total_busy: u64 = busy.values().sum();
    let node_load = busy
        .iter()
        .map(|(&node, &busy_ns)| NodeLoad {
            node,
            busy_ns,
            share: if total_busy == 0 {
                0.0
            } else {
                busy_ns as f64 / total_busy as f64
            },
            retransmissions: retries.get(&node).copied().unwrap_or(0),
        })
        .collect();

    Analysis {
        queries,
        node_load,
        retransmissions,
        re_acks,
        incidents: reconstruct_incidents(trace, config),
        diagnostics: trace.diagnostics.clone(),
        privacy: trace.privacy.clone(),
    }
}

/// Clusters the trace's healing events (retry spans, re-ACK ticks) into
/// [`Incident`]s: events within `incident_gap_us` of each other belong
/// to one incident, a longer quiet period starts the next.
fn reconstruct_incidents(trace: &CollectedTrace, config: &AnalyzerConfig) -> Vec<Incident> {
    struct HealingEvent {
        t_us: u64,
        dur_ns: u64,
        node: Option<u32>,
        retry: bool,
    }
    let mut healing: Vec<HealingEvent> = trace
        .spans
        .iter()
        .filter(|span| matches!(span.event.phase, Phase::Retry | Phase::Ack))
        .map(|span| HealingEvent {
            t_us: span.event.t_us,
            dur_ns: span.event.dur_ns,
            node: span.event.ctx.node,
            retry: span.event.phase == Phase::Retry,
        })
        .collect();
    healing.sort_by_key(|e| e.t_us);

    let mut incidents: Vec<Incident> = Vec::new();
    let mut current: Vec<&HealingEvent> = Vec::new();
    let flush = |group: &mut Vec<&HealingEvent>, incidents: &mut Vec<Incident>| {
        if group.is_empty() {
            return;
        }
        let start_us = group.first().map_or(0, |e| e.t_us);
        let end_us = group
            .iter()
            .map(|e| e.t_us + e.dur_ns.div_ceil(1000))
            .max()
            .unwrap_or(start_us);
        let mut nodes: BTreeMap<u32, NodeHealingCost> = BTreeMap::new();
        let mut retransmissions = 0u64;
        let mut re_acks = 0u64;
        let mut backoff_ns = 0u64;
        for event in group.iter() {
            let cost = event.node.map(|node| {
                nodes.entry(node).or_insert_with(|| NodeHealingCost {
                    node,
                    ..NodeHealingCost::default()
                })
            });
            if event.retry {
                retransmissions += 1;
                backoff_ns += event.dur_ns;
                if let Some(cost) = cost {
                    cost.retransmissions += 1;
                    cost.backoff_ns += event.dur_ns;
                }
            } else {
                re_acks += 1;
                if let Some(cost) = cost {
                    cost.re_acks += 1;
                }
            }
        }
        let frames = retransmissions + re_acks;
        incidents.push(Incident {
            index: incidents.len() + 1,
            start_us,
            end_us,
            healing_ns: (end_us - start_us).saturating_mul(1000).max(backoff_ns),
            retransmissions,
            re_acks,
            backoff_ns,
            overhead_bytes_est: config
                .bytes_per_frame_hint
                .map(|mean| (mean * frames as f64).round() as u64),
            nodes: nodes.into_values().collect(),
        });
        group.clear();
    };
    let mut last_end_us = 0u64;
    for event in &healing {
        if !current.is_empty() && event.t_us.saturating_sub(last_end_us) > config.incident_gap_us {
            flush(&mut current, &mut incidents);
        }
        last_end_us = last_end_us.max(event.t_us + event.dur_ns.div_ceil(1000));
        current.push(event);
    }
    flush(&mut current, &mut incidents);
    incidents
}

fn analyze_query(trace: &CollectedTrace, query: Option<u64>, config: &AnalyzerConfig) -> QueryPath {
    // The chain skeleton: one entry per step span, keyed (round, hop).
    let mut hops: BTreeMap<(u32, u32), HopBreakdown> = BTreeMap::new();
    // Step start/end stamps, for queue-gap attribution and wall clock.
    let mut step_bounds: BTreeMap<(u32, u32), (u64, u64)> = BTreeMap::new();
    let mut first_start_ns = u64::MAX;
    let mut last_end_ns = 0u64;
    for span in trace.chain(query) {
        let (Some(round), Some(hop)) = (span.event.ctx.round, span.event.ctx.hop) else {
            continue;
        };
        let entry = hops.entry((round, hop)).or_default();
        entry.round = round;
        entry.hop = hop;
        entry.node = span.event.ctx.node;
        entry.step_ns += span.event.dur_ns;
        let start_ns = span.event.t_us.saturating_mul(1000);
        let end_ns = start_ns.saturating_add(span.event.dur_ns);
        step_bounds.insert((round, hop), (start_ns, end_ns));
        first_start_ns = first_start_ns.min(start_ns);
        last_end_ns = last_end_ns.max(end_ns);
    }

    // Attribute wire spans. A span with explicit (round, hop) lands on
    // that hop; otherwise it joins through its (node, round) — each node
    // holds one ring position per query, so the pair is unambiguous.
    let mut node_position: BTreeMap<u32, u32> = BTreeMap::new();
    for breakdown in hops.values() {
        if let Some(node) = breakdown.node {
            node_position.entry(node).or_insert(breakdown.hop);
        }
    }
    for span in &trace.spans {
        if span.event.ctx.query != query || span.event.phase == Phase::Step {
            continue;
        }
        let Some(round) = span.event.ctx.round else {
            continue;
        };
        let hop = span.event.ctx.hop.or_else(|| {
            span.event
                .ctx
                .node
                .and_then(|n| node_position.get(&n).copied())
        });
        let Some(hop) = hop else { continue };
        let Some(entry) = hops.get_mut(&(round, hop)) else {
            continue;
        };
        match span.event.phase {
            Phase::Encode => entry.encode_ns += span.event.dur_ns,
            Phase::Send => entry.send_ns += span.event.dur_ns,
            Phase::Recv => {
                entry.recv_ns += span.event.dur_ns;
                // Queue gap: time between the receive completing and the
                // step starting on the same hop.
                let recv_end = span
                    .event
                    .t_us
                    .saturating_mul(1000)
                    .saturating_add(span.event.dur_ns);
                if let Some(&(step_start, _)) = step_bounds.get(&(round, hop)) {
                    entry.queue_ns += step_start.saturating_sub(recv_end);
                }
            }
            _ => {}
        }
        let start_ns = span.event.t_us.saturating_mul(1000);
        first_start_ns = first_start_ns.min(start_ns);
        last_end_ns = last_end_ns.max(start_ns.saturating_add(span.event.dur_ns));
    }

    let hops: Vec<HopBreakdown> = hops.into_values().collect();
    let critical_path_ns = hops.iter().map(HopBreakdown::total_ns).sum();

    // Completeness, inferred from the trace's own maxima: every
    // (round, hop) cell up to the observed bounds must be present.
    let max_round = hops.iter().map(|h| h.round).max().unwrap_or(0);
    let max_hop = hops.iter().map(|h| h.hop).max().unwrap_or(0);
    let complete = !hops.is_empty()
        && hops.len() == (max_round as usize) * (max_hop as usize + 1)
        && hops.first().is_some_and(|h| h.round == 1 && h.hop == 0);

    // Stalls: hops beyond `stall_multiplier` x the median hop total.
    let mut totals: Vec<u64> = hops.iter().map(HopBreakdown::total_ns).collect();
    totals.sort_unstable();
    let median_ns = totals
        .get(totals.len().saturating_sub(1) / 2)
        .copied()
        .unwrap_or(0);
    let threshold = (median_ns.max(1) as f64) * config.stall_multiplier;
    let stalls = hops
        .iter()
        .filter(|h| h.total_ns() as f64 > threshold)
        .map(|h| Stall {
            round: h.round,
            hop: h.hop,
            total_ns: h.total_ns(),
            median_ns,
        })
        .collect();

    QueryPath {
        query,
        hops,
        critical_path_ns,
        wall_clock_ns: last_end_ns.saturating_sub(if first_start_ns == u64::MAX {
            0
        } else {
            first_start_ns
        }),
        stalls,
        complete,
    }
}

/// Renders nanoseconds with an adaptive unit (ASCII only).
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn query_label(query: Option<u64>) -> String {
    query.map_or_else(|| "-".to_string(), |q| q.to_string())
}

impl std::fmt::Display for Analysis {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "trace analysis: {} queries, {} diagnostics",
            self.queries.len(),
            self.diagnostics.len()
        )?;
        for path in &self.queries {
            let pct = |part: u64| {
                if path.critical_path_ns == 0 {
                    0.0
                } else {
                    100.0 * part as f64 / path.critical_path_ns as f64
                }
            };
            let encode: u64 = path.hops.iter().map(|h| h.encode_ns).sum();
            let send: u64 = path.hops.iter().map(|h| h.send_ns).sum();
            let recv: u64 = path.hops.iter().map(|h| h.recv_ns).sum();
            let step: u64 = path.hops.iter().map(|h| h.step_ns).sum();
            let queue: u64 = path.hops.iter().map(|h| h.queue_ns).sum();
            writeln!(
                f,
                "query {:>3}: {} hops ({}), critical path {} \
                 (encode {:.0}%, send {:.0}%, recv {:.0}%, step {:.0}%, queue {:.0}%), \
                 wall clock {}, {} stalls",
                query_label(path.query),
                path.hops.len(),
                if path.complete {
                    "complete"
                } else {
                    "INCOMPLETE"
                },
                fmt_ns(path.critical_path_ns),
                pct(encode),
                pct(send),
                pct(recv),
                pct(step),
                pct(queue),
                fmt_ns(path.wall_clock_ns),
                path.stalls.len(),
            )?;
            for stall in &path.stalls {
                writeln!(
                    f,
                    "  stall r{} h{}: {} ({:.1}x median {})",
                    stall.round,
                    stall.hop,
                    fmt_ns(stall.total_ns),
                    stall.total_ns as f64 / stall.median_ns.max(1) as f64,
                    fmt_ns(stall.median_ns),
                )?;
            }
        }
        if !self.node_load.is_empty() {
            write!(f, "node load:")?;
            for load in &self.node_load {
                write!(f, " n{} {:.0}%", load.node, load.share * 100.0)?;
            }
            writeln!(f, " (skew {:.2}x)", self.load_skew())?;
        }
        if self.retransmissions > 0 || self.re_acks > 0 {
            write!(
                f,
                "healing: {} retransmissions, {} re-acks",
                self.retransmissions, self.re_acks
            )?;
            let attributed: Vec<String> = self
                .node_load
                .iter()
                .filter(|l| l.retransmissions > 0)
                .map(|l| format!("n{}: {}", l.node, l.retransmissions))
                .collect();
            if attributed.is_empty() {
                writeln!(f)?;
            } else {
                writeln!(f, " ({})", attributed.join(", "))?;
            }
        }
        for incident in &self.incidents {
            write!(
                f,
                "incident {}: detect t+{} -> storm {} ({} retransmissions, {} re-acks, \
                 backoff {}{}) -> steady at t+{}",
                incident.index,
                fmt_ns(incident.start_us.saturating_mul(1000)),
                fmt_ns(incident.healing_ns),
                incident.retransmissions,
                incident.re_acks,
                fmt_ns(incident.backoff_ns),
                incident
                    .overhead_bytes_est
                    .map_or_else(String::new, |b| format!(", ~{b} B overhead")),
                fmt_ns(incident.end_us.saturating_mul(1000)),
            )?;
            let per_node: Vec<String> = incident
                .nodes
                .iter()
                .map(|n| {
                    format!(
                        "n{}: {} frames, backoff {}",
                        n.node,
                        n.frames(),
                        fmt_ns(n.backoff_ns)
                    )
                })
                .collect();
            if per_node.is_empty() {
                writeln!(f)?;
            } else {
                writeln!(f, "\n  {}", per_node.join("; "))?;
            }
        }
        if let Some(privacy) = &self.privacy {
            writeln!(
                f,
                "privacy: {} queries accounted, avg LoP {:.4}, worst {:.4} ({})",
                privacy.queries_accounted,
                privacy.average_lop,
                privacy.worst_lop,
                privacy.worst_class,
            )?;
            for (node, lop) in privacy.per_node_lop.iter().enumerate() {
                let ci = privacy.per_node_ci95.get(node).copied().unwrap_or(0.0);
                let class = privacy.per_node_class.get(node).map_or("", String::as_str);
                writeln!(f, "  node {node}: LoP {lop:.4} +-{ci:.4} ({class})")?;
            }
        }
        for diagnostic in &self.diagnostics {
            writeln!(f, "diagnostic: {diagnostic}")?;
        }
        Ok(())
    }
}

impl Analysis {
    /// The analysis as one JSON object (machine twin of `Display`).
    ///
    /// Hand-rolled like the trace writer: fixed key order, integers and
    /// fixed-precision floats only, no external dependency.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"queries\":[");
        for (i, path) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"query\":");
            match path.query {
                Some(q) => out.push_str(&q.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(&format!(
                ",\"hops\":{},\"complete\":{},\"critical_path_ns\":{},\"wall_clock_ns\":{}",
                path.hops.len(),
                path.complete,
                path.critical_path_ns,
                path.wall_clock_ns
            ));
            out.push_str(",\"phase_totals_ns\":{");
            let totals = [
                ("encode", path.hops.iter().map(|h| h.encode_ns).sum::<u64>()),
                ("send", path.hops.iter().map(|h| h.send_ns).sum()),
                ("recv", path.hops.iter().map(|h| h.recv_ns).sum()),
                ("step", path.hops.iter().map(|h| h.step_ns).sum()),
                ("queue", path.hops.iter().map(|h| h.queue_ns).sum()),
            ];
            for (j, (name, value)) in totals.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{value}"));
            }
            out.push_str("},\"stalls\":[");
            for (j, stall) in path.stalls.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"round\":{},\"hop\":{},\"total_ns\":{},\"median_ns\":{}}}",
                    stall.round, stall.hop, stall.total_ns, stall.median_ns
                ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"node_load\":[");
        for (i, load) in self.node_load.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"node\":{},\"busy_ns\":{},\"share\":{:.4},\"retransmissions\":{}}}",
                load.node, load.busy_ns, load.share, load.retransmissions
            ));
        }
        out.push_str(&format!(
            "],\"load_skew\":{:.4},\"retransmissions\":{},\"re_acks\":{}",
            self.load_skew(),
            self.retransmissions,
            self.re_acks
        ));
        out.push_str(",\"incidents\":[");
        for (i, incident) in self.incidents.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"index\":{},\"start_us\":{},\"end_us\":{},\"healing_ns\":{},\
                 \"retransmissions\":{},\"re_acks\":{},\"backoff_ns\":{}",
                incident.index,
                incident.start_us,
                incident.end_us,
                incident.healing_ns,
                incident.retransmissions,
                incident.re_acks,
                incident.backoff_ns,
            ));
            if let Some(bytes) = incident.overhead_bytes_est {
                out.push_str(&format!(",\"overhead_bytes_est\":{bytes}"));
            }
            out.push_str(",\"nodes\":[");
            for (j, node) in incident.nodes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"node\":{},\"retransmissions\":{},\"re_acks\":{},\"backoff_ns\":{}}}",
                    node.node, node.retransmissions, node.re_acks, node.backoff_ns
                ));
            }
            out.push_str("]}");
        }
        out.push(']');
        if let Some(privacy) = &self.privacy {
            out.push_str(&format!(
                ",\"privacy\":{{\"queries_accounted\":{},\"average_lop\":{:.6},\"worst_lop\":{:.6},\"worst_class\":\"{}\",\"nodes\":[",
                privacy.queries_accounted,
                privacy.average_lop,
                privacy.worst_lop,
                privacy.worst_class,
            ));
            for (node, lop) in privacy.per_node_lop.iter().enumerate() {
                if node > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"node\":{node},\"lop\":{lop:.6},\"ci95\":{:.6},\"class\":\"{}\"}}",
                    privacy.per_node_ci95.get(node).copied().unwrap_or(0.0),
                    privacy.per_node_class.get(node).map_or("", String::as_str),
                ));
            }
            out.push_str("]}");
        }
        out.push_str(",\"diagnostics\":[");
        for (i, diagnostic) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            // Diagnostics render through Display; escape the two JSON
            // specials that can appear in a source path.
            for c in diagnostic.to_string().chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::{Ctx, Recorder};

    /// Emits a synthetic 3-node, 2-round trace: per hop a recv wait
    /// (2us), a step (1us) and a send (500ns), with one slow stall.
    fn synthetic_trace(stall_hop: Option<(u32, u32)>) -> CollectedTrace {
        let mut lines = Vec::new();
        let mut t = 100u64; // microseconds
        for round in 1..=2u32 {
            for hop in 0..3u32 {
                let step_ns = if stall_hop == Some((round, hop)) {
                    90_000
                } else {
                    1_000
                };
                lines.push(format!(
                    "{{\"t_us\":{},\"phase\":\"recv\",\"query\":0,\"node\":{hop},\"round\":{round},\"dur_ns\":2000}}",
                    t
                ));
                // step starts 1us after the recv ends -> 1us queue gap.
                lines.push(format!(
                    "{{\"t_us\":{},\"phase\":\"step\",\"query\":0,\"node\":{hop},\"round\":{round},\"hop\":{hop},\"dur_ns\":{step_ns}}}",
                    t + 3
                ));
                lines.push(format!(
                    "{{\"t_us\":{},\"phase\":\"send\",\"query\":0,\"node\":{hop},\"round\":{round},\"dur_ns\":500}}",
                    t + 4
                ));
                t += 10;
            }
        }
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("synthetic.jsonl", &lines.join("\n"));
        collector.finish()
    }

    #[test]
    fn reconstructs_complete_chain_with_decomposition() {
        let trace = synthetic_trace(None);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert_eq!(analysis.queries.len(), 1);
        let path = &analysis.queries[0];
        assert!(path.complete);
        assert_eq!(path.hops.len(), 6);
        for hop in &path.hops {
            assert_eq!(hop.step_ns, 1_000);
            assert_eq!(hop.recv_ns, 2_000);
            assert_eq!(hop.send_ns, 500);
            assert_eq!(hop.queue_ns, 1_000); // recv end 100+2us, step at 103us
        }
        assert_eq!(path.critical_path_ns, 6 * 4_500);
        assert!(path.stalls.is_empty());
        assert!(path.wall_clock_ns >= path.critical_path_ns / 2);
    }

    #[test]
    fn stall_detection_flags_the_slow_hop() {
        let trace = synthetic_trace(Some((2, 1)));
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        let path = &analysis.queries[0];
        assert_eq!(path.stalls.len(), 1);
        let stall = path.stalls[0];
        assert_eq!((stall.round, stall.hop), (2, 1));
        assert!(stall.total_ns > stall.median_ns * 3);
        // A looser multiplier stops flagging it.
        let lax = analyze(
            &trace,
            &AnalyzerConfig {
                stall_multiplier: 1000.0,
                ..AnalyzerConfig::default()
            },
        );
        assert!(lax.queries[0].stalls.is_empty());
    }

    #[test]
    fn incomplete_chain_is_marked_and_diagnosed() {
        let mut lines: Vec<String> = synthetic_trace(None)
            .to_jsonl()
            .lines()
            .map(String::from)
            .collect();
        // Drop round 2 hop 2's step line.
        lines.retain(|l| {
            !(l.contains("\"phase\":\"step\"")
                && l.contains("\"round\":2")
                && l.contains("\"hop\":2"))
        });
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("gappy.jsonl", &lines.join("\n"));
        let mut trace = collector.finish();
        assert!(!trace.validate_topology(3, 2));
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert!(!analysis.queries[0].complete);
        assert!(analysis.diagnostics.iter().any(|d| matches!(
            d,
            Diagnostic::MissingStep {
                round: 2,
                hop: 2,
                ..
            }
        )));
    }

    #[test]
    fn node_load_and_retry_attribution() {
        let rec = Recorder::new();
        for node in 0..3u32 {
            rec.tick(
                Phase::Step,
                Ctx::default()
                    .with_query(0)
                    .with_node(node)
                    .with_round(1)
                    .with_hop(node),
            );
        }
        rec.tick(Phase::Retry, Ctx::default().with_node(1));
        rec.tick(Phase::Retry, Ctx::default().with_node(1));
        rec.tick(Phase::Ack, Ctx::default().with_node(2));
        let mut collector = TraceCollector::new();
        collector.ingest_recorder("live", &rec);
        let analysis = analyze(&collector.finish(), &AnalyzerConfig::default());
        assert_eq!(analysis.retransmissions, 2);
        assert_eq!(analysis.re_acks, 1);
        let n1 = analysis.node_load.iter().find(|l| l.node == 1).unwrap();
        assert_eq!(n1.retransmissions, 2);
    }

    #[test]
    fn text_and_json_renderings_cover_the_findings() {
        let trace = synthetic_trace(Some((1, 0)));
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        let text = analysis.to_string();
        assert!(text.contains("query   0"), "text report:\n{text}");
        assert!(text.contains("complete"));
        assert!(text.contains("stall r1 h0"));
        assert!(text.contains("node load:"));
        let json = analysis.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        for key in [
            "\"queries\":",
            "\"critical_path_ns\":",
            "\"phase_totals_ns\":",
            "\"stalls\":",
            "\"node_load\":",
            "\"load_skew\":",
            "\"diagnostics\":",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn privacy_panel_renders_only_when_a_ledger_rides_along() {
        let bare = analyze(&synthetic_trace(None), &AnalyzerConfig::default());
        assert!(!bare.to_string().contains("privacy:"));
        assert!(!bare.to_json().contains("\"privacy\""));

        let mut trace = synthetic_trace(None);
        trace.privacy = Some(PrivacyLedger {
            queries_accounted: 5,
            per_node_lop: vec![0.01, 0.02, 0.03],
            per_node_ci95: vec![0.001, 0.002, 0.003],
            per_node_class: vec!["beyond suspicion".into(); 3],
            average_lop: 0.02,
            worst_lop: 0.03,
            worst_class: "beyond suspicion".into(),
        });
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        let text = analysis.to_string();
        assert!(
            text.contains("privacy: 5 queries accounted, avg LoP 0.0200, worst 0.0300"),
            "text report:\n{text}"
        );
        assert!(text.contains("node 2: LoP 0.0300 +-0.0030 (beyond suspicion)"));
        // The panel is strictly additive: the header line is unchanged.
        assert!(text.starts_with("trace analysis: 1 queries, 0 diagnostics"));
        let json = analysis.to_json();
        assert!(json.contains("\"privacy\":{\"queries_accounted\":5"));
        assert!(json.contains("\"worst_class\":\"beyond suspicion\""));
        assert!(json.contains("{\"node\":2,\"lop\":0.030000,\"ci95\":0.003000"));
    }

    #[test]
    fn empty_trace_analyzes_to_nothing() {
        let trace = TraceCollector::new().finish();
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert!(analysis.queries.is_empty());
        assert!(analysis.node_load.is_empty());
        assert!(analysis.incidents.is_empty());
        assert_eq!(analysis.load_skew(), 0.0);
        // Rendering an empty analysis is well-formed in both shapes.
        assert!(analysis
            .to_string()
            .starts_with("trace analysis: 0 queries"));
        assert!(analysis.to_json().contains("\"incidents\":[]"));
    }

    #[test]
    fn single_query_zero_retry_trace_has_no_incidents() {
        let trace = synthetic_trace(None);
        let analysis = analyze(&trace, &AnalyzerConfig::default());
        assert_eq!(analysis.queries.len(), 1);
        assert_eq!(analysis.retransmissions, 0);
        assert!(analysis.incidents.is_empty());
        assert!(!analysis.to_string().contains("incident"));
    }

    #[test]
    fn uniformly_slow_trace_flags_no_stalls_and_survives_zero_medians() {
        // Every hop equally slow: stall detection is relative to the
        // query's own median, so nothing should be flagged.
        let mut lines = Vec::new();
        for hop in 0..3u32 {
            lines.push(format!(
                "{{\"t_us\":{},\"phase\":\"step\",\"query\":0,\"node\":{hop},\"round\":1,\"hop\":{hop},\"dur_ns\":80000000}}",
                100 + hop as u64 * 100_000
            ));
        }
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("slow.jsonl", &lines.join("\n"));
        let analysis = analyze(&collector.finish(), &AnalyzerConfig::default());
        assert!(analysis.queries[0].stalls.is_empty());

        // All-zero durations drive the median to zero; the threshold
        // guard must not divide by it (or flag every hop).
        let mut zero = Vec::new();
        for hop in 0..3u32 {
            zero.push(format!(
                "{{\"t_us\":{},\"phase\":\"step\",\"query\":0,\"node\":{hop},\"round\":1,\"hop\":{hop},\"dur_ns\":0}}",
                100 + hop as u64
            ));
        }
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("zero.jsonl", &zero.join("\n"));
        let analysis = analyze(&collector.finish(), &AnalyzerConfig::default());
        assert!(analysis.queries[0].stalls.is_empty());
        assert!(analysis.load_skew().is_finite());
    }

    /// A trace with two retry storms separated by a quiet second, plus
    /// one re-ACK inside the first storm.
    fn two_incident_trace() -> CollectedTrace {
        // Storm 1 at t=10ms: node 1 retries twice (50ms waits each),
        // node 2 re-acks a duplicate. Storm 2 at t=2s: node 0 retries
        // once.
        let lines = [
            "{\"t_us\":10000,\"phase\":\"retry\",\"node\":1,\"dur_ns\":50000000}",
            "{\"t_us\":60000,\"phase\":\"retry\",\"node\":1,\"dur_ns\":50000000}",
            "{\"t_us\":61000,\"phase\":\"ack\",\"node\":2,\"dur_ns\":0}",
            "{\"t_us\":2000000,\"phase\":\"retry\",\"node\":0,\"dur_ns\":50000000}",
        ];
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("chaos.jsonl", &lines.join("\n"));
        collector.finish()
    }

    #[test]
    fn healing_events_cluster_into_incidents_with_per_node_costs() {
        let analysis = analyze(&two_incident_trace(), &AnalyzerConfig::default());
        assert_eq!(analysis.incidents.len(), 2);
        let first = &analysis.incidents[0];
        assert_eq!(first.index, 1);
        assert_eq!(first.retransmissions, 2);
        assert_eq!(first.re_acks, 1);
        assert_eq!(first.frames(), 3);
        assert_eq!(first.backoff_ns, 100_000_000);
        assert!(first.healing_ns >= 100_000_000, "got {}", first.healing_ns);
        assert_eq!(first.start_us, 10_000);
        assert_eq!(first.nodes.len(), 2);
        let n1 = first.nodes.iter().find(|n| n.node == 1).unwrap();
        assert_eq!(n1.retransmissions, 2);
        assert_eq!(n1.backoff_ns, 100_000_000);
        let n2 = first.nodes.iter().find(|n| n.node == 2).unwrap();
        assert_eq!(n2.re_acks, 1);
        assert_eq!(n2.frames(), 1);
        let second = &analysis.incidents[1];
        assert_eq!(second.index, 2);
        assert_eq!(second.retransmissions, 1);
        // A lone retry still attributes its wait as healing cost.
        assert!(second.healing_ns > 0);
    }

    #[test]
    fn incident_gap_controls_clustering() {
        // A huge gap folds both storms into one incident.
        let merged = analyze(
            &two_incident_trace(),
            &AnalyzerConfig {
                incident_gap_us: 10_000_000,
                ..AnalyzerConfig::default()
            },
        );
        assert_eq!(merged.incidents.len(), 1);
        assert_eq!(merged.incidents[0].retransmissions, 3);
        // A tiny gap still keeps storm 1 whole — its events chain with
        // no quiet time between retry windows — while storm 2 stays
        // separate.
        let split = analyze(
            &two_incident_trace(),
            &AnalyzerConfig {
                incident_gap_us: 10,
                ..AnalyzerConfig::default()
            },
        );
        assert_eq!(split.incidents.len(), 2);
        assert_eq!(split.incidents[0].frames(), 3);
    }

    #[test]
    fn incident_renderings_cover_text_and_json() {
        let config = AnalyzerConfig {
            bytes_per_frame_hint: Some(128.0),
            ..AnalyzerConfig::default()
        };
        let analysis = analyze(&two_incident_trace(), &config);
        let text = analysis.to_string();
        assert!(text.contains("incident 1: detect t+"), "text:\n{text}");
        assert!(text.contains("2 retransmissions, 1 re-acks"));
        assert!(text.contains("~384 B overhead"));
        assert!(text.contains("n1: 2 frames"));
        let json = analysis.to_json();
        assert!(json.contains("\"incidents\":[{\"index\":1"));
        assert!(json.contains("\"healing_ns\":"));
        assert!(json.contains("\"overhead_bytes_est\":384"));
        assert!(json.contains("{\"node\":1,\"retransmissions\":2"));
        // Without the hint the byte estimate is absent, not zero.
        let bare = analyze(&two_incident_trace(), &AnalyzerConfig::default());
        assert!(!bare.to_json().contains("overhead_bytes_est"));
    }
}
