//! Cross-node trace collection: merging per-node JSONL traces and live
//! [`Recorder`] snapshots into one causally ordered view.
//!
//! In distributed and service mode every process records its own trace
//! island; this module reassembles a whole ring traversal from them.
//! Spans are keyed by `(query, slot, round, hop)` and ordered causally
//! (round-major along the ring, matching Algorithm 1/2's token path), so
//! a complete traversal reads top to bottom. Collection is forgiving by
//! design: malformed lines, duplicate spans, gaps in the hop chain and
//! timestamp inversions become structured [`Diagnostic`]s — never a
//! panic and never an `Err` — because a fleet's trace files are exactly
//! the artifact most likely to be truncated mid-write.
//!
//! Like every other `privtopk-observe` surface, collected output carries
//! protocol coordinates and timings only: the ingestion schema *is* the
//! `TraceEvent` schema, so there is no field a data value could ride in.

use std::collections::BTreeMap;

use crate::recorder::{NodeSummary, TraceEvent};
use crate::{Ctx, Phase};

/// One span in a collected trace: the event plus which source it came
/// from (an index into [`CollectedTrace::sources`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CollectedSpan {
    /// The parsed trace event.
    pub event: TraceEvent,
    /// Index of the originating source in [`CollectedTrace::sources`].
    pub source: usize,
}

/// A structured problem found while collecting or validating a trace.
///
/// Diagnostics are data, not errors: a collector never fails on bad
/// input, it reports what it had to skip or could not reconcile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Diagnostic {
    /// A line that did not parse as a trace event (malformed JSON,
    /// unknown phase, non-integer field — typically a truncated write).
    MalformedLine {
        /// Which source the line came from.
        source: String,
        /// 1-based line number within that source.
        line: usize,
        /// Why the line was rejected.
        reason: String,
    },
    /// The same `(query, slot, round, hop)` step appeared more than
    /// once (e.g. the same trace ingested twice); only the earliest
    /// occurrence is kept.
    DuplicateStep {
        /// Query id (`None` for untagged solo traces).
        query: Option<u64>,
        /// Protocol round.
        round: u32,
        /// Ring position.
        hop: u32,
    },
    /// A hop expected from the ring topology has no step span.
    MissingStep {
        /// Query id (`None` for untagged solo traces).
        query: Option<u64>,
        /// Protocol round.
        round: u32,
        /// Ring position.
        hop: u32,
    },
    /// A step's timestamp precedes its causal predecessor's — clock
    /// skew between per-node sources, worth knowing when reading
    /// wall-clock figures.
    OutOfOrderStep {
        /// Query id (`None` for untagged solo traces).
        query: Option<u64>,
        /// Protocol round of the earlier-stamped later hop.
        round: u32,
        /// Ring position of the earlier-stamped later hop.
        hop: u32,
    },
    /// One ring position was claimed by two different nodes within a
    /// query — the reconstructed chain contradicts the ring topology.
    TopologyMismatch {
        /// Query id (`None` for untagged solo traces).
        query: Option<u64>,
        /// The contested ring position.
        hop: u32,
    },
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        fn query_label(query: &Option<u64>) -> String {
            query.map_or_else(|| "-".to_string(), |q| q.to_string())
        }
        match self {
            Diagnostic::MalformedLine {
                source,
                line,
                reason,
            } => {
                write!(f, "malformed line {source}:{line}: {reason}")
            }
            Diagnostic::DuplicateStep { query, round, hop } => write!(
                f,
                "duplicate step query {} round {round} hop {hop}",
                query_label(query)
            ),
            Diagnostic::MissingStep { query, round, hop } => write!(
                f,
                "missing step query {} round {round} hop {hop}",
                query_label(query)
            ),
            Diagnostic::OutOfOrderStep { query, round, hop } => write!(
                f,
                "out-of-order step query {} round {round} hop {hop}",
                query_label(query)
            ),
            Diagnostic::TopologyMismatch { query, hop } => write!(
                f,
                "topology mismatch query {}: hop {hop} claimed by two nodes",
                query_label(query)
            ),
        }
    }
}

/// Per-node privacy-accounting figures riding along with a collected
/// trace.
///
/// This is the privacy accountant's snapshot flattened to plain numbers
/// and class labels, so the observability layer can carry and render it
/// without depending on the privacy crate. It attaches *out of band* —
/// never as trace lines — keeping the trace schema (and the no-leak
/// gates over it) byte-identical with accounting on or off.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PrivacyLedger {
    /// Queries folded into the accountant.
    pub queries_accounted: u64,
    /// Per-node peak LoP estimates, indexed by node.
    pub per_node_lop: Vec<f64>,
    /// 95% confidence half-widths matching `per_node_lop`.
    pub per_node_ci95: Vec<f64>,
    /// Spectrum class label per node (e.g. "beyond suspicion").
    pub per_node_class: Vec<String>,
    /// Average of the per-node estimates.
    pub average_lop: f64,
    /// Maximum of the per-node estimates.
    pub worst_lop: f64,
    /// Worst spectrum class label across nodes.
    pub worst_class: String,
}

/// Accumulates spans from trace files and live recorders, then
/// [`finish`](TraceCollector::finish)es into a [`CollectedTrace`].
#[derive(Debug, Default)]
pub struct TraceCollector {
    sources: Vec<String>,
    spans: Vec<CollectedSpan>,
    node_summaries: Vec<NodeSummary>,
    diagnostics: Vec<Diagnostic>,
    privacy: Option<PrivacyLedger>,
}

impl TraceCollector {
    /// An empty collector.
    #[must_use]
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Ingests one JSONL trace (as exported by
    /// [`Recorder::trace_jsonl`](crate::Recorder::trace_jsonl)),
    /// returning how many spans were accepted.
    ///
    /// Lines that fail to parse are reported as
    /// [`Diagnostic::MalformedLine`] and skipped; ingestion itself never
    /// fails.
    pub fn ingest_jsonl(&mut self, source: &str, content: &str) -> usize {
        let source_index = self.add_source(source);
        let mut accepted = 0;
        for (line_index, line) in content.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_trace_line(line) {
                Ok(event) => {
                    self.spans.push(CollectedSpan {
                        event,
                        source: source_index,
                    });
                    accepted += 1;
                }
                Err(reason) => self.diagnostics.push(Diagnostic::MalformedLine {
                    source: source.to_string(),
                    line: line_index + 1,
                    reason,
                }),
            }
        }
        accepted
    }

    /// Ingests a live recorder: its buffered trace events plus the
    /// per-node summaries it aggregated. Returns how many spans were
    /// accepted.
    pub fn ingest_recorder(&mut self, source: &str, recorder: &crate::Recorder) -> usize {
        let source_index = self.add_source(source);
        let events = recorder.events();
        let accepted = events.len();
        self.spans
            .extend(events.into_iter().map(|event| CollectedSpan {
                event,
                source: source_index,
            }));
        self.node_summaries = merge_node_summaries(
            std::mem::take(&mut self.node_summaries),
            recorder.node_summaries(),
        );
        accepted
    }

    /// Attaches a privacy-accounting ledger to the collection. With
    /// several attachments the per-node figures merge conservatively
    /// (element-wise maximum) and the query counts add.
    pub fn attach_privacy(&mut self, ledger: PrivacyLedger) {
        self.privacy = Some(match self.privacy.take() {
            None => ledger,
            Some(existing) => merge_ledgers(existing, ledger),
        });
    }

    /// Merges everything ingested so far into one causally ordered
    /// trace: spans sorted by `(query, slot, round, hop)` then
    /// timestamp, duplicate steps collapsed (earliest kept) with a
    /// [`Diagnostic::DuplicateStep`] each.
    #[must_use]
    pub fn finish(mut self) -> CollectedTrace {
        self.spans.sort_by_key(|s| causal_key(&s.event));
        // Collapse duplicate steps: identical (query, slot, round, hop)
        // step spans can only come from overlapping ingestion (the same
        // run's file and live recorder, say), never from the protocol —
        // a retransmitted frame re-delivers a token, it does not rerun
        // the hop.
        let mut seen_steps: std::collections::BTreeSet<(Option<u64>, Option<u64>, u32, u32)> =
            std::collections::BTreeSet::new();
        let mut deduped: Vec<CollectedSpan> = Vec::with_capacity(self.spans.len());
        for span in self.spans {
            if span.event.phase == Phase::Step {
                if let (Some(round), Some(hop)) = (span.event.ctx.round, span.event.ctx.hop) {
                    let key = (span.event.ctx.query, span.event.ctx.slot, round, hop);
                    if !seen_steps.insert(key) {
                        self.diagnostics.push(Diagnostic::DuplicateStep {
                            query: span.event.ctx.query,
                            round,
                            hop,
                        });
                        continue;
                    }
                }
            }
            deduped.push(span);
        }
        CollectedTrace {
            sources: self.sources,
            spans: deduped,
            node_summaries: self.node_summaries,
            diagnostics: self.diagnostics,
            privacy: self.privacy,
        }
    }

    fn add_source(&mut self, source: &str) -> usize {
        self.sources.push(source.to_string());
        self.sources.len() - 1
    }
}

/// The merged, causally ordered view of one or more trace sources.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectedTrace {
    /// Labels of the ingested sources, in ingestion order.
    pub sources: Vec<String>,
    /// Every accepted span, ordered by `(query, slot, round, hop)` and
    /// then timestamp; duplicate steps already collapsed.
    pub spans: Vec<CollectedSpan>,
    /// Per-node phase digests shipped by live recorders (empty for
    /// file-only collection).
    pub node_summaries: Vec<NodeSummary>,
    /// Everything the collector had to skip or could not reconcile.
    pub diagnostics: Vec<Diagnostic>,
    /// Privacy-accounting figures attached out of band, when a live
    /// accountant was available at collection time. Never derived from
    /// (or written into) the trace lines themselves.
    pub privacy: Option<PrivacyLedger>,
}

impl CollectedTrace {
    /// The distinct query ids seen, sorted; `None` groups spans from
    /// untagged solo traces.
    #[must_use]
    pub fn queries(&self) -> Vec<Option<u64>> {
        let mut queries: Vec<Option<u64>> = self
            .spans
            .iter()
            .filter(|s| s.event.phase == Phase::Step)
            .map(|s| s.event.ctx.query)
            .collect();
        queries.sort_unstable();
        queries.dedup();
        queries
    }

    /// Step spans of one query, in causal chain order.
    pub fn chain(&self, query: Option<u64>) -> impl Iterator<Item = &CollectedSpan> {
        self.spans
            .iter()
            .filter(move |s| s.event.phase == Phase::Step && s.event.ctx.query == query)
    }

    /// Validates every query's reconstructed hop chain against the ring
    /// topology: `rounds` rounds of `nodes` hops each, every hop exactly
    /// once, each ring position owned by one node, timestamps
    /// non-decreasing along the chain.
    ///
    /// Problems are appended to [`diagnostics`](CollectedTrace::diagnostics);
    /// returns `true` when every chain checked out complete and
    /// consistent.
    pub fn validate_topology(&mut self, nodes: usize, rounds: u32) -> bool {
        let mut found = Vec::new();
        for query in self.queries() {
            // (round, hop) -> (count, node, t_us of earliest occurrence)
            let mut seen: BTreeMap<(u32, u32), (u32, Option<u32>, u64)> = BTreeMap::new();
            // Ownership must be a bijection: one node per ring position
            // and one position per node, so track both directions.
            let mut position_owner: BTreeMap<u32, u32> = BTreeMap::new();
            let mut node_position: BTreeMap<u32, u32> = BTreeMap::new();
            for span in self.chain(query) {
                let (Some(round), Some(hop)) = (span.event.ctx.round, span.event.ctx.hop) else {
                    continue;
                };
                let entry =
                    seen.entry((round, hop))
                        .or_insert((0, span.event.ctx.node, span.event.t_us));
                entry.0 += 1;
                if let Some(node) = span.event.ctx.node {
                    let position_conflict =
                        position_owner.get(&hop).is_some_and(|&owner| owner != node);
                    let node_conflict = node_position.get(&node).is_some_and(|&owned| owned != hop);
                    if position_conflict || node_conflict {
                        found.push(Diagnostic::TopologyMismatch { query, hop });
                    } else {
                        position_owner.insert(hop, node);
                        node_position.insert(node, hop);
                    }
                }
            }
            let mut last_t_us = 0u64;
            for round in 1..=rounds {
                for hop in 0..nodes as u32 {
                    match seen.get(&(round, hop)) {
                        None => {
                            found.push(Diagnostic::MissingStep { query, round, hop });
                        }
                        Some(&(count, _, t_us)) => {
                            if count > 1 {
                                found.push(Diagnostic::DuplicateStep { query, round, hop });
                            }
                            if t_us < last_t_us {
                                found.push(Diagnostic::OutOfOrderStep { query, round, hop });
                            }
                            last_t_us = last_t_us.max(t_us);
                        }
                    }
                }
            }
        }
        let clean = found.is_empty();
        self.diagnostics.extend(found);
        clean
    }

    /// Serializes the merged view back to JSONL — the same schema as
    /// [`TraceEvent::to_json`], so everything that gates a raw trace
    /// (the `trace_no_leak` schema and data-independence checks) gates
    /// the collected output too.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(self.spans.len() * 96);
        for span in &self.spans {
            out.push_str(&span.event.to_json());
            out.push('\n');
        }
        out
    }
}

/// Causal sort key: query-major, then slot, then round-major hop order
/// along the ring, then timestamp. Spans missing a coordinate sort
/// before spans that have it, keeping per-node context lines (recv
/// waits, retries) adjacent to their chain.
fn causal_key(
    event: &TraceEvent,
) -> (
    Option<u64>,
    Option<u64>,
    Option<u32>,
    Option<u32>,
    u64,
    usize,
) {
    (
        event.ctx.query,
        event.ctx.slot,
        event.ctx.round,
        event.ctx.hop,
        event.t_us,
        event.phase.index(),
    )
}

/// Parses one recorder JSONL line back into a [`TraceEvent`].
///
/// Accepts exactly the flat-object schema [`TraceEvent::to_json`] emits
/// (any key order); anything else is an `Err` with a human-readable
/// reason.
///
/// # Errors
///
/// A static description of the first structural problem found.
pub fn parse_trace_line(line: &str) -> Result<TraceEvent, String> {
    let inner = line
        .trim()
        .strip_prefix('{')
        .and_then(|l| l.strip_suffix('}'))
        .ok_or_else(|| "not a JSON object".to_string())?;
    let mut t_us = None;
    let mut phase = None;
    let mut dur_ns = None;
    let mut ctx = Ctx::default();
    for pair in inner.split(',') {
        let (key, value) = pair
            .split_once(':')
            .ok_or_else(|| format!("not a key:value pair: `{pair}`"))?;
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if key == "phase" {
            let name = value.trim_matches('"');
            phase = Some(Phase::from_wire(name).ok_or_else(|| format!("unknown phase `{name}`"))?);
            continue;
        }
        let number: u64 = value
            .parse()
            .map_err(|_| format!("non-integer value for `{key}`"))?;
        match key {
            "t_us" => t_us = Some(number),
            "dur_ns" => dur_ns = Some(number),
            "query" => ctx.query = Some(number),
            "slot" => ctx.slot = Some(number),
            "node" => {
                ctx.node = Some(u32::try_from(number).map_err(|_| "node out of range")?);
            }
            "round" => {
                ctx.round = Some(u32::try_from(number).map_err(|_| "round out of range")?);
            }
            "hop" => {
                ctx.hop = Some(u32::try_from(number).map_err(|_| "hop out of range")?);
            }
            other => return Err(format!("unexpected key `{other}`")),
        }
    }
    Ok(TraceEvent {
        t_us: t_us.ok_or("missing t_us")?,
        phase: phase.ok_or("missing phase")?,
        ctx,
        dur_ns: dur_ns.ok_or("missing dur_ns")?,
    })
}

/// Conservative rank of a spectrum class label: later (worse) classes
/// rank higher, unknown labels rank worst.
fn class_rank(label: &str) -> usize {
    match label {
        "" | "absolute privacy" => 0,
        "beyond suspicion" => 1,
        "probable innocence" => 2,
        "possible innocence" => 3,
        _ => 4,
    }
}

/// Merges two privacy ledgers conservatively: per-node maxima, added
/// query counts, the worse of the two summary classes.
fn merge_ledgers(mut a: PrivacyLedger, b: PrivacyLedger) -> PrivacyLedger {
    let nodes = a.per_node_lop.len().max(b.per_node_lop.len());
    a.per_node_lop.resize(nodes, 0.0);
    a.per_node_ci95.resize(nodes, 0.0);
    a.per_node_class.resize(nodes, String::new());
    for node in 0..nodes {
        if let Some(&lop) = b.per_node_lop.get(node) {
            if lop > a.per_node_lop[node] {
                a.per_node_lop[node] = lop;
                a.per_node_ci95[node] = b.per_node_ci95.get(node).copied().unwrap_or(0.0);
            }
        }
        if let Some(class) = b.per_node_class.get(node) {
            if class_rank(class) > class_rank(&a.per_node_class[node])
                || a.per_node_class[node].is_empty()
            {
                a.per_node_class[node] = class.clone();
            }
        }
    }
    a.queries_accounted += b.queries_accounted;
    a.average_lop = a.average_lop.max(b.average_lop);
    a.worst_lop = a.worst_lop.max(b.worst_lop);
    if class_rank(&b.worst_class) > class_rank(&a.worst_class) || a.worst_class.is_empty() {
        a.worst_class = b.worst_class;
    }
    a
}

fn merge_node_summaries(a: Vec<NodeSummary>, b: Vec<NodeSummary>) -> Vec<NodeSummary> {
    let mut merged: BTreeMap<u32, NodeSummary> = a.into_iter().map(|s| (s.node, s)).collect();
    for summary in b {
        match merged.get_mut(&summary.node) {
            None => {
                merged.insert(summary.node, summary);
            }
            Some(existing) => {
                for (phase, snap) in summary.phases {
                    match existing.phases.iter_mut().find(|(p, _)| *p == phase) {
                        Some((_, acc)) => *acc = acc.merge(&snap),
                        None => existing.phases.push((phase, snap)),
                    }
                }
                existing.phases.sort_by_key(|(p, _)| p.index());
            }
        }
    }
    merged.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn step(query: u64, round: u32, hop: u32, t_us: u64) -> String {
        format!(
            "{{\"t_us\":{t_us},\"phase\":\"step\",\"query\":{query},\"node\":{hop},\"round\":{round},\"hop\":{hop},\"dur_ns\":100}}"
        )
    }

    fn full_chain(query: u64, nodes: u32, rounds: u32) -> String {
        let mut lines = Vec::new();
        let mut t = 1 + query * 1000;
        for round in 1..=rounds {
            for hop in 0..nodes {
                lines.push(step(query, round, hop, t));
                t += 1;
            }
        }
        lines.join("\n")
    }

    #[test]
    fn merges_sources_into_causal_order() {
        // Per-node islands: each file holds one node's spans only.
        let mut per_node = [String::new(), String::new(), String::new()];
        let mut t = 1u64;
        for round in 1..=2u32 {
            for hop in 0..3u32 {
                per_node[hop as usize].push_str(&step(0, round, hop, t));
                per_node[hop as usize].push('\n');
                t += 1;
            }
        }
        let mut collector = TraceCollector::new();
        for (i, content) in per_node.iter().enumerate() {
            assert_eq!(
                collector.ingest_jsonl(&format!("node{i}.jsonl"), content),
                2
            );
        }
        let mut trace = collector.finish();
        assert_eq!(trace.sources.len(), 3);
        assert_eq!(trace.spans.len(), 6);
        let coords: Vec<(Option<u32>, Option<u32>)> = trace
            .spans
            .iter()
            .map(|s| (s.event.ctx.round, s.event.ctx.hop))
            .collect();
        let expected: Vec<(Option<u32>, Option<u32>)> = (1..=2)
            .flat_map(|r| (0..3).map(move |h| (Some(r), Some(h))))
            .collect();
        assert_eq!(coords, expected, "spans must be in causal chain order");
        assert!(trace.validate_topology(3, 2));
        assert!(trace.diagnostics.is_empty());
    }

    #[test]
    fn malformed_lines_become_diagnostics_not_errors() {
        let content = format!(
            "{}\nnot json at all\n{{\"t_us\":5,\"phase\":\"warp\",\"dur_ns\":1}}\n{{\"t_us\":9,\"phase\":\"step\",\"query\":0,\"node\":1,\"round\":1,\"hop\":1,\"dur_ns\":\n{}",
            step(0, 1, 0, 1),
            step(0, 1, 2, 3),
        );
        let mut collector = TraceCollector::new();
        let accepted = collector.ingest_jsonl("island.jsonl", &content);
        assert_eq!(accepted, 2);
        let trace = collector.finish();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.diagnostics.len(), 3);
        for diagnostic in &trace.diagnostics {
            assert!(
                matches!(diagnostic, Diagnostic::MalformedLine { .. }),
                "unexpected {diagnostic:?}"
            );
        }
        // Line numbers point at the offending lines (1-based).
        assert!(matches!(
            &trace.diagnostics[0],
            Diagnostic::MalformedLine { line: 2, source, .. } if source == "island.jsonl"
        ));
    }

    #[test]
    fn duplicate_steps_collapse_to_earliest_with_diagnostics() {
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("a.jsonl", &full_chain(0, 3, 1));
        collector.ingest_jsonl("a-again.jsonl", &full_chain(0, 3, 1));
        let mut trace = collector.finish();
        assert_eq!(trace.spans.len(), 3, "duplicates must collapse");
        assert_eq!(
            trace
                .diagnostics
                .iter()
                .filter(|d| matches!(d, Diagnostic::DuplicateStep { .. }))
                .count(),
            3
        );
        // After collapsing, the chain itself validates.
        assert!(trace.validate_topology(3, 1));
    }

    #[test]
    fn missing_hops_are_reported_per_coordinate() {
        let mut lines: Vec<String> = full_chain(0, 3, 2).lines().map(String::from).collect();
        lines.remove(4); // round 2, hop 1
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("gappy.jsonl", &lines.join("\n"));
        let mut trace = collector.finish();
        assert!(!trace.validate_topology(3, 2));
        assert_eq!(
            trace.diagnostics,
            vec![Diagnostic::MissingStep {
                query: Some(0),
                round: 2,
                hop: 1
            }]
        );
    }

    #[test]
    fn out_of_order_and_topology_conflicts_are_flagged() {
        let content = [
            step(0, 1, 0, 100),
            // hop 1 stamped before hop 0: clock skew across sources.
            step(0, 1, 1, 50),
            // hop 2 claimed by node 0 instead of node 2.
            "{\"t_us\":120,\"phase\":\"step\",\"query\":0,\"node\":0,\"round\":1,\"hop\":2,\"dur_ns\":100}"
                .to_string(),
        ]
        .join("\n");
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("skewed.jsonl", &content);
        let mut trace = collector.finish();
        assert!(!trace.validate_topology(3, 1));
        assert!(trace.diagnostics.contains(&Diagnostic::OutOfOrderStep {
            query: Some(0),
            round: 1,
            hop: 1
        }));
        assert!(trace.diagnostics.contains(&Diagnostic::TopologyMismatch {
            query: Some(0),
            hop: 2
        }));
    }

    #[test]
    fn live_recorder_ingestion_carries_node_summaries() {
        let rec = Recorder::new();
        rec.record(
            Phase::Step,
            Ctx::default()
                .with_query(0)
                .with_node(1)
                .with_round(1)
                .with_hop(1),
            rec.clock(),
        );
        let mut collector = TraceCollector::new();
        assert_eq!(collector.ingest_recorder("live", &rec), 1);
        let trace = collector.finish();
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.node_summaries.len(), 1);
        assert_eq!(trace.node_summaries[0].node, 1);
    }

    #[test]
    fn roundtrip_through_jsonl_is_lossless() {
        let rec = Recorder::new();
        for (round, hop) in [(1u32, 0u32), (1, 1), (2, 0)] {
            rec.tick(
                Phase::Step,
                Ctx::default()
                    .with_query(3)
                    .with_slot(1)
                    .with_node(hop)
                    .with_round(round)
                    .with_hop(hop),
            );
        }
        let jsonl = rec.trace_jsonl();
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("export.jsonl", &jsonl);
        let trace = collector.finish();
        assert!(trace.diagnostics.is_empty());
        assert_eq!(trace.to_jsonl(), jsonl);
    }

    #[test]
    fn privacy_ledgers_attach_out_of_band_and_merge_conservatively() {
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("a", &full_chain(0, 3, 1));
        collector.attach_privacy(PrivacyLedger {
            queries_accounted: 2,
            per_node_lop: vec![0.1, 0.3, 0.2],
            per_node_ci95: vec![0.01, 0.03, 0.02],
            per_node_class: vec!["beyond suspicion".into(); 3],
            average_lop: 0.2,
            worst_lop: 0.3,
            worst_class: "beyond suspicion".into(),
        });
        collector.attach_privacy(PrivacyLedger {
            queries_accounted: 1,
            per_node_lop: vec![0.4, 0.1, 0.2],
            per_node_ci95: vec![0.04, 0.01, 0.02],
            per_node_class: vec![
                "probable innocence".into(),
                "beyond suspicion".into(),
                "beyond suspicion".into(),
            ],
            average_lop: 0.25,
            worst_lop: 0.4,
            worst_class: "probable innocence".into(),
        });
        let trace = collector.finish();
        // The trace lines themselves are untouched by the attachment.
        assert_eq!(trace.to_jsonl().lines().count(), 3);
        let ledger = trace.privacy.expect("ledger attached");
        assert_eq!(ledger.queries_accounted, 3);
        assert_eq!(ledger.per_node_lop, vec![0.4, 0.3, 0.2]);
        assert_eq!(ledger.per_node_ci95, vec![0.04, 0.03, 0.02]);
        assert_eq!(ledger.worst_lop, 0.4);
        assert_eq!(ledger.worst_class, "probable innocence");
        assert_eq!(ledger.per_node_class[0], "probable innocence");

        // Without an attachment there is no ledger at all.
        let mut bare = TraceCollector::new();
        bare.ingest_jsonl("a", &full_chain(0, 3, 1));
        assert_eq!(bare.finish().privacy, None);
    }

    #[test]
    fn queries_and_chain_group_by_query_id() {
        let mut collector = TraceCollector::new();
        collector.ingest_jsonl("a", &full_chain(1, 3, 1));
        collector.ingest_jsonl("b", &full_chain(0, 3, 1));
        let trace = collector.finish();
        assert_eq!(trace.queries(), vec![Some(0), Some(1)]);
        assert_eq!(trace.chain(Some(0)).count(), 3);
        assert_eq!(trace.chain(None).count(), 0);
    }
}
