//! Log-bucketed latency histograms.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// One bucket per power of two of nanoseconds, plus a zero bucket.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. 64 powers cover the full `u64` range, so nothing
/// is ever clipped.
pub const BUCKETS: usize = 65;

/// A concurrent, log-bucketed latency histogram.
///
/// HDR-style: recording is a few relaxed atomic ops (no locks, no
/// allocation), quantiles are answered from the bucket counts with at most
/// 2x relative error, and histograms are mergeable across threads via
/// [`merge_into`](Histogram::merge_into).
///
/// # Example
///
/// ```
/// use privtopk_observe::Histogram;
///
/// let h = Histogram::new();
/// for ns in [100, 200, 400, 800] {
///     h.record(ns);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 4);
/// assert_eq!(snap.max_ns, 800);
/// assert!(snap.p50_ns >= 200);
/// ```
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time read of a [`Histogram`].
///
/// Quantiles are bucket upper bounds (clamped to the observed maximum), so
/// they over-estimate by at most the bucket width. Snapshots carry their
/// full bucket array, so they can be [`merge`](HistogramSnapshot::merge)d
/// across nodes without losing quantile fidelity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// Median estimate, in nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile estimate, in nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile estimate, in nanoseconds.
    pub p99_ns: u64,
    /// Raw log-bucket counts (see [`BUCKETS`]) the quantiles derive from.
    pub buckets: [u64; BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            count: 0,
            sum_ns: 0,
            max_ns: 0,
            p50_ns: 0,
            p90_ns: 0,
            p99_ns: 0,
            buckets: [0; BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Mean sample in nanoseconds (0.0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Whether anything was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Rebuilds a snapshot from raw totals, recomputing the quantile
    /// estimates from the bucket array. `count` is always derived from
    /// the buckets so the result is internally consistent.
    #[must_use]
    pub fn from_parts(buckets: [u64; BUCKETS], sum_ns: u64, max_ns: u64) -> Self {
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum_ns,
            max_ns,
            p50_ns: quantile(&buckets, count, max_ns, 0.50),
            p90_ns: quantile(&buckets, count, max_ns, 0.90),
            p99_ns: quantile(&buckets, count, max_ns, 0.99),
            buckets,
        }
    }

    /// Merges two snapshots into one, as if every sample of both had been
    /// recorded into a single histogram.
    ///
    /// Bucket counts and sums add (saturating), maxima take the larger
    /// value, and quantiles are recomputed from the merged buckets — all
    /// component operations are associative and commutative, so merging
    /// per-node snapshots yields the same digest in any order or
    /// grouping.
    #[must_use]
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, slot) in buckets.iter_mut().enumerate() {
            *slot = self.buckets[i].saturating_add(other.buckets[i]);
        }
        HistogramSnapshot::from_parts(
            buckets,
            self.sum_ns.saturating_add(other.sum_ns),
            self.max_ns.max(other.max_ns),
        )
    }
}

fn bucket_index(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        64 - nanos.leading_zeros() as usize
    }
}

/// Inclusive upper bound of bucket `index`, in nanoseconds.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds
/// `[2^(i-1), 2^i - 1]`; the last bucket tops out at `u64::MAX`.
#[must_use]
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one sample of `nanos` nanoseconds.
    pub fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(nanos, Ordering::Relaxed);
        self.max_ns.fetch_max(nanos, Ordering::Relaxed);
        self.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one sample from a [`Duration`] (saturating at `u64::MAX`).
    pub fn record_duration(&self, duration: Duration) {
        self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds this histogram's counts into `target`.
    ///
    /// Used to merge per-thread histograms into one; merging concurrently
    /// with writers is safe and never loses a sample that finished before
    /// the merge began.
    pub fn merge_into(&self, target: &Histogram) {
        target
            .count
            .fetch_add(self.count.load(Ordering::Relaxed), Ordering::Relaxed);
        target
            .sum_ns
            .fetch_add(self.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        target
            .max_ns
            .fetch_max(self.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        for (ours, theirs) in self.buckets.iter().zip(target.buckets.iter()) {
            theirs.fetch_add(ours.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// Reads the current totals and quantile estimates.
    ///
    /// A snapshot taken while writers race is internally consistent up to
    /// one in-flight sample per writer — good enough for progress stats.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot::from_parts(
            buckets,
            self.sum_ns.load(Ordering::Relaxed),
            self.max_ns.load(Ordering::Relaxed),
        )
    }
}

fn quantile(buckets: &[u64; BUCKETS], count: u64, max_ns: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cumulative += c;
        if cumulative >= rank {
            return bucket_upper(i).min(max_ns);
        }
    }
    max_ns
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_snapshot_is_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
        assert!(snap.is_empty());
        assert_eq!(snap.mean_ns(), 0.0);
    }

    #[test]
    fn bucket_indexing_covers_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for idx in 1..=63 {
            // Every bucket's upper bound maps back to the same bucket.
            assert_eq!(bucket_index(bucket_upper(idx)), idx);
        }
    }

    #[test]
    fn single_sample_quantiles_hit_the_sample() {
        let h = Histogram::new();
        h.record(1000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max_ns, 1000);
        // All quantiles clamp to the observed maximum.
        assert_eq!(snap.p50_ns, 1000);
        assert_eq!(snap.p99_ns, 1000);
    }

    #[test]
    fn quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 100);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.max_ns, 100_000);
        assert!(snap.p50_ns <= snap.p90_ns);
        assert!(snap.p90_ns <= snap.p99_ns);
        assert!(snap.p99_ns <= snap.max_ns);
        // Log buckets over-estimate by at most 2x.
        assert!(snap.p50_ns >= 50_000 && snap.p50_ns <= 100_000);
    }

    #[test]
    fn merge_combines_counts_and_max() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(20);
        b.record(5000);
        b.merge_into(&a);
        let snap = a.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum_ns, 5030);
        assert_eq!(snap.max_ns, 5000);
    }

    #[test]
    fn duration_recording_saturates() {
        let h = Histogram::new();
        h.record_duration(Duration::from_nanos(1500));
        h.record_duration(Duration::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.max_ns, u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = Histogram::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(h.snapshot().count, 4000);
    }

    #[test]
    fn snapshot_merge_matches_one_histogram_fed_everything() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for (h, samples) in [(&a, [10u64, 20, 350]), (&b, [5000, 0, 7])] {
            for s in samples {
                h.record(s);
                all.record(s);
            }
        }
        assert_eq!(a.snapshot().merge(&b.snapshot()), all.snapshot());
    }

    #[test]
    fn snapshot_merge_with_empty_is_identity() {
        let h = Histogram::new();
        h.record(42);
        h.record(9000);
        let snap = h.snapshot();
        let empty = HistogramSnapshot::default();
        assert_eq!(snap.merge(&empty), snap);
        assert_eq!(empty.merge(&snap), snap);
    }

    fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
        let h = Histogram::new();
        for &s in samples {
            h.record(s);
        }
        h.snapshot()
    }

    proptest! {
        #[test]
        fn snapshot_merge_is_commutative(
            xs in proptest::collection::vec(0u64..10_000_000, 0..100),
            ys in proptest::collection::vec(0u64..10_000_000, 0..100),
        ) {
            let a = snapshot_of(&xs);
            let b = snapshot_of(&ys);
            prop_assert_eq!(a.merge(&b), b.merge(&a));
        }

        #[test]
        fn snapshot_merge_is_associative_on_quantile_buckets(
            xs in proptest::collection::vec(0u64..10_000_000, 0..80),
            ys in proptest::collection::vec(0u64..10_000_000, 0..80),
            zs in proptest::collection::vec(0u64..10_000_000, 0..80),
        ) {
            let a = snapshot_of(&xs);
            let b = snapshot_of(&ys);
            let c = snapshot_of(&zs);
            let left = a.merge(&b).merge(&c);
            let right = a.merge(&b.merge(&c));
            // Full structural equality: buckets, totals and every
            // recomputed quantile must agree regardless of grouping.
            prop_assert_eq!(left, right);
            // And either grouping equals the single-histogram digest.
            let mut all = xs.clone();
            all.extend_from_slice(&ys);
            all.extend_from_slice(&zs);
            prop_assert_eq!(left, snapshot_of(&all));
        }
    }

    proptest! {
        #[test]
        fn quantile_estimate_is_within_one_bucket(samples in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            let snap = h.snapshot();
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            let exact_p50 = sorted[(samples.len() - 1) / 2];
            // The estimate can exceed the exact median by at most the
            // bucket width (2x), and never exceeds the max.
            prop_assert!(snap.p50_ns <= snap.max_ns);
            prop_assert!(snap.p50_ns >= exact_p50 / 2 || snap.p50_ns >= exact_p50);
            prop_assert_eq!(snap.max_ns, *sorted.last().unwrap());
            prop_assert_eq!(snap.count, samples.len() as u64);
        }
    }
}
