//! Privacy-safe telemetry for the `privtopk` query path.
//!
//! The paper's evaluation (Sections 4.2 and 5) reasons about per-hop
//! communication cost; this crate makes that cost *observable at runtime*
//! without weakening the protocol's privacy argument. It provides a
//! lock-light [`Recorder`] with:
//!
//! - structured trace events carrying only protocol *coordinates*
//!   (query id, slot, node, round, hop) and a [`Phase`] label,
//! - log-bucketed latency [`Histogram`]s (HDR-style, p50/p90/p99/max,
//!   mergeable across threads),
//! - a counter/gauge registry that absorbs the transport-level figures
//!   previously only reachable through `TransportMetrics`,
//! - JSONL trace export plus a compact text [`Summary`] table.
//!
//! # The no-leak constraint
//!
//! Telemetry must be safe to ship off-host, so by construction a trace
//! record can only hold the fields of [`Ctx`] plus timing. There is no API
//! for attaching data values: no `TopKVector` contents, no local-vector
//! sizes beyond `k`, nothing the `privtopk-privacy` adversary models could
//! consume. Enabling tracing therefore provably cannot change the loss of
//! privacy of a run, and the integration tests assert that serialized
//! traces never contain any value from any node's private dataset.
//!
//! # Disabled means free
//!
//! [`Recorder::disabled`] carries no allocation and every record call is a
//! single branch on an `Option`. Crucially, [`Recorder::clock`] returns
//! `None` when disabled, so instrumented code never even reads the OS
//! clock unless telemetry is on:
//!
//! ```
//! use privtopk_observe::{Ctx, Phase, Recorder};
//!
//! let rec = Recorder::new();
//! let started = rec.clock(); // None when disabled: no syscall, no work
//! // ... do the hop ...
//! rec.record(Phase::Step, Ctx::default().with_node(2).with_round(1), started);
//! assert_eq!(rec.phase(Phase::Step).count, 1);
//! let trace = rec.trace_jsonl();
//! assert!(trace.contains("\"phase\":\"step\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod analyzer;
mod collector;
mod histogram;
mod prometheus;
mod recorder;
mod slo;

pub use analyzer::{
    analyze, Analysis, AnalyzerConfig, HopBreakdown, Incident, NodeHealingCost, NodeLoad,
    QueryPath, Stall,
};
pub use collector::{
    parse_trace_line, CollectedSpan, CollectedTrace, Diagnostic, PrivacyLedger, TraceCollector,
};
pub use histogram::{bucket_upper, Histogram, HistogramSnapshot, BUCKETS};
pub use prometheus::{
    render_summary, sanitize_metric_name, scrape, scrape_path, scrape_timeout, write_build_info,
    write_counter, write_gauge, write_gauge_f64, write_gauge_f64_series, write_histogram,
    MetricsServer, SCRAPE_TIMEOUT,
};
pub use recorder::{
    GaugeF64Snapshot, GaugeSnapshot, NodeSummary, Recorder, Summary, TraceEvent,
    DEFAULT_EVENT_CAPACITY, DEFAULT_FLIGHT_CAPACITY,
};
pub use slo::{BurnRate, SloConfig, SloEngine, SloReport, SloStatus, WindowReport};

/// A phase label for one timed span of protocol work.
///
/// Phases are the only vocabulary trace events have for *what* happened;
/// everything else in an event is a protocol coordinate ([`Ctx`]) or a
/// duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Serializing a message into a wire frame.
    Encode,
    /// Handing a frame to the transport.
    Send,
    /// Waiting for and receiving a frame.
    Recv,
    /// The local per-hop computation (max / top-k step).
    Step,
    /// A reliable-transport retransmission.
    Retry,
    /// A duplicate-suppression re-acknowledgement.
    Ack,
    /// A worker sitting idle with no slot to serve.
    Idle,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 7] = [
        Phase::Encode,
        Phase::Send,
        Phase::Recv,
        Phase::Step,
        Phase::Retry,
        Phase::Ack,
        Phase::Idle,
    ];

    /// The lowercase wire name of this phase.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Encode => "encode",
            Phase::Send => "send",
            Phase::Recv => "recv",
            Phase::Step => "step",
            Phase::Retry => "retry",
            Phase::Ack => "ack",
            Phase::Idle => "idle",
        }
    }

    /// The inverse of [`Phase::as_str`]: parses a lowercase wire name.
    #[must_use]
    pub fn from_wire(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.as_str() == name)
    }

    pub(crate) fn index(self) -> usize {
        match self {
            Phase::Encode => 0,
            Phase::Send => 1,
            Phase::Recv => 2,
            Phase::Step => 3,
            Phase::Retry => 4,
            Phase::Ack => 5,
            Phase::Idle => 6,
        }
    }
}

/// Protocol coordinates attached to a trace event.
///
/// Every field is an *identifier*, never a data value: which query, which
/// pipeline slot, which node, which round, which hop position. Fields left
/// `None` are omitted from the serialized trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ctx {
    /// Scheduler-assigned query id (service/batch runs).
    pub query: Option<u64>,
    /// Pipeline slot the event belongs to (service runs).
    pub slot: Option<u64>,
    /// Node index in `0..n`.
    pub node: Option<u32>,
    /// Protocol round, counted from 1.
    pub round: Option<u32>,
    /// Ring position of the hop, counted from 0.
    pub hop: Option<u32>,
}

impl Ctx {
    /// A context with every field unset.
    pub const EMPTY: Ctx = Ctx {
        query: None,
        slot: None,
        node: None,
        round: None,
        hop: None,
    };

    /// Sets the query id.
    #[must_use]
    pub fn with_query(mut self, query: u64) -> Self {
        self.query = Some(query);
        self
    }

    /// Sets the pipeline slot.
    #[must_use]
    pub fn with_slot(mut self, slot: u64) -> Self {
        self.slot = Some(slot);
        self
    }

    /// Sets the node index.
    #[must_use]
    pub fn with_node(mut self, node: u32) -> Self {
        self.node = Some(node);
        self
    }

    /// Sets the protocol round.
    #[must_use]
    pub fn with_round(mut self, round: u32) -> Self {
        self.round = Some(round);
        self
    }

    /// Sets the ring-position hop index.
    #[must_use]
    pub fn with_hop(mut self, hop: u32) -> Self {
        self.hop = Some(hop);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_names_are_stable() {
        let names: Vec<_> = Phase::ALL.iter().map(|p| p.as_str()).collect();
        assert_eq!(
            names,
            ["encode", "send", "recv", "step", "retry", "ack", "idle"]
        );
    }

    #[test]
    fn phase_indices_are_dense_and_unique() {
        let mut seen = [false; Phase::ALL.len()];
        for p in Phase::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
    }

    #[test]
    fn ctx_builder_sets_fields() {
        let ctx = Ctx::default()
            .with_query(9)
            .with_slot(2)
            .with_node(3)
            .with_round(4)
            .with_hop(5);
        assert_eq!(ctx.query, Some(9));
        assert_eq!(ctx.slot, Some(2));
        assert_eq!(ctx.node, Some(3));
        assert_eq!(ctx.round, Some(4));
        assert_eq!(ctx.hop, Some(5));
        assert_eq!(Ctx::EMPTY, Ctx::default());
    }
}
