//! Prometheus text exposition (format v0.0.4) for the recorder's
//! registry, plus a minimal plain-TCP scrape endpoint.
//!
//! Everything rendered here derives from the no-leak registry — phase
//! latency digests, named histograms, counters and gauges. Metric
//! values are aggregates over protocol coordinates and timings; no
//! private value or rank ever reaches a label or sample.
//!
//! The server is deliberately small: a blocking accept loop on a
//! `std::net::TcpListener` with just enough HTTP to be well-formed for
//! standard clients — it parses the request path, answers `/metrics`
//! (and `/`) with the exposition, `/healthz` with a health summary, and
//! anything else with `404`, always with a status line, `Content-Type`
//! and `Content-Length`. No external dependency.

use std::fmt::Write as _;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::histogram::{bucket_upper, HistogramSnapshot, BUCKETS};
use crate::recorder::Summary;

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` so
/// runtime-built registry names (`queue_wait/group3`) stay legal
/// Prometheus metric names.
#[must_use]
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Formats an `f64` sample the way the exposition format expects:
/// always a `.` decimal separator, never scientific notation, and the
/// literal `NaN` / `+Inf` / `-Inf` spellings for non-finite values.
///
/// Rust's `Display` for `f64` is already locale-independent and never
/// produces an exponent, so this only has to guard the non-finite
/// cases.
fn format_f64(value: f64) -> String {
    if value.is_nan() {
        "NaN".to_string()
    } else if value == f64::INFINITY {
        "+Inf".to_string()
    } else if value == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{value}")
    }
}

/// Appends one floating-point gauge sample (`# TYPE` header plus
/// value), with locale-stable formatting and non-finite values rendered
/// as the exposition format's `NaN`/`+Inf`/`-Inf` literals.
pub fn write_gauge_f64(out: &mut String, name: &str, help: &str, value: f64) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {}", format_f64(value));
}

/// Appends one floating-point gauge family with one sample per label
/// set: `samples` pairs a rendered label body (e.g. `node="3"`) with
/// its value. A single `# HELP`/`# TYPE` header covers the family.
pub fn write_gauge_f64_series(out: &mut String, name: &str, help: &str, samples: &[(String, f64)]) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    for (labels, value) in samples {
        let _ = writeln!(out, "{name}{{{labels}}} {}", format_f64(*value));
    }
}

/// Appends one counter sample (`# TYPE` header plus value).
pub fn write_counter(out: &mut String, name: &str, help: &str, value: u64) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} counter");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends the `privtopk_build_info` series: a constant-1 gauge whose
/// labels carry build metadata, the conventional way to join dashboards
/// against a version without putting strings in sample values.
pub fn write_build_info(out: &mut String) {
    let name = "privtopk_build_info";
    let _ = writeln!(out, "# HELP {name} Build metadata; the value is always 1.");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name}{{version=\"{}\"}} 1", env!("CARGO_PKG_VERSION"));
}

/// Appends one gauge sample.
pub fn write_gauge(out: &mut String, name: &str, help: &str, value: u64) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} gauge");
    let _ = writeln!(out, "{name} {value}");
}

/// Appends one histogram in cumulative-bucket form (`_bucket{{le=..}}`,
/// `_sum`, `_count`), with bucket boundaries in nanoseconds. Empty
/// leading buckets are skipped; the rendered series stays cumulative
/// and always ends with `le="+Inf"`.
pub fn write_histogram(out: &mut String, name: &str, help: &str, snapshot: &HistogramSnapshot) {
    let name = sanitize_metric_name(name);
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} histogram");
    let mut cumulative = 0u64;
    for index in 0..BUCKETS {
        let count = snapshot.buckets[index];
        if count == 0 {
            continue;
        }
        cumulative += count;
        let _ = writeln!(
            out,
            "{name}_bucket{{le=\"{}\"}} {cumulative}",
            bucket_upper(index)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", snapshot.count);
    let _ = writeln!(out, "{name}_sum {}", snapshot.sum_ns);
    let _ = writeln!(out, "{name}_count {}", snapshot.count);
    if snapshot.count > 0 {
        write_gauge_f64(
            out,
            &format!("{name}_mean"),
            "Mean sample value of the histogram, in nanoseconds.",
            snapshot.mean_ns(),
        );
    }
}

/// Renders a full recorder [`Summary`] as one exposition body. All
/// metric names carry the `privtopk_` prefix; histogram samples are in
/// nanoseconds (suffix `_ns`).
#[must_use]
pub fn render_summary(summary: &Summary) -> String {
    let mut out = String::with_capacity(2048);
    for (phase, snapshot) in &summary.phases {
        write_histogram(
            &mut out,
            &format!("privtopk_phase_{}_ns", phase.as_str()),
            "Span latency for this protocol phase, in nanoseconds.",
            snapshot,
        );
    }
    for (name, snapshot) in &summary.named {
        write_histogram(
            &mut out,
            &format!("privtopk_{name}_ns"),
            "Named latency histogram, in nanoseconds.",
            snapshot,
        );
    }
    for (name, value) in &summary.counters {
        write_counter(
            &mut out,
            &format!("privtopk_{name}_total"),
            "Monotonic event counter.",
            *value,
        );
    }
    for (name, gauge) in &summary.gauges {
        write_gauge(
            &mut out,
            &format!("privtopk_{name}"),
            "Last observed value.",
            gauge.value,
        );
        write_gauge(
            &mut out,
            &format!("privtopk_{name}_high_water"),
            "Largest value ever observed.",
            gauge.high_water,
        );
    }
    write_counter(
        &mut out,
        "privtopk_trace_events_recorded_total",
        "Trace events captured in the ring buffer.",
        summary.events_recorded,
    );
    write_counter(
        &mut out,
        "privtopk_trace_events_dropped_total",
        "Trace events discarded at the buffer cap.",
        summary.events_dropped,
    );
    out
}

/// A scrape endpoint: binds a TCP listener and answers every
/// connection with the body produced by the render callback.
///
/// The listener thread shuts down on drop (or [`MetricsServer::stop`])
/// by flagging and self-connecting to unblock `accept`.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `render()` to every `/metrics` request; `/healthz`
    /// answers a plain `ok`.
    pub fn bind<F>(addr: &str, render: F) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
    {
        MetricsServer::bind_with_health(addr, render, || "ok\n".to_string())
    }

    /// [`bind`](MetricsServer::bind) with a custom `/healthz` body —
    /// how a service surfaces its live SLO verdict
    /// (`crate::SloReport::health_body`) next to its metrics.
    pub fn bind_with_health<F, H>(
        addr: &str,
        render: F,
        health: H,
    ) -> std::io::Result<MetricsServer>
    where
        F: Fn() -> String + Send + 'static,
        H: Fn() -> String + Send + 'static,
    {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("privtopk-metrics".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    // Render outside any lock the callback may take and
                    // serve; a failed client write only drops this scrape.
                    let _ = serve_one(stream, &render, &health);
                }
            })?;
        Ok(MetricsServer {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (port resolved when binding `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the listener thread. Idempotent.
    pub fn stop(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Release);
            // Unblock accept() with a throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Extracts the request path from an HTTP request head, with the query
/// string stripped. An unparsable head (a crude client that sent
/// nothing yet) defaults to `/metrics` so bare-socket scrapers keep
/// working.
fn request_path(head: &[u8]) -> &str {
    let text = std::str::from_utf8(head).unwrap_or("");
    let mut parts = text.lines().next().unwrap_or("").split_whitespace();
    match (parts.next(), parts.next()) {
        (Some(_method), Some(target)) if target.starts_with('/') => {
            target.split('?').next().unwrap_or(target)
        }
        _ => "/metrics",
    }
}

/// Reads the request head, routes on its path, and writes one
/// well-formed HTTP/1.1 reply (status line, `Content-Type`,
/// `Content-Length`, `Connection: close`).
fn serve_one(
    mut stream: TcpStream,
    render: &dyn Fn() -> String,
    health: &dyn Fn() -> String,
) -> std::io::Result<()> {
    // Read whatever request bytes arrive promptly; scrape clients send
    // the GET line immediately and the first 1024 bytes always hold it.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf).unwrap_or(0);
    let (status, content_type, body) = match request_path(&buf[..n]) {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            render(),
        ),
        "/healthz" => ("200 OK", "text/plain; charset=utf-8", health()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found\n".to_string(),
        ),
    };
    let header = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Default deadline applied by [`scrape`] to connecting, sending the
/// request and each read — a hung peer errors out instead of blocking
/// the caller forever.
pub const SCRAPE_TIMEOUT: Duration = Duration::from_secs(2);

/// Fetches one scrape from `addr` and returns the body (test/CLI
/// helper — a deliberately minimal HTTP/1.1 client). Bounded by
/// [`SCRAPE_TIMEOUT`]; use [`scrape_timeout`] for a custom deadline.
pub fn scrape(addr: &SocketAddr) -> std::io::Result<String> {
    scrape_timeout(addr, SCRAPE_TIMEOUT)
}

/// [`scrape`] with an explicit deadline for connecting, writing the
/// request and each read. A server that accepts but never responds
/// yields a timeout error instead of hanging the caller.
pub fn scrape_timeout(addr: &SocketAddr, timeout: Duration) -> std::io::Result<String> {
    scrape_path(addr, "/metrics", timeout)
}

/// Fetches an arbitrary path from a metrics server (e.g. `/healthz`)
/// and returns the body of a `200` reply; any other status is an
/// `InvalidData` error carrying the status line.
pub fn scrape_path(addr: &SocketAddr, path: &str, timeout: Duration) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: privtopk\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((head, body)) if head.starts_with("HTTP/1.1 200") => Ok(body.to_string()),
        Some((head, _)) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "scrape of {path} answered: {}",
                head.lines().next().unwrap_or("<empty status line>")
            ),
        )),
        _ => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed scrape response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Ctx, Phase, Recorder};
    use std::time::Duration;

    fn sample_summary() -> Summary {
        let rec = Recorder::new();
        rec.tick(Phase::Step, Ctx::default().with_node(0));
        rec.tick(Phase::Send, Ctx::default().with_node(1));
        rec.observe_named_duration("queue_wait/group0", Duration::from_micros(7));
        rec.add("frames_sent", 3);
        rec.gauge_set("in_flight", 2);
        rec.gauge_set("in_flight", 1);
        rec.summary()
    }

    #[test]
    fn sanitizes_runtime_built_names() {
        assert_eq!(
            sanitize_metric_name("queue_wait/group3"),
            "queue_wait_group3"
        );
        assert_eq!(sanitize_metric_name("a b-c"), "a_b_c");
        assert_eq!(sanitize_metric_name("0weird"), "_0weird");
    }

    #[test]
    fn renders_all_registry_sections() {
        let body = render_summary(&sample_summary());
        assert!(body.contains("# TYPE privtopk_phase_step_ns histogram"));
        assert!(body.contains("privtopk_phase_step_ns_count 1"));
        assert!(body.contains("privtopk_queue_wait_group0_ns_sum 7000"));
        assert!(body.contains("# TYPE privtopk_frames_sent_total counter"));
        assert!(body.contains("privtopk_frames_sent_total 3"));
        assert!(body.contains("privtopk_in_flight 1"));
        assert!(body.contains("privtopk_in_flight_high_water 2"));
        assert!(body.contains("privtopk_trace_events_recorded_total 2"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let mut buckets = [0u64; BUCKETS];
        buckets[3] = 2; // [4, 7]
        buckets[10] = 1; // [512, 1023]
        let snapshot = HistogramSnapshot::from_parts(buckets, 1536, 1000);
        let mut out = String::new();
        write_histogram(&mut out, "x_ns", "help", &snapshot);
        let lines: Vec<&str> = out.lines().filter(|l| l.contains("_bucket")).collect();
        assert_eq!(lines[0], "x_ns_bucket{le=\"7\"} 2");
        assert_eq!(lines[1], "x_ns_bucket{le=\"1023\"} 3");
        assert_eq!(lines[2], "x_ns_bucket{le=\"+Inf\"} 3");
        assert!(out.contains("x_ns_sum 1536"));
        assert!(out.contains("x_ns_count 3"));
    }

    /// Whether `name` is a legal Prometheus metric name:
    /// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
    fn is_legal_metric_name(name: &str) -> bool {
        let mut chars = name.chars();
        let Some(first) = chars.next() else {
            return false;
        };
        (first.is_ascii_alphabetic() || first == '_' || first == ':')
            && chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    }

    #[test]
    fn sanitize_handles_edge_cases() {
        assert_eq!(
            sanitize_metric_name("already_legal:name"),
            "already_legal:name"
        );
        assert_eq!(sanitize_metric_name("7seconds"), "_7seconds");
        assert_eq!(
            sanitize_metric_name("sp ace/slash.dot-dash"),
            "sp_ace_slash_dot_dash"
        );
        assert_eq!(sanitize_metric_name("uni©ode"), "uni_ode");
        assert_eq!(sanitize_metric_name(""), "");
        assert!(is_legal_metric_name(&sanitize_metric_name(
            "99 red balloons"
        )));
    }

    proptest::proptest! {
        #[test]
        fn sanitize_output_is_legal_and_idempotent(name in ".+") {
            let once = sanitize_metric_name(&name);
            proptest::prop_assert!(
                is_legal_metric_name(&once),
                "illegal output {once:?} for input {name:?}"
            );
            proptest::prop_assert_eq!(sanitize_metric_name(&once), once);
        }
    }

    #[test]
    fn f64_gauges_format_locale_stable() {
        let mut out = String::new();
        write_gauge_f64(&mut out, "privacy_lop", "help", 0.0625);
        assert!(out.contains("# TYPE privacy_lop gauge"));
        assert!(out.contains("privacy_lop 0.0625"));
        // No scientific notation even for extreme magnitudes.
        let mut out = String::new();
        write_gauge_f64(&mut out, "tiny", "help", 0.000000001);
        let sample = out.lines().last().unwrap();
        assert_eq!(sample, "tiny 0.000000001");
        assert!(
            !sample.contains('e'),
            "scientific notation leaked: {sample}"
        );
        // Non-finite values use the exposition literals.
        let mut out = String::new();
        write_gauge_f64(&mut out, "a", "h", f64::NAN);
        write_gauge_f64(&mut out, "b", "h", f64::INFINITY);
        write_gauge_f64(&mut out, "c", "h", f64::NEG_INFINITY);
        assert!(out.contains("a NaN"));
        assert!(out.contains("b +Inf"));
        assert!(out.contains("c -Inf"));
    }

    #[test]
    fn f64_gauge_series_shares_one_header() {
        let mut out = String::new();
        write_gauge_f64_series(
            &mut out,
            "privtopk_privacy_lop_node",
            "Per-node LoP.",
            &[
                ("node=\"0\"".to_string(), 0.25),
                ("node=\"1\"".to_string(), 0.5),
            ],
        );
        assert_eq!(out.matches("# TYPE").count(), 1);
        assert!(out.contains("privtopk_privacy_lop_node{node=\"0\"} 0.25"));
        assert!(out.contains("privtopk_privacy_lop_node{node=\"1\"} 0.5"));
    }

    #[test]
    fn histograms_emit_their_mean_as_f64() {
        let mut buckets = [0u64; BUCKETS];
        buckets[3] = 2;
        let snapshot = HistogramSnapshot::from_parts(buckets, 9, 2);
        let mut out = String::new();
        write_histogram(&mut out, "x_ns", "help", &snapshot);
        assert!(out.contains("# TYPE x_ns_mean gauge"));
        assert!(out.contains("x_ns_mean 4.5"), "got {out}");
        // Empty histograms skip the mean (0/0 is not a sample).
        let empty = HistogramSnapshot::from_parts([0u64; BUCKETS], 0, 0);
        let mut out = String::new();
        write_histogram(&mut out, "y_ns", "help", &empty);
        assert!(!out.contains("y_ns_mean"));
    }

    #[test]
    fn scrape_times_out_on_a_silent_peer() {
        use std::net::TcpListener;
        // A listener that accepts connections but never writes a byte.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let hold = std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming().take(1) {
                held.push(stream);
            }
            std::thread::sleep(Duration::from_millis(700));
            drop(held);
        });
        let started = std::time::Instant::now();
        let result = scrape_timeout(&addr, Duration::from_millis(200));
        assert!(result.is_err(), "scrape of a silent peer must fail");
        assert!(
            started.elapsed() < Duration::from_secs(5),
            "scrape did not respect its deadline"
        );
        hold.join().unwrap();
    }

    #[test]
    fn server_answers_scrapes_until_stopped() {
        let mut server =
            MetricsServer::bind("127.0.0.1:0", || render_summary(&sample_summary())).unwrap();
        let addr = server.addr();
        for _ in 0..3 {
            let body = scrape(&addr).unwrap();
            assert!(body.contains("privtopk_frames_sent_total 3"));
        }
        server.stop();
        server.stop(); // idempotent
        assert!(scrape(&addr).is_err() || scrape(&addr).is_err());
    }

    /// Issues a raw request and returns the full response (head + body),
    /// so header assertions see exactly the bytes on the wire.
    fn raw_request(addr: &SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn responses_are_well_formed_http() {
        let server = MetricsServer::bind("127.0.0.1:0", || "metric_a 1\n".to_string()).unwrap();
        let addr = server.addr();
        let response = raw_request(&addr, "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("Content-Type: text/plain; version=0.0.4; charset=utf-8"));
        assert!(head.contains(&format!("Content-Length: {}", body.len())));
        assert!(head.contains("Connection: close"));
        assert_eq!(body, "metric_a 1\n");
    }

    #[test]
    fn unknown_paths_get_a_404_and_healthz_answers() {
        let server = MetricsServer::bind_with_health(
            "127.0.0.1:0",
            || "metric_a 1\n".to_string(),
            || "ok\ncustom health\n".to_string(),
        )
        .unwrap();
        let addr = server.addr();
        let missing = raw_request(&addr, "GET /nope HTTP/1.1\r\nHost: x\r\n\r\n");
        assert!(missing.starts_with("HTTP/1.1 404 Not Found"));
        assert!(missing.contains("Content-Length: 10"));
        assert!(missing.ends_with("not found\n"));
        let health = scrape_path(&addr, "/healthz", SCRAPE_TIMEOUT).unwrap();
        assert_eq!(health, "ok\ncustom health\n");
        // scrape_path surfaces non-200 statuses in the error text.
        let err = scrape_path(&addr, "/nope", SCRAPE_TIMEOUT).unwrap_err();
        assert!(err.to_string().contains("404"), "got {err}");
        // The root path and query strings still reach the exposition.
        assert!(scrape_path(&addr, "/", SCRAPE_TIMEOUT)
            .unwrap()
            .contains("metric_a 1"));
        assert!(scrape_path(&addr, "/metrics?x=1", SCRAPE_TIMEOUT)
            .unwrap()
            .contains("metric_a 1"));
    }

    #[test]
    fn request_path_parses_and_defaults() {
        assert_eq!(request_path(b"GET /healthz HTTP/1.1\r\n"), "/healthz");
        assert_eq!(request_path(b"GET /metrics?a=b HTTP/1.1\r\n"), "/metrics");
        assert_eq!(request_path(b""), "/metrics");
        assert_eq!(request_path(b"garbage"), "/metrics");
    }

    #[test]
    fn build_info_is_a_constant_one_with_a_version_label() {
        let mut out = String::new();
        write_build_info(&mut out);
        assert!(out.contains("# TYPE privtopk_build_info gauge"));
        assert!(out.contains(&format!(
            "privtopk_build_info{{version=\"{}\"}} 1",
            env!("CARGO_PKG_VERSION")
        )));
    }
}
